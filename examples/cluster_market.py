#!/usr/bin/env python3
"""A sharded market administrator surviving the loss of a node.

Three cluster nodes each own a consistent-hash slice of the account
space; one CL issuing key is shared, so any node's verdicts verify
under the single bank public key.  A router hashes every request's
account id onto the ring and speaks the ordinary single-node wire
protocol to the owner.  Mid-trace we kill a node outright, have its
designated peer adopt the slice from shipped checkpoint + journal
records, and finish the trace — no request lost, none run twice,
cluster-wide invariants clean.

Usage::

    python examples/cluster_market.py
"""

from __future__ import annotations

import random

from repro.cluster import LocalCluster
from repro.crypto.cl_sig import cl_keygen
from repro.ecash import setup
from repro.service.loadgen import mint_cluster_deposit_traffic, run_cluster_trace
from repro.testing import check_cluster_invariants


def main() -> None:
    rng = random.Random(2015)
    params = setup(level=4, rng=rng, security_bits=64, edge_rounds=6)
    keypair = cl_keygen(params.backend, rng)

    with LocalCluster(params, keypair, n_nodes=3, checkpoint_every=8) as cluster:
        shares = cluster.map.ring.slice_share()
        print("=== three-node cluster, one market administrator ===")
        for node in cluster.map.nodes:
            print(f"  {node} at {cluster.map.address_of(node)} "
                  f"owns ~{shares[node]:.0%} of the key space")

        with cluster.router(attempts=2, backoff=0.01,
                            refresh_backoff=0.01) as router:
            # fund accounts and withdraw coins over the wire, so the
            # books conserve and the sweep can hold it against them
            deposits = mint_cluster_deposit_traffic(
                router, params, keypair.public, rng,
                n_accounts=4, n_deposits=12, replay_fraction=0.25,
            )
            phase1, phase2 = deposits[:6], deposits[6:]

            report1 = run_cluster_trace(router, phase1)
            print(f"\nphase 1 (all nodes up): {report1.ok} ok, "
                  f"{report1.rejected} double-spends rejected")

            victim = cluster.map.owner_of(phase2[0].payload["aid"])
            print(f"\n--- killing {victim} (owner of the next request) ---")
            cluster.kill(victim)
            adopter = cluster.failover(victim)
            print(f"{adopter} adopted {victim}'s slice; map is now "
                  f"version {cluster.map.version} "
                  f"(ring unchanged, address rebound)")

            report2 = run_cluster_trace(router, phase2)
            print(f"phase 2 (degraded): {report2.ok} ok, "
                  f"{report2.rejected} rejected, "
                  f"{router.reroutes} re-route(s)")

            total_ok = report1.ok + report2.ok
            total_rej = report1.rejected + report2.rejected
            print(f"\nacross the crash: {total_ok} fresh deposits accepted "
                  f"exactly once, {total_rej} replays rejected, 0 lost")

        sweep = check_cluster_invariants(
            params, keypair, cluster.map, cluster.dump_journals(),
            conservation=True,
        )
        print(f"cluster invariant sweep: "
              f"{'CLEAN' if sweep.clean else sweep.findings}")


if __name__ == "__main__":
    main()

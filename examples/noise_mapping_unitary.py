#!/usr/bin/env python3
"""Urban noise mapping on the unitary-payment market (PPMSpbs).

A city agency crowdsources noise measurements; every submission earns
exactly one credit, so the light-weight PPMSpbs mechanism applies
(paper Section V).  The example runs a batch of participants through
Algorithm 4 and then demonstrates the mechanism's privacy split:

* the *job owner* never learns which account it paid — we dump the
  JO's complete receive-log and check the workers' real keys are absent;
* the *MA/bank* does see the (JO, SP) transaction pairs — by design,
  the paper's anti-money-laundering concession.

Usage::

    python examples/noise_mapping_unitary.py
"""

from __future__ import annotations

import random

import numpy as np

from repro.core import PPMSpbsSession
from repro.metrics import format_table, format_traffic_table
from repro.net.codec import encode
from repro.workloads import noise_map_reading


def main() -> None:
    rng = random.Random(44)
    np_rng = np.random.default_rng(44)

    market = PPMSpbsSession(rng, rsa_bits=1024)
    agency = market.new_job_owner(funds=20)
    workers = [market.new_participant() for _ in range(8)]

    print("Running 8 participants through the unitary market...")
    receipts = market.run_job(
        agency,
        workers,
        description="A-weighted noise levels, downtown grid",
        data_payload=noise_map_reading(np_rng),
    )
    print(f"{len(receipts)} coins issued, verified and deposited.\n")

    bank = market.ma.bank
    print(f"Agency balance: {bank.balance(agency.account_pub.fingerprint())} "
          f"(started at 20, paid 8 unitary credits)")
    paid = sum(bank.balance(w.account_pub.fingerprint()) for w in workers)
    print(f"Workers hold {paid} credits in total.\n")

    # privacy against the JO: its inbox never contains a worker's real key
    jo_inbox = b"".join(
        encode(e.payload) for e in market.transport.log if e.receiver == "JO"
    )
    leaked = sum(
        1
        for w in workers
        if w.account_pub.n.to_bytes((w.account_pub.n.bit_length() + 7) // 8, "big") in jo_inbox
    )
    print(f"Worker real keys visible to the JO: {leaked}/8 "
          f"(blindness of the partially blind signature)")

    # the deliberate concession: the bank sees who transacted
    print(f"Bank transaction log entries: {len(bank.transaction_log)} "
          f"(the paper removes bank-side transaction privacy to thwart "
          f"money laundering)\n")

    print(format_table(market.counter, ["JO", "SP", "MA"],
                       title="Operation counts — note: zero ZKPs (Table I):"))
    print()
    print(format_traffic_table(market.transport.meter, ["JO", "SP", "MA"],
                               title="Traffic for 8 rounds (Table II scale):"))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: one sensing job through the PPMSdec market.

Runs the full Algorithm-1 flow — job registration, blind withdrawal,
cash break, encrypted payment, data submission, delivery, verification
and deposits — for a single job owner and sensing participant, then
prints the bank's view, the operation counts (Table I's units) and the
traffic meter (Table II's units).

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro.core import PPMSdecSession
from repro.ecash import setup
from repro.metrics import format_table, format_traffic_table


def main() -> None:
    rng = random.Random(2015)  # the paper's vintage

    # Setup(DEC): level-4 tree -> coins of value 16. Uses a precomputed
    # Cunningham chain (the paper's offline setup mode); pass
    # use_known_chain=False to feel the Fig. 2 search cost instead.
    print("Setting up DEC parameters (level 4)...")
    params = setup(level=4, rng=rng, security_bits=48)

    market = PPMSdecSession(params, rng, rsa_bits=1024, break_algorithm="epcba")
    hospital = market.new_job_owner("hospital-233", funds=64)
    alice = market.new_participant("alice")

    print("Running one full job (payment = 5 credits)...")
    bundles = market.run_job(
        hospital,
        [alice],
        description="ambient noise samples, city centre",
        payment=5,
        data_payload=b"62.1dB@(32.05,118.78) 58.9dB@(32.06,118.79)",
    )

    bundle = bundles[0]
    print(f"\nAlice received {bundle.total_value(params.tree_level)} credits "
          f"in {len(bundle.tokens)} real coins "
          f"(+{bundle.fake_count} fakes padding the payload)")
    print(f"JO signature valid: {bundle.signature_valid}")

    bank = market.ma.bank
    print(f"\nBank balances: hospital={bank.balance('hospital-233')} "
          f"alice={bank.balance('alice')}")
    print(f"Deposits seen by the bank: "
          f"{[e.amount for e in market.ma.deposit_events]} "
          f"(the cash break at work — not one lump of 5)")

    print("\n" + format_table(market.counter, ["JO", "SP", "MA"],
                              title="Operation counts (cf. paper Table I):"))
    print("\n" + format_traffic_table(market.transport.meter, ["JO", "SP", "MA"],
                                      title="Traffic (cf. paper Table II):"))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Watching one deposit cross the market, end to end.

The observability layer (:mod:`repro.obs`) gives every request a trace
id derived from its request id, and every layer the request crosses —
admission, the write-ahead journal, batched spend verification, the
bank shard, the reply — hangs its span on that same id.  This example
runs a small traced market and then *reads the trace back*: it picks
one deposit, derives its trace id with :func:`obs.trace_id`, and prints
the request's full lifecycle with timings, exactly what you would see
as one lane in Perfetto after ``make obs-demo``.

It also shows the redaction gate at work: the sender name we submit
with never appears in the telemetry — only a salted digest does.
"""

from __future__ import annotations

import random
import sys

import repro.obs as obs
from repro.ecash.dec import setup
from repro.service import Journal, MarketService, ShardedBank, VerificationBatcher
from repro.service.loadgen import mint_deposit_traffic


def main() -> int:
    rng = random.Random(7)
    telemetry = obs.Telemetry.enabled(capacity=8192)

    params = setup(3, rng, security_bits=64, real_pairing=False, edge_rounds=4)
    bank = ShardedBank.create(params, rng, n_shards=2, journal=Journal())
    service = MarketService(
        bank,
        batcher=VerificationBatcher(params, bank.keypair, max_batch=4, seed=1),
        rng=random.Random(1),
        telemetry=telemetry,
    )

    requests = mint_deposit_traffic(
        service, random.Random(2), n_accounts=2, n_deposits=4
    )
    rids = []
    for i, request in enumerate(requests):
        rid = f"day0:dep:{i}"
        rids.append(rid)
        service.submit(request.sender, "deposit", request.payload, rid=rid)
    service.drain()

    # -- follow one request by its trace id ---------------------------
    rid = rids[0]
    lane = obs.trace_id(rid)
    print(f"request {rid!r} -> trace {lane}")
    spans = [r for r in telemetry.tracer.records() if r.trace == lane]
    base = min(r.start for r in spans)
    for record in sorted(spans, key=lambda r: r.start):
        offset_us = (record.start - base) * 1e6
        attrs = " ".join(f"{k}={v}" for k, v in sorted(record.attrs.items()))
        print(f"  +{offset_us:9.1f}us {record.name:<16}"
              f" {record.duration * 1e6:8.1f}us  {attrs}")

    # -- the redaction gate: raw identities never reach an export -----
    blob = telemetry.tracer.export_jsonl() + telemetry.registry.to_prometheus()
    sender = requests[0].sender
    assert sender not in blob, "redaction gate failed"
    print(f"\nsender {sender!r} appears nowhere in the exports "
          f"(only its salted digest does)")

    # -- and the registry kept the operator's counters ----------------
    registry = telemetry.registry
    ok = registry.counter("repro_service_replies_total", status="OK").value
    lat = registry.histogram("repro_request_latency_seconds")
    print(f"{ok} deposits OK; p50 <= {lat.quantile(0.5) * 1e3:.1f} ms "
          f"(bucket bound), journal at lsn "
          f"{registry.gauge('repro_journal_lsn').value:.0f}")
    print("\nrun `make obs-demo` for the same thing at scale, exported "
          "to ./telemetry/ for Perfetto")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Quantitative sweep of the denomination attack vs cash-break strategy.

Reproduces the privacy argument of paper Section IV-B as a Monte-Carlo
table: the curious MA watches one SP's deposit stream in a market of
published jobs and tries to pin the SP to its job.  Four strategies are
swept — ``none`` (the strawman: whole payment in one coin), ``pcba``,
``epcba`` and ``unitary`` — at several market sizes.

Expected shape: identification rate collapses and the anonymity set
grows as the break gets finer, with EPCBA ≥ PCBA (the reason Algorithm
3 exists).

Usage::

    python examples/denomination_attack_demo.py [trials]
"""

from __future__ import annotations

import random
import sys

import repro.core.optimal_break  # noqa: F401 — registers the "optimal" strategy
from repro.attacks import denomination_experiment

LEVEL = 6
STRATEGIES = ("none", "pcba", "epcba", "optimal", "unitary")
MARKET_SIZES = (5, 10, 20, 40)


def main() -> None:
    trials = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    rng = random.Random(99)

    print(f"Denomination attack, L={LEVEL}, payments uniform in [1, {1 << LEVEL}], "
          f"{trials} trials per cell\n")
    header = f"{'jobs':>5} | " + " | ".join(f"{s:^22}" for s in STRATEGIES)
    print(header)
    print("-" * len(header))
    print(f"{'':>5} | " + " | ".join(f"{'ident%':>9} {'anon-set':>11}" for _ in STRATEGIES))

    for n_jobs in MARKET_SIZES:
        cells = []
        for strategy in STRATEGIES:
            summary = denomination_experiment(
                strategy, level=LEVEL, n_jobs=n_jobs, trials=trials, rng=rng
            )
            cells.append(
                f"{100 * summary.identification_rate:>8.1f}% "
                f"{summary.mean_anonymity_set:>11.2f}"
            )
        print(f"{n_jobs:>5} | " + " | ".join(cells))

    print("\nReading: 'ident%' = fraction of SPs the MA links uniquely to "
          "their job; 'anon-set' = mean number of jobs consistent with the "
          "deposit stream.  Finer breaks monotonically blunt the attack "
          "(paper Section IV-B).  'optimal' is this repo's extension: the "
          "coverage-maximizing break under the same L+2 slot budget.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The paper's motivating scenario: an HIV-study sensing job.

Section I of the paper: "Consider a research organization that uses the
market to collect data from HIV patients' daily physical status ...
knowing that a person participates in this job directly reveals he or
she has HIV."  This example runs that study through PPMSdec with a
*curious MA* attached to the wire, then shows concretely what the MA
can and cannot learn:

1. it sees the job, its payment, and pseudonymous labor registrations;
2. it cannot read the patients' telemetry (encrypted to pseudonym keys);
3. it cannot link deposits back to the withdrawal (blind issuance);
4. its best remaining inference — the denomination attack on the
   deposit streams — is run for real, against several decoy jobs, and
   reported per cash-break strategy.

Usage::

    python examples/hiv_study_market.py
"""

from __future__ import annotations

import random

import numpy as np

from repro.attacks import CuriousMAView, run_denomination_attack
from repro.core import PPMSdecSession
from repro.ecash import setup
from repro.workloads import health_telemetry


def run_market(break_algorithm: str, seed: int = 7):
    rng = random.Random(seed)
    np_rng = np.random.default_rng(seed)
    params = setup(level=5, rng=rng, security_bits=48)
    market = PPMSdecSession(params, rng, rsa_bits=1024, break_algorithm=break_algorithm)

    ma_view = CuriousMAView()
    ma_view.attach(market.transport)

    # the study plus decoy jobs with other payments, as a real market has
    study = market.new_job_owner("research-org", funds=128)
    decoys = [market.new_job_owner(f"decoy-org-{i}", funds=128) for i in range(4)]
    decoy_payments = [2, 5, 17, 26]

    patients = [market.new_participant(f"patient-{i}") for i in range(3)]
    market.run_job(
        study,
        patients,
        description="daily physical status, longitudinal study",
        payment=22,
        data_payload=health_telemetry(np_rng),
    )
    for jo, payment, i in zip(decoys, decoy_payments, range(4)):
        worker = market.new_participant(f"worker-{i}")
        market.run_job(jo, [worker], description=f"decoy job {i}", payment=payment)

    # the curious MA assembles its view
    for profile in market.ma.board.jobs():
        ma_view.observe_job(profile.job_id, profile.payment)
    for event in market.ma.deposit_events:
        ma_view.observe_deposit(event.aid, event.amount, event.time)
    return market, ma_view


def main() -> None:
    print("=== HIV-study market under PPMSdec ===\n")
    for strategy in ("pcba", "epcba", "unitary"):
        market, ma_view = run_market(strategy)
        study_job = market.ma.board.jobs()[0]

        # what the MA cannot do: read the data
        payment_envs = [e for e in market.transport.log if e.kind == "payment-delivery"]
        print(f"[{strategy}] encrypted payment blob: {payment_envs[0].wire_bytes} B "
              f"(opaque to the MA)")

        # the MA's denomination attack against each patient account
        identified = 0
        for i in range(3):
            deposits = ma_view.deposits_of(f"patient-{i}")
            result = run_denomination_attack(
                ma_view.published_jobs, study_job.job_id, deposits
            )
            identified += result.uniquely_identified
            print(f"[{strategy}] patient-{i}: deposits {sorted(deposits)} -> "
                  f"anonymity set {result.anonymity_set_size} "
                  f"({'LINKED to the study!' if result.uniquely_identified else 'not uniquely linked'})")
        print(f"[{strategy}] patients uniquely linked: {identified}/3\n")

    print("Note: with a single lump-sum deposit (no cash break) every "
          "patient would be linked whenever the study's payment is unique "
          "in the market — run examples/denomination_attack_demo.py for "
          "the quantitative sweep.")


if __name__ == "__main__":
    main()

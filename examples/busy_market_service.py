#!/usr/bin/env python3
"""A busy day at the market administrator: bursty load, SLOs, overload.

The paper's MA is one logical party; :mod:`repro.service` rebuilds it
as a production service — a 4-shard bank behind a verification batcher
and admission control.  This example runs it through the shapes a real
sensing market produces:

1. **A bursty morning** — Markov-modulated on/off deposit traffic
   (:func:`repro.workloads.arrivals.bursty_arrivals`), with a few
   double-spend replays mixed in.  The service batches the pairing
   crypto, rejects every replay with evidence, and we print the
   operator's view: p50/p95/p99 latency, throughput, SLO verdicts.
2. **An overload spike** — arrivals far past the admission
   controller's rate and queue bounds.  The service sheds the excess
   with explicit ``BUSY`` replies *before* spending crypto budget on
   it, and everything it did admit is still exactly-once.
3. **The audit** — cross-shard placement invariants plus the merged
   ledger books, clean after both phases.

Runs on the toy pairing backend so it finishes in seconds; the real
Tate backend is measured in ``benchmarks/bench_service_throughput.py``.

Usage::

    python examples/busy_market_service.py
"""

from __future__ import annotations

import random

from repro.ecash import setup
from repro.metrics.latency import SLOTarget, format_latency_report
from repro.service import (
    AdmissionController,
    MarketService,
    ShardedBank,
    VerificationBatcher,
)
from repro.service.loadgen import mint_deposit_traffic, run_trace
from repro.workloads.arrivals import bursty_arrivals

N_SHARDS = 4
N_ACCOUNTS = 6
N_DEPOSITS = 48
REPLAY_FRACTION = 0.125  # 6 of 48 requests are double-spend replays


def main() -> None:
    rng = random.Random(2026)
    params = setup(level=3, rng=rng, security_bits=80,
                   real_pairing=False, edge_rounds=6)
    bank = ShardedBank.create(params, rng, n_shards=N_SHARDS)
    print(f"market administrator up: {N_SHARDS} shards, "
          f"coin value {1 << params.tree_level}, toy pairing backend")

    # ---- phase 1: a bursty morning under an SLO --------------------------
    service = MarketService(
        bank,
        batcher=VerificationBatcher(params, bank.keypair, max_batch=8, seed=9),
        admission=AdmissionController(rate=400.0, burst=32.0),
        rng=random.Random(1),
    )
    requests = mint_deposit_traffic(
        service, rng, n_accounts=N_ACCOUNTS, n_deposits=N_DEPOSITS,
        node_level=1, replay_fraction=REPLAY_FRACTION,
    )
    arrivals = bursty_arrivals(
        random.Random(7), rate_on=120.0, rate_off=4.0,
        mean_on=0.4, mean_off=0.6, horizon=60.0,
    )[: len(requests)]
    slo = SLOTarget(p95=0.5, min_throughput=20.0)
    report = run_trace(service, requests, arrivals, slo=slo)

    print(f"\n=== phase 1: bursty deposits "
          f"({report.submitted} submitted, {report.rejected} are replays) ===")
    print(format_latency_report(report.latency, title="deposit latency"))
    print(f"  shed       {report.shed}")
    print(f"  ok / rejected / errors: "
          f"{report.ok} / {report.rejected} / {report.errors}")
    print(f"  SLO (p95 <= 500 ms, >= 20 req/s): "
          f"{'MET' if report.slo_met else '; '.join(report.slo_findings)}")
    for failure in service.failures[:2]:
        print(f"  e.g. {failure.sender}#{failure.seq}: {failure.error}")

    # ---- phase 2: overload spike -----------------------------------------
    print("\n=== phase 2: overload spike ===")
    spike_bank = ShardedBank.create(params, rng, n_shards=N_SHARDS)
    spike = MarketService(
        spike_bank,
        batcher=VerificationBatcher(params, spike_bank.keypair, max_batch=8, seed=9),
        admission=AdmissionController(rate=30.0, burst=8.0, max_queue_depth=8),
        rng=random.Random(2),
    )
    spike_requests = mint_deposit_traffic(
        spike, rng, n_accounts=N_ACCOUNTS, n_deposits=N_DEPOSITS, node_level=1,
    )
    # everyone shows up in the same 100 ms — far past rate * horizon
    spike_arrivals = [0.002 * i for i in range(len(spike_requests))]
    spike_report = run_trace(spike, spike_requests, spike_arrivals)
    admission = spike.admission
    print(f"  submitted  {spike_report.submitted}")
    print(f"  admitted   {spike_report.ok}  (every one applied exactly once)")
    print(f"  shed BUSY  {spike_report.shed}  "
          f"(rate: {admission.shed_by_rate}, queue: {admission.shed_by_queue})")
    assert spike_report.shed > 0, "spike was supposed to overload admission"
    assert spike_report.ok + spike_report.shed == spike_report.submitted

    # ---- phase 3: the books ----------------------------------------------
    print()
    for label, book in (("bursty-morning", bank), ("overload-spike", spike_bank)):
        audit = book.audit()
        print(f"cross-shard audit [{label}]: "
              f"{'CLEAN' if audit.clean else audit.findings} "
              f"({book.deposit_seq} deposits applied)")
    print(f"double spends admitted: 0 "
          f"(all {report.rejected} replays rejected with evidence)")


if __name__ == "__main__":
    main()

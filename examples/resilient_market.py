#!/usr/bin/env python3
"""The message-driven runtime under fire: honest traffic + injected attacks.

The session classes (`PPMSdecSession` etc.) are orchestration — fine
for benches, but a deployed market is a set of daemons reacting to
whatever arrives, in whatever order, from whoever sends it.  This
example runs both mechanisms on the message-driven engine
(:mod:`repro.core.engine`) while an attacker injects malformed,
replayed and mis-addressed envelopes, and shows that:

* every honest worker still gets paid,
* every injected attack lands in the router's failure log with the
  specific defence that rejected it,
* the books still balance afterwards (ledger audit).

Usage::

    python examples/resilient_market.py
"""

from __future__ import annotations

import random

from repro.core.dec_machine import run_dec_machine_market
from repro.core.engine import Outbound
from repro.core.ledger import audit_bank
from repro.core.pbs_machine import run_machine_market
from repro.ecash import setup


def main() -> None:
    rng = random.Random(77)

    print("=== PPMSdec on the message-driven engine ===")
    params = setup(level=3, rng=rng, security_bits=48, edge_rounds=8)
    router, ma, jo, sps = run_dec_machine_market(
        params, rng, n_workers=2, payment=5,
        jo_funds=4 * (1 << params.tree_level),
    )
    print(f"honest run: {len(router.transport.log)} envelopes, "
          f"{len(router.failures)} failures")
    for sp in sps:
        print(f"  {sp.aid}: received {sp.received_value}, "
              f"balance {ma.bank.balance(sp.aid)}")

    print("\n--- attacker wakes up ---")
    attacks = [
        ("replay an already-deposited coin",
         lambda: router.post(sps[0].name, Outbound("MA", "deposit", next(
             e for e in router.transport.log
             if e.kind == "deposit" and e.sender == sps[0].name
         ).payload))),
        ("deposit into someone else's account",
         lambda: router.post(sps[0].name, Outbound("MA", "deposit", {
             "aid": sps[1].aid, "coin": b"irrelevant"}))),
        ("withdraw without an account",
         lambda: _unenrolled_withdrawal(router, params)),
        ("register labor for a ghost job",
         lambda: router.post("mallory", Outbound("MA", "labor-registration", {
             "job": "ghost-job", "rpk": (3, 5)}))),
    ]
    for description, act in attacks:
        before = len(router.failures)
        act()
        router.run()
        fired = router.failures[before:]
        verdicts = "; ".join(f.error.split(" (")[0] for f in fired) or "?!"
        print(f"  [{description}] rejected: {verdicts}")

    wallet_float = sum(w.balance for (_, w) in jo.coins)
    report = audit_bank(ma.bank, outstanding_float=wallet_float)
    print(f"\nledger audit after the attack wave: "
          f"{'CLEAN' if report.clean else report.findings}")

    print("\n=== PPMSpbs on the engine, same treatment ===")
    router2, ma2, jo2, sps2 = run_machine_market(rng, n_workers=3, jo_funds=5)
    print(f"honest run: {len(router2.transport.log)} envelopes, "
          f"{len(router2.failures)} failures")
    sp = sps2[0]
    router2.post(sp.name, Outbound("MA", "deposit", {
        "sig": sp.coin.value, "ctr": sp.coin.counter,
        "serial": sp.coin.common_info,
        "sp_key": (sp.account_pub.n, sp.account_pub.e),
        "jo_key": list(sp._jo_account),
    }))
    router2.run()
    print(f"  [replayed unitary coin] rejected: {router2.failures[-1].error}")
    balances = [ma2.bank.balance(s.account_pub.fingerprint()) for s in sps2]
    print(f"  worker balances intact: {balances}")

    print("\nAll injected attacks rejected; all honest outcomes preserved.")


def _unenrolled_withdrawal(router, params) -> None:
    from repro.ecash.dec import begin_withdrawal

    _, request = begin_withdrawal(params, random.Random(5))
    router.post("mallory", Outbound("MA", "withdraw-request", {"request": request}))


if __name__ == "__main__":
    main()

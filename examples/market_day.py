#!/usr/bin/env python3
"""A full market day: both mechanisms, credit circulation, mix network.

The closest thing to the paper's Fig. 1 in motion.  One simulated day:

1. a PPMSdec market opens: several organizations publish jobs with
   different payments, workers complete them and deposit their coins;
2. one worker turns its earnings around and *buys* sensing work from a
   peer (Section III-A: "the currency can be used to buy sensing
   services from other SPs"), then redeems the rest for a real-world
   voucher;
3. a unitary PPMSpbs market runs alongside for micro-tasks;
4. all labor-registration traffic goes through a mix-network batch so
   a network eavesdropper sees only a shuffled multiset of message
   sizes (the trust model's network-level anonymity, exercised rather
   than assumed).

Prints a closing dashboard: balances, total traffic, operation counts,
the mix's eavesdropper view, and the conservation-of-money check.

Usage::

    python examples/market_day.py
"""

from __future__ import annotations

import random

import numpy as np

from repro.core import PPMSdecSession, PPMSpbsSession, RedemptionDesk, trade_sensing_service
from repro.ecash import setup
from repro.metrics import format_table, format_traffic_table
from repro.net import MixNetwork, Transport
from repro.workloads import GENERATORS, generate_market


def main() -> None:
    rng = random.Random(11)
    np_rng = np.random.default_rng(11)

    print("=== Morning: PPMSdec market (arbitrary payments) ===")
    params = setup(level=4, rng=rng, security_bits=48)
    dec = PPMSdecSession(params, rng, rsa_bits=1024, break_algorithm="epcba")
    spec = generate_market(rng, level=4, n_jobs=3, participants_per_job=(1, 2))

    workers = []
    owners = []
    payload_kinds = list(GENERATORS)
    for i, job in enumerate(spec.jobs):
        owner = dec.new_job_owner(f"org-{i}", funds=64)
        owners.append(owner)
        job_workers = []
        for k in range(job.n_participants):
            worker = dec.new_participant(f"worker-{len(workers)}")
            workers.append(worker)
            job_workers.append(worker)
        payload = GENERATORS[payload_kinds[i % len(payload_kinds)]](np_rng)
        dec.run_job(owner, job_workers, description=job.description,
                    payment=job.payment, data_payload=payload)
        print(f"  job '{job.description}': payment {job.payment} x "
              f"{job.n_participants} workers — paid and deposited")

    print("\n=== Midday: credit circulation ===")
    bank = dec.ma.bank
    # find a worker who can cover a whole coin; top them up via one more job
    rich = "worker-0"
    if bank.balance(rich) < 16:
        topup = dec.new_job_owner("topup-org", funds=32)
        owners.append(topup)
        dec.run_job(topup, [workers[0]], payment=16 - bank.balance(rich) or 16)
    seller = dec.new_participant("freelancer")
    buyer = trade_sensing_service(dec, rich, seller, payment=3,
                          description="peer calibration readings")
    print(f"  {rich} bought 3 credits of peer sensing from 'freelancer' "
          f"(balance now {bank.balance(rich)})")
    desk = RedemptionDesk(bank=bank, rng=rng)
    voucher = desk.redeem(rich, 2)
    print(f"  {rich} redeemed 2 credits -> voucher {voucher.voucher_id.hex()[:12]}…")

    print("\n=== Afternoon: PPMSpbs micro-task market (unitary) ===")
    pbs = PPMSpbsSession(rng, rsa_bits=1024)
    agency = pbs.new_job_owner(funds=6)
    micro_workers = [pbs.new_participant() for _ in range(4)]
    pbs.run_job(agency, micro_workers, description="pothole photos")
    print(f"  4 micro-tasks paid 1 credit each; "
          f"bank saw {len(pbs.ma.bank.transaction_log)} (JO,SP) pairs — by design")

    print("\n=== Mix network: what the wire eavesdropper saw ===")
    mix = MixNetwork(transport=Transport(), rng=rng)
    for i, worker in enumerate(workers[:4]):
        mix.enqueue(f"circuit-{i}", "MA", "labor-registration",
                    {"blob": bytes(64)})  # uniform-size registrations
    mix.flush()
    obs = mix.observations[-1]
    print(f"  batch of {obs.batch_size}, sizes {set(obs.message_lengths)} "
          f"— uniform, shuffled, sender-unlinkable")

    print("\n=== Closing dashboard ===")
    total_worker = sum(bank.balance(f"worker-{i}") for i in range(len(workers)))
    print(f"  workers hold {total_worker} credits; "
          f"freelancer holds {bank.balance('freelancer')}; "
          f"{sum(v.amount for v in desk.issued)} redeemed")
    print()
    print(format_table(dec.counter, ["JO", "SP", "MA"],
                       title="PPMSdec day-total operation counts:"))
    print()
    print(format_traffic_table(dec.transport.meter, ["JO", "SP", "MA"],
                               title="PPMSdec day-total traffic:"))

    # conservation: all credits that entered accounts are accounted for
    opening = 64 * len(spec.jobs) + 32 * ("topup-org" in bank.accounts)
    closing = sum(bank.accounts.values())
    in_wallets = sum(o.spendable_balance() for o in owners) + buyer.spendable_balance()
    redeemed = sum(v.amount for v in desk.issued)
    assert opening == closing + in_wallets + redeemed, "money leak!"
    print(f"\n  conservation check: opening {opening} = accounts {closing} "
          f"+ wallets {in_wallets} + redeemed {redeemed} ✓")


if __name__ == "__main__":
    main()

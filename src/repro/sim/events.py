"""A minimal discrete-event engine.

The market simulations need events ordered by simulated time with
deterministic tie-breaking — nothing more.  :class:`EventQueue` is a
heap of ``(time, seq, action)`` triples; actions are zero-argument
callables that may schedule further events.

Determinism rules:

* ties in time break by insertion order (the monotone ``seq``),
* an action scheduled for a time earlier than the current clock is an
  error (no time travel — it would make runs irreproducible).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["EventQueue", "SimulationError"]


class SimulationError(Exception):
    """Scheduling inconsistency (e.g. an event in the past)."""


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)


class EventQueue:
    """Time-ordered event execution."""

    def __init__(self) -> None:
        self._heap: list[_Event] = []
        self._seq = 0
        self.now = 0.0
        self.executed = 0

    def schedule(self, at: float, action: Callable[[], None]) -> None:
        """Enqueue *action* for simulated time *at*.

        Same-time events run in insertion order (FIFO via the monotone
        ``seq``) — the contract that lets "immediate" policies schedule
        at exactly ``now + 0.0`` and stay deterministic.
        """
        if at < self.now:
            raise SimulationError(
                f"cannot schedule at {at:.4f}: clock already at {self.now:.4f}"
            )
        heapq.heappush(self._heap, _Event(time=at, seq=self._seq, action=action))
        self._seq += 1

    def schedule_in(self, delay: float, action: Callable[[], None]) -> None:
        """Enqueue relative to the current clock."""
        if delay < 0:
            raise SimulationError("negative delay")
        self.schedule(self.now + delay, action)

    @property
    def pending(self) -> int:
        return len(self._heap)

    def step(self) -> bool:
        """Run the next event; returns ``False`` when the queue is empty."""
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        self.now = event.time
        event.action()
        self.executed += 1
        return True

    def run(self, *, until: float | None = None, max_events: int = 1_000_000) -> None:
        """Drain the queue (optionally only up to simulated time *until*)."""
        while self._heap and self.executed < max_events:
            if until is not None and self._heap[0].time > until:
                return
            self.step()
        if self._heap and self.executed >= max_events:
            raise SimulationError(f"event budget exhausted ({max_events})")

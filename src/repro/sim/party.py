"""Party state machines for the campaign engine.

Every market resident — job owner, sensing participant, market
administrator, and their adversarial variants — is a :class:`Party`: a
dispatch-table state machine fed :class:`PartyEvent` objects by the
campaign's :class:`~repro.sim.events.EventQueue`.  The machine layer
is deliberately crypto-free: all protocol effects (account opening,
withdrawal, payment construction, deposits) go through a
:class:`PartyContext`, so the same parties run against the real
:class:`~repro.service.server.MarketService` in a campaign and against
:class:`RecordingContext`'s inert stubs in the hypothesis property
tests that fuzz event interleavings.

State-machine contract (what the property tests pin):

* ``crash`` moves any party to ``crashed``, from any state, always.
* Terminal states (``done``, ``aborted``, ``crashed``, ``silent``)
  absorb every further event.
* ``timeout`` mid-protocol aborts; before the lifecycle starts it is
  ignored.
* A malformed or mis-stated event is recorded as an anomaly, never an
  exception — Byzantine peers get to send garbage.
* Any other transition must be declared in the class's ``TRANSITIONS``
  table; an undeclared one raises :class:`IllegalTransition` (a bug in
  the party, not in the peer).

The PPMSdec parties drive the real actor classes from
:mod:`repro.core.ppms_dec` (so the campaign exercises the actual
Algorithm-1 crypto); the PPMSpbs parties likewise wrap
:mod:`repro.core.ppms_pbs`.  Adversaries compose :mod:`repro.attacks`:
the malicious MA runs the denomination attack over the deposit stream
it observed, ring parties spend the conflicting tokens minted by
:mod:`repro.attacks.rings`, replay SPs re-deposit spent tokens under
fresh request ids, omission SPs take the money and go silent.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.attacks.denomination import DenominationAttackResult, run_denomination_attack
from repro.attacks.rings import InsufficientFunds
from repro.core.ppms_dec import JobOwnerDec, SensingParticipantDec
from repro.core.ppms_pbs import JobOwnerPbs, SensingParticipantPbs

__all__ = [
    "PartyEvent",
    "IllegalTransition",
    "Party",
    "PartyContext",
    "RecordingContext",
    "JobOwnerParty",
    "SensingParty",
    "OmissionSP",
    "ReplaySP",
    "RingLeader",
    "RingMember",
    "MAParty",
    "MaliciousMAParty",
    "PbsJobOwnerParty",
    "PbsSensingParty",
    "TERMINAL_STATES",
]

TERMINAL_STATES = frozenset({"done", "aborted", "crashed", "silent"})


@dataclass(frozen=True)
class PartyEvent:
    """One message delivered to a party by the event queue."""

    kind: str
    payload: Any = None


class IllegalTransition(Exception):
    """A party attempted a state change its table does not declare."""


# ---------------------------------------------------------------------------
# context protocol
# ---------------------------------------------------------------------------

class PartyContext:
    """What a party may ask of the world.

    The campaign engine implements this against the real market stack;
    :class:`RecordingContext` implements it with value-conserving stubs
    for property tests.  Parties hold no other handle to the outside.
    """

    #: payment tree level of the PPMSdec substrate (value of a coin is
    #: ``2 ** tree_level``); stubs use a small constant
    tree_level: int = 3

    #: OpCounter-shaped tally (``record(party, op, count=1)``)
    counter: Any = None

    @property
    def coin_value(self) -> int:
        return 1 << self.tree_level

    def rng_for(self, name: str) -> random.Random:
        raise NotImplementedError

    def send(self, to: str, kind: str, payload: Any = None, *,
             delay: float = 0.0) -> None:
        """Schedule delivery of an event to party *to*."""
        raise NotImplementedError

    # -- PPMSdec effects ---------------------------------------------------
    def open_account(self, party: "Party", balance: int) -> None:
        raise NotImplementedError

    def new_dec_jo(self, party: "Party") -> Any:
        """A :class:`JobOwnerDec`-shaped actor for *party*."""
        raise NotImplementedError

    def new_dec_sp(self, party: "Party") -> Any:
        raise NotImplementedError

    def dec_withdraw(self, party: "Party", actor: Any) -> None:
        """One blind withdrawal through the service (synchronous)."""
        raise NotImplementedError

    def dec_build_payment(self, party: "Party", actor: Any,
                          sp_pubkey: Any, payment: int) -> Any:
        raise NotImplementedError

    def dec_open_payment(self, party: "Party", actor: Any,
                         ciphertext: Any, jo_pubkey: Any) -> Any:
        """Decrypt + verify; returns a PaymentBundle-shaped object."""
        raise NotImplementedError

    def dec_deposit_change(self, party: "Party", actor: Any) -> int:
        raise NotImplementedError

    def deposit_async(self, party: "Party", rid: str, token: Any) -> None:
        """Fire-and-forget deposit; verdict lands in the campaign log."""
        raise NotImplementedError

    def ring_withdraw_tokens(self, party: "Party", *, denomination: int,
                             count: int) -> list:
        """Withdraw one coin and mint *count* conflicting spends of it."""
        raise NotImplementedError

    # -- PPMSpbs effects ---------------------------------------------------
    def new_pbs_jo(self, party: "Party") -> Any:
        raise NotImplementedError

    def new_pbs_sp(self, party: "Party") -> Any:
        raise NotImplementedError

    def pbs_open_account(self, party: "Party", pubkey: Any,
                         balance: int) -> None:
        raise NotImplementedError

    def pbs_deposit(self, party: "Party", rid: str, receipt: Any) -> str:
        """Synchronous unitary deposit; returns the verdict status."""
        raise NotImplementedError


# ---------------------------------------------------------------------------
# base machine
# ---------------------------------------------------------------------------

class Party:
    """Dispatch-table state machine; subclasses declare the tables."""

    role = "party"
    START = "idle"
    #: state -> states reachable from it (terminal states are always
    #: reachable and need not be listed)
    TRANSITIONS: dict[str, tuple[str, ...]] = {}
    #: event kind -> handler method name
    HANDLERS: dict[str, str] = {}

    def __init__(self, name: str, ctx: PartyContext) -> None:
        self.name = name
        self.ctx = ctx
        self.rng = ctx.rng_for(name)
        self.state = self.START
        self.handled = 0
        self.anomalies: list[str] = []
        self.notes: list[str] = []

    # -- introspection -----------------------------------------------------
    @classmethod
    def legal_states(cls) -> frozenset[str]:
        states = {cls.START} | set(TERMINAL_STATES)
        for src, dsts in cls.TRANSITIONS.items():
            states.add(src)
            states.update(dsts)
        return frozenset(states)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def ledger(self) -> dict:
        """Per-party outcome record for the campaign report."""
        return {
            "role": self.role,
            "state": self.state,
            "handled": self.handled,
            "anomalies": len(self.anomalies),
        }

    # -- event dispatch ----------------------------------------------------
    def handle(self, event: PartyEvent) -> None:
        self.handled += 1
        if event.kind == "crash":
            self.state = "crashed"
            return
        if self.terminal:
            return  # terminal states absorb everything, including timeouts
        if event.kind == "timeout":
            self.on_timeout(event)
            return
        handler = self.HANDLERS.get(event.kind)
        if handler is None:
            self._anomaly(f"unhandled event {event.kind!r} in state {self.state!r}")
            return
        getattr(self, handler)(event)

    def on_timeout(self, event: PartyEvent) -> None:
        """Default timeout policy: mid-protocol silence aborts."""
        if self.state != self.START:
            self._abort(f"timeout in state {self.state!r}")

    # -- transition helpers ------------------------------------------------
    def _move(self, new_state: str) -> None:
        if new_state not in TERMINAL_STATES:
            allowed = self.TRANSITIONS.get(self.state, ())
            if new_state not in allowed:
                raise IllegalTransition(
                    f"{self.role} {self.name!r}: {self.state!r} -> {new_state!r} "
                    f"not declared (allowed: {sorted(allowed)})"
                )
        self.state = new_state

    def _abort(self, why: str) -> None:
        self.notes.append(why)
        self._move("aborted")

    def _anomaly(self, what: str) -> None:
        self.anomalies.append(what)

    def _in_state(self, *states: str) -> bool:
        if self.state in states:
            return True
        self._anomaly(f"event arrived in state {self.state!r}, wanted {states}")
        return False

    def _expect(self, event: PartyEvent, *keys: str) -> dict | None:
        """Payload shape guard; malformed input is an anomaly, not a crash."""
        payload = event.payload
        if not isinstance(payload, dict) or any(k not in payload for k in keys):
            self._anomaly(f"malformed {event.kind!r} payload: {payload!r}")
            return None
        return payload


# ---------------------------------------------------------------------------
# PPMSdec job owner
# ---------------------------------------------------------------------------

class JobOwnerParty(Party):
    """Algorithm-1 job owner: post, recruit, pay, settle change."""

    role = "jo"
    TRANSITIONS = {
        "idle": ("posted",),
        "posted": ("paying",),
        "paying": ("paying", "settling"),
        "settling": (),
    }
    HANDLERS = {
        "start": "on_start",
        "labor": "on_labor",
        "change-due": "on_change_due",
    }

    def __init__(self, name: str, ctx: PartyContext, *, job_id: str,
                 payment: int, sp_names: tuple[str, ...], funds: int,
                 ma_name: str | None = None) -> None:
        super().__init__(name, ctx)
        self.job_id = job_id
        self.payment = payment
        self.sp_names = tuple(sp_names)
        self.funds = funds
        self.ma_name = ma_name
        self.actor: Any = None
        self.job_pubkey: Any = None
        self.withdrawn = 0
        self.paid_value = 0
        self.paid_sps = 0
        self.change_value = 0

    def ledger(self) -> dict:
        return {
            **super().ledger(),
            "job": self.job_id,
            "funded": self.funds,
            "withdrawn_coins": self.withdrawn,
            "paid_value": self.paid_value,
            "paid_sps": self.paid_sps,
            "change_value": self.change_value,
        }

    def on_start(self, event: PartyEvent) -> None:
        if not self._in_state("idle"):
            return
        self.ctx.open_account(self, self.funds)
        self.actor = self.ctx.new_dec_jo(self)
        self.job_pubkey = self.actor.make_job_identity(self.ctx.counter)
        # one coin up front: build_payment requires a withdrawn wallet
        self.ctx.dec_withdraw(self, self.actor)
        self.withdrawn += 1
        if self.ma_name is not None:
            self.ctx.send(self.ma_name, "observe-job",
                          {"job": self.job_id, "payment": self.payment})
        for sp in self.sp_names:
            self.ctx.send(sp, "recruit", {
                "jo": self.name, "job": self.job_id,
                "payment": self.payment, "jo_pubkey": self.job_pubkey,
            })
        self._move("posted")

    def on_labor(self, event: PartyEvent) -> None:
        payload = self._expect(event, "sp", "sp_pubkey")
        if payload is None or not self._in_state("posted", "paying"):
            return
        if self.paid_sps >= len(self.sp_names):
            # a Byzantine peer re-sending labor must not drain the wallet
            self._anomaly(f"labor from {payload['sp']!r} after roster fully paid")
            return
        if self.state == "posted":
            self._move("paying")
        # withdraw on demand until the break plan fits (a fresh coin of
        # value 2^L always covers a payment <= 2^L, so this terminates)
        while True:
            try:
                ciphertext = self.ctx.dec_build_payment(
                    self, self.actor, payload["sp_pubkey"], self.payment
                )
                break
            except InsufficientFunds:
                self.ctx.dec_withdraw(self, self.actor)
                self.withdrawn += 1
        self.ctx.send(payload["sp"], "payment", {
            "jo": self.name, "ciphertext": ciphertext,
            "jo_pubkey": self.job_pubkey,
        })
        self.paid_value += self.payment
        self.paid_sps += 1
        if self.paid_sps == len(self.sp_names):
            self.ctx.send(self.name, "change-due")

    def on_change_due(self, event: PartyEvent) -> None:
        if not self._in_state("paying"):
            return
        self._move("settling")
        self.change_value = self.ctx.dec_deposit_change(self, self.actor)
        self._move("done")


# ---------------------------------------------------------------------------
# PPMSdec sensing participants (honest and faulty)
# ---------------------------------------------------------------------------

class SensingParty(Party):
    """Algorithm-1 SP: register labor, verify payment, deposit coins."""

    role = "sp"
    TRANSITIONS = {
        "idle": ("registered",),
        "registered": ("depositing",),
        "depositing": ("depositing",),
    }
    HANDLERS = {
        "recruit": "on_recruit",
        "payment": "on_payment",
        "deposit-due": "on_deposit_due",
    }

    def __init__(self, name: str, ctx: PartyContext, *,
                 policy: Any = None, fault_plan: Any = None,
                 ma_name: str | None = None) -> None:
        super().__init__(name, ctx)
        self.policy = policy
        self.fault_plan = fault_plan
        self.ma_name = ma_name
        self.actor: Any = None
        self.job_id: str | None = None
        self.expected_payment = 0
        self.received_value = 0
        self.deposited_rids: list[str] = []
        self.dropped_deposits = 0
        self.duplicate_deposits = 0
        self._tokens: list = []
        self._due = 0

    def ledger(self) -> dict:
        return {
            **super().ledger(),
            "job": self.job_id,
            "expected_payment": self.expected_payment,
            "received_value": self.received_value,
            "deposits": len(self.deposited_rids),
            "dropped": self.dropped_deposits,
            "duplicates": self.duplicate_deposits,
        }

    def on_recruit(self, event: PartyEvent) -> None:
        payload = self._expect(event, "jo", "job", "payment", "jo_pubkey")
        if payload is None or not self._in_state("idle"):
            return
        self.job_id = payload["job"]
        self.expected_payment = payload["payment"]
        self.ctx.open_account(self, 0)
        self.actor = self.ctx.new_dec_sp(self)
        sp_pubkey = self.actor.make_labor_identity(self.ctx.counter)
        self.ctx.send(payload["jo"], "labor",
                      {"sp": self.name, "sp_pubkey": sp_pubkey})
        self._move("registered")

    def on_payment(self, event: PartyEvent) -> None:
        payload = self._expect(event, "ciphertext", "jo_pubkey")
        if payload is None or not self._in_state("registered"):
            return
        bundle = self.ctx.dec_open_payment(
            self, self.actor, payload["ciphertext"], payload["jo_pubkey"]
        )
        value = bundle.total_value(self.ctx.tree_level)
        if not bundle.signature_valid:
            self._abort("payment signature invalid")
            return
        if value != self.expected_payment:
            self._abort(
                f"payment value {value} != advertised {self.expected_payment}"
            )
            return
        self.received_value = value
        self._accept_payment(list(bundle.tokens))

    def _accept_payment(self, tokens: list) -> None:
        self._tokens = tokens
        self._schedule_deposits(tokens)
        self._move("depositing")
        if self._due == 0:  # everything dropped: lifecycle still ends
            self._move("done")

    def _schedule_deposits(self, tokens: list) -> None:
        """Coins one-by-one after policy waits; faults may drop/duplicate."""
        if self.fault_plan is not None:
            deliveries, dropped = self.fault_plan.perturb(len(tokens))
            schedule = [(d.original, d.duplicate) for d in deliveries]
            self.dropped_deposits = len(dropped)
        else:
            schedule = [(i, False) for i in range(len(tokens))]
        t = self._wait(initial=True)
        for original, duplicate in schedule:
            if duplicate:
                self.duplicate_deposits += 1
            self._due += 1
            self.ctx.send(self.name, "deposit-due",
                          {"rid": f"{self.name}:dep:{original}",
                           "token_index": original},
                          delay=t)
            t += self._wait(initial=False)

    def _wait(self, *, initial: bool) -> float:
        if self.policy is None:
            return 0.0
        if initial:
            return self.policy.initial_wait(self.rng)
        return self.policy.between_wait(self.rng)

    def on_deposit_due(self, event: PartyEvent) -> None:
        payload = self._expect(event, "rid", "token_index")
        if payload is None or not self._in_state("depositing"):
            return
        index = payload["token_index"]
        if not isinstance(index, int) or not 0 <= index < len(self._tokens):
            self._anomaly(f"deposit-due for unknown token {index!r}")
            return
        self.ctx.deposit_async(self, payload["rid"], self._tokens[index])
        self.deposited_rids.append(payload["rid"])
        self._due -= 1
        if self._due == 0:
            self._move("done")


class OmissionSP(SensingParty):
    """Takes the payment, never deposits: silent mid-protocol.

    The coins' value stays outstanding float — the conservation check
    must account for it rather than flag it.
    """

    role = "sp-omission"

    def _accept_payment(self, tokens: list) -> None:
        self._tokens = tokens
        self.notes.append(f"went silent holding {self.received_value} in coins")
        self._move("silent")


class ReplaySP(SensingParty):
    """Deposits honestly, then replays every token under a fresh rid.

    The replays are frauds (double deposits of already-spent nodes);
    the service must reject each one with double-spend evidence.  The
    campaign asserts the rejection rate.
    """

    role = "sp-replay"
    HANDLERS = {**SensingParty.HANDLERS, "replay-due": "on_replay_due"}

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.replay_rids: list[str] = []

    def ledger(self) -> dict:
        return {**super().ledger(), "replays": len(self.replay_rids)}

    def _schedule_deposits(self, tokens: list) -> None:
        super()._schedule_deposits(tokens)
        # fresh rids strictly after the honest stream: the originals
        # land first, so every replay is a detectable double deposit
        t = self._wait(initial=True) + float(len(tokens) + 1)
        for i in range(len(tokens)):
            self._due += 1
            self.ctx.send(self.name, "replay-due",
                          {"rid": f"{self.name}:replay:{i}", "token_index": i},
                          delay=t)
            t += self._wait(initial=False)

    def on_replay_due(self, event: PartyEvent) -> None:
        payload = self._expect(event, "rid", "token_index")
        if payload is None or not self._in_state("depositing"):
            return
        index = payload["token_index"]
        if not isinstance(index, int) or not 0 <= index < len(self._tokens):
            self._anomaly(f"replay-due for unknown token {index!r}")
            return
        self.ctx.deposit_async(self, payload["rid"], self._tokens[index])
        self.replay_rids.append(payload["rid"])
        self._due -= 1
        if self._due == 0:
            self._move("done")


# ---------------------------------------------------------------------------
# double-spend ring
# ---------------------------------------------------------------------------

class RingLeader(Party):
    """Withdraws one coin, fences conflicting spends to the ring.

    Every fenced token covers the same wallet node; at most one deposit
    can be admitted, and each rejection's evidence names the account
    that won — the identity revelation the paper promises.
    """

    role = "ring-leader"
    TRANSITIONS = {
        "idle": ("fencing",),
        "fencing": (),
    }
    HANDLERS = {"start": "on_start", "deposit-due": "on_deposit_due"}

    def __init__(self, name: str, ctx: PartyContext, *,
                 members: tuple[str, ...], denomination: int = 1) -> None:
        super().__init__(name, ctx)
        self.members = tuple(members)
        self.denomination = denomination
        self.fenced = 0
        self.deposit_rid = f"{name}:fence"

    def ledger(self) -> dict:
        return {**super().ledger(), "ring_size": 1 + len(self.members),
                "denomination": self.denomination, "fenced": self.fenced}

    def on_start(self, event: PartyEvent) -> None:
        if not self._in_state("idle"):
            return
        self.ctx.open_account(self, self.ctx.coin_value)
        tokens = self.ctx.ring_withdraw_tokens(
            self, denomination=self.denomination, count=1 + len(self.members)
        )
        for offset, member in enumerate(self.members):
            self.ctx.send(member, "fence", {"token": tokens[1 + offset]},
                          delay=0.25 * (offset + 1))
            self.fenced += 1
        self._move("fencing")
        # the leader deposits its own conflicting token first
        self.ctx.send(self.name, "deposit-due", {"token": tokens[0]})

    def on_deposit_due(self, event: PartyEvent) -> None:
        payload = self._expect(event, "token")
        if payload is None or not self._in_state("fencing"):
            return
        self.ctx.deposit_async(self, self.deposit_rid, payload["token"])
        self._move("done")


class RingMember(Party):
    """Accomplice account depositing one fenced conflicting token."""

    role = "ring-member"
    TRANSITIONS = {
        "idle": ("armed",),
        "armed": (),
    }
    HANDLERS = {"start": "on_start", "fence": "on_fence"}

    def __init__(self, name: str, ctx: PartyContext) -> None:
        super().__init__(name, ctx)
        self.deposit_rid = f"{name}:fence"

    def on_start(self, event: PartyEvent) -> None:
        if not self._in_state("idle"):
            return
        self.ctx.open_account(self, 0)
        self._move("armed")

    def on_fence(self, event: PartyEvent) -> None:
        payload = self._expect(event, "token")
        if payload is None or not self._in_state("armed"):
            return
        self.ctx.deposit_async(self, self.deposit_rid, payload["token"])
        self._move("done")


# ---------------------------------------------------------------------------
# market administrator (honest and malicious)
# ---------------------------------------------------------------------------

class MAParty(Party):
    """The MA's observer half: bulletin board + deposit stream.

    The honest MA records what it cannot avoid seeing and concludes
    nothing.  The deposit stream is fed by the campaign after the run
    (in admission order), not by the parties — the MA sees what the
    bank saw, no more.
    """

    role = "ma"
    TRANSITIONS = {
        "idle": ("observing",),
        "observing": ("observing", "concluded"),
    }
    HANDLERS = {
        "start": "on_start",
        "observe-job": "on_observe_job",
        "observe-deposit": "on_observe_deposit",
        "conclude": "on_conclude",
    }

    def __init__(self, name: str, ctx: PartyContext) -> None:
        super().__init__(name, ctx)
        self.job_payments: dict[str, int] = {}
        self.deposits_by_account: dict[str, list[int]] = {}
        self.results: dict[str, DenominationAttackResult] = {}

    def ledger(self) -> dict:
        return {
            **super().ledger(),
            "jobs_observed": len(self.job_payments),
            "accounts_observed": len(self.deposits_by_account),
            "attacked": len(self.results),
        }

    def on_start(self, event: PartyEvent) -> None:
        if self._in_state("idle"):
            self._move("observing")

    def on_observe_job(self, event: PartyEvent) -> None:
        payload = self._expect(event, "job", "payment")
        if payload is None or not self._in_state("observing"):
            return
        payment = payload["payment"]
        if not isinstance(payment, int) or payment <= 0:
            self._anomaly(f"non-positive job payment {payment!r}")
            return
        self.job_payments[payload["job"]] = payment

    def on_observe_deposit(self, event: PartyEvent) -> None:
        payload = self._expect(event, "aid", "amount")
        if payload is None or not self._in_state("observing"):
            return
        amount = payload["amount"]
        if not isinstance(amount, int) or amount <= 0:
            self._anomaly(f"non-positive deposit amount {amount!r}")
            return
        self.deposits_by_account.setdefault(payload["aid"], []).append(amount)

    def on_conclude(self, event: PartyEvent) -> None:
        payload = self._expect(event, "truth")
        if payload is None or not self._in_state("observing"):
            return
        if not isinstance(payload["truth"], dict):
            self._anomaly(f"malformed ground truth {payload['truth']!r}")
            return
        self.conclude(payload["truth"])
        self._move("concluded")
        self._move("done")

    def conclude(self, truth: dict[str, str]) -> None:
        """Honest MA: observe, never infer."""


class MaliciousMAParty(MAParty):
    """MA running the denomination attack over its observations.

    *truth* maps SP account ids to their true job; only accounts with a
    ground-truth link (honest dec SPs) are scored — ring/replay
    accounts have no job to be linked to.
    """

    role = "ma-malicious"

    def conclude(self, truth: dict[str, str]) -> None:
        if not self.job_payments:
            return
        for aid in sorted(self.deposits_by_account):
            true_job = truth.get(aid)
            if true_job is None or true_job not in self.job_payments:
                continue
            self.results[aid] = run_denomination_attack(
                self.job_payments, true_job, self.deposits_by_account[aid]
            )


# ---------------------------------------------------------------------------
# PPMSpbs parties
# ---------------------------------------------------------------------------

class PbsJobOwnerParty(Party):
    """Algorithm-4 job owner: unitary coins via partially blind RSA."""

    role = "pbs-jo"
    TRANSITIONS = {
        "idle": ("posted",),
        "posted": ("posted",),
    }
    HANDLERS = {
        "start": "on_start",
        "pbs-labor": "on_pbs_labor",
        "pbs-blinded": "on_pbs_blinded",
    }

    def __init__(self, name: str, ctx: PartyContext, *, job_id: str,
                 sp_names: tuple[str, ...], funds: int,
                 ma_name: str | None = None) -> None:
        super().__init__(name, ctx)
        self.job_id = job_id
        self.sp_names = tuple(sp_names)
        self.funds = funds
        self.ma_name = ma_name
        self.actor: Any = None
        self.job_pubkey: Any = None
        self.signed = 0

    def ledger(self) -> dict:
        return {**super().ledger(), "job": self.job_id, "funded": self.funds,
                "signed_coins": self.signed}

    def on_start(self, event: PartyEvent) -> None:
        if not self._in_state("idle"):
            return
        self.actor = self.ctx.new_pbs_jo(self)
        self.ctx.pbs_open_account(self, self.actor.account_pub, self.funds)
        self.job_pubkey = self.actor.make_job_identity(self.ctx.counter)
        if self.ma_name is not None:
            self.ctx.send(self.ma_name, "observe-job",
                          {"job": self.job_id, "payment": 1})
        for sp in self.sp_names:
            self.ctx.send(sp, "pbs-recruit",
                          {"jo": self.name, "job": self.job_id,
                           "jo_pubkey": self.job_pubkey})
        self._move("posted")

    def on_pbs_labor(self, event: PartyEvent) -> None:
        payload = self._expect(event, "sp", "ciphertext")
        if payload is None or not self._in_state("posted"):
            return
        try:
            answer = self.actor.answer_labor_registration(
                payload["ciphertext"], self.ctx.counter
            )
        except (ValueError, TypeError, KeyError):
            self._anomaly(f"undecryptable labor request from {payload['sp']!r}")
            return
        self.ctx.send(payload["sp"], "pbs-labor-answer",
                      {"jo": self.name, "ciphertext": answer})

    def on_pbs_blinded(self, event: PartyEvent) -> None:
        payload = self._expect(event, "sp", "blinded", "serial")
        if payload is None or not self._in_state("posted"):
            return
        blind_sig, ctr = self.actor.sign_payment(
            payload["blinded"], payload["serial"], self.ctx.counter
        )
        self.signed += 1
        self.ctx.send(payload["sp"], "pbs-payment",
                      {"jo": self.name, "pbs": blind_sig, "ctr": ctr})
        if self.signed == len(self.sp_names):
            self._move("done")


class PbsSensingParty(Party):
    """Algorithm-4 SP: blind the real key, unblind the coin, deposit."""

    role = "pbs-sp"
    TRANSITIONS = {
        "idle": ("requested",),
        "requested": ("verified",),
        "verified": ("depositing",),
        "depositing": (),
    }
    HANDLERS = {
        "pbs-recruit": "on_pbs_recruit",
        "pbs-labor-answer": "on_pbs_labor_answer",
        "pbs-payment": "on_pbs_payment",
        "deposit-due": "on_deposit_due",
    }

    def __init__(self, name: str, ctx: PartyContext, *,
                 policy: Any = None) -> None:
        super().__init__(name, ctx)
        self.policy = policy
        self.actor: Any = None
        self.job_id: str | None = None
        self.jo_name: str | None = None
        self.jo_pubkey: Any = None
        self.receipt: Any = None
        self.deposit_rid = f"{name}:pbs"
        self.deposit_status: str | None = None

    def ledger(self) -> dict:
        return {**super().ledger(), "job": self.job_id,
                "deposit_status": self.deposit_status}

    def on_pbs_recruit(self, event: PartyEvent) -> None:
        payload = self._expect(event, "jo", "job", "jo_pubkey")
        if payload is None or not self._in_state("idle"):
            return
        self.job_id = payload["job"]
        self.jo_name = payload["jo"]
        self.jo_pubkey = payload["jo_pubkey"]
        self.actor = self.ctx.new_pbs_sp(self)
        self.ctx.pbs_open_account(self, self.actor.account_pub, 0)
        ciphertext = self.actor.make_labor_request(self.jo_pubkey, self.ctx.counter)
        self.ctx.send(self.jo_name, "pbs-labor",
                      {"sp": self.name, "ciphertext": ciphertext})
        self._move("requested")

    def on_pbs_labor_answer(self, event: PartyEvent) -> None:
        payload = self._expect(event, "ciphertext")
        if payload is None or not self._in_state("requested"):
            return
        try:
            ok = self.actor.open_labor_answer(
                payload["ciphertext"], self.jo_pubkey, self.ctx.counter
            )
        except (ValueError, TypeError, KeyError):
            ok = False
        if not ok:
            self._abort("JO signature failed on labor answer (Section V step 3)")
            return
        blinded = self.actor.make_blinded_payment_request(self.ctx.counter)
        self.ctx.send(self.jo_name, "pbs-blinded",
                      {"sp": self.name, "blinded": blinded,
                       "serial": self.actor.serial})
        self._move("verified")

    def on_pbs_payment(self, event: PartyEvent) -> None:
        payload = self._expect(event, "pbs", "ctr")
        if payload is None or not self._in_state("verified"):
            return
        try:
            self.receipt = self.actor.finalize_coin(
                payload["pbs"], payload["ctr"], self.ctx.counter
            )
        except (ValueError, TypeError):
            self._abort("coin failed verification at unblinding")
            return
        delay = self.policy.initial_wait(self.rng) if self.policy else 0.0
        self.ctx.send(self.name, "deposit-due", {"rid": self.deposit_rid},
                      delay=delay)
        self._move("depositing")

    def on_deposit_due(self, event: PartyEvent) -> None:
        payload = self._expect(event, "rid")
        if payload is None or not self._in_state("depositing"):
            return
        self.deposit_status = self.ctx.pbs_deposit(
            self, payload["rid"], self.receipt
        )
        self._move("done")


# ---------------------------------------------------------------------------
# recording context + value-conserving stubs (for property tests)
# ---------------------------------------------------------------------------

class _StubBundle:
    """PaymentBundle shape over plain integers (denominations)."""

    def __init__(self, tokens: list[int], signature_valid: bool = True) -> None:
        self.tokens = tokens
        self.fake_count = 0
        self.signature_valid = signature_valid

    def total_value(self, tree_level: int) -> int:
        return sum(self.tokens)


class _StubDecJo:
    """Value-conserving JobOwnerDec stand-in: integers instead of coins."""

    def __init__(self, ctx: "RecordingContext") -> None:
        self._ctx = ctx
        self.pool = 0  # unallocated coin value

    def make_job_identity(self, counter: Any) -> str:
        return "stub-jo-pubkey"

    def build_payment(self, sp_pubkey: Any, payment: int, counter: Any):
        if self.pool < payment:
            raise InsufficientFunds(f"pool {self.pool} < payment {payment}")
        self.pool -= payment
        return ("stub-payment", payment)


class _StubDecSp:
    def make_labor_identity(self, counter: Any) -> str:
        return "stub-sp-pubkey"


class _StubPbsActor:
    account_pub = "stub-account-key"
    serial = b"stub-serial"

    def make_job_identity(self, counter: Any) -> str:
        return "stub-pbs-jo-pubkey"

    def answer_labor_registration(self, ciphertext: Any, counter: Any) -> str:
        return "stub-answer"

    def sign_payment(self, blinded: Any, serial: Any, counter: Any):
        return ("stub-sig", 0)

    def make_labor_request(self, jo_pubkey: Any, counter: Any) -> str:
        return "stub-request"

    def open_labor_answer(self, ciphertext: Any, jo_pubkey: Any,
                          counter: Any) -> bool:
        return True

    def make_blinded_payment_request(self, counter: Any) -> int:
        return 0

    def finalize_coin(self, blinded_sig: Any, counter_value: Any,
                      op_counter: Any) -> str:
        return "stub-receipt"


class _NullCounter:
    def record(self, party: str, op: str, count: int = 1) -> None:
        pass


class RecordingContext(PartyContext):
    """Inert context: records every effect, conserves integer value.

    Used by the hypothesis property tests: parties run their full
    handler logic (including the withdraw-on-demand loop and deposit
    scheduling) against integer-valued stubs, so state legality and
    value conservation are checkable without any cryptography.
    """

    tree_level = 3

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.counter = _NullCounter()
        self.sent: list[tuple[str, str, Any, float]] = []
        self.accounts: dict[str, int] = {}
        self.deposits: list[tuple[str, str, Any]] = []
        self.pbs_deposits: list[tuple[str, str, Any]] = []
        self.withdrawals: list[str] = []
        self._rngs: dict[str, random.Random] = {}

    def rng_for(self, name: str) -> random.Random:
        if name not in self._rngs:
            self._rngs[name] = random.Random(f"{self.seed}:{name}")
        return self._rngs[name]

    def send(self, to: str, kind: str, payload: Any = None, *,
             delay: float = 0.0) -> None:
        self.sent.append((to, kind, payload, delay))

    def open_account(self, party: Party, balance: int) -> None:
        self.accounts[party.name] = balance

    def new_dec_jo(self, party: Party) -> _StubDecJo:
        return _StubDecJo(self)

    def new_dec_sp(self, party: Party) -> _StubDecSp:
        return _StubDecSp()

    def dec_withdraw(self, party: Party, actor: _StubDecJo) -> None:
        value = self.coin_value
        if self.accounts.get(party.name, 0) < value:
            raise RuntimeError(f"{party.name} cannot cover a withdrawal")
        self.accounts[party.name] -= value
        actor.pool += value
        self.withdrawals.append(party.name)

    def dec_build_payment(self, party: Party, actor: _StubDecJo,
                          sp_pubkey: Any, payment: int) -> Any:
        return actor.build_payment(sp_pubkey, payment, self.counter)

    def dec_open_payment(self, party: Party, actor: Any,
                         ciphertext: Any, jo_pubkey: Any) -> _StubBundle:
        if (isinstance(ciphertext, tuple) and len(ciphertext) == 2
                and ciphertext[0] == "stub-payment"):
            # unitary integer tokens, so deposits conserve exactly
            return _StubBundle([1] * ciphertext[1])
        return _StubBundle([], signature_valid=False)

    def dec_deposit_change(self, party: Party, actor: _StubDecJo) -> int:
        change = actor.pool
        actor.pool = 0
        self.accounts[party.name] = self.accounts.get(party.name, 0) + change
        return change

    def deposit_async(self, party: Party, rid: str, token: Any) -> None:
        self.deposits.append((party.name, rid, token))
        if isinstance(token, int):
            self.accounts[party.name] = self.accounts.get(party.name, 0) + token

    def ring_withdraw_tokens(self, party: Party, *, denomination: int,
                             count: int) -> list:
        self.accounts[party.name] = self.accounts.get(party.name, 0) - self.coin_value
        self.withdrawals.append(party.name)
        return [("ring-token", i, denomination) for i in range(count)]

    def new_pbs_jo(self, party: Party) -> _StubPbsActor:
        return _StubPbsActor()

    def new_pbs_sp(self, party: Party) -> _StubPbsActor:
        return _StubPbsActor()

    def pbs_open_account(self, party: Party, pubkey: Any, balance: int) -> None:
        self.accounts[party.name] = balance

    def pbs_deposit(self, party: Party, rid: str, receipt: Any) -> str:
        self.pbs_deposits.append((party.name, rid, receipt))
        return "OK"

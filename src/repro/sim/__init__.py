"""Discrete-event market simulation (events engine + PPMSdec driver)."""

from repro.sim.events import EventQueue, SimulationError
from repro.sim.market_sim import (
    DepositPolicy,
    MarketSimulation,
    SimulationTrace,
    run_timing_attack,
)

__all__ = [
    "EventQueue",
    "SimulationError",
    "DepositPolicy",
    "MarketSimulation",
    "SimulationTrace",
    "run_timing_attack",
]

"""Discrete-event market simulation: events engine, party state
machines, and the seeded campaign engine over the live service."""

from repro.sim.campaign import (
    CAMPAIGNS,
    Campaign,
    CampaignConfig,
    denomination_campaign,
    double_spend_campaign,
    honest_campaign,
    mixed_campaign,
    run_campaign,
)
from repro.sim.events import EventQueue, SimulationError
from repro.sim.market_sim import (
    DepositPolicy,
    MarketSimulation,
    SimulationTrace,
    run_timing_attack,
)
from repro.sim.party import (
    IllegalTransition,
    JobOwnerParty,
    MaliciousMAParty,
    MAParty,
    OmissionSP,
    Party,
    PartyContext,
    PartyEvent,
    PbsJobOwnerParty,
    PbsSensingParty,
    RecordingContext,
    ReplaySP,
    RingLeader,
    RingMember,
    SensingParty,
    TERMINAL_STATES,
)
from repro.sim.report import CampaignReport, canonical_json

__all__ = [
    "EventQueue",
    "SimulationError",
    "DepositPolicy",
    "MarketSimulation",
    "SimulationTrace",
    "run_timing_attack",
    # party machines
    "Party",
    "PartyContext",
    "PartyEvent",
    "IllegalTransition",
    "RecordingContext",
    "TERMINAL_STATES",
    "JobOwnerParty",
    "SensingParty",
    "OmissionSP",
    "ReplaySP",
    "RingLeader",
    "RingMember",
    "MAParty",
    "MaliciousMAParty",
    "PbsJobOwnerParty",
    "PbsSensingParty",
    # campaigns
    "Campaign",
    "CampaignConfig",
    "CampaignReport",
    "canonical_json",
    "run_campaign",
    "honest_campaign",
    "denomination_campaign",
    "double_spend_campaign",
    "mixed_campaign",
    "CAMPAIGNS",
]

"""Seeded, replayable market-economy campaigns against the live service.

A campaign is thousands of :mod:`repro.sim.party` state machines —
job owners, sensing participants, double-spend rings, a (possibly
malicious) market administrator — running full PPMSdec and PPMSpbs
lifecycles over the :class:`~repro.sim.events.EventQueue`, with every
protocol effect executed against the **real**
:class:`~repro.service.server.MarketService` (in process by default,
or through :class:`~repro.service.frontend.ServiceFrontend` sockets,
or against a :class:`~repro.cluster.node.LocalCluster`).

Everything is derived from one seed: party RNGs, arrival times,
network latency, deposit waits, fault schedules, RSA keys, ZK
randomness.  Two runs of the same :class:`CampaignConfig` therefore
produce byte-identical :class:`~repro.sim.report.CampaignReport` JSON
— the report embeds the seed and the replay command, so any failing
campaign is a one-command reproduction.

Adversaries compose :mod:`repro.attacks`:

* a malicious MA runs the denomination attack
  (:func:`~repro.attacks.denomination.run_denomination_attack`) over
  the deposit stream the bank admitted, sweeping the configured
  coin-break algorithm (unitary / PCBA / EPCBA);
* double-spend rings fence conflicting spends of one wallet node
  (:mod:`repro.attacks.rings`) to accomplice accounts — the campaign
  asserts at most one admission per ring and that every rejection's
  evidence names the account that deposited first;
* replay SPs re-deposit spent tokens under fresh request ids;
* omission SPs take payment and go silent (outstanding float the
  conservation ledger must absorb, not flag);
* drop/duplicate/reorder faults from :mod:`repro.testing.faults`
  perturb honest deposit streams.

After the run the engine feeds the admitted deposit stream to the MA,
computes detection metrics and economy-wide value conservation, and
sweeps the substrate with the recovery / cluster invariant checkers.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import asdict, dataclass, field, replace
from typing import Any

from repro.attacks.rings import (
    begin_ring_withdrawal,
    conflicting_spends,
    evidence_prior_account,
    finish_ring_withdrawal,
)
from repro.core.pbs_ledger import audit_pbs_bank
from repro.core.ppms_dec import JobOwnerDec, SensingParticipantDec
from repro.core.ppms_pbs import JobOwnerPbs, SensingParticipantPbs, VirtualBankPbs
from repro.service.batcher import VerificationBatcher
from repro.service.frontend import ServiceClient, ServiceFrontend
from repro.service.journal import Journal
from repro.service.server import MarketService
from repro.service.shard import ShardedBank
from repro.sim.events import EventQueue
from repro.sim.market_sim import DepositPolicy
from repro.sim.party import (
    JobOwnerParty,
    MaliciousMAParty,
    MAParty,
    OmissionSP,
    Party,
    PartyContext,
    PartyEvent,
    PbsJobOwnerParty,
    PbsSensingParty,
    ReplaySP,
    RingLeader,
    RingMember,
    SensingParty,
)
from repro.sim.report import CampaignReport
from repro.testing.faults import FaultPlan
from repro.testing.invariants import check_recovery_invariants
from repro.testing.scenario import PbsDepositService, Transport, toy_market_params

__all__ = [
    "CampaignConfig",
    "Campaign",
    "run_campaign",
    "honest_campaign",
    "denomination_campaign",
    "double_spend_campaign",
    "mixed_campaign",
    "CAMPAIGNS",
]


# ---------------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CampaignConfig:
    """Everything a campaign run depends on, in one replayable value."""

    name: str = "campaign"
    seed: int = 0
    #: ``inprocess`` | ``socket`` | ``cluster``
    backend: str = "inprocess"
    # -- economy shape -----------------------------------------------------
    n_dec_jobs: int = 4
    n_pbs_jobs: int = 2
    min_sps: int = 1
    max_sps: int = 3
    #: advertised payments are drawn from these (all must be <= 2^L)
    payment_choices: tuple[int, ...] = (1, 2, 3, 5, 7)
    #: coin-break algorithm every JO uses (the denomination attack's
    #: sweep axis): ``unitary`` | ``pcba`` | ``epcba``
    break_algorithm: str = "epcba"
    deposit_wait_mean: float = 0.0
    delivery_latency_mean: float = 0.05
    arrival_gap: float = 1.0
    # -- adversaries -------------------------------------------------------
    double_spend_rings: int = 0
    ring_size: int = 3
    replay_sps: int = 0
    omission_sps: int = 0
    malicious_ma: bool = False
    # -- fault plumbing (applied to honest dec SP deposit streams) ---------
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    max_slip: int = 3
    # -- substrate ---------------------------------------------------------
    # hybrid RSA encryption needs >= 320-bit moduli; 512 is the floor
    # that keeps pseudonym keygen cheap at toy security
    rsa_bits: int = 512
    n_shards: int = 3
    n_nodes: int = 2
    max_batch: int = 4
    max_events: int = 2_000_000

    def __post_init__(self) -> None:
        if self.backend not in ("inprocess", "socket", "cluster"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.ring_size < 2:
            raise ValueError("a double-spend ring needs at least two accounts")
        if self.min_sps < 1 or self.max_sps < self.min_sps:
            raise ValueError("need 1 <= min_sps <= max_sps")

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CampaignConfig":
        data = dict(data)
        if "payment_choices" in data:
            data["payment_choices"] = tuple(data["payment_choices"])
        return cls(**data)

    def scaled(self, factor: int) -> "CampaignConfig":
        """The same economy, *factor* times as many parties."""
        if factor <= 1:
            return self
        return replace(
            self,
            n_dec_jobs=self.n_dec_jobs * factor,
            n_pbs_jobs=self.n_pbs_jobs * factor,
            double_spend_rings=self.double_spend_rings * factor,
            replay_sps=self.replay_sps * factor,
            omission_sps=self.omission_sps * factor,
        )


class SimOpCounter:
    """OpCounter-shaped tally the actor layer records crypto ops into."""

    def __init__(self) -> None:
        self.tallies: dict[str, dict[str, int]] = {}

    def record(self, party: str, op: str, count: int = 1) -> None:
        ops = self.tallies.setdefault(str(party), {})
        ops[op] = ops.get(op, 0) + count

    def as_dict(self) -> dict[str, dict[str, int]]:
        return {
            party: {op: n for op, n in sorted(ops.items())}
            for party, ops in sorted(self.tallies.items())
        }


# ---------------------------------------------------------------------------
# service gateways: one market, three transports
# ---------------------------------------------------------------------------

class _Gateway:
    """Uniform face over the three ways a campaign reaches the market.

    ``call`` is synchronous (open-account, withdraw, change deposits,
    balance queries); ``deposit`` is the fire-and-forget path whose
    verdicts are resolved after the queue drains.  Duplicate request
    ids (fault-injected re-sends) resolve to one verdict — the
    exactly-once layer is part of what the campaign exercises.
    """

    backend = "?"

    def __init__(self) -> None:
        self.verdicts: dict[str, int] = {}
        self._deposit_order: list[tuple[str, str]] = []  # (party, rid)

    # -- per-backend primitives -------------------------------------------
    def call(self, sender: str, kind: str, payload: Any, *, rid: str,
             tally: bool = True) -> tuple[str, dict]:
        raise NotImplementedError

    def deposit(self, sender: str, rid: str, payload: Any) -> None:
        raise NotImplementedError

    def _verdict_of(self, rid: str) -> tuple[str, dict]:
        raise NotImplementedError

    def drain(self) -> None:
        pass

    def sweep(self) -> list[str]:
        raise NotImplementedError

    def close(self) -> None:
        pass

    # -- shared bookkeeping ------------------------------------------------
    def _tally(self, status: str) -> None:
        self.verdicts[status] = self.verdicts.get(status, 0) + 1

    def resolve_deposits(self) -> list[dict[str, Any]]:
        """Deposit verdicts in submission order, deduped by rid."""
        resolved: list[dict[str, Any]] = []
        seen: set[str] = set()
        for party, rid in self._deposit_order:
            if rid in seen:
                continue
            seen.add(rid)
            status, body = self._verdict_of(rid)
            self._tally(status)
            resolved.append(
                {"party": party, "rid": rid, "status": status, "body": body}
            )
        return resolved

    def balance_of(self, aid: str) -> int:
        status, body = self.call(
            aid, "balance", {"aid": aid}, rid=f"{aid}:bal", tally=False
        )
        if status != "OK":
            raise RuntimeError(f"balance query for {aid!r} failed: {body}")
        return body["balance"]


class InProcessGateway(_Gateway):
    """The service object in the same interpreter, stepped by hand."""

    backend = "inprocess"

    def __init__(self, params, keypair, *, n_shards: int, max_batch: int) -> None:
        super().__init__()
        self.journal = Journal()
        bank = ShardedBank(params, keypair, random.Random(11), n_shards=n_shards)
        batcher = VerificationBatcher(params, keypair, max_batch=max_batch, seed=7)
        self.service = MarketService(
            bank,
            batcher=batcher,
            rng=random.Random(3),
            clock=lambda: 0.0,  # wall-clock-free: latency stats stay constant
            journal=self.journal,
        )
        self._captured: dict[int, tuple[str, dict]] = {}
        self.service.transport.add_observer(self._observe)

    def _observe(self, envelope) -> None:
        if envelope.kind != "reply" or envelope.sender != self.service.name:
            return
        body = dict(envelope.payload)
        seq = body.pop("req", None)
        status = body.pop("status", None)
        if seq is not None:
            self._captured[seq] = (status, body)

    def call(self, sender, kind, payload, *, rid, tally=True):
        seq = self.service.submit(sender, kind, payload, now=0.0, rid=rid)
        guard = 0
        while seq not in self._captured:
            self.service.step(force=True)
            guard += 1
            if guard > 10_000:  # pragma: no cover - service wedged
                raise RuntimeError(f"request {rid!r} never answered")
        status, body = self._captured[seq]
        if tally:
            self._tally(status)
        return status, body

    def deposit(self, sender, rid, payload):
        self._deposit_order.append((sender, rid))
        self.service.submit(sender, "deposit", payload, now=0.0, rid=rid)
        self.service.step()  # flush batches as they fill, not all at the end

    def _verdict_of(self, rid):
        reply = self.service.reply_for(rid)
        if reply is None:  # pragma: no cover - drain() precedes resolution
            raise RuntimeError(f"deposit {rid!r} still unresolved after drain")
        return reply

    def drain(self):
        self.service.drain()

    def sweep(self):
        return list(check_recovery_invariants(self.service.bank, self.journal).findings)


class SocketGateway(_Gateway):
    """The same service behind a real TCP frontend; every request is a
    wire round-trip through :class:`~repro.service.frontend.ServiceClient`."""

    backend = "socket"

    def __init__(self, params, keypair, *, n_shards: int, max_batch: int) -> None:
        super().__init__()
        self.journal = Journal()
        bank = ShardedBank(params, keypair, random.Random(11), n_shards=n_shards)
        batcher = VerificationBatcher(params, keypair, max_batch=max_batch, seed=7)
        self.service = MarketService(
            bank,
            batcher=batcher,
            rng=random.Random(3),
            clock=lambda: 0.0,
            journal=self.journal,
        )
        self.frontend = ServiceFrontend(self.service).start()
        self.client = ServiceClient(self.frontend.address, sender="campaign")
        self._cache: dict[str, tuple[str, dict]] = {}
        self._open = True

    def _strip(self, reply: dict) -> tuple[str, dict]:
        body = {k: v for k, v in reply.items() if k not in ("cid", "req", "status")}
        return reply["status"], body

    def call(self, sender, kind, payload, *, rid, tally=True):
        reply = self.client.call(kind, payload, rid=rid, sender=sender)
        status, body = self._strip(reply)
        self._cache[rid] = (status, body)
        if tally:
            self._tally(status)
        return status, body

    def deposit(self, sender, rid, payload):
        # the socket path is synchronous per request; the verdict is
        # still resolved later so the report shape matches in-process
        self._deposit_order.append((sender, rid))
        reply = self.client.call("deposit", payload, rid=rid, sender=sender)
        self._cache[rid] = self._strip(reply)

    def _verdict_of(self, rid):
        return self._cache[rid]

    def sweep(self):
        self.close()  # the dispatcher thread owns the service; stop it first
        return list(check_recovery_invariants(self.service.bank, self.journal).findings)

    def close(self):
        if self._open:
            self._open = False
            self.client.close()
            self.frontend.close()


class ClusterGateway(_Gateway):
    """A multi-node :class:`LocalCluster`, reached through the router."""

    backend = "cluster"

    def __init__(self, params, keypair, *, n_shards: int, n_nodes: int) -> None:
        super().__init__()
        # lazy: sim's layering pin stops at service/testing; the cluster
        # backend is opt-in and pulls the multi-node stack only on use
        from repro.cluster.node import LocalCluster

        self.params = params
        self.keypair = keypair
        self.n_shards = n_shards
        self.cluster = LocalCluster(
            params, keypair, n_nodes=max(2, n_nodes), n_shards=n_shards
        )
        self.router = self.cluster.router()
        self._cache: dict[str, tuple[str, dict]] = {}
        self._open = True

    def call(self, sender, kind, payload, *, rid, tally=True):
        verdict = self.router.request(kind, payload, sender=sender, rid=rid)
        status = verdict["status"]
        body = {k: v for k, v in verdict.items() if k != "status"}
        self._cache[rid] = (status, body)
        if tally:
            self._tally(status)
        return status, body

    def deposit(self, sender, rid, payload):
        self._deposit_order.append((sender, rid))
        self.call(sender, "deposit", payload, rid=rid, tally=False)

    def _verdict_of(self, rid):
        return self._cache[rid]

    def sweep(self):
        from repro.testing.cluster_invariants import check_cluster_invariants

        dumps = self.cluster.dump_journals()
        report = check_cluster_invariants(
            self.params, self.keypair, self.cluster.map, dumps,
            n_shards=self.n_shards, cross_slice_value=True,
        )
        return list(report.findings)

    def close(self):
        if self._open:
            self._open = False
            self.cluster.close()


def _make_gateway(config: CampaignConfig, params, keypair) -> _Gateway:
    if config.backend == "inprocess":
        return InProcessGateway(
            params, keypair, n_shards=config.n_shards, max_batch=config.max_batch
        )
    if config.backend == "socket":
        return SocketGateway(
            params, keypair, n_shards=config.n_shards, max_batch=config.max_batch
        )
    return ClusterGateway(
        params, keypair, n_shards=config.n_shards, n_nodes=config.n_nodes
    )


# ---------------------------------------------------------------------------
# MA adapter: the actor layer's MA interface over a gateway
# ---------------------------------------------------------------------------

class _BankFacade:
    def __init__(self, public_key) -> None:
        self.public_key = public_key


class _ServiceMAAdapter:
    """Duck-types ``MarketAdministratorDec`` for the actor classes.

    :class:`~repro.core.ppms_dec.JobOwnerDec` calls
    ``ma.handle_withdrawal`` / ``ma.handle_deposit`` and reads
    ``ma.bank.public_key`` and ``ma.clock``; this adapter forwards
    those to the campaign's gateway, so the actor-layer protocol code
    runs unmodified against the real service.
    """

    clock = 0.0

    def __init__(self, campaign: "Campaign") -> None:
        self._campaign = campaign
        self.bank = _BankFacade(campaign.keypair.public)
        self._wd: dict[str, int] = {}
        self._chg: dict[str, int] = {}

    def handle_withdrawal(self, aid: str, request) -> object:
        n = self._wd[aid] = self._wd.get(aid, 0) + 1
        status, body = self._campaign.gateway.call(
            aid, "withdraw", {"aid": aid, "request": request}, rid=f"{aid}:wd:{n}"
        )
        if status != "OK":
            raise RuntimeError(f"withdrawal for {aid!r} refused: {body}")
        self._campaign.issued += self._campaign.coin_value
        return body["signature"]

    def handle_deposit(self, aid: str, token, at_time: float) -> int:
        n = self._chg[aid] = self._chg.get(aid, 0) + 1
        rid = f"{aid}:chg:{n}"
        gateway = self._campaign.gateway
        status, body = gateway.call(
            aid, "deposit", {"aid": aid, "token": token}, rid=rid, tally=False
        )
        # change deposits join the deposit stream the MA observes
        gateway._deposit_order.append((aid, rid))
        if hasattr(gateway, "_cache"):
            gateway._cache[rid] = (status, body)
        return body.get("amount", 0) if status == "OK" else 0


# ---------------------------------------------------------------------------
# PPMSpbs endpoint (unitary bank + journaled deposit service)
# ---------------------------------------------------------------------------

class _PbsEndpoint:
    """The unitary-coin half of the market: its own bank and journal."""

    def __init__(self) -> None:
        self.journal = Journal()
        self.bank = VirtualBankPbs()
        self.service = PbsDepositService(self.bank, self.journal, Transport())
        self.funded = 0
        self.log: list[tuple[str, str, str]] = []  # (party, rid, status)

    def open_account(self, pubkey, balance: int) -> None:
        self.bank.open_account(pubkey, balance)
        self.funded += balance

    def deposit(self, party: str, rid: str, receipt, sp_pub) -> str:
        status = self.service.submit(
            rid, receipt.signature, (sp_pub.n, sp_pub.e), receipt.jo_account_key
        )
        self.log.append((party, rid, status))
        return status

    def findings(self) -> list[str]:
        findings = [f"pbs: {f}" for f in audit_pbs_bank(self.bank).findings]
        applied: dict[str, int] = {}
        for record in self.journal.records():
            if record.kind == "apply":
                applied[record.rid] = applied.get(record.rid, 0) + 1
        for rid, n in sorted(applied.items()):
            if n > 1:
                findings.append(f"pbs: rid {rid!r} applied {n} times")
        final = sum(self.bank.accounts.values())
        if final != self.funded:
            findings.append(
                f"pbs: unitary transfers must conserve: funded {self.funded} "
                f"!= final {final}"
            )
        return findings


# ---------------------------------------------------------------------------
# the campaign engine
# ---------------------------------------------------------------------------

class Campaign(PartyContext):
    """One seeded run of a party roster against the live market.

    Implements :class:`~repro.sim.party.PartyContext`: the parties call
    back into the campaign for every protocol effect, and the campaign
    routes those through the gateway, meters them, and keeps the
    economy-wide ledgers the report is built from.
    """

    def __init__(self, config: CampaignConfig, params, keypair) -> None:
        self.config = config
        self.params = params
        self.keypair = keypair
        self.tree_level = params.tree_level
        self.counter = SimOpCounter()
        self.queue = EventQueue()
        self.gateway = _make_gateway(config, params, keypair)
        self.pbs = _PbsEndpoint()
        self.ma_adapter = _ServiceMAAdapter(self)
        self.wire = Transport()  # actor-side envelope metering + codec
        self.parties: dict[str, Party] = {}
        self.truth: dict[str, str] = {}  # sp account -> true job id
        self.rings: list[tuple[RingLeader, tuple[str, ...]]] = []
        self.funded = 0
        self.issued = 0
        self.trace: list[tuple[float, str, str]] = []
        self._rngs: dict[str, random.Random] = {}
        self._net_rng = random.Random(f"{config.seed}:#net")
        self._current: str | None = None

    # -- PartyContext ------------------------------------------------------
    def rng_for(self, name: str) -> random.Random:
        if name not in self._rngs:
            self._rngs[name] = random.Random(f"{self.config.seed}:{name}")
        return self._rngs[name]

    def send(self, to: str, kind: str, payload: Any = None, *,
             delay: float = 0.0) -> None:
        latency = 0.0
        if to != self._current and self.config.delivery_latency_mean > 0:
            latency = self._net_rng.expovariate(
                1.0 / self.config.delivery_latency_mean
            )
        event = PartyEvent(kind, payload)
        self.queue.schedule_in(delay + latency, lambda: self._deliver(to, event))

    def open_account(self, party: Party, balance: int) -> None:
        status, body = self.gateway.call(
            party.name, "open-account",
            {"aid": party.name, "balance": balance}, rid=f"{party.name}:open",
        )
        if status != "OK":
            raise RuntimeError(f"open-account for {party.name!r} failed: {body}")
        self.funded += balance

    def new_dec_jo(self, party: Party) -> JobOwnerDec:
        return JobOwnerDec(
            party.name, self.params, party.rng,
            rsa_bits=self.config.rsa_bits,
            break_algorithm=self.config.break_algorithm,
        )

    def new_dec_sp(self, party: Party) -> SensingParticipantDec:
        return SensingParticipantDec(
            party.name, self.params, party.rng, rsa_bits=self.config.rsa_bits
        )

    def dec_withdraw(self, party: Party, actor: JobOwnerDec) -> None:
        actor.withdraw(self.ma_adapter, self.wire, self.counter)

    def dec_build_payment(self, party: Party, actor: JobOwnerDec,
                          sp_pubkey, payment: int):
        return actor.build_payment(sp_pubkey, payment, self.counter)

    def dec_open_payment(self, party: Party, actor: SensingParticipantDec,
                         ciphertext, jo_pubkey):
        return actor.open_payment(
            ciphertext, jo_pubkey, self.keypair.public, self.counter
        )

    def dec_deposit_change(self, party: Party, actor: JobOwnerDec) -> int:
        return actor.deposit_change(self.ma_adapter, self.wire, self.counter)

    def deposit_async(self, party: Party, rid: str, token) -> None:
        self.gateway.deposit(party.name, rid, {"aid": party.name, "token": token})

    def ring_withdraw_tokens(self, party: Party, *, denomination: int,
                             count: int) -> list:
        secret, request = begin_ring_withdrawal(self.params, party.rng)
        status, body = self.gateway.call(
            party.name, "withdraw",
            {"aid": party.name, "request": request}, rid=f"{party.name}:wd",
        )
        if status != "OK":
            raise RuntimeError(f"ring withdrawal for {party.name!r} refused: {body}")
        self.issued += self.coin_value
        coin = finish_ring_withdrawal(
            self.params, self.keypair.public, secret, body["signature"]
        )
        return conflicting_spends(
            self.params, self.keypair.public, coin,
            denomination=denomination, count=count, rng=party.rng,
        )

    def new_pbs_jo(self, party: Party) -> JobOwnerPbs:
        return JobOwnerPbs(party.rng, rsa_bits=self.config.rsa_bits)

    def new_pbs_sp(self, party: Party) -> SensingParticipantPbs:
        return SensingParticipantPbs(party.rng, rsa_bits=self.config.rsa_bits)

    def pbs_open_account(self, party: Party, pubkey, balance: int) -> None:
        self.pbs.open_account(pubkey, balance)

    def pbs_deposit(self, party: Party, rid: str, receipt) -> str:
        return self.pbs.deposit(party.name, rid, receipt, party.actor.account_pub)

    # -- delivery ----------------------------------------------------------
    def _deliver(self, to: str, event: PartyEvent) -> None:
        party = self.parties.get(to)
        if party is None:
            return  # late delivery to a party that was never rostered
        self.trace.append((self.queue.now, to, event.kind))
        prev = self._current
        self._current = to
        try:
            party.handle(event)
        finally:
            self._current = prev

    def _trace_digest(self) -> str:
        lines = "\n".join(
            f"{t:.9f} {name} {kind}" for t, name, kind in self.trace
        )
        return hashlib.sha256(lines.encode()).hexdigest()

    # -- roster ------------------------------------------------------------
    def _build_roster(self) -> list[Party]:
        """Create every party; returns the ones that need a ``start``."""
        cfg = self.config
        roster_rng = self.rng_for("#roster")
        policy = (
            DepositPolicy.randomized(cfg.deposit_wait_mean)
            if cfg.deposit_wait_mean > 0 else DepositPolicy.immediate()
        )
        faulty = cfg.drop_rate > 0 or cfg.duplicate_rate > 0 or cfg.reorder_rate > 0
        ma = (MaliciousMAParty if cfg.malicious_ma else MAParty)("ma", self)
        self.parties[ma.name] = ma
        starters: list[Party] = [ma]

        replay_quota = cfg.replay_sps
        omission_quota = cfg.omission_sps
        fault_seq = 0
        for i in range(cfg.n_dec_jobs):
            job_id = f"job-{i}"
            n_sps = roster_rng.randint(cfg.min_sps, cfg.max_sps)
            payment = roster_rng.choice(cfg.payment_choices)
            sp_names = []
            for j in range(n_sps):
                name = f"sp-{i}-{j}"
                if replay_quota > 0:
                    replay_quota -= 1
                    sp = ReplaySP(name, self, policy=policy, ma_name=ma.name)
                elif omission_quota > 0:
                    omission_quota -= 1
                    sp = OmissionSP(name, self, policy=policy, ma_name=ma.name)
                else:
                    plan = None
                    if faulty:
                        fault_seq += 1
                        plan = FaultPlan(
                            seed=cfg.seed * 100_003 + fault_seq,
                            drop=cfg.drop_rate,
                            duplicate=cfg.duplicate_rate,
                            reorder=cfg.reorder_rate,
                            max_slip=cfg.max_slip,
                        )
                    sp = SensingParty(
                        name, self, policy=policy, fault_plan=plan, ma_name=ma.name
                    )
                self.parties[name] = sp
                self.truth[name] = job_id
                sp_names.append(name)
            jo = JobOwnerParty(
                f"jo-{i}", self, job_id=job_id, payment=payment,
                sp_names=tuple(sp_names),
                funds=(n_sps + 1) * self.coin_value, ma_name=ma.name,
            )
            self.parties[jo.name] = jo
            starters.append(jo)

        for r in range(cfg.double_spend_rings):
            members = tuple(
                f"ring{r}-m{j}" for j in range(cfg.ring_size - 1)
            )
            for name in members:
                member = RingMember(name, self)
                self.parties[name] = member
                starters.append(member)
            leader = RingLeader(f"ring{r}-leader", self, members=members)
            self.parties[leader.name] = leader
            starters.append(leader)
            self.rings.append((leader, members))

        for i in range(cfg.n_pbs_jobs):
            n_sps = roster_rng.randint(cfg.min_sps, cfg.max_sps)
            sp_names = []
            for j in range(n_sps):
                name = f"pbs-sp-{i}-{j}"
                self.parties[name] = PbsSensingParty(name, self, policy=policy)
                sp_names.append(name)
            jo = PbsJobOwnerParty(
                f"pbs-jo-{i}", self, job_id=f"pbs-job-{i}",
                sp_names=tuple(sp_names), funds=n_sps + 1, ma_name=ma.name,
            )
            self.parties[jo.name] = jo
            starters.append(jo)
        return starters

    # -- analysis ----------------------------------------------------------
    def _feed_ma(self, deposits: list[dict[str, Any]], ma: MAParty) -> None:
        """The MA sees the admission stream the bank saw, in order."""
        for entry in deposits:
            if entry["status"] != "OK":
                continue
            ma.handle(PartyEvent("observe-deposit", {
                "aid": entry["party"], "amount": entry["body"].get("amount", 0),
            }))
        ma.handle(PartyEvent("conclude", {"truth": dict(self.truth)}))

    def _detections(self, deposits: list[dict[str, Any]], ma: MAParty, *,
                    cross_node_flags: int = 0) -> dict[str, dict[str, Any]]:
        by_rid = {e["rid"]: e for e in deposits}
        detections: dict[str, dict[str, Any]] = {}

        if self.rings:
            total = admitted = rejected = extras = 0
            revealed = True
            for leader, members in self.rings:
                accounts = {leader.name, *members}
                rids = [leader.deposit_rid] + [f"{m}:fence" for m in members]
                ring_admitted = 0
                for rid in rids:
                    entry = by_rid.get(rid)
                    if entry is None:
                        continue  # a fence that never landed (faulted away)
                    total += 1
                    if entry["status"] == "OK":
                        ring_admitted += 1
                    elif entry["status"] == "REJECTED":
                        rejected += 1
                        if evidence_prior_account(entry["body"]) not in accounts:
                            revealed = False
                admitted += ring_admitted
                extras += max(0, ring_admitted - 1)
            # Ring deposits route by the *depositing* account, so on the
            # cluster backend one serial's copies can land on different
            # nodes and each be admitted; the journal-shipping sweep
            # flags every such collision after the fact.  The ring is
            # caught when each serial was admitted at most once
            # synchronously, or when every extra admission was flagged
            # offline by the cross-node sweep.
            explained = extras > 0 and extras == cross_node_flags
            detections["double_spend"] = {
                "rings": len(self.rings),
                "deposits": total,
                "admitted": admitted,
                "rejected": rejected,
                "cross_node_flagged": cross_node_flags,
                "cross_node_explained": explained,
                "caught": extras == 0 or explained,
                "identity_revealed": revealed and rejected > 0,
            }

        replayers = [
            p for p in self.parties.values() if isinstance(p, ReplaySP)
        ]
        if replayers:
            attempts = rejected = 0
            for sp in replayers:
                for rid in sp.replay_rids:
                    entry = by_rid.get(rid)
                    if entry is None:
                        continue
                    attempts += 1
                    if entry["status"] == "REJECTED":
                        rejected += 1
            detections["replay"] = {
                "replayers": len(replayers),
                "attempts": attempts,
                "rejected": rejected,
                "detection_rate": (rejected / attempts) if attempts else 0.0,
            }

        if isinstance(ma, MaliciousMAParty) and ma.results:
            aids = sorted(ma.results)
            results = [ma.results[aid] for aid in aids]
            sizes = [r.anonymity_set_size for r in results]
            unique = sum(1 for r in results if r.uniquely_identified)
            # The attack's completeness guarantee — the true job always
            # sits in the anonymity set — binds only when the MA saw
            # the account's whole deposit vector; fault plans may drop
            # tokens at the source, so score coverage over the
            # fully-observed accounts and report the lossy rest.
            complete = [
                r for aid, r in zip(aids, results)
                if getattr(self.parties.get(aid), "dropped_deposits", 0) == 0
            ]
            detections["denomination"] = {
                "algorithm": self.config.break_algorithm,
                "scored": len(results),
                "scored_complete": len(complete),
                "uniquely_identified": unique,
                "unique_rate": unique / len(results),
                "mean_anonymity": sum(sizes) / len(sizes),
                "min_anonymity": min(sizes),
                "max_anonymity": max(sizes),
                "truth_covered": all(r.true_job_covered for r in complete),
            }
        return detections

    def _conservation(self, deposits: list[dict[str, Any]]) -> dict[str, Any]:
        deposited = sum(
            e["body"].get("amount", 0) for e in deposits if e["status"] == "OK"
        )
        accounts = sorted(
            name for name, p in self.parties.items()
            if not isinstance(p, (MAParty, PbsJobOwnerParty, PbsSensingParty))
        )
        final = sum(self.gateway.balance_of(aid) for aid in accounts)
        outstanding = self.issued - deposited
        pbs_final = sum(self.pbs.bank.accounts.values())
        dec_ok = final == self.funded - self.issued + deposited
        pbs_ok = pbs_final == self.pbs.funded
        return {
            "funded": self.funded,
            "issued": self.issued,
            "deposited": deposited,
            "final": final,
            "outstanding": outstanding,
            "pbs_funded": self.pbs.funded,
            "pbs_final": pbs_final,
            "conserved": dec_ok and pbs_ok,
        }

    # -- run ---------------------------------------------------------------
    def run(self) -> CampaignReport:
        cfg = self.config
        try:
            starters = self._build_roster()
            arrivals = self.rng_for("#arrivals")
            ma = self.parties["ma"]
            t = 0.0
            for party in starters:
                event = PartyEvent("start")
                name = party.name
                self.queue.schedule(t, lambda n=name, e=event: self._deliver(n, e))
                if cfg.arrival_gap > 0:
                    t += arrivals.expovariate(1.0 / cfg.arrival_gap)
            self.queue.run(max_events=cfg.max_events)
            self.gateway.drain()

            deposits = self.gateway.resolve_deposits()
            self._feed_ma(deposits, ma)

            verdicts = dict(sorted(self.gateway.verdicts.items()))
            for _, _, status in self.pbs.log:
                verdicts[status] = verdicts.get(status, 0) + 1

            conservation = self._conservation(deposits)
            findings = self.gateway.sweep()
            # Cross-node double deposits the ring attack fully explains
            # are the *detection* working, not an invariant failure —
            # reclassify them; unexplained ones stay findings.
            _XNODE = "(cross-node double deposit)"
            cross_node = [f for f in findings if f.endswith(_XNODE)]
            detections = self._detections(
                deposits, ma, cross_node_flags=len(cross_node)
            )
            ds = detections.get("double_spend")
            if ds is not None and ds["cross_node_explained"]:
                findings = [f for f in findings if not f.endswith(_XNODE)]
            if cfg.n_pbs_jobs > 0:
                findings.extend(self.pbs.findings())
            stuck = sorted(
                name for name, p in self.parties.items() if not p.terminal
            )
            findings.extend(
                f"party {name!r} finished non-terminal "
                f"(state {self.parties[name].state!r})" for name in stuck
            )

            return CampaignReport(
                name=cfg.name,
                seed=cfg.seed,
                config=cfg.to_dict(),
                backend=cfg.backend,
                n_parties=len(self.parties),
                n_events=len(self.trace),
                trace_digest=self._trace_digest(),
                parties={
                    name: self.parties[name].ledger()
                    for name in sorted(self.parties)
                },
                verdicts=verdicts,
                detections=detections,
                conservation=conservation,
                invariants=tuple(findings),
                opcounts=self.counter.as_dict(),
            )
        finally:
            self.gateway.close()


# ---------------------------------------------------------------------------
# canned campaigns
# ---------------------------------------------------------------------------

def honest_campaign(seed: int = 0, *, scale: int = 1,
                    backend: str = "inprocess") -> CampaignConfig:
    """Honest economy, both schemes: must end clean with zero detections."""
    return CampaignConfig(
        name="honest", seed=seed, backend=backend,
        n_dec_jobs=4, n_pbs_jobs=2,
    ).scaled(scale)


def denomination_campaign(seed: int = 0, *, scale: int = 1,
                          backend: str = "inprocess",
                          break_algorithm: str = "epcba") -> CampaignConfig:
    """Malicious MA linking SP deposits to jobs via coin denominations."""
    return CampaignConfig(
        name="denomination", seed=seed, backend=backend,
        n_dec_jobs=6, n_pbs_jobs=0, malicious_ma=True,
        break_algorithm=break_algorithm,
        # distinct-ish payments give the attack its signal
        payment_choices=(1, 2, 3, 5, 7),
    ).scaled(scale)


def double_spend_campaign(seed: int = 0, *, scale: int = 1,
                          backend: str = "inprocess") -> CampaignConfig:
    """Rings and replayers against the serial store: all must be caught."""
    return CampaignConfig(
        name="double-spend", seed=seed, backend=backend,
        n_dec_jobs=2, n_pbs_jobs=0,
        double_spend_rings=2, ring_size=3, replay_sps=1,
    ).scaled(scale)


def mixed_campaign(seed: int = 0, *, scale: int = 1,
                   backend: str = "inprocess") -> CampaignConfig:
    """The full adversarial economy: every party type at once."""
    return CampaignConfig(
        name="mixed", seed=seed, backend=backend,
        n_dec_jobs=5, n_pbs_jobs=2,
        double_spend_rings=1, ring_size=3,
        replay_sps=1, omission_sps=1, malicious_ma=True,
        drop_rate=0.1, duplicate_rate=0.1, reorder_rate=0.2,
        deposit_wait_mean=0.5,
    ).scaled(scale)


CAMPAIGNS = {
    "honest": honest_campaign,
    "denomination": denomination_campaign,
    "double-spend": double_spend_campaign,
    "mixed": mixed_campaign,
}


def run_campaign(config: CampaignConfig, *, params=None,
                 keypair=None) -> CampaignReport:
    """Run one campaign to completion and return its report.

    The toy crypto substrate is derived from the config seed unless an
    explicit (*params*, *keypair*) pair is supplied (tests share one
    substrate across runs to keep the suite fast; byte-identical replay
    holds either way because the derivation is seed-deterministic).
    """
    if params is None or keypair is None:
        params, keypair = toy_market_params(
            random.Random(f"campaign-substrate:{config.seed}")
        )
    return Campaign(config, params, keypair).run()

"""Structured campaign reports: detections, conservation, replay.

A :class:`CampaignReport` is the single artifact a campaign run
produces.  It is **canonical**: :meth:`CampaignReport.to_json` sorts
keys, uses compact separators, and normalizes every value (bytes to
hex, tuples to lists), so two runs of the same seeded campaign must
produce byte-identical JSON — that equality *is* the replay regression
test.  On failure, :meth:`summary` embeds the seed and the exact
command that reproduces the run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

__all__ = ["CampaignReport", "canonical_json"]


def _normalize(value: Any) -> Any:
    """Fold a report value onto the JSON-stable subset."""
    if isinstance(value, dict):
        return {str(k): _normalize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_normalize(v) for v in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_normalize(v) for v in value)
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, float):
        # repr-stable floats; -0.0 would print differently from 0.0
        return value + 0.0
    return value


def canonical_json(data: Any) -> str:
    """Deterministic JSON: sorted keys, compact, normalized values."""
    return json.dumps(_normalize(data), sort_keys=True, separators=(",", ":"))


@dataclass
class CampaignReport:
    """Everything one campaign run produced, in replayable form."""

    name: str
    seed: int
    config: dict[str, Any]
    backend: str
    n_parties: int = 0
    n_events: int = 0
    #: sha256 over the (time, party, kind) event trace — the cheap
    #: equality witness for "same seed, same run"
    trace_digest: str = ""
    #: per-party outcome ledger, keyed by party name
    parties: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: terminal statuses of every service request, by status
    verdicts: dict[str, int] = field(default_factory=dict)
    #: adversary detection metrics, by attack family
    detections: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: economy-wide value accounting
    conservation: dict[str, Any] = field(default_factory=dict)
    #: findings from the post-run invariant sweeps (empty = clean)
    invariants: tuple[str, ...] = ()
    #: crypto-op tallies accumulated by the parties, party -> op -> n
    opcounts: dict[str, dict[str, int]] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """No invariant findings and the economy balanced."""
        return not self.invariants and bool(self.conservation.get("conserved", False))

    def replay_command(self) -> str:
        return (
            f"python tools/run_campaign.py {self.name} "
            f"--seed {self.seed} --backend {self.backend}"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "config": self.config,
            "backend": self.backend,
            "n_parties": self.n_parties,
            "n_events": self.n_events,
            "trace_digest": self.trace_digest,
            "parties": self.parties,
            "verdicts": self.verdicts,
            "detections": self.detections,
            "conservation": self.conservation,
            "invariants": list(self.invariants),
            "opcounts": self.opcounts,
            "clean": self.clean,
        }

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    def digest(self) -> str:
        """sha256 of the canonical JSON — the byte-for-byte identity."""
        return hashlib.sha256(self.to_json().encode()).hexdigest()

    def summary(self) -> str:
        """Human-oriented digest; embeds seed + replay command on failure."""
        verdicts = ", ".join(
            f"{n} {status}" for status, n in sorted(self.verdicts.items())
        ) or "none"
        lines = [
            f"campaign {self.name!r} (seed {self.seed}, backend {self.backend}): "
            f"{self.n_parties} parties, {self.n_events} events",
            f"verdicts: {verdicts}",
        ]
        for family, metrics in sorted(self.detections.items()):
            pretty = ", ".join(f"{k}={metrics[k]}" for k in sorted(metrics))
            lines.append(f"{family}: {pretty}")
        if self.conservation:
            status = "closed" if self.conservation.get("conserved") else "BROKEN"
            lines.append(
                f"conservation {status}: funded {self.conservation.get('funded')}"
                f", final {self.conservation.get('final')}"
                f", outstanding {self.conservation.get('outstanding')}"
            )
        if self.clean:
            lines.append("invariant sweep: clean")
        else:
            lines.append("invariant findings:")
            lines.extend(f"  - {finding}" for finding in self.invariants)
            lines.append(
                f"replay: {self.replay_command()}  (seed {self.seed} "
                "reproduces the identical trace and report)"
            )
        return "\n".join(lines)

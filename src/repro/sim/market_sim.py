"""Discrete-event market simulation over the real PPMSdec protocol.

Where the unit tests run protocol steps back-to-back, this simulator
spreads them over *simulated time*: jobs arrive as a Poisson-ish
process, payment deliveries incur network latency, and deposits follow
a configurable wait policy — the knob whose privacy consequences
Section IV-A8 of the paper legislates ("waits for a random period of
time").

The payoff is an *end-to-end* timing experiment: the adversary of
:mod:`repro.attacks.timing` attacks the timestamps of actual protocol
runs (real pseudonyms, real deposits, real bank state), not a toy
model.  See :func:`run_timing_attack`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.attacks.timing import DeliveryEvent, TimedDeposit, TimingAdversary
from repro.core.ppms_dec import PPMSdecSession
from repro.sim.events import EventQueue

__all__ = [
    "DepositPolicy",
    "SimulationTrace",
    "MarketSimulation",
    "run_timing_attack",
]


@dataclass(frozen=True)
class DepositPolicy:
    """How an SP times its deposits after receiving a payment.

    ``initial_wait_mean`` / ``between_wait_mean`` of 0 model the naive
    immediate depositor; positive means exponential random waits (the
    paper's prescription).
    """

    initial_wait_mean: float = 0.0
    between_wait_mean: float = 0.0

    def initial_wait(self, rng: random.Random) -> float:
        # "immediate" means exactly now: the event queue breaks same-time
        # ties FIFO, so no jitter is needed to keep ordering deterministic
        # (the old uniform(0, 1e-6) fuzz also silently consumed rng state)
        if self.initial_wait_mean <= 0:
            return 0.0
        return rng.expovariate(1.0 / self.initial_wait_mean)

    def between_wait(self, rng: random.Random) -> float:
        if self.between_wait_mean <= 0:
            return 0.0
        return rng.expovariate(1.0 / self.between_wait_mean)

    @classmethod
    def immediate(cls) -> "DepositPolicy":
        return cls()

    @classmethod
    def randomized(cls, mean: float) -> "DepositPolicy":
        return cls(initial_wait_mean=mean, between_wait_mean=mean / 2)


@dataclass
class SimulationTrace:
    """What the MA's logs contain after a simulated run."""

    deliveries: list[DeliveryEvent] = field(default_factory=list)
    deposits: list[TimedDeposit] = field(default_factory=list)
    true_links: dict[int, int] = field(default_factory=dict)  # aid-key -> pseudonym-key
    completed_jobs: int = 0


class MarketSimulation:
    """Drives one PPMSdec session through an event queue."""

    def __init__(
        self,
        session: PPMSdecSession,
        rng: random.Random,
        *,
        deposit_policy: DepositPolicy,
        delivery_latency_mean: float = 0.2,
    ) -> None:
        self.session = session
        self.rng = rng
        self.policy = deposit_policy
        self.delivery_latency_mean = delivery_latency_mean
        self.queue = EventQueue()
        self.trace = SimulationTrace()
        self._ids = 0

    def schedule_job(self, at: float, *, payment: int, funds: int | None = None) -> None:
        """Arrange for one single-SP job to start at simulated time *at*."""
        job_id = self._ids
        self._ids += 1
        self.queue.schedule(at, lambda: self._start_job(job_id, payment, funds))

    def run(self) -> SimulationTrace:
        self.queue.run()
        return self.trace

    # -- event handlers ------------------------------------------------------
    def _start_job(self, job_id: int, payment: int, funds: int | None) -> None:
        session = self.session
        coin_value = 1 << session.params.tree_level
        jo = session.new_job_owner(f"sim-jo-{job_id}", funds or 4 * coin_value)
        sp = session.new_participant(f"sim-sp-{job_id}")
        # run the message flow now; deposits are deferred to the queue
        session.run_job(jo, [sp], payment=payment, deposit=False)

        latency = self.rng.expovariate(1.0 / self.delivery_latency_mean)
        delivered_at = self.queue.now + latency
        self.queue.schedule(delivered_at, lambda: self._delivered(job_id, sp, delivered_at))

    def _delivered(self, job_id: int, sp, delivered_at: float) -> None:
        self.trace.deliveries.append(DeliveryEvent(time=delivered_at, pseudonym=job_id))
        self.trace.true_links[job_id] = job_id  # aid-key == pseudonym-key == job_id
        t = delivered_at + self.policy.initial_wait(self.rng)
        for token in list(sp.collected):
            self.queue.schedule(t, self._make_deposit_action(job_id, sp.aid, token, t))
            t += self.policy.between_wait(self.rng)
        sp.collected.clear()

    def _make_deposit_action(self, job_id: int, aid: str, token, at: float):
        def action() -> None:
            self.session.ma.handle_deposit(aid, token, at)
            self.trace.deposits.append(TimedDeposit(time=at, aid=job_id))
            self.trace.completed_jobs += 1

        return action


def run_timing_attack(
    params,
    *,
    n_jobs: int,
    policy: DepositPolicy,
    seed: int,
    arrival_gap: float = 1.0,
    rsa_bits: int = 512,
) -> float:
    """End-to-end timing attack accuracy against a simulated market.

    Runs *n_jobs* single-SP jobs through a real PPMSdec session with the
    given deposit *policy*, then lets the timing adversary match the
    MA's delivery log to its deposit log.  Returns the fraction of
    accounts correctly linked (per first-deposit matching).
    """
    rng = random.Random(seed)
    session = PPMSdecSession(params, rng, rsa_bits=rsa_bits, break_algorithm="pcba")
    sim = MarketSimulation(session, rng, deposit_policy=policy)
    t = 0.0
    for _ in range(n_jobs):
        t += rng.expovariate(1.0 / arrival_gap)
        sim.schedule_job(t, payment=1 + rng.randrange(1 << params.tree_level))
    trace = sim.run()

    # first deposit per account is the adversary's anchor
    first_deposit: dict[int, TimedDeposit] = {}
    for dep in sorted(trace.deposits, key=lambda d: d.time):
        first_deposit.setdefault(dep.aid, dep)
    adversary = TimingAdversary()
    guesses = adversary.link(trace.deliveries, list(first_deposit.values()))
    if not trace.true_links:
        return 0.0
    correct = sum(
        1 for aid, pseud in guesses.items() if trace.true_links.get(aid) == pseud
    )
    return correct / len(trace.true_links)

"""Deterministic fault injection, invariant checking, and property testing.

The paper's security story — double-deposit detection, denomination
defenses — only holds if the MA bank stays consistent when requests
are dropped, duplicated, reordered, or the service dies mid-batch.
This package makes those failure modes *reproducible*:

* :mod:`repro.testing.faults` — a :class:`FaultPlan` derives a full
  fault schedule (drop/duplicate/reorder rates, scripted crash
  points) from a single integer seed; :class:`FaultyTransport` raises
  :class:`CrashPoint` at the scripted envelopes.
* :mod:`repro.testing.invariants` — global checks run after every
  recovery: balance conservation across shards, serial-number
  uniqueness, and exact ledger/journal agreement.
* :mod:`repro.testing.cluster_invariants` — the multi-node sweep over
  per-slice journal dumps: cross-node serial/rid uniqueness, ring
  placement, and cluster-wide balance conservation.
* :mod:`repro.testing.scenario` — replays PPMSdec (sharded service)
  and PPMSpbs (unitary bank) market flows under a fault plan, crash-
  recovering the service from its write-ahead journal, and reports
  everything needed to replay a failure from its seed.
* :mod:`repro.testing.properties` — a tiny seed-driven property-test
  runner (``REPRO_TEST_SEED`` aware, no third-party dependency).

See ``docs/testing.md`` for the seed/replay workflow.
"""

from repro.testing.faults import (
    CrashPoint,
    StorageCrasher,
    FaultClock,
    FaultPlan,
    FaultyTransport,
)
from repro.testing.cluster_invariants import check_cluster_invariants
from repro.testing.invariants import InvariantReport, check_recovery_invariants
from repro.testing.properties import PropertyError, env_seed, property_test
from repro.testing.scenario import (
    DepositKit,
    PbsKit,
    ScenarioResult,
    build_deposit_kit,
    build_pbs_kit,
    run_deposit_scenario,
    run_pbs_scenario,
)

__all__ = [
    "FaultPlan",
    "FaultClock",
    "FaultyTransport",
    "CrashPoint",
    "StorageCrasher",
    "InvariantReport",
    "check_recovery_invariants",
    "check_cluster_invariants",
    "PropertyError",
    "env_seed",
    "property_test",
    "DepositKit",
    "PbsKit",
    "ScenarioResult",
    "build_deposit_kit",
    "build_pbs_kit",
    "run_deposit_scenario",
    "run_pbs_scenario",
]

"""Seed-driven fault schedules and the crash-injecting transport.

One integer seed determines *everything*: the drop/duplicate/reorder
rates, the per-request fault decisions, and the envelope indices at
which the service is killed.  Re-running a scenario with the same seed
replays the identical fault schedule — a failing run is a repro
recipe, not an anecdote.

Two layers of injection:

* **Request-stream faults** (:meth:`FaultPlan.perturb`) model an
  at-least-once network between residents and the MA: a request may be
  dropped (never arrives), duplicated (arrives twice under the same
  request id), or delayed/reordered (slips a few positions later in
  the arrival order).  Delay is positional, not temporal — the service
  loop is synchronous, so "arrives three requests later" is the
  faithful simulation of "arrives 300 ms later".
* **Crash points** (:class:`FaultyTransport` + :class:`FaultClock`)
  kill the service at scripted *envelope* indices.  Every request and
  every reply crosses the transport, so a crash point can land between
  accepting a request and applying it, or mid-way through applying a
  flushed batch — exactly the windows the write-ahead journal must
  cover.  The clock is shared across service incarnations, so crash
  points keep firing after recoveries.
* **Storage crash steps** (:class:`StorageCrasher`) kill the process
  *inside* the segmented journal's checkpoint and compaction sequences
  (:class:`~repro.service.journal.SegmentedFileJournal` calls its
  ``crash_hook`` with a step label at every named point).  A recording
  pass enumerates the steps a maintenance cycle performs; a sweep then
  re-runs the cycle crashing at each step index in turn and asserts
  recovery equivalence from whatever the crash left on disk.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.net.transport import Transport

__all__ = [
    "CrashPoint",
    "FaultClock",
    "FaultPlan",
    "FaultyTransport",
    "StorageCrasher",
    "Delivery",
]


class CrashPoint(RuntimeError):
    """The scripted death of the service, raised mid-envelope.

    The harness treats this as the process being killed: the service
    and bank objects are abandoned, and recovery starts from the
    journal plus the last checkpoint.  *label* names the storage step
    for crashes injected inside checkpointing/compaction (see
    :class:`StorageCrasher`); envelope-clock crashes leave it empty.
    """

    def __init__(self, envelope_seq: int, label: str = "") -> None:
        where = f" ({label})" if label else ""
        super().__init__(f"scripted crash at envelope {envelope_seq}{where}")
        self.envelope_seq = envelope_seq
        self.label = label


class StorageCrasher:
    """A ``crash_hook`` for :class:`~repro.service.journal.SegmentedFileJournal`.

    Records every step label it is called with (:attr:`steps`); when
    *crash_at* is set, the call at that index raises
    :class:`CrashPoint` — the harness's simulated SIGKILL in the middle
    of a checkpoint or compaction.  Typical use: one recording pass
    with ``crash_at=None`` to learn how many steps a maintenance cycle
    has, then one sweep run per index.
    """

    def __init__(self, crash_at: int | None = None) -> None:
        self.crash_at = crash_at
        self.steps: list[str] = []
        self.fired: str | None = None

    def __call__(self, label: str) -> None:
        index = len(self.steps)
        self.steps.append(label)
        if self.crash_at is not None and index == self.crash_at:
            self.fired = label
            raise CrashPoint(index, label=label)


class FaultClock:
    """Monotone envelope counter shared across service incarnations.

    Each scripted crash point fires exactly once; points the clock has
    already passed (because a crash lost some envelopes) are skipped
    rather than fired late.
    """

    def __init__(self, crash_points: tuple[int, ...] = ()) -> None:
        self.ticks = 0
        self._pending = sorted(crash_points)
        self.fired: list[int] = []

    def tick(self) -> bool:
        """Advance one envelope; ``True`` when this one is a crash."""
        t = self.ticks
        self.ticks += 1
        while self._pending and self._pending[0] < t:
            self._pending.pop(0)
        if self._pending and self._pending[0] == t:
            self._pending.pop(0)
            self.fired.append(t)
            return True
        return False


class FaultyTransport(Transport):
    """A :class:`Transport` that dies at scripted envelope indices.

    The crash is raised *before* the envelope is delivered — the
    message in flight is lost with the process, which is the harshest
    honest model.  All byte accounting and logging of surviving
    envelopes is inherited unchanged.
    """

    def __init__(self, clock: FaultClock | None = None) -> None:
        super().__init__()
        self.clock = clock if clock is not None else FaultClock()

    def send(self, sender: str, receiver: str, kind: str, payload):
        if self.clock.tick():
            raise CrashPoint(self.clock.ticks - 1)
        return super().send(sender, receiver, kind, payload)


@dataclass(frozen=True)
class Delivery:
    """One entry of a perturbed arrival schedule."""

    original: int    # index into the pristine request sequence
    duplicate: bool  # True for the injected second copy


@dataclass(frozen=True)
class FaultPlan:
    """A complete fault schedule, derivable from one seed.

    Build via :meth:`from_seed` for a randomized-but-deterministic
    plan, or construct directly to pin exact rates and crash points
    (e.g. "crash at envelope 17, nothing else").
    """

    seed: int
    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    max_slip: int = 3
    crash_points: tuple[int, ...] = ()

    @classmethod
    def from_seed(
        cls,
        seed: int,
        *,
        intensity: float = 0.15,
        max_crashes: int = 3,
        horizon: int = 160,
    ) -> "FaultPlan":
        """Derive a plan from *seed*: rates in ``[0, intensity]``, up to
        *max_crashes* crash points scattered over the first *horizon*
        envelopes."""
        rng = random.Random(f"fault-plan:{seed}")
        n_crashes = rng.randint(0, max_crashes)
        crash_points = tuple(sorted(rng.sample(range(2, horizon), n_crashes)))
        return cls(
            seed=seed,
            drop=rng.random() * intensity,
            duplicate=rng.random() * intensity,
            reorder=rng.random() * intensity,
            max_slip=rng.randint(1, 5),
            crash_points=crash_points,
        )

    def perturb(self, n: int) -> tuple[tuple[Delivery, ...], tuple[int, ...]]:
        """Fault the arrival order of *n* requests.

        Returns ``(schedule, dropped)``: the delivery schedule (original
        indices, possibly duplicated and reordered) and the indices
        that were dropped outright.  Deterministic in ``self.seed`` and
        *n* alone.
        """
        rng = random.Random(f"fault-perturb:{self.seed}")
        keyed: list[tuple[int, int, bool]] = []
        dropped: list[int] = []
        for i in range(n):
            if rng.random() < self.drop:
                dropped.append(i)
                continue
            copies = 2 if rng.random() < self.duplicate else 1
            for copy in range(copies):
                slip = (
                    rng.randrange(1, self.max_slip + 1)
                    if rng.random() < self.reorder
                    else 0
                )
                keyed.append((i + slip, i, copy > 0))
        keyed.sort(key=lambda t: (t[0], t[1], t[2]))
        schedule = tuple(Delivery(original=i, duplicate=dup) for _, i, dup in keyed)
        return schedule, tuple(dropped)

    def describe(self) -> dict:
        """The schedule as a dict — embedded in failure reports."""
        return {
            "seed": self.seed,
            "drop": round(self.drop, 4),
            "duplicate": round(self.duplicate, 4),
            "reorder": round(self.reorder, 4),
            "max_slip": self.max_slip,
            "crash_points": list(self.crash_points),
        }

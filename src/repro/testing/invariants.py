"""Global invariants the MA bank must satisfy after every recovery.

Three families of checks, composed into one findings-style report (the
same shape as :func:`repro.core.ledger.audit_bank` — empty findings
means clean):

1. **Book audit** — the sharded bank's own cross-shard audit: no
   negative balances, value conservation (deposited never exceeds
   issued), serial-record consistency, placement invariants, and — the
   double-deposit defense — no serial stored twice anywhere.
2. **Ledger/journal agreement** — the write-ahead journal is replayed
   from scratch into a shadow bank, and every book (balances, the
   withdrawal ledger, the deposited-serial store, the deposit
   sequence) must match the live bank exactly.  This is the strongest
   statement the harness makes: the journal alone reconstructs the
   books bit-for-bit, so *any* crash-recovery lands on the same state.
3. **Request-lifecycle discipline** — scanned from the journal: a
   request id may carry at most one ``apply`` record (a double-applied
   deposit is exactly a rid with two), and every ``apply`` must be
   preceded by its ``accept``.

Compacted journals (``journal.first_lsn > 0``) need the checkpoint the
compaction was cut against: pass it as *checkpoint* and the shadow
replay restores it before replaying the retained suffix, and the
lifecycle scan treats the checkpoint's replied rids as already
accepted (their accept records may live in deleted segments).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.service.journal import Checkpoint, Journal
from repro.service.shard import ShardedBank

__all__ = ["InvariantReport", "check_recovery_invariants"]


@dataclass(frozen=True)
class InvariantReport:
    """Outcome of an invariant sweep."""

    findings: tuple[str, ...]

    @property
    def clean(self) -> bool:
        return not self.findings


def _compare_books(live: ShardedBank, shadow: ShardedBank) -> list[str]:
    findings: list[str] = []
    for index, (a, b) in enumerate(zip(live.shards, shadow.shards)):
        if a.accounts != b.accounts:
            findings.append(
                f"journal disagreement on shard {index} accounts: "
                f"live {a.accounts} != replayed {b.accounts}"
            )
        if list(a.withdrawals) != list(b.withdrawals):
            findings.append(
                f"journal disagreement on shard {index} withdrawal ledger: "
                f"live {a.withdrawals} != replayed {b.withdrawals}"
            )
        if a._seen_serials != b._seen_serials:
            live_only = set(a._seen_serials) - set(b._seen_serials)
            replay_only = set(b._seen_serials) - set(a._seen_serials)
            findings.append(
                f"journal disagreement on shard {index} serial store: "
                f"{len(live_only)} serial(s) only live, "
                f"{len(replay_only)} only replayed, plus any record mismatches"
            )
    if live.deposit_seq != shadow.deposit_seq:
        findings.append(
            f"journal disagreement on deposit sequence: live "
            f"{live.deposit_seq} != replayed {shadow.deposit_seq}"
        )
    return findings


def _check_lifecycle(
    journal: Journal, checkpoint: Checkpoint | None = None
) -> list[str]:
    findings: list[str] = []
    accepted: set[str] = set()
    if checkpoint is not None:
        # Rids the checkpoint already settled or holds in flight were
        # accepted before the compaction cut; their accept records may
        # only exist in segments that have since been deleted.
        accepted.update(rid for rid, _status, _body in checkpoint.replies)
        accepted.update(state["rid"] for state in checkpoint.pending)
    applied: dict[str, int] = {}
    for record in journal.records():
        if record.kind == "accept":
            accepted.add(record.rid)
        elif record.kind == "apply" and record.rid:
            applied[record.rid] = applied.get(record.rid, 0) + 1
            if record.rid not in accepted and journal.first_lsn == 0:
                findings.append(
                    f"rid {record.rid!r} applied (lsn {record.lsn}) without "
                    "an accept record"
                )
    for rid, count in applied.items():
        if count > 1:
            findings.append(
                f"rid {rid!r} has {count} apply records (double-applied)"
            )
    return findings


def check_recovery_invariants(
    bank: ShardedBank,
    journal: Journal,
    *,
    checkpoint: Checkpoint | None = None,
) -> InvariantReport:
    """Run every global invariant against *bank* and its *journal*.

    For a compacted journal, *checkpoint* must be the checkpoint the
    compaction was cut against (the shadow replay starts from it);
    omitting it on a compacted journal raises
    :class:`~repro.service.journal.JournalError`.
    """
    findings: list[str] = list(bank.audit().findings)
    shadow = ShardedBank.recover(
        bank.params,
        bank.keypair,
        random.Random(0),
        journal,
        n_shards=bank.n_shards,
        checkpoint=checkpoint,
    )
    findings.extend(_compare_books(bank, shadow))
    findings.extend(_check_lifecycle(journal, checkpoint))
    return InvariantReport(findings=tuple(findings))

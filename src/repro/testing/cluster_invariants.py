"""Cluster-wide invariants over per-slice journal dumps.

The single-node sweep (:mod:`repro.testing.invariants`) certifies one
bank against one journal.  A sharded cluster adds failure modes no
per-node check can see:

* a **serial deposited on two nodes** — deposits route by the
  depositing *account*, so the same coin spent under two different
  accounts lands on two different nodes, each of which locally sees a
  fresh serial.  The paper's double-deposit defense is only as strong
  as the global store, so the sweep intersects every pair of slices'
  serial sets (detect-after-the-fact, exactly the audit semantics the
  single bank already uses for operator-facing checks);
* a **request applied on two nodes** — a router retrying across a
  failover must land on the adopter's reply cache, never re-execute;
  a rid with ``apply`` records on two slices is the smoking gun for a
  lost-then-rerun request;
* an **account on the wrong node** — every account in a slice's books
  must hash to that slice under the cluster map's ring, or routing and
  state have diverged;
* **cross-node conservation** — each node only sees its own slice of
  the flow, so value conservation (opened − withdrawn + deposited =
  final balances; deposited never exceeds issued) must be summed
  globally.  It holds for wire-driven traffic
  (:func:`repro.service.loadgen.mint_cluster_deposit_traffic`);
  offline-minted parity traffic deliberately violates it, so the
  conservation family is gated behind ``conservation=True``.

Input is ``{slice node id: [journal record states]}`` — exactly what a
node's ``dump`` control frame (or ``LocalCluster.dump_journals``)
returns — so the sweep runs against live clusters, post-mortem
rundirs, and in-process harnesses alike.  Each slice is first rebuilt
through :meth:`ShardedBank.recover` and checked by the single-node
machinery; the cluster-level checks then run over the shadow books.
"""

from __future__ import annotations

import random

from repro.cluster.ring import ClusterMap
from repro.service.journal import Journal, JournalRecord
from repro.service.shard import ShardedBank
from repro.testing.invariants import InvariantReport, _check_lifecycle

__all__ = ["check_cluster_invariants"]


def _slice_journal(states: list[dict]) -> Journal:
    """Rebuild a shipped slice dump as an in-memory journal, verbatim."""
    journal = Journal()
    journal._records.extend(JournalRecord.from_state(s) for s in states)
    return journal


def _slice_serials(bank: ShardedBank) -> set[int]:
    serials: set[int] = set()
    for shard in bank.shards:
        serials.update(shard._seen_serials)
    return serials


def _slice_accounts(bank: ShardedBank) -> dict[str, int]:
    accounts: dict[str, int] = {}
    for shard in bank.shards:
        accounts.update(shard.accounts)
    return accounts


def _flow_totals(journal: Journal) -> dict[str, int]:
    """Value flow recorded by one slice's ``apply`` records."""
    totals = {"opened": 0, "withdrawn": 0, "deposited": 0}
    for record in journal.records():
        if record.kind != "apply":
            continue
        if record.op == "open-account":
            totals["opened"] += record.payload["balance"]
        elif record.op == "withdraw":
            totals["withdrawn"] += record.payload["value"]
        elif record.op == "deposit":
            totals["deposited"] += record.payload["amount"]
    return totals


def check_cluster_invariants(
    params,
    keypair,
    cmap: "ClusterMap | dict",
    dumps: dict[str, list[dict]],
    *,
    n_shards: int = 4,
    conservation: bool = True,
    cross_slice_value: bool = False,
) -> InvariantReport:
    """Sweep every cluster invariant over per-slice journal *dumps*.

    *cmap* may be a :class:`~repro.cluster.ring.ClusterMap` or its
    ``to_state()`` dict (the form a node's ``map`` control frame
    serves).  Findings are prefixed with the slice they implicate.

    *cross_slice_value* tolerates value moving between slices (a coin
    withdrawn on one node, deposited on another — the normal market
    economy shape): the per-slice deposited-vs-issued inequality is
    skipped and only its global form is enforced.
    """
    if isinstance(cmap, dict):
        cmap = ClusterMap.from_state(cmap)
    findings: list[str] = []
    for node in cmap.nodes:
        if node not in dumps:
            findings.append(f"{node}: no journal dump for this slice")

    shadows: dict[str, ShardedBank] = {}
    journals: dict[str, Journal] = {}
    for node, states in sorted(dumps.items()):
        journal = _slice_journal(states)
        journals[node] = journal
        try:
            shadow = ShardedBank.recover(
                params, keypair, random.Random(0), journal,
                n_shards=n_shards,
            )
        except Exception as exc:
            findings.append(f"{node}: journal does not replay: {exc}")
            continue
        shadows[node] = shadow
        audit = shadow.audit(allow_foreign_value=cross_slice_value)
        findings.extend(f"{node}: {f}" for f in audit.findings)
        findings.extend(f"{node}: {f}" for f in _check_lifecycle(journal))

    # global serial uniqueness: no deposited serial on two slices
    seen: dict[int, str] = {}
    for node, shadow in sorted(shadows.items()):
        for serial in sorted(_slice_serials(shadow)):
            prior = seen.get(serial)
            if prior is not None:
                findings.append(
                    f"{node}: serial {serial} also deposited on slice "
                    f"{prior} (cross-node double deposit)"
                )
            else:
                seen[serial] = node

    # global rid uniqueness: no request applied on two slices
    applied_on: dict[str, str] = {}
    for node, journal in sorted(journals.items()):
        slice_rids = {r.rid for r in journal.records()
                      if r.kind == "apply" and r.rid}
        for rid in sorted(slice_rids):
            prior = applied_on.get(rid)
            if prior is not None:
                findings.append(
                    f"{node}: rid {rid!r} also applied on slice {prior} "
                    "(request ran on two nodes)"
                )
            else:
                applied_on[rid] = node

    # ring placement: every account lives on the slice that owns it
    for node, shadow in sorted(shadows.items()):
        for aid in sorted(_slice_accounts(shadow)):
            owner = cmap.owner_of(aid)
            if owner != node:
                findings.append(
                    f"{node}: account {aid!r} belongs to slice {owner} "
                    "under the ring (misplaced state)"
                )

    if conservation:
        opened = withdrawn = deposited = final = 0
        for node, shadow in sorted(shadows.items()):
            totals = _flow_totals(journals[node])
            opened += totals["opened"]
            withdrawn += totals["withdrawn"]
            deposited += totals["deposited"]
            final += sum(_slice_accounts(shadow).values())
        if opened - withdrawn + deposited != final:
            findings.append(
                f"cluster: balance conservation broken: opened {opened} "
                f"- withdrawn {withdrawn} + deposited {deposited} != "
                f"final balances {final}"
            )
        if deposited > withdrawn:
            findings.append(
                f"cluster: deposited value {deposited} exceeds issued "
                f"value {withdrawn}"
            )

    return InvariantReport(findings=tuple(findings))

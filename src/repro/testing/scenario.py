"""Scenario replay: market flows under faults, with crash recovery.

Two runners, one per market mechanism:

* :func:`run_deposit_scenario` — PPMSdec.  Spend tokens are minted
  once (:func:`build_deposit_kit`) against a fixed CL keypair, then a
  fresh journaled :class:`~repro.service.server.MarketService` replays
  the deposit traffic under a :class:`~repro.testing.faults.FaultPlan`:
  requests dropped, duplicated and reordered, the service killed at
  scripted envelopes and recovered from its write-ahead journal plus
  the latest checkpoint.
* :func:`run_pbs_scenario` — PPMSpbs.  Unitary coins are minted by a
  full Algorithm-4 run (:func:`build_pbs_kit`, ``deposit=False``), and
  a minimal journaled deposit endpoint over
  :class:`~repro.core.ppms_pbs.VirtualBankPbs` replays the deposits
  under the same fault machinery.

Both runners model the client side of an at-least-once network: a
delivery that dies in a :class:`~repro.testing.faults.CrashPoint` is
*retried under the same request id* after recovery, which is exactly
what makes the exactly-once layer (rid dedupe + journaled replies)
observable.  After every recovery — and once more at the end — the
global invariants run: balance conservation, serial-number uniqueness,
ledger/journal agreement, and the scenario-level checks (every
delivered request answered, at most one ``OK`` per coin, per-account
balances reconciling against the verdicts).

Everything is deterministic in the plan's seed; a failing
:class:`ScenarioResult` prints the seed, the full fault schedule, and
the one-liner that replays it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import repro.obs as obs
from repro.core.pbs_ledger import audit_pbs_bank, restore_pbs_bank, snapshot_pbs_bank
from repro.core.ppms_pbs import CoinReceipt, PPMSpbsSession, VirtualBankPbs
from repro.crypto import rsa
from repro.crypto.cl_sig import CLKeyPair, cl_blind_issue, cl_keygen
from repro.crypto.partial_blind import verify_partial_blind
from repro.ecash.dec import begin_withdrawal, finish_withdrawal, setup
from repro.ecash.spend import DECParams, SpendToken, create_spend
from repro.net.transport import Transport
from repro.service.batcher import VerificationBatcher
from repro.service.journal import Checkpoint, Journal
from repro.service.server import MarketService
from repro.service.shard import ShardedBank
from repro.testing.faults import CrashPoint, FaultClock, FaultPlan, FaultyTransport
from repro.testing.invariants import check_recovery_invariants

__all__ = [
    "DepositKit",
    "PbsDepositService",
    "PbsKit",
    "ScenarioResult",
    "build_deposit_kit",
    "build_pbs_kit",
    "run_deposit_scenario",
    "run_pbs_scenario",
    "toy_market_params",
]


def toy_market_params(
    rng: random.Random, *, level: int = 3
) -> tuple[DECParams, CLKeyPair]:
    """The toy PPMSdec substrate every fast harness shares.

    One recipe — :func:`build_deposit_kit`'s defaults, the campaign
    engine's substrate, the conftest fixtures — so a seed means the
    same parameters everywhere.  Toy sizes only: 64-bit security, fake
    pairing, 4 edge rounds.
    """
    params = setup(level, rng, security_bits=64, real_pairing=False, edge_rounds=4)
    return params, cl_keygen(params.backend, rng)


# ---------------------------------------------------------------------------
# result type
# ---------------------------------------------------------------------------

@dataclass
class ScenarioResult:
    """Everything one scenario run observed — and how to replay it."""

    name: str
    plan: FaultPlan
    delivered: int = 0
    duplicates: int = 0
    dropped: tuple[int, ...] = ()
    crashes: int = 0
    recoveries: int = 0
    checkpoints: int = 0
    ok: int = 0
    rejected: int = 0
    errors: int = 0
    verdicts: dict[str, str] = field(default_factory=dict)
    findings: tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        return not self.findings

    def report(self) -> str:
        """Multi-line failure report: seed, schedule, findings, replay."""
        runner = (
            "run_deposit_scenario" if self.name == "ppms-dec" else "run_pbs_scenario"
        )
        lines = [
            f"scenario {self.name} under fault seed {self.plan.seed}",
            f"fault schedule: {self.plan.describe()}",
            f"delivered {self.delivered} requests "
            f"({self.duplicates} duplicated, {len(self.dropped)} dropped), "
            f"{self.crashes} crashes, {self.recoveries} recoveries, "
            f"{self.checkpoints} checkpoints",
            f"verdicts: {self.ok} OK, {self.rejected} REJECTED, {self.errors} ERROR",
        ]
        if self.findings:
            lines.append("invariant findings:")
            lines.extend(f"  - {finding}" for finding in self.findings)
        lines.append(
            f"replay: repro.testing.{runner}({self.plan.seed})  "
            f"(or REPRO_TEST_SEED to shift the whole suite)"
        )
        return "\n".join(lines)


def _count_verdicts(result: ScenarioResult) -> None:
    for status in result.verdicts.values():
        if status == "OK":
            result.ok += 1
        elif status == "REJECTED":
            result.rejected += 1
        elif status == "ERROR":
            result.errors += 1


# ---------------------------------------------------------------------------
# PPMSdec: deposit kit + scenario
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class _KitRequest:
    """One scripted deposit: a stable rid over a minted token."""

    rid: str
    aid: str
    token_index: int
    double_spend: bool  # True when this rid re-deposits an earlier token


@dataclass(frozen=True)
class DepositKit:
    """Pre-minted PPMSdec material, reusable across bank incarnations.

    Tokens are bound to *keypair*, not to any bank object — every
    scenario (and every recovery inside one) builds fresh banks around
    the same cryptographic identity, so the kit mints once per test
    session and the expensive ZKP work stays out of the fault loop.
    """

    params: DECParams
    keypair: CLKeyPair
    funding: tuple[tuple[str, int, int], ...]  # (aid, balance, coins minted)
    tokens: tuple[SpendToken, ...]
    amounts: tuple[int, ...]  # denomination of each token
    requests: tuple[_KitRequest, ...]


def build_deposit_kit(
    rng: random.Random,
    *,
    params: DECParams | None = None,
    keypair: CLKeyPair | None = None,
    n_accounts: int = 3,
    n_deposits: int = 8,
    node_level: int | None = None,
    double_spends: int = 2,
) -> DepositKit:
    """Fund, withdraw and mint *n_deposits* spend tokens client-side.

    Mirrors :func:`repro.service.loadgen.mint_deposit_traffic` but
    without a bank: the withdrawals are accounted for in ``funding``
    (balance minus coins), so the scenario's bank opens each account,
    debits the coins, and conservation still closes.  *double_spends*
    extra requests re-deposit earlier tokens under fresh request ids —
    the intentional frauds the service must keep rejecting across
    crashes.
    """
    if n_accounts < 1 or n_deposits < 1:
        raise ValueError("need at least one account and one deposit")
    if params is None:
        params, generated = toy_market_params(rng)
        if keypair is None:
            keypair = generated
    if keypair is None:
        keypair = cl_keygen(params.backend, rng)
    level = params.tree_level
    depth = level if node_level is None else node_level
    if not 0 <= depth <= level:
        raise ValueError(f"node_level must be in [0, {level}]")
    denomination = 1 << (level - depth)
    tokens_per_coin = 1 << depth
    coin_value = 1 << level

    per_account = -(-n_deposits // n_accounts)
    coins_per_account = -(-per_account // tokens_per_coin)

    funding: list[tuple[str, int, int]] = []
    tokens: list[SpendToken] = []
    owners: list[str] = []
    by_account: list[list[int]] = []  # token indices, in per-account mint order
    for i in range(n_accounts):
        aid = f"sp{i}"
        funding.append((aid, coins_per_account * coin_value, coins_per_account))
        mine: list[int] = []
        for _ in range(coins_per_account):
            secret, request = begin_withdrawal(params, rng)
            signature = cl_blind_issue(params.backend, keypair, request, rng)
            coin = finish_withdrawal(params, keypair.public, secret, signature)
            wallet = coin.wallet()
            while len(mine) < per_account and wallet.balance >= denomination:
                node = wallet.allocate(denomination)
                tokens.append(
                    create_spend(
                        params, keypair.public, coin.secret, coin.signature, node, rng
                    )
                )
                owners.append(aid)
                mine.append(len(tokens) - 1)
        by_account.append(mine)
    # interleave senders round-robin (worst case for per-sender FIFO),
    # trimmed to exactly n_deposits fresh tokens
    order = [
        by_account[i][j]
        for j in range(per_account)
        for i in range(n_accounts)
        if j < len(by_account[i])
    ][:n_deposits]

    requests = [
        _KitRequest(rid=f"dep:{j}", aid=owners[k], token_index=k, double_spend=False)
        for j, k in enumerate(order)
    ]
    for extra in range(double_spends):
        # the fraud is scripted strictly after its victim, so in a
        # fault-free run the fresh deposit wins and the re-deposit is
        # the one rejected (faults may still reorder them — the
        # scenario checks "at most one OK per token" either way)
        victim_pos = rng.randrange(len(requests))
        victim = requests[victim_pos]
        requests.insert(
            rng.randrange(victim_pos + 1, len(requests) + 1),
            _KitRequest(
                rid=f"dep:ds{extra}",
                aid=victim.aid,
                token_index=victim.token_index,
                double_spend=True,
            ),
        )
    return DepositKit(
        params=params,
        keypair=keypair,
        funding=tuple(funding),
        tokens=tuple(tokens),
        amounts=tuple(t.denomination(level) for t in tokens),
        requests=tuple(requests),
    )


def run_deposit_scenario(
    plan: FaultPlan | int,
    *,
    kit: DepositKit | None = None,
    n_shards: int = 3,
    max_batch: int = 4,
    checkpoint_every: int = 5,
    telemetry: "obs.Telemetry | None" = None,
) -> ScenarioResult:
    """Replay the kit's deposit traffic under *plan*; verify everything.

    The journal object stands in for durable storage: it survives every
    :class:`CrashPoint` while the service, bank and batcher objects are
    abandoned, exactly the process-death model.  Checkpoints are taken
    every *checkpoint_every* successful deliveries, so recoveries
    exercise snapshot-plus-tail replay, not just full replay.

    *telemetry* (an :class:`repro.obs.Telemetry`) is handed to every
    incarnation, so one trace shows a request crossing a crash: its
    retry keeps the rid, hence the same trace id.
    """
    if isinstance(plan, int):
        plan = FaultPlan.from_seed(plan)
    if kit is None:
        kit = build_deposit_kit(random.Random(f"deposit-kit:{plan.seed}"))
    result = ScenarioResult(name="ppms-dec", plan=plan)
    journal = Journal(telemetry=telemetry)
    clock = FaultClock(plan.crash_points)
    checkpoint: Checkpoint | None = None
    findings: list[str] = []

    def fresh_batcher() -> VerificationBatcher:
        return VerificationBatcher(
            kit.params, kit.keypair, max_batch=max_batch, seed=7,
            warm_tables=False, telemetry=telemetry,
        )

    # first incarnation: fund the accounts and book the withdrawals the
    # kit's coins correspond to.  Journaled but rid-less — these are
    # out-of-band setup mutations (same as loadgen minting), not
    # requests with a client lifecycle; each record replays exactly once
    bank = ShardedBank(
        kit.params, kit.keypair, random.Random(1), n_shards=n_shards,
        journal=journal, telemetry=telemetry,
    )
    for aid, balance, coins in kit.funding:
        bank.open_account(aid, balance)
        for _ in range(coins):
            bank.apply_withdrawal(aid)
    service = MarketService(
        bank,
        transport=FaultyTransport(clock),
        batcher=fresh_batcher(),
        rng=random.Random(2),
        telemetry=telemetry,
    )

    def recover() -> MarketService:
        result.recoveries += 1
        recovered = MarketService.recover(
            kit.params,
            kit.keypair,
            journal,
            checkpoint=checkpoint,
            n_shards=n_shards,
            transport=FaultyTransport(clock),
            batcher=fresh_batcher(),
            telemetry=telemetry,
        )
        sweep = check_recovery_invariants(recovered.bank, journal)
        findings.extend(
            f"after recovery {result.recoveries}: {f}" for f in sweep.findings
        )
        return recovered

    schedule, dropped = plan.perturb(len(kit.requests))
    result.dropped = dropped
    for delivery in schedule:
        request = kit.requests[delivery.original]
        if delivery.duplicate:
            result.duplicates += 1
        while True:  # the client retries through crashes, same rid
            try:
                service.submit(
                    request.aid,
                    "deposit",
                    {"aid": request.aid, "token": kit.tokens[request.token_index]},
                    rid=request.rid,
                )
                service.step()
                break
            except CrashPoint:
                service = recover()
        result.delivered += 1
        if checkpoint_every and result.delivered % checkpoint_every == 0:
            checkpoint = service.checkpoint()
            result.checkpoints += 1
    while True:
        try:
            service.drain()
            break
        except CrashPoint:
            service = recover()
    result.crashes = len(clock.fired)

    # final invariant sweep over the surviving incarnation
    sweep = check_recovery_invariants(service.bank, journal)
    findings.extend(f"final: {f}" for f in sweep.findings)

    # scenario-level checks -------------------------------------------------
    delivered_rids = {kit.requests[d.original].rid for d in schedule}
    for request in kit.requests:
        reply = service.reply_for(request.rid)
        if request.rid not in delivered_rids:
            if reply is not None:
                findings.append(
                    f"rid {request.rid!r} was dropped by the network yet answered"
                )
            continue
        if reply is None:
            findings.append(f"rid {request.rid!r} delivered but never answered")
            continue
        result.verdicts[request.rid] = reply[0]
    _count_verdicts(result)

    ok_by_token: dict[int, list[str]] = {}
    for request in kit.requests:
        if result.verdicts.get(request.rid) == "OK":
            ok_by_token.setdefault(request.token_index, []).append(request.rid)
    for token_index, rids in sorted(ok_by_token.items()):
        if len(rids) > 1:
            findings.append(
                f"token {token_index} deposited OK under {len(rids)} rids "
                f"{rids} — a double deposit was admitted"
            )

    expected = {aid: balance - coins * (1 << kit.params.tree_level)
                for aid, balance, coins in kit.funding}
    token_owner = {r.token_index: r.aid for r in kit.requests}
    for token_index in ok_by_token:
        # all rids of one token share an owner; credit the token once
        expected[token_owner[token_index]] += kit.amounts[token_index]
    for aid, want in expected.items():
        have = service.bank.balance(aid)
        if have != want:
            findings.append(
                f"account {aid!r} balance {have} != reconciled {want} "
                "(verdicts and books disagree)"
            )
    result.findings = tuple(findings)
    return result


# ---------------------------------------------------------------------------
# PPMSpbs: kit + journaled deposit endpoint + scenario
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PbsKit:
    """Pre-minted PPMSpbs material: accounts, verified coins, script.

    Built by one full fault-free Algorithm-4 run with the deposits held
    back (``deposit=False``), so the scenario replays *only* the
    deposit step — the part the MA's books depend on — under faults.
    """

    accounts: tuple[tuple[bytes, tuple[int, int], int], ...]  # (aid, key, balance)
    receipts: tuple[CoinReceipt, ...]
    sp_keys: tuple[tuple[int, int], ...]  # per receipt, the SP's account key
    requests: tuple[_KitRequest, ...]  # aid field unused (keys identify parties)


def build_pbs_kit(
    rng: random.Random,
    *,
    n_sps: int = 3,
    rsa_bits: int = 512,
    extra_funds: int = 1,
    double_spends: int = 1,
) -> PbsKit:
    """Run Algorithm 4 once (no deposits); script the deposit replay."""
    if n_sps < 1:
        raise ValueError("need at least one sensing participant")
    session = PPMSpbsSession(rng, rsa_bits=rsa_bits)
    jo = session.new_job_owner(funds=n_sps + extra_funds)
    sps = [session.new_participant() for _ in range(n_sps)]
    receipts = session.run_job(jo, sps, deposit=False)
    accounts = tuple(
        (aid, session.ma.bank.bound_keys[aid], balance)
        for aid, balance in session.ma.bank.accounts.items()
    )
    requests = [
        _KitRequest(rid=f"pbs:{i}", aid="", token_index=i, double_spend=False)
        for i in range(len(receipts))
    ]
    for extra in range(double_spends):
        victim_pos = rng.randrange(len(requests))
        victim = requests[victim_pos]
        requests.insert(
            rng.randrange(victim_pos + 1, len(requests) + 1),
            _KitRequest(
                rid=f"pbs:ds{extra}",
                aid="",
                token_index=victim.token_index,
                double_spend=True,
            ),
        )
    return PbsKit(
        accounts=accounts,
        receipts=tuple(receipts),
        sp_keys=tuple((sp.account_pub.n, sp.account_pub.e) for sp in sps),
        requests=tuple(requests),
    )


class PbsDepositService:
    """Minimal journaled deposit endpoint over :class:`VirtualBankPbs`.

    The same write-ahead discipline as :class:`MarketService`, scaled
    to the unitary bank: verify (pure) → journal the ``apply`` → mutate
    → journal the ``reply`` → send.  Request-id dedupe gives retries
    their cached verdicts, so at-least-once delivery stays exactly-once
    on the books.

    Public because the campaign engine (:mod:`repro.sim.campaign`)
    drives PPMSpbs lifecycles against it; the fault scenarios here keep
    using it through the same interface.
    """

    def __init__(self, bank: VirtualBankPbs, journal: Journal,
                 transport: Transport | None = None) -> None:
        self.bank = bank
        self.journal = journal
        # the journal carries the scenario's telemetry stack; sharing it
        # keeps pbs submit spans and journal_append spans on one tracer
        self.obs = journal.obs
        self.transport = transport if transport is not None else Transport()
        self._replies: dict[str, tuple[str, dict]] = {}

    @staticmethod
    def _fresh_bank(kit: PbsKit) -> VirtualBankPbs:
        bank = VirtualBankPbs()
        for aid, key, balance in kit.accounts:
            bank.accounts[aid] = balance
            bank.bound_keys[aid] = tuple(key)
        return bank

    @classmethod
    def boot(cls, kit: PbsKit, journal: Journal,
             transport: Transport) -> "PbsDepositService":
        return cls(cls._fresh_bank(kit), journal, transport)

    @classmethod
    def recover(
        cls,
        kit: PbsKit,
        journal: Journal,
        transport: Transport,
        *,
        checkpoint: Checkpoint | None = None,
    ) -> "PbsDepositService":
        """Rebuild from the checkpoint plus the journal tail."""
        bank = cls._fresh_bank(kit)
        start = -1
        if checkpoint is not None:
            restore_pbs_bank(bank, checkpoint.blobs[0])
            start = checkpoint.lsn
        cls._replay_into(bank, journal, start)
        service = cls(bank, journal, transport)
        for record in journal.records():
            if record.kind == "reply":
                service._replies.setdefault(
                    record.rid,
                    (record.payload["status"], record.payload["body"]),
                )
        for record in journal.records():
            # applied but crash before the reply record: synthesize OK
            if record.kind == "apply" and record.rid not in service._replies:
                service._replies[record.rid] = ("OK", {})
        return service

    @staticmethod
    def _replay_into(bank: VirtualBankPbs, journal: Journal, start: int) -> None:
        applied: set[str] = set()
        for record in journal.records():
            if record.kind != "apply":
                continue
            if record.lsn <= start:
                applied.add(record.rid)
                continue
            if record.rid in applied:
                continue
            applied.add(record.rid)
            payload = record.payload
            key = (payload["payer"], payload["serial"])
            if key in bank.spent_serials:
                continue  # folded into the checkpoint already
            bank.spent_serials.add(key)
            bank.transfer_unit(payload["payer"], payload["payee"])

    def checkpoint(self) -> Checkpoint:
        return Checkpoint(
            lsn=self.journal.last_lsn, blobs=(snapshot_pbs_bank(self.bank),)
        )

    def reply_for(self, rid: str) -> tuple[str, dict] | None:
        return self._replies.get(rid)

    def submit(self, rid: str, signature, sp_key: tuple[int, int],
               jo_key: tuple[int, int]) -> str:
        """One deposit attempt; returns the verdict status."""
        tracer = self.obs.tracer
        with tracer.span("submit",
                         trace=obs.trace_id(rid) if tracer.enabled else None,
                         kind="pbs-deposit"):
            return self._submit(rid, signature, sp_key, jo_key)

    def _submit(self, rid: str, signature, sp_key: tuple[int, int],
                jo_key: tuple[int, int]) -> str:
        delivered = self.transport.send(
            "SP", "MA-pbs", "deposit",
            {"sig": signature, "sp_key": list(sp_key), "jo_key": list(jo_key)},
        )
        if rid in self._replies:
            status, body = self._replies[rid]
            self.transport.send("MA-pbs", "SP", "reply", {"status": status, **body})
            return status
        jo_pub = rsa.RSAPublicKey(*delivered["jo_key"])
        sp_pub = rsa.RSAPublicKey(*delivered["sp_key"])
        sig = delivered["sig"]
        if not verify_partial_blind(jo_pub, sp_pub.fingerprint(), sig):
            return self._finish(rid, "ERROR", {"error": "invalid signature"})
        payer, payee = jo_pub.fingerprint(), sp_pub.fingerprint()
        if (payer, sig.common_info) in self.bank.spent_serials:
            return self._finish(rid, "REJECTED", {"error": "double deposit"})
        if payee not in self.bank.accounts:
            return self._finish(rid, "ERROR", {"error": "unknown payee"})
        if self.bank.accounts.get(payer, 0) < 1:
            return self._finish(rid, "ERROR", {"error": "payer underfunded"})
        self.journal.append(
            "apply", rid, "pbs-deposit",
            {"payer": payer, "payee": payee, "serial": sig.common_info},
        )
        self.bank.spent_serials.add((payer, sig.common_info))
        self.bank.transfer_unit(payer, payee)
        return self._finish(rid, "OK", {})

    def _finish(self, rid: str, status: str, body: dict) -> str:
        with self.obs.tracer.span("reply", status=status):
            self.journal.append("reply", rid, "pbs-deposit",
                                {"status": status, "body": body})
            self._replies[rid] = (status, body)
            self.transport.send("MA-pbs", "SP", "reply",
                                {"status": status, **body})
        return status


#: legacy private name, kept for older harness code
_PbsDepositService = PbsDepositService


def _pbs_findings(service: PbsDepositService, kit: PbsKit,
                  journal: Journal) -> list[str]:
    """PBS analogue of the recovery invariants: audit + journal agreement."""
    findings = list(audit_pbs_bank(service.bank).findings)
    shadow = PbsDepositService._fresh_bank(kit)
    PbsDepositService._replay_into(shadow, journal, -1)
    live = service.bank
    if live.accounts != shadow.accounts:
        findings.append(
            f"journal disagreement on accounts: live {live.accounts} "
            f"!= replayed {shadow.accounts}"
        )
    if live.spent_serials != shadow.spent_serials:
        findings.append(
            "journal disagreement on spent serials: "
            f"{len(live.spent_serials ^ shadow.spent_serials)} differ"
        )
    if live.transaction_log != shadow.transaction_log:
        findings.append("journal disagreement on the transaction log")
    applied: dict[str, int] = {}
    for record in journal.records():
        if record.kind == "apply":
            applied[record.rid] = applied.get(record.rid, 0) + 1
    for rid, count in applied.items():
        if count > 1:
            findings.append(f"rid {rid!r} has {count} apply records (double-applied)")
    return findings


def run_pbs_scenario(
    plan: FaultPlan | int,
    *,
    kit: PbsKit | None = None,
    checkpoint_every: int = 3,
    telemetry: "obs.Telemetry | None" = None,
) -> ScenarioResult:
    """Replay the kit's unitary deposits under *plan*; verify everything."""
    if isinstance(plan, int):
        plan = FaultPlan.from_seed(plan)
    if kit is None:
        kit = build_pbs_kit(random.Random(f"pbs-kit:{plan.seed}"))
    result = ScenarioResult(name="ppms-pbs", plan=plan)
    journal = Journal(telemetry=telemetry)
    clock = FaultClock(plan.crash_points)
    checkpoint: Checkpoint | None = None
    findings: list[str] = []
    service = PbsDepositService.boot(kit, journal, FaultyTransport(clock))

    def recover() -> PbsDepositService:
        result.recoveries += 1
        recovered = PbsDepositService.recover(
            kit, journal, FaultyTransport(clock), checkpoint=checkpoint
        )
        findings.extend(
            f"after recovery {result.recoveries}: {f}"
            for f in _pbs_findings(recovered, kit, journal)
        )
        return recovered

    schedule, dropped = plan.perturb(len(kit.requests))
    result.dropped = dropped
    for delivery in schedule:
        request = kit.requests[delivery.original]
        receipt = kit.receipts[request.token_index]
        if delivery.duplicate:
            result.duplicates += 1
        while True:
            try:
                service.submit(
                    request.rid,
                    receipt.signature,
                    kit.sp_keys[request.token_index],
                    receipt.jo_account_key,
                )
                break
            except CrashPoint:
                service = recover()
        result.delivered += 1
        if checkpoint_every and result.delivered % checkpoint_every == 0:
            checkpoint = service.checkpoint()
            result.checkpoints += 1
    result.crashes = len(clock.fired)
    findings.extend(f"final: {f}" for f in _pbs_findings(service, kit, journal))

    delivered_rids = {kit.requests[d.original].rid for d in schedule}
    for request in kit.requests:
        reply = service.reply_for(request.rid)
        if request.rid not in delivered_rids:
            if reply is not None:
                findings.append(
                    f"rid {request.rid!r} was dropped by the network yet answered"
                )
            continue
        if reply is None:
            findings.append(f"rid {request.rid!r} delivered but never answered")
            continue
        result.verdicts[request.rid] = reply[0]
    _count_verdicts(result)

    ok_by_receipt: dict[int, list[str]] = {}
    for request in kit.requests:
        if result.verdicts.get(request.rid) == "OK":
            ok_by_receipt.setdefault(request.token_index, []).append(request.rid)
    for receipt_index, rids in sorted(ok_by_receipt.items()):
        if len(rids) > 1:
            findings.append(
                f"coin {receipt_index} deposited OK under {len(rids)} rids "
                f"{rids} — a double deposit was admitted"
            )

    expected = {aid: balance for aid, _key, balance in kit.accounts}
    for receipt_index in ok_by_receipt:
        receipt = kit.receipts[receipt_index]
        payer = rsa.RSAPublicKey(*receipt.jo_account_key).fingerprint()
        payee = rsa.RSAPublicKey(*kit.sp_keys[receipt_index]).fingerprint()
        expected[payer] -= 1
        expected[payee] += 1
    for aid, want in expected.items():
        have = service.bank.accounts.get(aid)
        if have != want:
            findings.append(
                f"account {aid.hex()} balance {have} != reconciled {want} "
                "(verdicts and books disagree)"
            )
    result.findings = tuple(findings)
    return result

"""A tiny seed-driven property-test runner (no third-party dependency).

Hypothesis is an optional dev dependency of this repo; the crypto
substrate's core algebraic laws deserve property coverage that runs
*everywhere*, including environments with nothing but pytest.  This
runner is deliberately minimal: a property is a function of one
``random.Random``, run over N deterministically derived cases.

Seeding contract (shared with ``tests/conftest.py``):

* the base seed comes from ``REPRO_TEST_SEED`` (any Python int literal,
  e.g. ``57005`` or ``0xDEAD``), defaulting to a fixed constant — the
  default run is byte-reproducible;
* case *i* of property *p* uses ``Random(f"{p}:{base}:{i}")`` — cases
  are independent of each other and of execution order;
* a failure raises :class:`PropertyError` naming the property, the
  base seed, and the failing case index, plus the exact environment
  variable setting that replays it.  One pytest invocation reproduces
  the failure.

Usage::

    @property_test(cases=128)
    def test_modinv_roundtrip(rng):
        ...

The decorated function takes no pytest fixtures; it is a plain
zero-argument test by the time pytest sees it.
"""

from __future__ import annotations

import os
import random
from typing import Callable

__all__ = ["PropertyError", "env_seed", "property_test", "DEFAULT_SEED"]

#: Base seed when ``REPRO_TEST_SEED`` is unset — keep in sync with
#: ``tests/conftest.py``.
DEFAULT_SEED = 0xC0FFEE


def env_seed(default: int = DEFAULT_SEED) -> int:
    """The effective base seed: ``REPRO_TEST_SEED`` or *default*."""
    raw = os.environ.get("REPRO_TEST_SEED")
    if raw is None or raw.strip() == "":
        return default
    try:
        return int(raw.strip(), 0)
    except ValueError as exc:
        raise ValueError(
            f"REPRO_TEST_SEED must be an integer literal, got {raw!r}"
        ) from exc


class PropertyError(AssertionError):
    """A property failed; carries everything needed to replay it."""

    def __init__(self, name: str, base_seed: int, case: int, cases: int,
                 cause: BaseException) -> None:
        self.property_name = name
        self.base_seed = base_seed
        self.case = case
        super().__init__(
            f"property {name!r} failed at case {case + 1}/{cases} "
            f"under base seed {base_seed:#x}: {cause}\n"
            f"replay with: REPRO_TEST_SEED={base_seed:#x} "
            f"python -m pytest -k {name} "
            "(case derivation is deterministic in the seed)"
        )


def property_test(
    *, cases: int = 64, seed: int | None = None, name: str | None = None
) -> Callable[[Callable[[random.Random], None]], Callable[[], None]]:
    """Decorate ``fn(rng)`` into a pytest-collectable property test.

    Runs *cases* independent cases, each with its own deterministically
    derived RNG.  *seed* pins the base seed (overriding the
    environment) — use only for regression cases; normal properties
    should float on ``REPRO_TEST_SEED``.
    """
    if cases < 1:
        raise ValueError("a property needs at least one case")

    def decorate(fn: Callable[[random.Random], None]) -> Callable[[], None]:
        prop_name = name or fn.__name__

        def run() -> None:
            base = seed if seed is not None else env_seed()
            for case in range(cases):
                rng = random.Random(f"{prop_name}:{base}:{case}")
                try:
                    fn(rng)
                except AssertionError as exc:
                    raise PropertyError(prop_name, base, case, cases, exc) from exc

        # deliberately NOT functools.wraps: pytest would follow the
        # wrapped signature and mistake ``rng`` for a fixture
        run.__name__ = fn.__name__
        run.__doc__ = fn.__doc__
        run.__module__ = fn.__module__
        return run

    return decorate

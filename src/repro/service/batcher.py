"""Coalescing batcher for the bank's crypto hot loop.

Deposit verification and blind withdrawal issuance are the two
operations whose cost is pure bigint arithmetic — work that neither
releases the GIL nor shares state between requests.  The batcher
exploits both properties:

* **Coalescing** — pending jobs accumulate until a batch is full (or
  the server forces a flush), then every deposit in the batch goes
  through :func:`repro.ecash.batch.batch_verify_spends`, which merges
  the first CL pairing equation of *n* tokens into two multi-scalar
  pairings instead of ``2n``.
* **Process-pool dispatch** — batches are split into per-worker chunks
  and handed to a :class:`~repro.service.workers.VerificationBackend`:
  inline for one worker (the test-suite/profiling path), the
  persistent warm pool of :class:`~repro.service.workers.PooledBackend`
  for many.  Chunk seeds come from
  :func:`repro.metrics.parallel.sweep_points` either way, so outcomes
  are bit-identical regardless of backend or worker scheduling.

The batcher only does the *pure* part — verification verdicts, leaf-
serial expansion, signature issuance.  All state mutation (conflict
checks, credits, debits) stays with the caller, which applies results
serially in submission order; that split is what makes parallel
verification safe without any locking.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass
from typing import Sequence

import repro.obs as obs
from repro.crypto.cl_sig import CLKeyPair, CLPublicKey, CLSignature, cl_blind_issue
from repro.ecash.batch import batch_verify_spends
from repro.ecash.dec import BlindIssuanceRequest
from repro.ecash.spend import (
    DECParams,
    SpendToken,
    adopt_verification_tables,
    verify_spend,
    warm_verification_tables,
)
from repro.ecash.tree import leaf_serials
from repro.metrics.parallel import SweepPoint
from repro.service.workers import InlineBackend, VerificationBackend, make_backend

__all__ = [
    "DepositJob",
    "WithdrawJob",
    "DepositOutcome",
    "WithdrawOutcome",
    "VerificationBatcher",
]


@dataclass(frozen=True)
class DepositJob:
    """A deposit awaiting verification.

    ``trace`` is the request's telemetry trace id (already redacted —
    a digest of the rid, never the rid itself); the flush attributes
    its wall time to every job it verified under that id.
    """

    seq: int
    aid: str
    token: SpendToken
    context: bytes = b""
    trace: str = ""


@dataclass(frozen=True)
class WithdrawJob:
    """A withdrawal awaiting blind issuance."""

    seq: int
    aid: str
    request: BlindIssuanceRequest
    trace: str = ""


@dataclass(frozen=True)
class DepositOutcome:
    """Verification verdict plus the expanded leaf serials (if valid)."""

    seq: int
    valid: bool
    serials: tuple[int, ...] | None


@dataclass(frozen=True)
class WithdrawOutcome:
    """The blindly issued signature for a withdrawal job."""

    seq: int
    signature: CLSignature


def _batch_worker(point: SweepPoint) -> list:
    """Process one chunk (module-level for picklability).

    ``point.params`` is a tagged tuple; the point's deterministic seed
    drives both the small-exponent batching randomness and the blind-
    issuance randomness, so a flush's outcome is independent of how
    chunks land on workers.
    """
    rng = random.Random(point.seed)
    tag = point.params[0]
    if tag == "deposit":
        _, params, bank_pk, tokens, context, pairing_batch, sigma_batch = point.params
        if (pairing_batch or sigma_batch) and len(tokens) > 1:
            verdicts = batch_verify_spends(params, bank_pk, tokens, rng,
                                           context=context, sigma_batch=sigma_batch)
        else:
            verdicts = [
                verify_spend(params, bank_pk, token, context=context)
                for token in tokens
            ]
        out = []
        for token, valid in zip(tokens, verdicts):
            serials = (
                tuple(
                    leaf_serials(
                        params.tower, token.node, token.node_key, params.tree_level
                    )
                )
                if valid
                else None
            )
            out.append((valid, serials))
        return out
    if tag == "withdraw":
        _, params, keypair, requests = point.params
        return [
            cl_blind_issue(params.backend, keypair, request, rng)
            for request in requests
        ]
    raise ValueError(f"unknown batch chunk tag {tag!r}")


class VerificationBatcher:
    """Accumulates crypto jobs and flushes them through a process pool."""

    def __init__(
        self,
        params: DECParams,
        keypair: CLKeyPair,
        *,
        max_batch: int = 32,
        processes: int = 1,
        pairing_batch: bool = True,
        sigma_batch: bool = True,
        seed: int = 0,
        warm_tables: bool = True,
        tables: bytes | None = None,
        telemetry: "obs.Telemetry | None" = None,
        backend: VerificationBackend | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        if processes < 1:
            raise ValueError("processes must be positive")
        self.params = params
        self.keypair = keypair
        self._bind_obs(telemetry)
        if tables is not None:
            # a serialized table blob (from a previous incarnation or a
            # cluster peer) replaces the local warm-up entirely when it
            # installs cleanly; a stale/corrupt blob falls through to
            # the ordinary build
            try:
                adopt_verification_tables(params, tables)
                warm_tables = False
            except Exception:
                pass
        if warm_tables:
            # build the fixed-base/Miller tables for the bank key and the
            # tower generators up front: steady-state flushes (at least
            # the in-process ones) then never pay table-build cost
            warm_verification_tables(params, keypair.public)
        self.max_batch = max_batch
        # an explicit backend wins; otherwise processes>1 builds the
        # warm persistent pool (falling back to inline if the host
        # cannot spawn processes) and processes=1 stays in-process
        if backend is None:
            backend = (
                make_backend(params, keypair.public, processes=processes,
                             telemetry=telemetry)
                if processes > 1
                else InlineBackend()
            )
        self.backend = backend
        self.processes = backend.workers
        self.pairing_batch = pairing_batch
        self.sigma_batch = sigma_batch
        self._pending: deque[DepositJob | WithdrawJob] = deque()
        self._flush_seed = seed
        self.flushes = 0
        self.jobs_processed = 0

    def _bind_obs(self, telemetry: "obs.Telemetry | None") -> None:
        self.obs = telemetry if telemetry is not None else obs.get_default()
        registry = self.obs.registry
        self._m_flushes = registry.counter(
            "repro_batcher_flushes_total", "batches flushed through the pool"
        )
        self._m_jobs = registry.counter(
            "repro_batcher_jobs_total", "crypto jobs processed by flushes"
        )
        self._m_batch_size = registry.histogram(
            "repro_batch_size", "jobs per flushed batch",
            buckets=obs.SIZE_BUCKETS,
        )
        self._m_occupancy = registry.gauge(
            "repro_batcher_occupancy", "jobs waiting in the batcher"
        )

    def __len__(self) -> int:
        return len(self._pending)

    def close(self) -> None:
        """Release the dispatch backend's worker pool (idempotent)."""
        self.backend.close()

    @property
    def public_key(self) -> CLPublicKey:
        return self.keypair.public

    def submit(self, job: DepositJob | WithdrawJob) -> None:
        self._pending.append(job)
        self._m_occupancy.set(len(self._pending))

    @property
    def batch_ready(self) -> bool:
        return len(self._pending) >= self.max_batch

    def _chunk(self, items: Sequence, n_chunks: int) -> list[Sequence]:
        size = math.ceil(len(items) / n_chunks)
        return [items[i : i + size] for i in range(0, len(items), size)]

    def flush(self) -> list[DepositOutcome | WithdrawOutcome]:
        """Run up to ``max_batch`` pending jobs; outcomes in job order.

        Deposits sharing a verification context are batched together
        (the shared-pairing test needs one context per chunk);
        withdrawals chunk freely.  Chunks from one flush run in
        parallel across the pool.
        """
        take = min(self.max_batch, len(self._pending))
        if take == 0:
            return []
        jobs = [self._pending.popleft() for _ in range(take)]

        deposit_groups: dict[bytes, list[DepositJob]] = {}
        withdraws: list[WithdrawJob] = []
        for job in jobs:
            if isinstance(job, DepositJob):
                deposit_groups.setdefault(job.context, []).append(job)
            else:
                withdraws.append(job)

        grid: list[tuple] = []
        chunk_jobs: list[list[DepositJob | WithdrawJob]] = []
        # spread each group across the pool, but never below ~4 jobs per
        # chunk — tiny chunks waste the shared-pairing amortization
        for context, group in deposit_groups.items():
            n_chunks = max(1, min(self.processes, len(group) // 4 or 1))
            for chunk in self._chunk(group, n_chunks):
                grid.append(
                    (
                        "deposit",
                        self.params,
                        self.public_key,
                        tuple(job.token for job in chunk),
                        context,
                        self.pairing_batch,
                        self.sigma_batch,
                    )
                )
                chunk_jobs.append(list(chunk))
        if withdraws:
            n_chunks = max(1, min(self.processes, len(withdraws) // 4 or 1))
            for chunk in self._chunk(withdraws, n_chunks):
                grid.append(
                    ("withdraw", self.params, self.keypair,
                     tuple(job.request for job in chunk))
                )
                chunk_jobs.append(list(chunk))

        self._flush_seed += 1
        tracer = self.obs.tracer
        traced = tracer.enabled
        t0 = tracer.clock() if traced else 0.0
        chunk_results = self.backend.run(
            _batch_worker, grid, seed=self._flush_seed
        )
        if traced:
            t1 = tracer.clock()
            # one lane for the batcher itself, plus — for every job that
            # belongs to a traced request — a span on *that request's*
            # trace covering the flush it rode in: queueing-behind-a-batch
            # shows up inside the request timeline, where it belongs
            tracer.emit("batch_flush", trace="batcher", start=t0, end=t1,
                        batch=take, withdraws=len(withdraws), chunks=len(grid))
            for job in jobs:
                if job.trace:
                    tracer.emit(
                        "verify_spend" if isinstance(job, DepositJob)
                        else "blind_issue",
                        trace=job.trace, start=t0, end=t1, batch=take,
                    )

        by_seq: dict[int, DepositOutcome | WithdrawOutcome] = {}
        for chunk, results in zip(chunk_jobs, chunk_results):
            for job, result in zip(chunk, results):
                if isinstance(job, DepositJob):
                    valid, serials = result
                    by_seq[job.seq] = DepositOutcome(
                        seq=job.seq, valid=valid, serials=serials
                    )
                else:
                    by_seq[job.seq] = WithdrawOutcome(seq=job.seq, signature=result)
        self.flushes += 1
        self.jobs_processed += take
        self._m_flushes.inc()
        self._m_jobs.inc(take)
        self._m_batch_size.observe(take)
        self._m_occupancy.set(len(self._pending))
        return [by_seq[job.seq] for job in jobs]

"""Load generation against the market service, with latency reporting.

Drives a :class:`~repro.service.server.MarketService` with request
traffic shaped by the workload layer — arrival processes from
:mod:`repro.workloads.arrivals` set *when* requests land (and thus how
admission and batching behave), market compositions from
:mod:`repro.workloads.population` set who is depositing — and records
what a production operator would: per-request latency quantiles
(p50/p95/p99), throughput, shed counts, and SLO verdicts via
:mod:`repro.metrics.latency`.

Two clocks coexist deliberately.  The **arrival clock** is simulated
(the trace's timestamps feed admission's token bucket), because waiting
out a real Poisson process would measure ``sleep()``.  **Latency** is
wall-clock from accept to reply — the real cost of queueing behind a
batch plus the crypto itself — under as-fast-as-possible replay.

:func:`mint_deposit_traffic` does the client-side work (withdrawals,
wallet allocation, spend-token minting) out of band: load generation
measures the *bank*, so the clients arrive with tokens already minted,
exactly like real SPs who minted while sensing.
"""

from __future__ import annotations

import asyncio
import random
import threading
import time
from dataclasses import dataclass

from repro.crypto.cl_sig import cl_blind_issue
from repro.ecash.dec import begin_withdrawal, finish_withdrawal
from repro.ecash.spend import create_spend
from repro.metrics.latency import LatencyRecorder, LatencyReport, SLOTarget
from repro.net.wire import WireError, read_frame_async, write_frame_async
from repro.service.frontend import ServiceClient
from repro.service.server import Completion, MarketService

__all__ = [
    "Request",
    "LoadReport",
    "mint_deposit_traffic",
    "mint_offline_deposit_traffic",
    "mint_cluster_deposit_traffic",
    "run_trace",
    "run_socket_trace",
    "run_async_socket_trace",
    "run_cluster_trace",
]


@dataclass(frozen=True)
class Request:
    """One request the generator will submit.

    *rid* is the stable request id; ``None`` lets each backend mint
    its own.  Traces that pin rids replay with exactly-once semantics
    (retries and duplicates collapse onto one verdict), which is what
    the campaign engine and the fault scenarios need.
    """

    sender: str
    kind: str
    payload: dict
    rid: str | None = None


@dataclass(frozen=True)
class LoadReport:
    """Everything a load run observed."""

    latency: LatencyReport | None
    wall_elapsed: float
    submitted: int
    ok: int
    shed: int
    rejected: int
    errors: int
    slo_findings: tuple[str, ...]

    @property
    def completed(self) -> int:
        return self.ok + self.rejected + self.errors

    @property
    def slo_met(self) -> bool:
        return not self.slo_findings


def mint_deposit_traffic(
    service: MarketService,
    rng: random.Random,
    *,
    n_accounts: int,
    n_deposits: int,
    node_level: int | None = None,
    replay_fraction: float = 0.0,
    context: bytes = b"",
) -> list[Request]:
    """Fund accounts, withdraw coins, mint tokens; return deposit requests.

    Each account withdraws as many coins as its share of the traffic
    needs; tokens are minted round-robin across accounts so consecutive
    requests come from different senders (the worst case for per-sender
    FIFO).  With *replay_fraction* > 0, that fraction of the requests
    re-submit an earlier token — guaranteed double spends the service
    must reject.
    """
    params = service.bank.params
    bank = service.bank
    denomination, coin_value, per_account, coins_per_account, n_fresh, n_replays = \
        _traffic_shape(params, n_accounts, n_deposits, node_level, replay_fraction)

    by_account: list[list[Request]] = []
    for i in range(n_accounts):
        aid = f"sp{i}"
        bank.open_account(aid, coins_per_account * coin_value)
        mine: list[Request] = []
        for _ in range(coins_per_account):
            secret, request = begin_withdrawal(params, rng)
            signature = cl_blind_issue(params.backend, bank.keypair, request, rng)
            coin = finish_withdrawal(params, bank.public_key, secret, signature)
            bank.apply_withdrawal(aid)
            wallet = coin.wallet()
            while len(mine) < per_account and wallet.balance >= denomination:
                node = wallet.allocate(denomination)
                token = create_spend(
                    params, bank.public_key, coin.secret, coin.signature, node, rng
                )
                mine.append(
                    Request(sender=aid, kind="deposit",
                            payload={"aid": aid, "token": token, "context": context})
                )
        by_account.append(mine)

    # interleave senders round-robin so consecutive arrivals alternate
    # accounts (the worst case for per-sender FIFO)
    return _interleave_deposits(by_account, per_account,
                                n_fresh, n_replays, rng)


def _traffic_shape(params, n_accounts: int, n_deposits: int,
                   node_level: int | None, replay_fraction: float):
    """Validate the workload knobs; return the denomination arithmetic."""
    if n_accounts < 1 or n_deposits < 1:
        raise ValueError("need at least one account and one deposit")
    if not 0.0 <= replay_fraction < 1.0:
        raise ValueError("replay_fraction must be in [0, 1)")
    level = params.tree_level
    depth = level if node_level is None else node_level
    if not 0 <= depth <= level:
        raise ValueError(f"node_level must be in [0, {level}]")
    denomination = 1 << (level - depth)
    tokens_per_coin = 1 << depth
    coin_value = 1 << level
    n_replays = int(n_deposits * replay_fraction)
    n_fresh = n_deposits - n_replays
    per_account = -(-n_fresh // n_accounts)
    coins_per_account = -(-per_account // tokens_per_coin)
    return denomination, coin_value, per_account, coins_per_account, n_fresh, n_replays


def _interleave_deposits(by_account: list[list[Request]], per_account: int,
                         n_fresh: int, n_replays: int,
                         rng: random.Random) -> list[Request]:
    """Round-robin senders; splice in replayed (double-spend) requests."""
    fresh = [
        by_account[i][j]
        for j in range(per_account)
        for i in range(len(by_account))
        if j < len(by_account[i])
    ][:n_fresh]
    requests = list(fresh)
    for _ in range(n_replays):
        victim = fresh[rng.randrange(len(fresh))]
        requests.insert(rng.randrange(len(requests) + 1), victim)
    return requests


def mint_offline_deposit_traffic(
    params,
    keypair,
    rng: random.Random,
    *,
    n_accounts: int,
    n_deposits: int,
    node_level: int | None = None,
    replay_fraction: float = 0.0,
    context: bytes = b"",
) -> tuple[list[Request], list[Request]]:
    """Mint deposit traffic with the issuing key alone — no bank touched.

    Returns ``(open_requests, deposit_requests)``: the account-opening
    requests to replay first, then the deposits.  Issuance happens
    entirely client-side (the test harness holds the CL secrets), so
    the *same* request lists can be replayed against two independent
    services — the parity suite's tool for proving a cluster's replies
    byte-identical to a single node's.  The books don't conserve under
    this traffic (coins appear without withdrawal debits); use
    :func:`mint_cluster_deposit_traffic` when the sweep will check
    conservation.
    """
    denomination, coin_value, per_account, coins_per_account, n_fresh, n_replays = \
        _traffic_shape(params, n_accounts, n_deposits, node_level, replay_fraction)
    opens: list[Request] = []
    by_account: list[list[Request]] = []
    for i in range(n_accounts):
        aid = f"sp{i}"
        opens.append(Request(
            sender=aid, kind="open-account",
            payload={"aid": aid, "balance": coins_per_account * coin_value},
        ))
        mine: list[Request] = []
        for _ in range(coins_per_account):
            secret, request = begin_withdrawal(params, rng)
            signature = cl_blind_issue(params.backend, keypair, request, rng)
            coin = finish_withdrawal(params, keypair.public, secret, signature)
            wallet = coin.wallet()
            while len(mine) < per_account and wallet.balance >= denomination:
                node = wallet.allocate(denomination)
                token = create_spend(
                    params, keypair.public, coin.secret, coin.signature, node, rng
                )
                mine.append(
                    Request(sender=aid, kind="deposit",
                            payload={"aid": aid, "token": token, "context": context})
                )
        by_account.append(mine)
    return opens, _interleave_deposits(by_account, per_account,
                                       n_fresh, n_replays, rng)


def mint_cluster_deposit_traffic(
    router,
    params,
    public_key,
    rng: random.Random,
    *,
    n_accounts: int,
    n_deposits: int,
    node_level: int | None = None,
    replay_fraction: float = 0.0,
    context: bytes = b"",
) -> list[Request]:
    """Fund, withdraw and mint **over the wire**; return deposit requests.

    The cluster twin of :func:`mint_deposit_traffic`: that one reaches
    into ``service.bank`` directly, which no remote node allows, so
    here every account is opened and every coin withdrawn through the
    *router* — the blind-issuance signature comes back in the withdraw
    verdict and the client finishes the coin locally, exactly the
    paper's withdrawal protocol.  Books conserve (every deposited token
    traces to a journaled withdrawal debit on its account's node), so
    the cluster invariant sweep can hold conservation over the result.
    """
    denomination, coin_value, per_account, coins_per_account, n_fresh, n_replays = \
        _traffic_shape(params, n_accounts, n_deposits, node_level, replay_fraction)
    by_account: list[list[Request]] = []
    for i in range(n_accounts):
        aid = f"sp{i}"
        reply = router.request(
            "open-account",
            {"aid": aid, "balance": coins_per_account * coin_value},
            sender=aid,
        )
        if reply.get("status") != "OK":
            raise RuntimeError(f"open-account for {aid!r} failed: {reply}")
        mine: list[Request] = []
        for _ in range(coins_per_account):
            secret, request = begin_withdrawal(params, rng)
            reply = router.request("withdraw", {"aid": aid, "request": request},
                                   sender=aid)
            if reply.get("status") != "OK":
                raise RuntimeError(f"withdraw for {aid!r} failed: {reply}")
            coin = finish_withdrawal(params, public_key, secret,
                                     reply["signature"])
            wallet = coin.wallet()
            while len(mine) < per_account and wallet.balance >= denomination:
                node = wallet.allocate(denomination)
                token = create_spend(
                    params, public_key, coin.secret, coin.signature, node, rng
                )
                mine.append(
                    Request(sender=aid, kind="deposit",
                            payload={"aid": aid, "token": token, "context": context})
                )
        by_account.append(mine)
    return _interleave_deposits(by_account, per_account,
                                n_fresh, n_replays, rng)


def run_trace(
    service: MarketService,
    requests: list[Request],
    arrivals: list[float],
    *,
    slo: SLOTarget | None = None,
) -> LoadReport:
    """Replay *requests* at *arrivals* times; drain; report.

    The shorter of the two sequences bounds the run.  ``service.step``
    runs after every submission (so batches flush as soon as they
    fill), and the service is drained at the end — every admitted
    request is answered before the report is cut.
    """
    recorder = LatencyRecorder()
    counts = {"OK": 0, "BUSY": 0, "REJECTED": 0, "ERROR": 0}

    def observe(completion: Completion) -> None:
        counts[completion.status] = counts.get(completion.status, 0) + 1
        if completion.status != "BUSY":
            recorder.record(completion.latency)

    service.add_completion_observer(observe)
    wall_start = time.perf_counter()
    n = min(len(requests), len(arrivals))
    for request, at in zip(requests[:n], arrivals[:n]):
        service.submit(request.sender, request.kind, request.payload, now=at,
                       rid=request.rid)
        service.step()
    service.drain()
    wall_end = time.perf_counter()
    recorder.mark_span(wall_start, wall_end)

    report = recorder.report() if len(recorder) else None
    return LoadReport(
        latency=report,
        wall_elapsed=wall_end - wall_start,
        submitted=n,
        ok=counts["OK"],
        shed=counts["BUSY"],
        rejected=counts["REJECTED"],
        errors=counts["ERROR"],
        slo_findings=slo.check(report) if (slo is not None and report is not None) else (),
    )


def run_socket_trace(
    address: tuple[str, int],
    requests: list[Request],
    arrivals: list[float] | None = None,
    *,
    slo: SLOTarget | None = None,
    pipeline_depth: int = 64,
    timeout: float | None = 120.0,
) -> LoadReport:
    """Replay *requests* against a live socket front-end; drain; report.

    The service is a real network peer here: every request crosses the
    wire as a :mod:`repro.net.wire` frame and every verdict comes back
    as one.  Requests pipeline up to *pipeline_depth* outstanding on a
    single connection — deep enough to keep the front-end's dispatcher
    batching across the worker pool, bounded so latency numbers stay
    honest about queueing.  A reader thread correlates replies by
    ``cid`` (replies are not FIFO on the wire — BUSY sheds overtake
    batched deposits), so latency is wall-clock from frame-send to
    frame-receive, per request.

    *arrivals* feeds the service's simulated admission clock exactly as
    :func:`run_trace` does; ``None`` replays with all arrivals at 0.
    """
    if pipeline_depth < 1:
        raise ValueError("pipeline_depth must be positive")
    n = len(requests) if arrivals is None else min(len(requests), len(arrivals))
    recorder = LatencyRecorder()
    counts = {"OK": 0, "BUSY": 0, "REJECTED": 0, "ERROR": 0}
    sent_at: dict[int, float] = {}
    sent_lock = threading.Lock()  # orders "record send time" vs "pop it"
    window = threading.Semaphore(pipeline_depth)
    reader_error: list[BaseException] = []

    client = ServiceClient(address, timeout=timeout)

    def read_replies() -> None:
        try:
            for _ in range(n):
                reply = client.recv()
                done = time.perf_counter()
                status = reply.get("status", "ERROR")
                counts[status] = counts.get(status, 0) + 1
                with sent_lock:
                    start = sent_at.pop(reply.get("cid"), None)
                if status != "BUSY" and start is not None:
                    recorder.record(done - start)
                window.release()
        except BaseException as exc:  # surfaced to the submitting thread
            reader_error.append(exc)

    reader = threading.Thread(target=read_replies, name="loadgen-reader",
                              daemon=True)
    wall_start = time.perf_counter()
    reader.start()
    try:
        for i in range(n):
            window.acquire()
            if reader_error:
                raise reader_error[0]
            request = requests[i]
            at = arrivals[i] if arrivals is not None else 0.0
            with sent_lock:
                start = time.perf_counter()
                cid = client.send(request.kind, request.payload,
                                  sender=request.sender, now=at,
                                  rid=request.rid)
                sent_at[cid] = start
        reader.join(timeout=timeout)
        if reader.is_alive():
            raise TimeoutError(
                f"socket replay stalled: {len(sent_at)} replies outstanding"
            )
        if reader_error:
            raise reader_error[0]
    finally:
        client.close()
    wall_end = time.perf_counter()
    recorder.mark_span(wall_start, wall_end)

    report = recorder.report() if len(recorder) else None
    return LoadReport(
        latency=report,
        wall_elapsed=wall_end - wall_start,
        submitted=n,
        ok=counts["OK"],
        shed=counts["BUSY"],
        rejected=counts["REJECTED"],
        errors=counts["ERROR"],
        slo_findings=slo.check(report) if (slo is not None and report is not None) else (),
    )


def run_async_socket_trace(
    address: tuple[str, int],
    requests: list[Request],
    arrivals: list[float] | None = None,
    *,
    connections: int = 32,
    pipeline_depth: int = 8,
    slo: SLOTarget | None = None,
    timeout: float | None = 120.0,
) -> LoadReport:
    """Replay *requests* from many concurrent sockets; drain; report.

    The many-connection twin of :func:`run_socket_trace`, built for the
    asyncio front door: instead of one deep pipeline, the trace fans
    across *connections* sockets multiplexed on one client-side event
    loop — the same shape as a mobile-sensing population, many peers
    each a few requests deep.  Each sender is pinned to one connection
    (first appearance, round-robin), so per-sender request order is
    preserved on the wire and the service's per-sender FIFO still
    means what it means in the in-process harness.

    Replies correlate by ``cid`` per connection.  A reply *without* a
    cid is the async frontend's pre-parse ``BUSY`` (the payload holding
    the cid was never decoded); it is counted against the oldest
    outstanding request on that connection — the books stay balanced,
    the latency recorder skips it like any other shed.
    """
    if connections < 1:
        raise ValueError("connections must be positive")
    if pipeline_depth < 1:
        raise ValueError("pipeline_depth must be positive")
    n = len(requests) if arrivals is None else min(len(requests), len(arrivals))
    recorder = LatencyRecorder()
    counts: dict[str, int] = {"OK": 0, "BUSY": 0, "REJECTED": 0, "ERROR": 0}

    # pin each sender to one connection so its requests stay ordered
    assignment: dict[str, int] = {}
    per_conn: list[list[tuple[Request, float]]] = [[] for _ in range(connections)]
    for i in range(n):
        request = requests[i]
        at = arrivals[i] if arrivals is not None else 0.0
        slot = assignment.setdefault(request.sender, len(assignment) % connections)
        per_conn[slot].append((request, at))
    lanes = [lane for lane in per_conn if lane]

    async def drive(lane: list[tuple[Request, float]]) -> None:
        reader, writer = await asyncio.open_connection(*address)
        sent_at: dict[int, float] = {}
        window = asyncio.Semaphore(pipeline_depth)

        async def read_loop() -> None:
            remaining = len(lane)
            while remaining:
                reply = await read_frame_async(reader)
                if reply is None:
                    raise WireError("server closed the connection")
                done = time.perf_counter()
                status = reply.get("status", "ERROR")
                counts[status] = counts.get(status, 0) + 1
                cid = reply.get("cid")
                if cid is None and sent_at:
                    cid = next(iter(sent_at))  # pre-parse BUSY: oldest out
                start = sent_at.pop(cid, None)
                if status != "BUSY" and start is not None:
                    recorder.record(done - start)
                remaining -= 1
                window.release()

        read_task = asyncio.ensure_future(read_loop())
        try:
            for cid, (request, at) in enumerate(lane):
                await window.acquire()
                if read_task.done():
                    read_task.result()  # surface the reader's failure
                frame: dict = {"cid": cid, "kind": request.kind,
                               "payload": request.payload, "now": at,
                               "sender": request.sender}
                if request.rid is not None:
                    frame["rid"] = request.rid
                sent_at[cid] = time.perf_counter()
                await write_frame_async(writer, frame)
            await read_task
        finally:
            read_task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    async def replay() -> None:
        work = asyncio.gather(*(drive(lane) for lane in lanes))
        if timeout is not None:
            await asyncio.wait_for(work, timeout)
        else:
            await work

    wall_start = time.perf_counter()
    asyncio.run(replay())
    wall_end = time.perf_counter()
    recorder.mark_span(wall_start, wall_end)

    report = recorder.report() if len(recorder) else None
    return LoadReport(
        latency=report,
        wall_elapsed=wall_end - wall_start,
        submitted=n,
        ok=counts["OK"],
        shed=counts["BUSY"],
        rejected=counts["REJECTED"],
        errors=counts["ERROR"],
        slo_findings=slo.check(report) if (slo is not None and report is not None) else (),
    )


def run_cluster_trace(
    router,
    requests: list[Request],
    arrivals: list[float] | None = None,
    *,
    slo: SLOTarget | None = None,
) -> LoadReport:
    """Replay *requests* through a cluster router; report like the others.

    Each request is routed to its owning node by partition key and
    waited out before the next is sent — per-sender FIFO holds
    trivially, and a failover mid-trace surfaces as elevated latency on
    the re-routed requests rather than as errors (the router retries
    under the same rid, so the service's exactly-once layer absorbs
    the crash).  Latency is wall-clock across the full route-send-reply
    round trip, which is the honest number for a sharded deployment:
    it includes the routing decision and any re-route stalls.
    """
    recorder = LatencyRecorder()
    counts = {"OK": 0, "BUSY": 0, "REJECTED": 0, "ERROR": 0}
    n = len(requests) if arrivals is None else min(len(requests), len(arrivals))
    wall_start = time.perf_counter()
    for i in range(n):
        request = requests[i]
        at = arrivals[i] if arrivals is not None else 0.0
        start = time.perf_counter()
        reply = router.request(request.kind, request.payload,
                               sender=request.sender, now=at, rid=request.rid)
        done = time.perf_counter()
        status = reply.get("status", "ERROR")
        counts[status] = counts.get(status, 0) + 1
        if status != "BUSY":
            recorder.record(done - start)
    wall_end = time.perf_counter()
    recorder.mark_span(wall_start, wall_end)

    report = recorder.report() if len(recorder) else None
    return LoadReport(
        latency=report,
        wall_elapsed=wall_end - wall_start,
        submitted=n,
        ok=counts["OK"],
        shed=counts["BUSY"],
        rejected=counts["REJECTED"],
        errors=counts["ERROR"],
        slo_findings=slo.check(report) if (slo is not None and report is not None) else (),
    )

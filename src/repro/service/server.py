"""The market-administrator bank service: accept → admit → batch → apply.

:class:`MarketService` is the serving layer in front of the sharded
bank.  It speaks the same envelope discipline as
:class:`repro.core.engine.Router` — every request crosses the
accounted :class:`~repro.net.transport.Transport` codec, and a bad
request poisons only itself (recorded as a failure, explicit ``ERROR``
reply, the loop keeps running) — but replaces the router's
deliver-one-message-at-a-time inner loop with a pipelined one:

1. **accept** — :meth:`submit` decodes the envelope and runs admission
   control; shed requests get an immediate ``BUSY`` reply and never
   consume crypto budget;
2. **admit** — accepted requests join a per-sender FIFO; cheap
   operations (account opening, balance queries, audits) execute at
   apply time, crypto operations (deposit verification, blind
   issuance) are handed to the :class:`~repro.service.batcher
   .VerificationBatcher`;
3. **batch** — :meth:`step` flushes the batcher when a batch is full
   (or on ``force``), fanning the pure crypto across the process pool;
4. **apply** — results are applied *serially, in submission order per
   sender*: conflict checks against the sharded serial store, credits,
   debits, replies.  Serial application is what turns "verified in
   parallel" into "admitted exactly once" — the double-spend check
   happens under no concurrency at all.

Request kinds and payloads (all dicts over the codec)::

    open-account {aid, balance}      -> OK {balance}
    balance      {aid}               -> OK {balance}
    withdraw     {aid, request}      -> OK {signature}
    deposit      {aid, token, context?} -> OK {amount}
    audit        {}                  -> OK {clean, findings}

Reply statuses: ``OK``, ``BUSY`` (shed by admission), ``ERROR``
(malformed, unknown account, underfunded, invalid token), ``REJECTED``
(double spend — carries the evidence triple).
"""

from __future__ import annotations

import random
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Callable

import repro.obs as obs
from repro.core.engine import ProtocolError
from repro.crypto.cl_sig import BlindIssuanceRequest
from repro.ecash.dec import DoubleSpendError
from repro.ecash.spend import SpendToken
from repro.crypto.hashing import sha256
from repro.net.transport import Transport
from repro.service.admission import AdmissionController
from repro.service.batcher import (
    DepositJob,
    DepositOutcome,
    VerificationBatcher,
    WithdrawJob,
    WithdrawOutcome,
)
from repro.service.journal import Checkpoint, Journal, JournalRecord
from repro.service.shard import ShardedBank

__all__ = ["MarketService", "Completion", "RequestFailure", "SERVICE"]

SERVICE = "MA-service"

_CRYPTO_KINDS = ("deposit", "withdraw")
_CHEAP_KINDS = ("open-account", "balance", "audit")
#: kinds that mutate bank state — exactly these are journaled
_MUTATING_KINDS = ("open-account", "deposit", "withdraw")

#: default reply-cache bound; ``None`` disables eviction entirely
DEFAULT_REPLY_CACHE = 65536

#: evicted-rid tombstones kept per cached reply (the tombstone set is
#: bounded at ``reply_cache * _TOMBSTONES_PER_REPLY``)
_TOMBSTONES_PER_REPLY = 4


@dataclass(frozen=True)
class Completion:
    """One finished request, as seen by completion observers."""

    sender: str
    seq: int
    kind: str
    status: str
    latency: float  # seconds, submit → reply (0 for shed requests)


@dataclass(frozen=True)
class RequestFailure:
    """Record of a request answered with ``ERROR`` or ``REJECTED``."""

    sender: str
    seq: int
    kind: str
    error: str


@dataclass
class _Pending:
    seq: int
    sender: str
    kind: str
    payload: Any
    submitted_at: float
    rid: str = ""
    trace: str = ""  # telemetry trace id (digest of rid; "" = untraced)
    outcome: DepositOutcome | WithdrawOutcome | None = field(default=None)

    @property
    def ready(self) -> bool:
        return self.kind not in _CRYPTO_KINDS or self.outcome is not None


class MarketService:
    """Concurrent MA bank service over a sharded store."""

    def __init__(
        self,
        bank: ShardedBank,
        *,
        transport: Transport | None = None,
        batcher: VerificationBatcher | None = None,
        admission: AdmissionController | None = None,
        rng: random.Random | None = None,
        name: str = SERVICE,
        clock: Callable[[], float] = time.perf_counter,
        journal: Journal | None = None,
        reply_cache: int | None = DEFAULT_REPLY_CACHE,
        telemetry: "obs.Telemetry | None" = None,
    ) -> None:
        self.bank = bank
        self.name = name
        self.transport = transport if transport is not None else Transport()
        # explicit None checks: an idle VerificationBatcher is falsy
        # (it has __len__), so ``batcher or default`` would silently
        # discard a caller-configured batcher
        self.batcher = (
            batcher
            if batcher is not None
            else VerificationBatcher(bank.params, bank.keypair)
        )
        self.admission = admission if admission is not None else AdmissionController()
        self.rng = rng if rng is not None else random.Random(0)
        self._clock = clock
        # one journal serves both layers: the bank writes ``apply``
        # records, the service writes ``accept``/``reply`` records
        if journal is not None and bank.journal is None:
            bank.journal = journal
        self.journal = bank.journal
        self._bind_obs(telemetry)
        self._next_seq = 0
        self._queues: dict[str, deque[_Pending]] = {}
        # maintained alongside the queues so :attr:`queue_depth` is an
        # O(1) read that other threads (the async front door's event
        # loop) can sample without iterating a dict being mutated
        self._depth = 0
        self._sender_order: list[str] = []
        self._in_flight: dict[int, _Pending] = {}
        # rid -> cached reply, completion-ordered so eviction is FIFO
        if reply_cache is not None and reply_cache < 1:
            raise ValueError("reply_cache must be positive (or None)")
        self.reply_cache = reply_cache
        self._replies: OrderedDict[str, tuple[str, dict]] = OrderedDict()
        # tombstone digests of evicted rids (bounded FIFO set): a retry
        # of one is answered with an explicit ERROR, never re-executed
        self._evicted: OrderedDict[str, None] = OrderedDict()
        #: rid -> accept state ({sender, kind, seq, payload}) for
        #: requests accepted but not yet replied; checkpoints carry
        #: these so in-flight work survives compaction of its records
        self._accepted: dict[str, dict] = {}
        self.failures: list[RequestFailure] = []
        self.completions = 0
        self.shed = 0
        self.dedup_hits = 0
        self.reply_evictions = 0
        self.tombstone_hits = 0
        self._observers: list[Callable[[Completion], None]] = []

    # -- instrumentation ---------------------------------------------------
    def _bind_obs(self, telemetry: "obs.Telemetry | None") -> None:
        """Resolve the telemetry stack and push it down the whole stack.

        An explicit *telemetry* handed to the service wins for every
        component it drives — one tracer means one trace id follows a
        request through bank, batcher, admission and journal; split
        stacks would fracture the timeline.  With ``None`` everything
        already shares the module default, so nothing is overridden.
        """
        explicit = telemetry is not None
        self.obs = telemetry if explicit else obs.get_default()
        if explicit:
            self.bank._bind_obs(telemetry)
            self.batcher._bind_obs(telemetry)
            self.admission._bind_obs(telemetry)
            if self.journal is not None:
                self.journal._bind_obs(telemetry)
        registry = self.obs.registry
        self._m_requests = registry.counter(
            "repro_service_requests_total", "requests submitted to the service"
        )
        self._m_replies = {
            status: registry.counter(
                "repro_service_replies_total",
                "replies sent, by terminal status", status=status,
            )
            for status in ("OK", "BUSY", "ERROR", "REJECTED")
        }
        self._m_dedup = registry.counter(
            "repro_service_dedup_hits_total",
            "duplicate rids answered from the reply cache",
        )
        self._m_evictions = registry.counter(
            "repro_service_reply_evictions_total",
            "cached replies evicted by the reply-cache bound",
        )
        self._m_tombstone_hits = registry.counter(
            "repro_service_tombstone_hits_total",
            "retries of evicted rids answered by tombstone (never re-run)",
        )
        self._m_reply_cache = registry.gauge(
            "repro_service_reply_cache_size", "cached replies currently held"
        )
        self._m_queue_depth = registry.gauge(
            "repro_service_queue_depth", "accepted-but-unapplied requests"
        )
        self._m_latency = registry.histogram(
            "repro_request_latency_seconds",
            "submit-to-reply latency of answered requests",
        )
        self._m_recoveries = registry.counter(
            "repro_recoveries_total", "service incarnations built by recover()"
        )
        self._m_redone = registry.counter(
            "repro_recovery_redone_total",
            "accepted-but-unanswered requests re-enqueued by recovery",
        )

    def dump_telemetry(self, directory=None):
        """Export the service's telemetry (trace + metrics) in one call.

        Refreshes the pull-style values first — fastexp cache counters
        (via :func:`repro.metrics.opcount.publish_fastexp`) and the
        live queue depth — then returns
        :meth:`repro.obs.Telemetry.export`'s dict, or, given a
        *directory*, writes ``trace.json`` / ``metrics.json`` /
        ``metrics.prom`` there and returns their paths.
        """
        from repro.metrics.opcount import publish_fastexp

        publish_fastexp(self.obs.registry)
        self._m_queue_depth.set(self.queue_depth)
        self.batcher._m_occupancy.set(len(self.batcher))
        if directory is not None:
            return self.obs.dump(directory)
        return self.obs.export()

    def add_completion_observer(self, fn: Callable[[Completion], None]) -> None:
        self._observers.append(fn)

    def _notify(self, completion: Completion) -> None:
        for fn in self._observers:
            fn(completion)

    @property
    def queue_depth(self) -> int:
        """Accepted-but-unapplied requests (the backpressure signal).

        A plain int read — safe to sample from any thread, which is how
        the async front door's event loop checks for overload without
        touching the dispatcher's queues.
        """
        return self._depth

    def overloaded(self, extra: int = 0) -> bool:
        """Would a request arriving now be shed for backlog?

        *extra* is backlog the service cannot see yet (frames parsed
        but not submitted — the front door's own queue).  Side-effect
        free and thread-safe; see
        :meth:`AdmissionController.overloaded`.
        """
        return self.admission.overloaded(self._depth + extra)

    def reply_for(self, rid: str) -> tuple[str, dict] | None:
        """The cached ``(status, body)`` verdict of a completed request.

        ``None`` while the request is still in flight (or was never
        seen).  The cache survives crashes — it is rebuilt from the
        journal's ``reply`` records on :meth:`recover` — so this is the
        harness's window into per-request outcomes across incarnations.
        """
        return self._replies.get(rid)

    @staticmethod
    def _tombstone(rid: str) -> str:
        """Eviction tombstone digest of *rid* (never the rid itself)."""
        return sha256(b"reply-tombstone", rid.encode()).hex()[:16]

    def _remember_reply(self, rid: str, status: str, body: dict) -> None:
        """Cache a verdict, evicting oldest entries past the bound.

        Evicted rids leave a tombstone digest behind so an in-flight
        retry is still answered deterministically (explicit ``ERROR``)
        instead of being re-executed; the tombstone set itself is FIFO
        and bounded, which is the documented narrowing: a retry arriving
        after *both* bounds have rotated past its rid is treated as new.
        """
        self._replies[rid] = (status, body)
        if self.reply_cache is None:
            return
        while len(self._replies) > self.reply_cache:
            evicted_rid, _verdict = self._replies.popitem(last=False)
            self._evicted[self._tombstone(evicted_rid)] = None
            self.reply_evictions += 1
            self._m_evictions.inc()
        bound = self.reply_cache * _TOMBSTONES_PER_REPLY
        while len(self._evicted) > bound:
            self._evicted.popitem(last=False)
        self._m_reply_cache.set(len(self._replies))

    # -- accept ------------------------------------------------------------
    def submit(self, sender: str, kind: str, payload: Any, *, now: float = 0.0,
               rid: str | None = None) -> int:
        """Accept one request envelope; returns its sequence number.

        The payload crosses the transport codec exactly as under the
        router, so byte accounting covers requests, and smuggled state
        fails loudly.  Admission runs only for crypto kinds — cheap
        queries never starve behind a full bucket.

        *rid* is the client's stable request id, the key of the
        exactly-once layer over at-least-once delivery: a duplicate of
        a completed request gets its cached reply re-sent (no
        re-execution, no double apply), a duplicate of an in-flight
        request is dropped (the original will answer).  Omitted, a
        unique id is derived — plain submissions keep one-shot
        semantics.
        """
        seq = self._next_seq
        self._next_seq += 1
        if rid is None:
            rid = f"{sender}:auto:{seq}"
        tracer = self.obs.tracer
        # the trace id is the rid's digest (never the rid itself — it
        # may embed an account id); deriving it per layer is what
        # propagates the trace without extra envelope state
        tid = obs.trace_id(rid) if tracer.enabled else None
        self._m_requests.inc()
        with tracer.span("submit", trace=tid, kind=kind, seq=seq,
                         sender=sender) as span:
            delivered = self.transport.send(sender, self.name, kind, payload)
            if rid in self._replies:
                self.dedup_hits += 1
                self._m_dedup.inc()
                span.set(dedup=True)
                status, body = self._replies[rid]
                self.transport.send(self.name, sender, "reply",
                                    {"req": seq, "status": status, **body})
                return seq
            if self._evicted and self._tombstone(rid) in self._evicted:
                # the request completed long ago and its cached verdict
                # was evicted: answer explicitly rather than re-execute
                # (a re-run withdraw would double-debit)
                self.dedup_hits += 1
                self.tombstone_hits += 1
                self._m_dedup.inc()
                self._m_tombstone_hits.inc()
                span.set(dedup=True, evicted=True)
                self.transport.send(
                    self.name, sender, "reply",
                    {"req": seq, "status": "ERROR",
                     "error": "reply evicted: request already completed; "
                              "original verdict no longer cached"},
                )
                return seq
            if rid in self._accepted:
                self.dedup_hits += 1
                self._m_dedup.inc()
                span.set(dedup=True)
                return seq
            if kind in _CRYPTO_KINDS:
                depth = self.queue_depth
                self._m_queue_depth.set(depth)
                with tracer.span("admission", depth=depth):
                    decision = self.admission.admit(now, depth)
                if not decision.admitted:
                    self.shed += 1
                    self._reply(sender, seq, kind, "BUSY",
                                {"reason": decision.reason}, submitted_at=None)
                    return seq
            if kind in _MUTATING_KINDS:
                # write-ahead: the accepted request survives a crash, so an
                # in-flight deposit is re-verified after recovery, not lost
                if self.journal is not None:
                    self.journal.append(
                        "accept", rid, kind,
                        {"sender": sender, "kind": kind, "seq": seq,
                         "payload": delivered},
                    )
                self._accepted[rid] = {"sender": sender, "kind": kind,
                                       "seq": seq, "payload": delivered}
            pending = _Pending(seq=seq, sender=sender, kind=kind,
                               payload=delivered, submitted_at=self._clock(),
                               rid=rid, trace=tid or "")
            if sender not in self._queues:
                self._queues[sender] = deque()
                self._sender_order.append(sender)
            self._queues[sender].append(pending)
            self._depth += 1
            if kind in _CRYPTO_KINDS:
                try:
                    self._enqueue_crypto(pending)
                except ProtocolError as exc:
                    # malformed before it ever reaches the pool: fail it now
                    self._queues[sender].remove(pending)
                    self._depth -= 1
                    self._fail(pending, "ERROR", str(exc))
            return seq

    def _enqueue_crypto(self, pending: _Pending) -> None:
        payload = pending.payload
        if not isinstance(payload, dict) or "aid" not in payload:
            raise ProtocolError(f"{pending.kind} payload must carry an account id")
        aid = payload["aid"]
        if not self.bank.has_account(aid):
            raise ProtocolError(f"unknown account {aid!r}")
        if pending.kind == "deposit":
            if not isinstance(payload.get("token"), SpendToken):
                raise ProtocolError("deposit payload missing a spend token")
            self.batcher.submit(
                DepositJob(
                    seq=pending.seq,
                    aid=aid,
                    token=payload["token"],
                    context=payload.get("context", b""),
                    trace=pending.trace,
                )
            )
        else:
            if not isinstance(payload.get("request"), BlindIssuanceRequest):
                raise ProtocolError("withdraw payload missing an issuance request")
            value = 1 << self.bank.params.tree_level
            if self.bank.balance(aid) < value:
                raise ProtocolError(
                    f"account {aid!r} cannot cover a coin of value {value}"
                )
            self.batcher.submit(
                WithdrawJob(seq=pending.seq, aid=aid,
                            request=payload["request"], trace=pending.trace)
            )
        self._in_flight[pending.seq] = pending

    # -- batch + apply -----------------------------------------------------
    def step(self, *, force: bool = False) -> int:
        """One turn of the loop: flush ready batches, apply, reply.

        Returns the number of requests completed this step.  With
        ``force`` the batcher flushes even when under-full (used to
        drain at the end of a run or on a batching deadline).
        """
        flushed = force or self.batcher.batch_ready
        while flushed and len(self.batcher):
            for outcome in self.batcher.flush():
                pending = self._in_flight.pop(outcome.seq)
                pending.outcome = outcome
            flushed = force or self.batcher.batch_ready
        return self._apply_ready()

    def drain(self) -> int:
        """Flush and apply until nothing is pending; returns completions."""
        total = 0
        while self.queue_depth or len(self.batcher):
            done = self.step(force=True)
            if done == 0 and len(self.batcher) == 0:
                break
            total += done
        return total

    def _apply_ready(self) -> int:
        """Apply every queue head whose result is ready (FIFO per sender)."""
        completed = 0
        for sender in self._sender_order:
            queue = self._queues.get(sender)
            while queue and queue[0].ready:
                pending = queue.popleft()
                self._depth -= 1
                self._apply_one(pending)
                completed += 1
        return completed

    def _apply_one(self, pending: _Pending) -> None:
        # the span re-attaches to the request's trace (apply happens
        # long after the submit span closed), so shard mutation and
        # reply nest under the same id as admission and verification
        with self.obs.tracer.span("apply", trace=pending.trace or None,
                                  kind=pending.kind, seq=pending.seq):
            try:
                status, body = self._execute(pending)
            except ProtocolError as exc:
                self._fail(pending, "ERROR", str(exc))
                return
            except DoubleSpendError as exc:
                evidence = exc.evidence
                body = {"error": str(exc)}
                if evidence is not None:
                    body["evidence"] = {
                        "serial": evidence.serial,
                        "prior": list(evidence.prior),
                        "offending_node": list(evidence.offending_node),
                    }
                self._fail(pending, "REJECTED", str(exc), body=body)
                return
            self._reply(pending.sender, pending.seq, pending.kind, status, body,
                        submitted_at=pending.submitted_at, rid=pending.rid)

    def _execute(self, pending: _Pending) -> tuple[str, dict]:
        kind, payload = pending.kind, pending.payload
        if kind == "open-account":
            self._require(payload, "aid", "balance")
            if self.bank.has_account(payload["aid"]):
                raise ProtocolError(f"account {payload['aid']!r} already exists")
            self.bank.open_account(payload["aid"], payload["balance"],
                                   rid=pending.rid)
            return "OK", {"balance": payload["balance"]}
        if kind == "balance":
            self._require(payload, "aid")
            if not self.bank.has_account(payload["aid"]):
                raise ProtocolError(f"unknown account {payload['aid']!r}")
            return "OK", {"balance": self.bank.balance(payload["aid"])}
        if kind == "audit":
            report = self.bank.audit()
            return "OK", {"clean": report.clean, "findings": list(report.findings)}
        if kind == "withdraw":
            outcome = pending.outcome
            assert isinstance(outcome, WithdrawOutcome)
            # balance re-checked at apply time: an earlier withdrawal in
            # the same batch may have drained the account since accept
            self.bank.apply_withdrawal(
                payload["aid"], rid=pending.rid,
                extra={"signature": outcome.signature},
            )
            return "OK", {"signature": outcome.signature}
        if kind == "deposit":
            outcome = pending.outcome
            assert isinstance(outcome, DepositOutcome)
            if not outcome.valid:
                raise ProtocolError("invalid spend token")
            amount = self.bank.apply_deposit(
                payload["aid"], payload["token"], outcome.serials,
                rid=pending.rid,
            )
            return "OK", {"amount": amount}
        raise ProtocolError(f"unknown request kind {kind!r}")

    @staticmethod
    def _require(payload: Any, *keys: str) -> None:
        if not isinstance(payload, dict):
            raise ProtocolError("payload must be a mapping")
        for key in keys:
            if key not in payload:
                raise ProtocolError(f"payload missing {key!r}")

    # -- replies -----------------------------------------------------------
    def _fail(self, pending: _Pending, status: str, error: str,
              *, body: dict | None = None) -> None:
        self.failures.append(
            RequestFailure(sender=pending.sender, seq=pending.seq,
                           kind=pending.kind, error=error)
        )
        self._reply(pending.sender, pending.seq, pending.kind, status,
                    body if body is not None else {"error": error},
                    submitted_at=pending.submitted_at, rid=pending.rid)

    def _reply(self, sender: str, seq: int, kind: str, status: str, body: dict,
               *, submitted_at: float | None, rid: str = "") -> None:
        latency = 0.0 if submitted_at is None else self._clock() - submitted_at
        with self.obs.tracer.span("reply", status=status, kind=kind, seq=seq):
            if rid and kind in _MUTATING_KINDS and status != "BUSY":
                # journal before sending: a crash during the send leaves
                # the verdict recoverable, so the client's retry gets the
                # same answer instead of a re-execution
                if self.journal is not None:
                    self.journal.append("reply", rid, kind,
                                        {"status": status, "body": body})
                self._remember_reply(rid, status, body)
                self._accepted.pop(rid, None)
            self.transport.send(self.name, sender, "reply",
                                {"req": seq, "status": status, **body})
        counter = self._m_replies.get(status)
        if counter is not None:
            counter.inc()
        if submitted_at is not None:
            self._m_latency.observe(latency)
        self.completions += 1
        self._notify(Completion(sender=sender, seq=seq, kind=kind,
                                status=status, latency=latency))

    # -- crash recovery ----------------------------------------------------
    def checkpoint(self) -> Checkpoint:
        """Snapshot the books *and* the request-lifecycle state.

        The bank contributes the per-shard blobs (incremental — clean
        shards reuse cached bytes); the service adds the reply cache,
        the in-flight accepts, the eviction tombstones and the sequence
        watermark.  A checkpoint carrying these is self-sufficient:
        recovery no longer needs any journal record at or before
        ``lsn``, which is exactly what licenses
        :meth:`Journal.compact <repro.service.journal.Journal.compact>`
        to delete those records.
        """
        base = self.bank.checkpoint()
        return Checkpoint(
            lsn=base.lsn,
            blobs=base.blobs,
            replies=tuple(
                (rid, status, body)
                for rid, (status, body) in self._replies.items()
            ),
            pending=tuple(
                {"rid": rid, **state} for rid, state in self._accepted.items()
            ),
            evicted=tuple(self._evicted),
            next_seq=self._next_seq,
        )

    @classmethod
    def recover(
        cls,
        params,
        keypair,
        journal: Journal,
        *,
        checkpoint: Checkpoint | None = None,
        n_shards: int = 4,
        rng: random.Random | None = None,
        transport: Transport | None = None,
        batcher: VerificationBatcher | None = None,
        admission: AdmissionController | None = None,
        name: str = SERVICE,
        clock: Callable[[], float] = time.perf_counter,
        reply_cache: int | None = DEFAULT_REPLY_CACHE,
        telemetry: "obs.Telemetry | None" = None,
        tables: bytes | None = None,
    ) -> "MarketService":
        """Restart the service from a checkpoint plus the journal.

        The bank replays ``apply`` records after the checkpoint
        (:meth:`ShardedBank.recover`) — committed state is rebuilt with
        zero lost and zero double-applied mutations.  The request
        lifecycle is then rebuilt from the checkpoint plus the retained
        records (the journal may have been compacted; everything at or
        before ``checkpoint.lsn`` is represented by the checkpoint's
        ``replies``/``pending``/``evicted``/``next_seq`` fields):

        1. ``reply`` records (and ``apply`` records whose reply was
           lost in the crash, for which an ``OK`` answer is
           synthesized from the redo payload) repopulate the reply
           cache, so client retries of completed requests get their
           original verdicts;
        2. accepted requests with neither apply nor reply — in flight
           mid-batch when the service died, found as retained
           ``accept`` records or checkpoint ``pending`` entries — are
           re-enqueued for verification: accepted deposits are never
           lost, merely re-verified.  A rid whose reply was *evicted*
           is never re-enqueued (its tombstone answers retries).

        *tables* is an optional serialized verification-table blob
        (:func:`repro.ecash.spend.export_verification_tables`), saved
        by the previous incarnation or shipped by a cluster peer; the
        recovering batcher adopts it instead of re-deriving every
        fixed-base/Miller table, cutting warm-up off the recovery
        critical path.  Ignored when an explicit *batcher* is passed.
        """
        tel = telemetry if telemetry is not None else obs.get_default()
        with tel.tracer.span("recover", shards=n_shards,
                             lsn=journal.last_lsn) as span:
            bank = ShardedBank.recover(
                params, keypair, rng if rng is not None else random.Random(0),
                journal, checkpoint=checkpoint, n_shards=n_shards,
                telemetry=telemetry,
            )
            if batcher is None and tables is not None:
                batcher = VerificationBatcher(
                    params, keypair, tables=tables, telemetry=telemetry
                )
            service = cls(bank, transport=transport, batcher=batcher,
                          admission=admission, rng=rng, name=name,
                          clock=clock, reply_cache=reply_cache,
                          telemetry=telemetry)
            accepts: dict[str, JournalRecord] = {}
            applies: dict[str, JournalRecord] = {}
            replies: dict[str, JournalRecord] = {}
            max_seq = (checkpoint.next_seq - 1) if checkpoint is not None else -1
            for record in journal.records():
                if record.kind == "accept":
                    accepts.setdefault(record.rid, record)
                    max_seq = max(max_seq, record.payload.get("seq", -1))
                elif record.kind == "apply" and record.rid:
                    applies.setdefault(record.rid, record)
                elif record.kind == "reply":
                    replies.setdefault(record.rid, record)
            # auto-generated rids embed the sequence number; never reuse one
            service._next_seq = max_seq + 1
            # seed from the checkpoint first (its entries are the oldest,
            # keeping eviction order right), then layer the retained tail
            if checkpoint is not None:
                for digest in checkpoint.evicted:
                    service._evicted[digest] = None
                for rid, status, body in checkpoint.replies:
                    service._remember_reply(rid, status, body)
            for rid, record in replies.items():
                if rid not in service._replies:
                    service._remember_reply(rid, record.payload["status"],
                                            record.payload["body"])
            for rid, record in applies.items():
                if rid not in service._replies \
                        and service._tombstone(rid) not in service._evicted:
                    status, body = cls._synthesize_reply(record)
                    service._remember_reply(rid, status, body)
            in_flight: dict[str, dict] = {}
            if checkpoint is not None:
                for state in checkpoint.pending:
                    in_flight[state["rid"]] = state
                    max_seq = max(max_seq, state.get("seq", -1))
                service._next_seq = max(service._next_seq, max_seq + 1)
            for rid, record in accepts.items():
                in_flight.setdefault(rid, {"rid": rid, **record.payload})
            service.redone = 0
            for rid, state in in_flight.items():
                if rid in service._replies or rid in applies \
                        or service._tombstone(rid) in service._evicted:
                    continue
                service._resubmit(state)
                service.redone += 1
            span.set(redone=service.redone)
        service._m_recoveries.inc()
        service._m_redone.inc(service.redone)
        return service

    @staticmethod
    def _synthesize_reply(record: JournalRecord) -> tuple[str, dict]:
        """The ``OK`` answer an applied-but-unanswered request deserves."""
        payload = record.payload
        if record.op == "deposit":
            return "OK", {"amount": payload["amount"]}
        if record.op == "withdraw":
            return "OK", {"signature": payload["signature"]}
        if record.op == "open-account":
            return "OK", {"balance": payload["balance"]}
        raise ValueError(f"cannot synthesize a reply for op {record.op!r}")

    def _resubmit(self, state: dict) -> None:
        """Re-enqueue an accepted-but-unanswered request after recovery.

        *state* is an accept record's payload plus its ``rid`` — the
        same shape a checkpoint's ``pending`` entries carry.
        """
        rid = state["rid"]
        sender, kind = state["sender"], state["kind"]
        seq = self._next_seq
        self._next_seq += 1
        tracer = self.obs.tracer
        pending = _Pending(seq=seq, sender=sender, kind=kind,
                           payload=state["payload"],
                           submitted_at=self._clock(), rid=rid,
                           trace=obs.trace_id(rid)
                           if tracer.enabled else "")
        self._accepted[rid] = {"sender": sender, "kind": kind,
                               "seq": seq, "payload": state["payload"]}
        if sender not in self._queues:
            self._queues[sender] = deque()
            self._sender_order.append(sender)
        self._queues[sender].append(pending)
        self._depth += 1
        if kind in _CRYPTO_KINDS:
            try:
                self._enqueue_crypto(pending)
            except ProtocolError as exc:
                self._queues[sender].remove(pending)
                self._depth -= 1
                self._fail(pending, "ERROR", str(exc))

"""Admission control: token-bucket rate limiting and backpressure.

A bank service doing bigint cryptography has a hard capacity ceiling;
what it must never do is queue unboundedly past it — queues hide the
overload until every request is late instead of a few being refused.
The admission controller makes the trade explicit:

* a **token bucket** caps the sustained request rate while allowing
  bursts up to the bucket size (bursty arrivals are the normal shape
  of sensing traffic, see :mod:`repro.workloads.arrivals`);
* a **queue-depth bound** sheds load when the backlog of
  not-yet-applied work exceeds what the batcher can drain within the
  latency objective.

A shed request gets an explicit ``BUSY`` reply immediately — the
client knows to retry later, and the requests that *were* admitted
keep their latency.  Decisions carry the reason so load reports can
attribute sheds to rate vs. backlog.

The clock is supplied by the caller on every call (no hidden
``time.time()``), so admission works identically under the simulated
arrival clock of :mod:`repro.service.loadgen` and a wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass

import repro.obs as obs

__all__ = ["TokenBucket", "AdmissionDecision", "AdmissionController"]


class TokenBucket:
    """Classic token bucket: *rate* tokens/second, capacity *burst*.

    Starts full, so a cold service absorbs an initial burst.  With
    ``rate=None`` the bucket is disabled (always allows).
    """

    def __init__(self, rate: float | None, burst: float = 1.0) -> None:
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None to disable)")
        if burst < 1:
            raise ValueError("burst must allow at least one request")
        self.rate = rate
        self.burst = float(burst)
        self._tokens = float(burst)
        self._last = 0.0

    def allow(self, now: float) -> bool:
        """Consume one token if available at time *now*."""
        if self.rate is None:
            return True
        if now > self._last:
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
            self._last = now
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of an admission check."""

    admitted: bool
    reason: str = ""  # "rate" or "queue" when not admitted


class AdmissionController:
    """Token bucket + queue-depth backpressure, with shed accounting."""

    def __init__(
        self,
        *,
        rate: float | None = None,
        burst: float = 64.0,
        max_queue_depth: int | None = None,
        telemetry: "obs.Telemetry | None" = None,
    ) -> None:
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be positive (or None)")
        self.bucket = TokenBucket(rate, burst) if rate is not None else None
        self.max_queue_depth = max_queue_depth
        self.shed_by_rate = 0
        self.shed_by_queue = 0
        self._bind_obs(telemetry)

    def _bind_obs(self, telemetry: "obs.Telemetry | None") -> None:
        self.obs = telemetry if telemetry is not None else obs.get_default()
        registry = self.obs.registry
        self._m_admitted = registry.counter(
            "repro_admission_admitted_total", "requests admitted past control"
        )
        self._m_shed = {
            reason: registry.counter(
                "repro_admission_shed_total",
                "requests shed with BUSY, by reason", reason=reason,
            )
            for reason in ("rate", "queue")
        }
        self._m_depth = registry.gauge(
            "repro_admission_queue_depth",
            "backlog observed at the latest admission decision",
        )

    @property
    def shed_total(self) -> int:
        return self.shed_by_rate + self.shed_by_queue

    def overloaded(self, queue_depth: int) -> bool:
        """Would a request arriving at *queue_depth* be shed for backlog?

        A side-effect-free peek at the queue-depth bound (no counters,
        no token consumed) for callers that want to refuse work *before*
        paying to parse it — the async front door answers ``BUSY`` from
        a frame header alone on this signal.  Rate sheds are deliberately
        excluded: they depend on the request's arrival clock, which is
        inside the payload this path never decodes.
        """
        return (self.max_queue_depth is not None
                and queue_depth >= self.max_queue_depth)

    def admit(self, now: float, queue_depth: int) -> AdmissionDecision:
        """Decide one request given the current backlog.

        Queue depth is checked first: when the backlog is already past
        the bound, refusing is right regardless of rate budget (tokens
        are not consumed for a request that is shed anyway).
        """
        self._m_depth.set(queue_depth)
        if self.max_queue_depth is not None and queue_depth >= self.max_queue_depth:
            self.shed_by_queue += 1
            self._m_shed["queue"].inc()
            return AdmissionDecision(admitted=False, reason="queue")
        if self.bucket is not None and not self.bucket.allow(now):
            self.shed_by_rate += 1
            self._m_shed["rate"].inc()
            return AdmissionDecision(admitted=False, reason="rate")
        self._m_admitted.inc()
        return AdmissionDecision(admitted=True)

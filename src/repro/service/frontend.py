"""TCP front-end: the market service as an actual network peer.

Everything below :class:`~repro.service.server.MarketService` already
speaks the canonical codec; this module puts that codec on real
sockets using the length-prefixed frames of :mod:`repro.net.wire`, so
``loadgen`` (or any client) can drive the service across a wire
instead of by method call.

Wire protocol — one request frame, one reply frame, pipelined::

    request  {cid, kind, payload, sender?, rid?, now?}
    reply    {cid, req, status, ...body}          (service verdicts)
    reply    {cid?, status: "ERROR", error}       (front-end rejections)

``cid`` is the client's correlation id, echoed verbatim on the reply;
it exists because replies are *not* FIFO on the wire (a ``BUSY`` shed
answers immediately while an earlier accepted deposit is still waiting
for its batch).  ``rid`` is the service's exactly-once key, exactly as
in-process.  ``now`` carries the simulated arrival clock for admission
(the same two-clock discipline as :mod:`repro.service.loadgen`).

Threading model — **one dispatcher owns the service**:

* per-connection reader threads only parse frames
  (:class:`~repro.net.wire.FrameDecoder`) and enqueue work; a torn or
  corrupt frame poisons *only that connection* (best-effort ``ERROR``
  frame, then close) — the mid-frame-disconnect tests hold this;
* a single dispatcher thread (:class:`DispatchCore`) drains the queue
  in arrival order, submits a batch of requests to the
  (single-threaded) ``MarketService``, steps it, and routes reply
  envelopes back to the owning connection by service sequence number.
  Submitting the whole backlog before stepping is what lets requests
  from *different connections* share one verification batch — the
  cross-core win of the worker pool survives the wire.

:class:`DispatchCore` is deliberately frontend-agnostic: the threaded
frontend here and the asyncio frontend in :mod:`repro.service.aio`
feed the *same* queue, run the *same* dispatch loop and reply routing,
and therefore produce bit-identical reply streams for the same arrival
sequence — the conformance suite holds the two to that.

The front-end holds no bank state and makes no crypto decisions; it is
a framing shim, so every correctness property (FIFO per sender,
exactly-once by rid, parallel-verify/serial-apply) is inherited from
the service unchanged.
"""

from __future__ import annotations

import os
import queue
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

import repro.obs as obs
from repro.net.wire import FrameDecoder, WireError, encode_frame, read_frame, write_frame
from repro.service.server import MarketService

__all__ = ["DispatchCore", "ServiceFrontend", "ServiceClient", "ClientRetryError"]


class DispatchCore:
    """The one-dispatcher-owns-the-service loop both frontends share.

    Connection objects handed to :meth:`enqueue` need three things: a
    ``name`` (the default sender), a thread-safe ``send(value) -> bool``
    (best-effort framed reply, ``False`` once the peer is gone), and a
    ``drop(cid)`` callback for admitted requests that will never be
    answered (a duplicate of an in-flight rid is deliberately dropped —
    the original's reply answers for both).  ``drop`` is what lets the
    asyncio frontend keep an exact per-connection in-flight count.

    Everything that decides *what the service does* — submission order
    into the service, batching greed, reply correlation by sequence
    number — lives here and only here, which is the structural argument
    for the threaded and async frontends answering byte-identically.
    """

    def __init__(self, service: MarketService,
                 telemetry: "obs.Telemetry") -> None:
        self.service = service
        self.obs = telemetry
        self._work: queue.Queue = queue.Queue()
        self._route: dict[int, tuple[Any, Any]] = {}  # seq -> (conn, cid)
        self._reply_box: list[dict] = []
        self._thread: threading.Thread | None = None
        self.served = 0
        #: called on the dispatcher thread after each dispatched batch,
        #: while the service is quiescent — the one safe place for
        #: periodic maintenance that must own the service (checkpoint
        #: shipping in :mod:`repro.cluster.replicate` hangs off this)
        self.after_batch: Callable[[], None] | None = None
        self._m_frames = telemetry.registry.counter(
            "repro_frontend_frames_total", "request frames accepted"
        )
        # the dispatcher is the only thread that touches the service;
        # this observer therefore only fires on the dispatcher thread
        service.transport.add_observer(self._capture_reply)

    @property
    def backlog(self) -> int:
        """Frames enqueued or submitted but not yet answered.

        The ingestion tier's own contribution to the not-yet-applied
        backlog; the async frontend adds it to the service's queue
        depth when asking admission for the pre-parse overload signal.
        """
        return self._work.qsize() + len(self._route)

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="frontend-dispatch", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._work.put(None)  # dispatcher sentinel
        self._thread.join(timeout=5.0)
        self._thread = None

    def add_after_batch(self, fn: Callable[[], None]) -> None:
        """Chain *fn* onto the after-batch maintenance hook.

        Multiple maintenance tasks (checkpoint shipping, journal
        checkpoint + compaction via :class:`~repro.service.journal
        .JournalMaintenance`) can share the quiescent point; they run
        on the dispatcher thread in registration order.
        """
        current = self.after_batch
        if current is None:
            self.after_batch = fn
            return

        def chained() -> None:
            current()
            fn()

        self.after_batch = chained

    # -- the dispatcher ----------------------------------------------------
    def enqueue(self, conn: Any, request: Any) -> None:
        """Hand one parsed request frame to the dispatcher (any thread)."""
        self._work.put(("request", conn, request))

    def _capture_reply(self, envelope) -> None:
        if envelope.kind == "reply" and envelope.sender == self.service.name:
            self._reply_box.append(envelope.payload)

    def _dispatch_loop(self) -> None:
        while True:
            item = self._work.get()
            if item is None:
                return
            batch = [item]
            # greedily take the whole backlog (bounded by the batcher's
            # coalescing window) so concurrent connections share a flush
            limit = max(1, self.service.batcher.max_batch) - 1
            while limit > 0:
                try:
                    extra = self._work.get_nowait()
                except queue.Empty:
                    break
                if extra is None:
                    self._dispatch(batch)
                    return
                batch.append(extra)
                limit -= 1
            self._dispatch(batch)

    def _dispatch(self, batch: list[tuple[str, Any, Any]]) -> None:
        for _tag, conn, request in batch:
            self._submit_one(conn, request)
        # flush + apply until every accepted request has answered;
        # replies route back by seq as the observer captures them
        self.service.drain()
        self._flush_replies()
        if self.after_batch is not None:
            self.after_batch()

    def _submit_one(self, conn: Any, request: Any) -> None:
        if not isinstance(request, dict) or not isinstance(request.get("kind"), str):
            conn.send({"cid": request.get("cid") if isinstance(request, dict) else None,
                       "status": "ERROR", "error": "request must be a dict with a 'kind'"})
            return
        cid = request.get("cid")
        sender = request.get("sender") or conn.name
        rid = request.get("rid")
        now = request.get("now", 0.0)
        self._m_frames.inc()
        try:
            seq = self.service.submit(
                sender, request["kind"], request.get("payload"),
                now=float(now), rid=rid,
            )
        except Exception as exc:  # a malformed envelope poisons only itself
            conn.send({"cid": cid, "status": "ERROR", "error": str(exc)})
            return
        self._route[seq] = (conn, cid)

    def _flush_replies(self) -> None:
        replies, self._reply_box = self._reply_box, []
        for payload in replies:
            seq = payload.get("req")
            routed = self._route.pop(seq, None)
            if routed is None:
                continue  # a recovery-synthesized or duplicate reply
            conn, cid = routed
            if conn.send({"cid": cid, **payload}):
                self.served += 1
        # after a drain every accepted request has answered; whatever is
        # still routed is a deliberately dropped duplicate of an
        # in-flight rid — the original's reply already answered its
        # sender, so release the window slot instead of leaking it
        if self._route:
            leftovers, self._route = self._route, {}
            for conn, cid in leftovers.values():
                conn.drop(cid)


@dataclass
class _Conn:
    """One accepted client connection (reader thread + write lock)."""

    sock: socket.socket
    name: str
    open: bool = True

    def __post_init__(self) -> None:
        self._wlock = threading.Lock()

    def send(self, value: Any) -> bool:
        """Best-effort framed send; ``False`` once the peer is gone."""
        if not self.open:
            return False
        try:
            with self._wlock:
                self.sock.sendall(encode_frame(value))
            return True
        except (OSError, WireError):
            self.close()
            return False

    def drop(self, cid: Any) -> None:
        """A routed request was deliberately never answered.

        The threaded frontend has no in-flight window to release, so
        this is a no-op; the async frontend's connection uses the same
        hook to return the slot to its backpressure window.
        """

    def close(self) -> None:
        if not self.open:
            return
        self.open = False
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self.sock.close()


class ServiceFrontend:
    """Serve a :class:`MarketService` over TCP.

    ``port=0`` (the default) binds an OS-assigned port; read
    :attr:`address` after :meth:`start`.  Use as a context manager or
    call :meth:`close` — the listener, dispatcher and every live
    connection are torn down; the service itself (and its worker pool)
    belong to the caller.
    """

    def __init__(
        self,
        service: MarketService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        telemetry: "obs.Telemetry | None" = None,
    ) -> None:
        self.service = service
        self.obs = telemetry if telemetry is not None else service.obs
        self.core = DispatchCore(service, self.obs)
        self._listener = socket.create_server((host, port))
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._conns: list[_Conn] = []
        self._conns_lock = threading.Lock()
        self._readers: list[threading.Thread] = []
        self._next_conn = 0
        self._running = False
        self._accept_thread: threading.Thread | None = None
        self.conn_errors = 0
        registry = self.obs.registry
        self._m_conns = registry.gauge(
            "repro_frontend_connections", "live client connections"
        )
        self._m_conn_errors = registry.counter(
            "repro_frontend_conn_errors_total",
            "connections dropped for wire violations",
        )

    # the dispatcher's scorecard and maintenance hook live on the core;
    # these mirrors keep the public surface of the two frontends equal
    @property
    def served(self) -> int:
        return self.core.served

    @property
    def after_batch(self) -> Callable[[], None] | None:
        return self.core.after_batch

    @after_batch.setter
    def after_batch(self, fn: Callable[[], None] | None) -> None:
        self.core.after_batch = fn

    def add_after_batch(self, fn: Callable[[], None]) -> None:
        """Chain *fn* onto the after-batch maintenance hook."""
        self.core.add_after_batch(fn)

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "ServiceFrontend":
        if self._running:
            return self
        self._running = True
        self.core.start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="frontend-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def close(self) -> None:
        if not self._running:
            return
        self._running = False
        # a thread parked in accept() does not wake when the listener fd
        # closes under it; dial one throwaway connection to kick it out
        try:
            socket.create_connection(self.address, timeout=1.0).close()
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        # closing the sockets first is what unblocks reader threads
        # parked in recv() — an abrupt client disconnect during shutdown
        # must not leave a thread behind, so join every reader after
        with self._conns_lock:
            conns = list(self._conns)
        for conn in conns:
            conn.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None
        with self._conns_lock:
            readers, self._readers = self._readers, []
        for thread in readers:
            thread.join(timeout=5.0)
        self.core.stop()
        with self._conns_lock:
            self._conns = []
        self._m_conns.set(0)

    def __enter__(self) -> "ServiceFrontend":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- reader side -------------------------------------------------------
    def _accept_loop(self) -> None:
        while self._running:
            try:
                sock, _peer = self._listener.accept()
            except OSError:
                return  # listener closed
            if not self._running:
                sock.close()  # close()'s wake-up connection
                return
            conn = _Conn(sock=sock, name=f"conn{self._next_conn}")
            self._next_conn += 1
            thread = threading.Thread(
                target=self._reader_loop, args=(conn,),
                name=f"frontend-{conn.name}", daemon=True,
            )
            with self._conns_lock:
                self._conns.append(conn)
                self._m_conns.set(len(self._conns))
                # keep the join list from growing without bound on
                # long-lived frontends: finished readers leave here
                self._readers = [t for t in self._readers if t.is_alive()]
                self._readers.append(thread)
            thread.start()

    def _reader_loop(self, conn: _Conn) -> None:
        decoder = FrameDecoder()
        try:
            while self._running and conn.open:
                data = conn.sock.recv(65536)
                if not data:
                    if decoder.pending_bytes:
                        # mid-frame disconnect: nothing of the torn
                        # frame was enqueued, so nothing is half-applied
                        raise WireError(
                            f"connection closed mid-frame "
                            f"({decoder.pending_bytes} bytes buffered)"
                        )
                    break
                decoder.feed(data)
                for request in decoder.frames():
                    self.core.enqueue(conn, request)
        except WireError as exc:
            self.conn_errors += 1
            self._m_conn_errors.inc()
            conn.send({"status": "ERROR", "error": f"wire: {exc}"})
        except OSError:
            self.conn_errors += 1
            self._m_conn_errors.inc()
        finally:
            conn.close()
            with self._conns_lock:
                if conn in self._conns:
                    self._conns.remove(conn)
                self._m_conns.set(len(self._conns))


class ClientRetryError(WireError):
    """Every retry attempt of :meth:`ServiceClient.call` failed.

    Carries the last underlying error (``__cause__``) and the number of
    attempts made, so callers (the cluster router) can distinguish "the
    peer is dead" from a wire violation on a healthy peer.
    """

    def __init__(self, message: str, *, attempts: int) -> None:
        super().__init__(message)
        self.attempts = attempts


class ServiceClient:
    """Blocking framed client for :class:`ServiceFrontend`.

    :meth:`request` is the one-shot call-and-wait form.  For pipelined
    traffic (the load generator) use :meth:`send` / :meth:`recv` from
    separate threads — the front-end echoes each request's ``cid`` so
    out-of-order replies correlate.

    Two timeouts guard against a dead peer: *connect_timeout* bounds
    :func:`socket.create_connection` (``None`` falls back to
    *timeout*), and *timeout* bounds every read/write after that — a
    peer that stops answering costs one timeout, never a hang.
    :meth:`call` layers bounded reconnect-with-backoff on top; plain
    :meth:`request` stays single-shot.
    """

    def __init__(self, address: tuple[str, int], *, sender: str | None = None,
                 timeout: float | None = 30.0,
                 connect_timeout: float | None = None) -> None:
        self.address = (address[0], int(address[1]))
        self.timeout = timeout
        self.connect_timeout = connect_timeout if connect_timeout is not None else timeout
        self.sender = sender
        self.sock = self._connect()
        self._next_cid = 0
        self._wlock = threading.Lock()

    def _connect(self) -> socket.socket:
        sock = socket.create_connection(self.address,
                                        timeout=self.connect_timeout)
        sock.settimeout(self.timeout)
        return sock

    def reconnect(self) -> None:
        """Drop the current connection and dial the address again.

        Any replies in flight on the old connection are lost — callers
        pairing this with retries must resend under the *same* rid so
        the service's exactly-once layer, not the network, decides
        whether the request runs again.
        """
        self.close()
        self.sock = self._connect()

    def send(self, kind: str, payload: Any, *, rid: str | None = None,
             now: float = 0.0, sender: str | None = None) -> int:
        """Frame one request without waiting; returns its ``cid``."""
        if self.sock is None:
            raise OSError("client is closed")
        with self._wlock:
            cid = self._next_cid
            self._next_cid += 1
            request: dict[str, Any] = {"cid": cid, "kind": kind, "payload": payload,
                                       "now": now}
            effective = sender if sender is not None else self.sender
            if effective is not None:
                request["sender"] = effective
            if rid is not None:
                request["rid"] = rid
            write_frame(self.sock, request)
        return cid

    def recv(self) -> dict:
        """Next reply frame (any ``cid``); raises on EOF mid-stream."""
        if self.sock is None:
            raise OSError("client is closed")
        reply = read_frame(self.sock)
        if reply is None:
            raise WireError("server closed the connection")
        return reply

    def request(self, kind: str, payload: Any, *, rid: str | None = None,
                now: float = 0.0, sender: str | None = None) -> dict:
        """Send one request and wait for *its* reply."""
        cid = self.send(kind, payload, rid=rid, now=now, sender=sender)
        while True:
            reply = self.recv()
            if reply.get("cid") == cid:
                return reply

    def call(self, kind: str, payload: Any, *, rid: str | None = None,
             now: float = 0.0, sender: str | None = None, attempts: int = 4,
             backoff: float = 0.05, max_backoff: float = 2.0,
             retry_busy: bool = False) -> dict:
        """One request with bounded reconnect-with-backoff.

        The resilient form of :meth:`request`: a connection failure or
        read timeout drops the socket, sleeps (exponential backoff,
        capped at *max_backoff*), reconnects, and resends — up to
        *attempts* tries total, then :class:`ClientRetryError`.

        Idempotence is the caller's protection, not luck: every resend
        carries the **same rid** (one is minted here when the caller
        did not supply one), so if the first attempt was accepted and
        only its reply was lost, the retry is answered from the
        service's reply cache — never re-executed.

        With *retry_busy* a ``BUSY`` verdict also backs off and
        retries (sheds are not cached, so the retry is a genuine new
        admission attempt); without it BUSY is returned to the caller,
        who may hold better context for pacing.
        """
        if attempts < 1:
            raise ValueError("attempts must be positive")
        if rid is None:
            # stable across every retry below, unique across clients
            rid = f"call:{os.urandom(8).hex()}"
        delay = backoff
        last_error: Exception | None = None
        for attempt in range(attempts):
            if attempt:
                time.sleep(delay)
                delay = min(delay * 2, max_backoff)
            try:
                if self.sock is None:
                    self.reconnect()
                reply = self.request(kind, payload, rid=rid, now=now,
                                     sender=sender)
            except (OSError, WireError) as exc:
                last_error = exc
                self.close()
                continue
            if reply.get("status") == "BUSY" and retry_busy \
                    and attempt + 1 < attempts:
                continue
            return reply
        raise ClientRetryError(
            f"{kind} to {self.address} failed after {attempts} attempt(s): "
            f"{last_error}", attempts=attempts,
        ) from last_error

    def close(self) -> None:
        if self.sock is None:
            return
        try:
            self.sock.close()
        except OSError:
            pass
        self.sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""The serving layer: a concurrent market-administrator bank service.

The paper's market administrator is one logical party; this package is
the shape that party takes when it must serve heavy traffic —
:class:`~repro.service.shard.ShardedBank` partitions the books,
:class:`~repro.service.batcher.VerificationBatcher` coalesces and
parallelizes the crypto, :class:`~repro.service.server.MarketService`
runs the accept→admit→batch→apply loop with
:class:`~repro.service.admission.AdmissionController` shedding
overload, :mod:`~repro.service.workers` fans verification across a
persistent process pool, :mod:`~repro.service.frontend` serves the
whole thing over TCP (length-prefixed :mod:`repro.net.wire` frames),
and :mod:`~repro.service.loadgen` drives the stack — in-process or
over real sockets — from the workload layer and reports latency SLOs.

See ``docs/service.md`` for the architecture and the knobs, and
``docs/storage.md`` for the on-disk journal/checkpoint format behind
:class:`~repro.service.journal.SegmentedFileJournal`.
"""

from repro.service.admission import AdmissionController, AdmissionDecision, TokenBucket
from repro.service.journal import (
    DEFAULT_SEGMENT_RECORDS,
    Checkpoint,
    FileJournal,
    Journal,
    JournalError,
    JournalMaintenance,
    JournalRecord,
    SegmentedFileJournal,
)
from repro.service.batcher import (
    DepositJob,
    DepositOutcome,
    VerificationBatcher,
    WithdrawJob,
    WithdrawOutcome,
)
from repro.service.aio import AsyncServiceFrontend
from repro.service.frontend import DispatchCore, ServiceClient, ServiceFrontend
from repro.service.loadgen import (
    LoadReport,
    Request,
    mint_deposit_traffic,
    run_async_socket_trace,
    run_socket_trace,
    run_trace,
)
from repro.service.server import Completion, MarketService, RequestFailure, SERVICE
from repro.service.shard import ShardedBank, account_shard, serial_shard
from repro.service.workers import (
    InlineBackend,
    PooledBackend,
    VerificationBackend,
    make_backend,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "TokenBucket",
    "Journal",
    "FileJournal",
    "SegmentedFileJournal",
    "JournalMaintenance",
    "DEFAULT_SEGMENT_RECORDS",
    "JournalRecord",
    "JournalError",
    "Checkpoint",
    "VerificationBatcher",
    "DepositJob",
    "WithdrawJob",
    "DepositOutcome",
    "WithdrawOutcome",
    "ShardedBank",
    "account_shard",
    "serial_shard",
    "MarketService",
    "Completion",
    "RequestFailure",
    "SERVICE",
    "LoadReport",
    "Request",
    "mint_deposit_traffic",
    "run_trace",
    "run_socket_trace",
    "run_async_socket_trace",
    "ServiceFrontend",
    "AsyncServiceFrontend",
    "DispatchCore",
    "ServiceClient",
    "VerificationBackend",
    "InlineBackend",
    "PooledBackend",
    "make_backend",
]

"""Asyncio front door: every connection on one event loop.

The thread-per-connection :class:`~repro.service.frontend
.ServiceFrontend` is the simplest correct shape, but a reader thread
per socket caps it at tens of connections — and the paper's market
administrator faces the opposite population: thousands of mobile
sensing participants holding long-lived, mostly-idle connections.
:class:`AsyncServiceFrontend` serves that shape by multiplexing every
socket on a single event loop thread, while changing *nothing* about
what the service computes:

* **Same frames.**  Each connection owns an incremental
  :class:`~repro.net.wire.FrameDecoder`; the loop feeds it raw bytes
  and pulls complete frames, exactly as the threaded readers do.
* **Same dispatcher.**  Parsed requests go into the *same*
  :class:`~repro.service.frontend.DispatchCore` queue the threaded
  frontend uses.  One dispatcher thread still owns the service, so
  submission order, batching, reply correlation — and therefore the
  reply bytes — are identical for the same arrival sequence.  The
  conformance suite (``tests/service/test_frontend_conformance.py``)
  holds the two frontends to byte-identical replies, journals and
  counters.
* **Backpressure, per connection.**  Each connection gets a bounded
  in-flight *window*.  Requests past the window queue in a
  per-connection backlog and the transport's reads are **paused**, so
  a flooding client throttles itself instead of growing the
  dispatcher queue.  Completed requests release slots through a
  round-robin pump over the paused connections — one backlogged
  request per connection per turn — so a chatty client cannot starve
  a polite one.
* **Pre-parse admission.**  When the service reports overload
  (:meth:`~repro.service.server.MarketService.overloaded`, fed the
  front door's own backlog), complete frames are shed with an
  immediate ``BUSY`` reply built from the *frame header alone* —
  :meth:`~repro.net.wire.FrameDecoder.raw_frames` keeps the stream
  synchronized without CRC-checking or decoding the payload, so an
  overload costs 12 bytes of header parse per shed request.  A
  pre-parse ``BUSY`` carries no ``cid`` (the cid lives in the payload
  that was never decoded); clients must treat a cid-less BUSY as
  "one outstanding request was shed".

Threading: the event loop thread owns every socket and all
per-connection state; the dispatcher thread owns the service.  The
two meet only at the work queue (loop → dispatcher) and at
``call_soon_threadsafe`` (dispatcher → loop, for reply writes and
window releases).  Reply ``send`` is best-effort exactly like the
threaded frontend's.
"""

from __future__ import annotations

import asyncio
import socket
import threading
from collections import deque
from typing import Any, Callable

import repro.obs as obs
from repro.net.wire import FrameDecoder, WireError, decode_payload, encode_frame
from repro.service.frontend import DispatchCore
from repro.service.server import MarketService

__all__ = ["AsyncServiceFrontend", "DEFAULT_WINDOW"]

#: Default per-connection in-flight window.  Deep enough to keep the
#: verification batcher fed from a handful of pipelining clients, small
#: enough that one flooding connection holds at most this many slots.
DEFAULT_WINDOW = 32


class _AioConn(asyncio.Protocol):
    """One multiplexed client connection (event-loop side).

    Implements the same connection contract :class:`DispatchCore`
    expects of the threaded ``_Conn`` — ``name``, thread-safe
    ``send(value) -> bool``, ``drop(cid)`` — plus the window accounting
    the loop uses for backpressure.  All mutable state is loop-thread
    only; the dispatcher reaches it via ``call_soon_threadsafe``.
    """

    def __init__(self, frontend: "AsyncServiceFrontend") -> None:
        self.frontend = frontend
        self.name = f"conn{frontend._next_conn}"
        frontend._next_conn += 1
        self.decoder = FrameDecoder()
        self.transport: asyncio.Transport | None = None
        self.open = False
        self.inflight = 0
        self.backlog: deque[Any] = deque()
        self.paused = False
        self._errored = False

    # -- protocol callbacks (event loop thread) ---------------------------
    def connection_made(self, transport) -> None:
        self.transport = transport
        self.open = True
        self.frontend._register(self)

    def data_received(self, data: bytes) -> None:
        fe = self.frontend
        try:
            self.decoder.feed(data)
            for _length, crc, payload in self.decoder.raw_frames():
                if fe._overloaded():
                    # shed from the header alone: the payload is never
                    # CRC-checked or decoded, so overload costs ~nothing
                    fe.preparse_busy += 1
                    fe._m_busy.inc()
                    self._send_local({"status": "BUSY", "reason": "overload"})
                    continue
                self._admit(decode_payload(payload, crc))
        except WireError as exc:
            # a torn/corrupt frame poisons only this connection
            self._errored = True
            fe.conn_errors += 1
            fe._m_conn_errors.inc()
            self._send_local({"status": "ERROR", "error": f"wire: {exc}"})
            self._close_transport()

    def connection_lost(self, exc) -> None:
        if not self._errored and self.decoder.pending_bytes:
            # mid-frame disconnect: the torn frame was never enqueued,
            # so nothing downstream is half-applied
            self.frontend.conn_errors += 1
            self.frontend._m_conn_errors.inc()
        self.open = False
        self.backlog.clear()
        self.frontend._unregister(self)

    # -- window / backpressure (event loop thread) ------------------------
    def _admit(self, request: Any) -> None:
        fe = self.frontend
        if self.inflight < fe.window:
            self.inflight += 1
            fe.core.enqueue(self, request)
        else:
            self.backlog.append(request)
            self._pause()

    def _pause(self) -> None:
        if self.paused or not self.open:
            return
        self.paused = True
        fe = self.frontend
        fe.pauses += 1
        fe._paused.append(self)
        fe._m_paused.set(len(fe._paused))
        try:
            self.transport.pause_reading()
        except (OSError, RuntimeError):
            pass

    def _resume(self) -> None:
        if not self.paused:
            return
        self.paused = False
        self.frontend.resumes += 1
        if self.open:
            try:
                self.transport.resume_reading()
            except (OSError, RuntimeError):
                pass

    # -- DispatchCore contract (called from the dispatcher thread) --------
    def send(self, value: Any) -> bool:
        """Best-effort framed reply for one admitted request.

        Marshals the write to the loop thread; the request's window
        slot is released there.  ``False`` once the peer is gone —
        same contract as the threaded connection.
        """
        # sample liveness *before* scheduling: once the loop has the
        # callback it may write the reply, let the peer read it and
        # close, and process connection_lost — all before this thread
        # runs again.  A reply handed to a live connection counts.
        was_open = self.open
        try:
            self.frontend._loop.call_soon_threadsafe(self._complete, value)
        except RuntimeError:  # loop already closed (shutdown race)
            return False
        return was_open

    def drop(self, cid: Any) -> None:
        """An admitted request was deliberately never answered.

        Still releases its window slot — otherwise every deliberately
        dropped duplicate would leak in-flight budget until the window
        wedged shut.
        """
        try:
            self.frontend._loop.call_soon_threadsafe(self._complete, None)
        except RuntimeError:
            pass

    # -- loop-thread internals --------------------------------------------
    def _complete(self, value: Any | None) -> None:
        """One admitted request finished: write its reply, free its slot."""
        if value is not None and self.open:
            try:
                self.transport.write(encode_frame(value))
            except (OSError, WireError):
                self._close_transport()
        self.inflight -= 1
        self.frontend._pump()

    def _send_local(self, value: Any) -> None:
        """Loop-originated frame (BUSY, wire error) — no window slot."""
        if self.open:
            try:
                self.transport.write(encode_frame(value))
            except (OSError, WireError):
                pass

    def _close_transport(self) -> None:
        self.open = False
        if self.transport is not None:
            self.transport.close()


class AsyncServiceFrontend:
    """Serve a :class:`MarketService` over TCP from one event loop.

    Drop-in lifecycle twin of :class:`~repro.service.frontend
    .ServiceFrontend`: ``port=0`` binds an OS-assigned port readable at
    :attr:`address` immediately after construction; use as a context
    manager or call :meth:`close`.  *window* bounds each connection's
    in-flight requests (see the module docstring for the backpressure
    and pre-parse admission story).  The service and its worker pool
    belong to the caller, exactly as with the threaded frontend.
    """

    def __init__(
        self,
        service: MarketService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        window: int = DEFAULT_WINDOW,
        telemetry: "obs.Telemetry | None" = None,
    ) -> None:
        if window < 1:
            raise ValueError("window must allow at least one in-flight request")
        self.service = service
        self.obs = telemetry if telemetry is not None else service.obs
        self.window = window
        self.core = DispatchCore(service, self.obs)
        self._listener = socket.create_server((host, port))
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.AbstractServer | None = None
        self._conns: list[_AioConn] = []
        self._paused: deque[_AioConn] = deque()
        self._next_conn = 0
        self._running = False
        self.conn_errors = 0
        self.preparse_busy = 0
        self.pauses = 0
        self.resumes = 0
        registry = self.obs.registry
        self._m_conns = registry.gauge(
            "repro_frontend_connections", "live client connections"
        )
        self._m_conn_errors = registry.counter(
            "repro_frontend_conn_errors_total",
            "connections dropped for wire violations",
        )
        self._m_paused = registry.gauge(
            "repro_frontend_paused_connections",
            "connections with reads paused for backpressure",
        )
        self._m_busy = registry.counter(
            "repro_frontend_preparse_busy_total",
            "frames shed BUSY from the header alone under overload",
        )

    # the dispatcher's scorecard and maintenance hook live on the core;
    # these mirrors keep the public surface of the two frontends equal
    @property
    def served(self) -> int:
        return self.core.served

    @property
    def after_batch(self) -> Callable[[], None] | None:
        return self.core.after_batch

    @after_batch.setter
    def after_batch(self, fn: Callable[[], None] | None) -> None:
        self.core.after_batch = fn

    def add_after_batch(self, fn: Callable[[], None]) -> None:
        """Chain *fn* onto the after-batch maintenance hook."""
        self.core.add_after_batch(fn)

    @property
    def paused_connections(self) -> int:
        """Connections currently read-paused for backpressure."""
        return len(self._paused)

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "AsyncServiceFrontend":
        if self._running:
            return self
        self._running = True
        self.core.start()
        self._loop = asyncio.new_event_loop()
        started = threading.Event()
        self._thread = threading.Thread(
            target=self._run, args=(started,), name="frontend-aio", daemon=True
        )
        self._thread.start()
        if not started.wait(timeout=5.0):
            raise RuntimeError("async frontend event loop failed to start")
        return self

    def _run(self, started: threading.Event) -> None:
        loop = self._loop
        asyncio.set_event_loop(loop)

        async def serve() -> None:
            self._server = await loop.create_server(
                lambda: _AioConn(self), sock=self._listener
            )
            started.set()

        try:
            loop.run_until_complete(serve())
        except OSError:
            started.set()  # unblock start(); close() will clean up
            return
        try:
            loop.run_forever()
        finally:
            loop.close()

    def close(self) -> None:
        if not self._running:
            return
        self._running = False
        loop = self._loop

        def shutdown() -> None:
            if self._server is not None:
                self._server.close()
            for conn in list(self._conns):
                conn._close_transport()
            loop.stop()

        try:
            loop.call_soon_threadsafe(shutdown)
        except RuntimeError:
            pass  # loop already gone
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.core.stop()
        self._conns = []
        self._paused.clear()
        self._m_conns.set(0)
        self._m_paused.set(0)

    def __enter__(self) -> "AsyncServiceFrontend":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- event-loop internals ----------------------------------------------
    def _overloaded(self) -> bool:
        # the service cannot see frames the front door has parsed but
        # not yet submitted, so its own backlog rides along
        return self.service.overloaded(self.core.backlog)

    def _register(self, conn: _AioConn) -> None:
        self._conns.append(conn)
        self._m_conns.set(len(self._conns))

    def _unregister(self, conn: _AioConn) -> None:
        if conn in self._conns:
            self._conns.remove(conn)
        self._m_conns.set(len(self._conns))

    def _pump(self) -> None:
        """Round-robin one backlogged request per paused connection.

        Runs on the loop thread after every released window slot: each
        paused connection gets at most one admission per turn, so
        freed capacity spreads across flooders instead of draining one
        connection's backlog to exhaustion first.  A connection leaves
        the paused set (and resumes reads) only once its backlog is
        empty *and* its window has room.
        """
        paused = self._paused
        for _ in range(len(paused)):
            conn = paused.popleft()
            if not conn.open:
                continue
            if conn.backlog and conn.inflight < self.window:
                conn.inflight += 1
                self.core.enqueue(conn, conn.backlog.popleft())
            if conn.backlog or conn.inflight >= self.window:
                paused.append(conn)  # still throttled
            else:
                conn._resume()
        self._m_paused.set(len(paused))

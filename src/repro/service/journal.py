"""Write-ahead journal for the market-administrator service.

The bank's books live in memory; a crash mid-batch would otherwise
lose every deposit applied since the last snapshot and — worse — lose
the *deposited-serial store*, reopening every double-spend.  The
journal closes that hole with the classic discipline:

* **append before apply** — every state mutation (account opening,
  withdrawal debit, deposit commit) is recorded in the journal *before*
  the books change.  The record carries everything needed to redo the
  mutation (and to synthesize the client's reply), so after a crash the
  journal plus the last checkpoint reconstruct exactly the committed
  state: a mutation is either journaled (and will be re-applied) or it
  never happened.  Nothing is ever half-applied.
* **idempotent replay keyed on request ids** — records carry the
  originating request id (``rid``); replay skips a rid it has already
  applied, so duplicated records (client retries, overlapping recovery
  passes) can never double-apply a deposit.
* **bounded growth** — the log is an epoch/segment store, not one
  endless list: every record belongs to the fixed-capacity segment
  ``lsn // segment_records``, checkpoints durably fold a prefix of the
  log into snapshot state, and :meth:`Journal.compact` drops whole
  segments that a durable checkpoint fully covers (under an explicit
  retention policy).  LSNs never restart; compaction only advances the
  oldest *retained* position (:attr:`Journal.first_lsn`).

Three storage modes:

* :class:`Journal` keeps records in a list, which under the fault
  harness plays the role of the disk that survives the simulated crash
  (the service and bank objects are discarded; the journal object is
  handed to recovery).
* :class:`FileJournal` is the single-file durable variant:
  length-prefixed, digest-framed records appended to one file, with
  torn-tail detection on load.  It predates segments and never
  compacts; kept for small tools and backward compatibility.
* :class:`SegmentedFileJournal` is the production store: one file per
  segment, incremental copy-on-write checkpoints (content-addressed
  blob files + a small manifest), retention-policy compaction that
  actually deletes files, and named crash-injection steps so the fault
  harness can kill the process *inside* checkpointing and compaction.
  The byte-exact on-disk format is specified in ``docs/storage.md``.

Record kinds (see :mod:`repro.service.server` for who writes what)::

    accept  {sender, kind, payload}        service accepted a request
    apply   op-specific redo payload       bank is about to mutate
    reply   {status, body}                 terminal answer for a rid

A :class:`Checkpoint` pairs per-shard snapshot blobs with the journal
position they reflect; recovery restores the blobs and replays only
records after that position.  Since checkpoints gate compaction, a v2
checkpoint also carries the request-lifecycle state (reply cache,
in-flight accepts, eviction tombstones, sequence watermark) that
recovery used to rebuild by scanning the — now partially deleted —
log from lsn 0.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Iterator

import repro.obs as obs
from repro.crypto.hashing import sha256
from repro.net.codec import decode, encode

__all__ = [
    "JournalError",
    "JournalRecord",
    "Journal",
    "FileJournal",
    "SegmentedFileJournal",
    "JournalMaintenance",
    "Checkpoint",
    "DEFAULT_SEGMENT_RECORDS",
]

_CKPT_MAGIC_V1 = b"repro-service-checkpoint-v1"
_CKPT_MAGIC = b"repro-service-checkpoint-v2"
_FILE_MAGIC = b"repro-journal-v1\n"
_SEGMENT_MAGIC = b"repro-journal-seg-v1\n"
_MANIFEST_MAGIC = b"repro-ckpt-manifest-v1"
_FRAME_DIGEST_BYTES = 8
_BLOB_NAME_HEX = 16

#: Records per segment: segment ``k`` holds LSNs ``[k*N, (k+1)*N)``.
DEFAULT_SEGMENT_RECORDS = 1024

#: Record kinds the service/bank layers write.
RECORD_KINDS = ("accept", "apply", "reply")


class JournalError(Exception):
    """Journal rejected an operation or a persisted journal is corrupt."""


@dataclass(frozen=True)
class JournalRecord:
    """One journaled event.

    ``lsn`` is the log sequence number (dense, starting at 0); ``rid``
    is the request id the record belongs to (empty for out-of-band
    mutations such as load-generation minting); ``op`` names the
    operation (request kind or bank mutation); ``payload`` is a
    codec-encodable value carrying everything replay needs.
    """

    lsn: int
    kind: str
    rid: str
    op: str
    payload: Any

    def to_state(self) -> dict:
        return {
            "lsn": self.lsn,
            "kind": self.kind,
            "rid": self.rid,
            "op": self.op,
            "payload": self.payload,
        }

    @classmethod
    def from_state(cls, state: dict) -> "JournalRecord":
        return cls(
            lsn=state["lsn"],
            kind=state["kind"],
            rid=state["rid"],
            op=state["op"],
            payload=state["payload"],
        )


class Journal:
    """In-memory, fsync-free write-ahead journal (the test/fault mode).

    Payloads are normalized through the canonical codec on append —
    appending is exactly as strict as sending the value over the wire,
    and the journal can never share mutable state with the live books
    (a record read back at recovery is a fresh decoded copy).

    The log is segmented: record ``lsn`` belongs to segment
    ``lsn // segment_records``, and :meth:`compact` drops whole sealed
    segments that a durable checkpoint covers.  ``len(journal)`` is the
    *retained* record count; :attr:`first_lsn`/:attr:`last_lsn` are the
    retained LSN range (LSNs are global and never reused).
    """

    def __init__(self, *, segment_records: int = DEFAULT_SEGMENT_RECORDS,
                 telemetry: "obs.Telemetry | None" = None) -> None:
        if segment_records < 1:
            raise JournalError("segment_records must be positive")
        self.segment_records = segment_records
        self._base_lsn = 0  # lsn of _records[0] (next lsn when empty)
        self._records: list[JournalRecord] = []
        self._observers: list = []
        self.compactions = 0
        self.segments_dropped = 0
        self._bind_obs(telemetry)

    def add_observer(self, fn) -> None:
        """Call *fn(record)* synchronously for every appended record.

        The segment-export hook: a replication shipper registered here
        sees each record on the appending thread *before* the append
        returns — and therefore before any reply that depends on the
        record is sent — which is what lets a peer's copy of the
        journal be a superset of every acknowledged request.  Records
        loaded from disk (:class:`FileJournal` recovery) do not fire;
        only new appends do.
        """
        self._observers.append(fn)

    def _bind_obs(self, telemetry: "obs.Telemetry | None") -> None:
        """Attach a telemetry stack (the service shares its own down)."""
        self.obs = telemetry if telemetry is not None else obs.get_default()
        registry = self.obs.registry
        self._m_appends = {
            kind: registry.counter(
                "repro_journal_appends_total",
                "journal records appended, by record kind", kind=kind,
            )
            for kind in RECORD_KINDS
        }
        self._m_bytes = registry.counter(
            "repro_journal_append_bytes_total",
            "encoded payload bytes appended to the journal",
        )
        self._m_lsn = registry.gauge(
            "repro_journal_lsn", "log sequence number of the newest record"
        )
        self._m_first_lsn = registry.gauge(
            "repro_journal_first_lsn",
            "oldest retained log sequence number (advances on compaction)",
        )
        self._m_segments = registry.gauge(
            "repro_journal_segments_retained",
            "journal segments currently retained",
        )
        self._m_compactions = registry.counter(
            "repro_journal_compactions_total",
            "compaction passes that dropped at least one segment",
        )
        self._m_dropped = registry.counter(
            "repro_journal_segments_dropped_total",
            "journal segments dropped by compaction",
        )

    def __len__(self) -> int:
        """Retained record count (shrinks when :meth:`compact` drops segments)."""
        return len(self._records)

    @property
    def first_lsn(self) -> int:
        """LSN of the oldest retained record (the next LSN when empty)."""
        return self._base_lsn

    @property
    def last_lsn(self) -> int:
        """LSN of the newest record, or ``first_lsn - 1`` when empty."""
        return self._base_lsn + len(self._records) - 1

    def segment_of(self, lsn: int) -> int:
        """The segment id holding *lsn* (``lsn // segment_records``)."""
        return lsn // self.segment_records

    @property
    def segments_retained(self) -> int:
        if not self._records:
            return 0
        return self.segment_of(self.last_lsn) - self.segment_of(self.first_lsn) + 1

    def append(self, kind: str, rid: str, op: str, payload: Any) -> JournalRecord:
        """Durably record one event; returns the record (with its LSN)."""
        if kind not in RECORD_KINDS:
            raise JournalError(f"unknown journal record kind {kind!r}")
        try:
            encoded = encode(payload)
            normalized = decode(encoded)
        except (TypeError, ValueError) as exc:
            raise JournalError(f"unjournalable payload for {op!r}: {exc}") from exc
        record = JournalRecord(
            lsn=self._base_lsn + len(self._records), kind=kind, rid=rid, op=op,
            payload=normalized,
        )
        # the span inherits the active request's trace id (the apply or
        # submit span is on the tracer stack), so journal time shows up
        # inside the request's timeline, not as a detached blip
        with self.obs.tracer.span("journal_append", kind=kind, op=op,
                                  lsn=record.lsn, bytes=len(encoded)):
            self._records.append(record)
            self._persist(record)
            for observer in self._observers:
                observer(record)
        self._m_appends[kind].inc()
        self._m_bytes.inc(len(encoded))
        self._m_lsn.set(record.lsn)
        return record

    def _persist(self, record: JournalRecord) -> None:
        """Hook for durable subclasses; in-memory mode does nothing."""

    def records(self, *, after: int = -1) -> Iterator[JournalRecord]:
        """Retained records with ``lsn > after``, in LSN order.

        A cursor inside the compacted prefix (``after < first_lsn - 1``)
        silently starts at the oldest retained record; callers that need
        the *full* history must pair the tail with the checkpoint that
        compaction was cut against (see :meth:`compact`).
        """
        start = after + 1 - self._base_lsn
        if start < 0:
            start = 0
        return iter(self._records[start:])

    def compact(self, durable_lsn: int, *, retain_segments: int = 1) -> list[int]:
        """Drop sealed segments fully covered by a durable checkpoint.

        *durable_lsn* is the LSN of a checkpoint that is already safely
        persisted (or shipped): every record with ``lsn <= durable_lsn``
        is folded into that checkpoint's state.  A segment is dropped
        only when **all** of its records are covered; *retain_segments*
        keeps that many of the newest coverable segments anyway (debug
        tail / shipping slack).  Returns the dropped segment ids.

        Compaction never touches the active (unsealed) segment and
        never renumbers anything: ``first_lsn`` advances, ``last_lsn``
        and future LSNs are unchanged.
        """
        if retain_segments < 0:
            raise JournalError("retain_segments must be >= 0")
        if durable_lsn > self.last_lsn:
            durable_lsn = self.last_lsn
        # segments 0 .. covered-1 are entirely <= durable_lsn
        covered = (durable_lsn + 1) // self.segment_records
        target_first = covered - retain_segments
        current_first = self._base_lsn // self.segment_records
        if target_first <= current_first:
            self._m_first_lsn.set(self.first_lsn)
            self._m_segments.set(self.segments_retained)
            return []
        dropped = list(range(current_first, target_first))
        new_base = target_first * self.segment_records
        with self.obs.tracer.span("journal_compact", first=current_first,
                                  dropped=len(dropped)):
            self._records = self._records[new_base - self._base_lsn:]
            self._base_lsn = new_base
            self._drop_segments(dropped)
        self.compactions += 1
        self.segments_dropped += len(dropped)
        self._m_compactions.inc()
        self._m_dropped.inc(len(dropped))
        self._m_first_lsn.set(self.first_lsn)
        self._m_segments.set(self.segments_retained)
        return dropped

    def _drop_segments(self, segment_ids: list[int]) -> None:
        """Hook for durable subclasses: delete the dropped segments' files."""


class FileJournal(Journal):
    """Journal persisted to one append-only file (the pre-segment format).

    Frame format after a one-line magic header: 4-byte big-endian body
    length, the first 8 bytes of ``sha256(body)``, then the
    codec-encoded record.  :meth:`load` (run by the constructor when
    the file exists) stops at the first torn frame — a crash mid-append
    costs at most the record being written, never the records before
    it — and raises :class:`JournalError` on corruption *before* the
    tail, which no crash can produce.

    A single file cannot drop its prefix, so this class refuses to
    compact; use :class:`SegmentedFileJournal` for bounded disk.
    """

    def __init__(self, path: str | os.PathLike[str], *,
                 telemetry: "obs.Telemetry | None" = None) -> None:
        super().__init__(telemetry=telemetry)
        self.path = os.fspath(path)
        self.torn_tail = False
        if os.path.exists(self.path):
            self._load()
            self._fh = open(self.path, "ab")
        else:
            self._fh = open(self.path, "wb")
            self._fh.write(_FILE_MAGIC)
            self._fh.flush()

    def close(self) -> None:
        self._fh.close()

    def compact(self, durable_lsn: int, *, retain_segments: int = 1) -> list[int]:
        raise JournalError(
            "FileJournal cannot compact (single append-only file); "
            "use SegmentedFileJournal"
        )

    def _persist(self, record: JournalRecord) -> None:
        self._fh.write(_frame(record.to_state()))
        self._fh.flush()

    def _load(self) -> None:
        with open(self.path, "rb") as fh:
            data = fh.read()
        if not data.startswith(_FILE_MAGIC):
            raise JournalError(f"{self.path}: not a journal file (bad magic)")
        records, tail_offset, torn = _scan_frames(
            data, len(_FILE_MAGIC), self.path, expected_lsn=0
        )
        self._records.extend(records)
        self.torn_tail = torn
        if self.torn_tail:
            # drop the torn bytes so new appends start on a clean frame
            with open(self.path, "rb+") as fh:
                fh.truncate(tail_offset)


def _frame(state: dict) -> bytes:
    """One wire frame: u32 body length, 8-byte digest prefix, codec body."""
    body = encode(state)
    return (
        len(body).to_bytes(4, "big")
        + sha256(body)[:_FRAME_DIGEST_BYTES]
        + body
    )


def _scan_frames(
    data: bytes, start: int, name: str, *, expected_lsn: int
) -> tuple[list[JournalRecord], int, bool]:
    """Decode record frames from *data*; returns (records, clean end, torn).

    Torn bytes at the very end of the buffer are tolerated (crash
    mid-append); a bad digest or undecodable body *before* the tail is
    corruption and raises.  LSNs must be dense from *expected_lsn*.
    """
    records: list[JournalRecord] = []
    pos = start
    end = len(data)
    torn = False
    while pos < end:
        if pos + 4 + _FRAME_DIGEST_BYTES > end:
            torn = True
            break
        size = int.from_bytes(data[pos : pos + 4], "big")
        digest = data[pos + 4 : pos + 4 + _FRAME_DIGEST_BYTES]
        body_start = pos + 4 + _FRAME_DIGEST_BYTES
        body = data[body_start : body_start + size]
        if len(body) < size:
            torn = True
            break
        if sha256(body)[:_FRAME_DIGEST_BYTES] != digest:
            if body_start + size == end:
                # torn write inside the final frame's body
                torn = True
                break
            raise JournalError(
                f"{name}: corrupt frame at byte {pos} (digest mismatch)"
            )
        try:
            record = JournalRecord.from_state(decode(body))
        except (ValueError, KeyError, TypeError) as exc:
            raise JournalError(
                f"{name}: undecodable frame at byte {pos}: {exc}"
            ) from exc
        if record.lsn != expected_lsn:
            raise JournalError(
                f"{name}: LSN gap at byte {pos} "
                f"(got {record.lsn}, expected {expected_lsn})"
            )
        records.append(record)
        expected_lsn += 1
        pos = body_start + size
    return records, pos, torn


class SegmentedFileJournal(Journal):
    """The production journal: numbered segment files under one directory.

    Directory layout (byte-exact spec in ``docs/storage.md``)::

        seg-00000000.wal        segment 0: LSNs [0, N)
        seg-00000001.wal        segment 1: LSNs [N, 2N)
        ckpt-0000000000000511.mf  checkpoint manifest cut at LSN 511
        blob-6f1d2c3b4a596871.bin content-addressed shard snapshot blob

    Each segment file is the one-line segment magic, a framed header
    (``{segment, base_lsn, segment_records}``), then record frames in
    the same ``u32 length + 8-byte digest + codec body`` framing as
    :class:`FileJournal`.  Only the newest segment may end in a torn
    frame (truncated on load); any earlier damage is corruption.

    Checkpoints are incremental and copy-on-write: each shard blob is
    written to a file named by its content digest **only if absent**
    (an unchanged shard costs zero bytes), and the manifest referencing
    the blobs is published last via atomic rename — a crash anywhere in
    the sequence leaves the previous checkpoint fully intact.
    :meth:`compact` deletes segment files fully covered by the newest
    durable manifest (honoring the retention policy), then superseded
    manifests, then unreferenced blobs — strictly in that order, so an
    interrupted compaction can only leave *extra* files, never a
    recovery gap.

    *crash_hook*, when set, is called with a step label at every
    named point inside checkpointing and compaction; the fault harness
    raises :class:`~repro.testing.faults.CrashPoint` from it to prove
    recovery equivalence for crashes inside the maintenance path.
    """

    def __init__(self, directory: str | os.PathLike[str], *,
                 segment_records: int = DEFAULT_SEGMENT_RECORDS,
                 telemetry: "obs.Telemetry | None" = None,
                 crash_hook: Callable[[str], None] | None = None) -> None:
        super().__init__(segment_records=segment_records, telemetry=telemetry)
        self.directory = os.fspath(directory)
        self.crash_hook = crash_hook
        self.torn_tail = False
        self.checkpoint_fallbacks = 0  # corrupt manifests skipped on load
        self._fh = None
        self._fh_segment = -1
        os.makedirs(self.directory, exist_ok=True)
        self._load()

    # -- plumbing ----------------------------------------------------------
    def _step(self, label: str) -> None:
        if self.crash_hook is not None:
            self.crash_hook(label)

    def _segment_path(self, segment_id: int) -> str:
        return os.path.join(self.directory, f"seg-{segment_id:08d}.wal")

    def _manifest_path(self, lsn: int) -> str:
        return os.path.join(self.directory, f"ckpt-{lsn:016d}.mf")

    def _blob_path(self, digest_hex: str) -> str:
        return os.path.join(self.directory, f"blob-{digest_hex}.bin")

    def _segment_ids_on_disk(self) -> list[int]:
        ids = []
        for name in os.listdir(self.directory):
            if name.startswith("seg-") and name.endswith(".wal"):
                ids.append(int(name[4:-4]))
        return sorted(ids)

    def _manifest_lsns_on_disk(self) -> list[int]:
        lsns = []
        for name in os.listdir(self.directory):
            if name.startswith("ckpt-") and name.endswith(".mf"):
                lsns.append(int(name[5:-3]))
        return sorted(lsns)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
            self._fh_segment = -1

    def disk_usage(self) -> int:
        """Total bytes currently on disk under the journal directory."""
        total = 0
        for name in os.listdir(self.directory):
            try:
                total += os.path.getsize(os.path.join(self.directory, name))
            except OSError:
                pass
        return total

    # -- load --------------------------------------------------------------
    def _load(self) -> None:
        segment_ids = self._segment_ids_on_disk()
        if not segment_ids:
            return
        for prev, cur in zip(segment_ids, segment_ids[1:]):
            if cur != prev + 1:
                raise JournalError(
                    f"{self.directory}: segment gap between seg {prev} and "
                    f"{cur} (compaction only ever drops a prefix)"
                )
        self._base_lsn = segment_ids[0] * self.segment_records
        expected_lsn = self._base_lsn
        last = segment_ids[-1]
        for segment_id in segment_ids:
            path = self._segment_path(segment_id)
            with open(path, "rb") as fh:
                data = fh.read()
            if not data.startswith(_SEGMENT_MAGIC):
                raise JournalError(f"{path}: not a journal segment (bad magic)")
            headers, header_end, header_torn = _scan_header(data, path)
            if headers["segment"] != segment_id:
                raise JournalError(
                    f"{path}: header names segment {headers['segment']}, "
                    f"file name says {segment_id}"
                )
            if headers["segment_records"] != self.segment_records:
                raise JournalError(
                    f"{path}: segment capacity {headers['segment_records']} "
                    f"!= store capacity {self.segment_records}"
                )
            if header_torn:
                raise JournalError(f"{path}: torn segment header")
            records, tail_offset, torn = _scan_frames(
                data, header_end, path, expected_lsn=expected_lsn
            )
            if segment_id != last:
                if torn or len(records) != self.segment_records:
                    raise JournalError(
                        f"{path}: sealed segment holds {len(records)} of "
                        f"{self.segment_records} records"
                        + (" (torn frame)" if torn else "")
                    )
            elif torn:
                self.torn_tail = True
                with open(path, "rb+") as fh:
                    fh.truncate(tail_offset)
            self._records.extend(records)
            expected_lsn += len(records)
        self._m_lsn.set(self.last_lsn)
        self._m_first_lsn.set(self.first_lsn)
        self._m_segments.set(self.segments_retained)

    # -- append ------------------------------------------------------------
    def _persist(self, record: JournalRecord) -> None:
        segment_id = self.segment_of(record.lsn)
        if self._fh is None or segment_id != self._fh_segment:
            self._roll_to(segment_id)
        self._fh.write(_frame(record.to_state()))
        self._fh.flush()

    def _roll_to(self, segment_id: int) -> None:
        if self._fh is not None:
            self._fh.close()
        path = self._segment_path(segment_id)
        if os.path.exists(path):
            # the partially-filled tail segment found on load
            self._fh = open(path, "ab")
        else:
            self._fh = open(path, "wb")
            self._fh.write(_SEGMENT_MAGIC)
            self._fh.write(_frame({
                "segment": segment_id,
                "base_lsn": segment_id * self.segment_records,
                "segment_records": self.segment_records,
            }))
            self._fh.flush()
        self._fh_segment = segment_id

    # -- checkpoints (incremental, copy-on-write) --------------------------
    def write_checkpoint(self, checkpoint: "Checkpoint") -> str:
        """Durably persist *checkpoint*; returns the manifest path.

        Blob files are content-addressed and written only when absent,
        so an unchanged shard between two checkpoints is free.  The
        manifest is written to a ``.tmp`` sibling and published by
        ``os.replace`` *after* every blob it references exists — the
        newest manifest on disk therefore always validates, and a crash
        at any step leaves the previous checkpoint untouched.
        """
        shards = []
        for index, blob in enumerate(checkpoint.blobs):
            digest = sha256(blob).hex()[:_BLOB_NAME_HEX]
            path = self._blob_path(digest)
            if not os.path.exists(path):
                self._step(f"checkpoint:blob:{index}")
                tmp = path + ".tmp"
                with open(tmp, "wb") as fh:
                    fh.write(blob)
                os.replace(tmp, path)
            shards.append(digest)
        self._step("checkpoint:manifest")
        body = encode({
            "lsn": checkpoint.lsn,
            "next_seq": checkpoint.next_seq,
            "shards": shards,
            "replies": [list(entry) for entry in checkpoint.replies],
            "pending": list(checkpoint.pending),
            "evicted": list(checkpoint.evicted),
        })
        manifest = _MANIFEST_MAGIC + sha256(_MANIFEST_MAGIC, body) + body
        path = self._manifest_path(checkpoint.lsn)
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(manifest)
        self._step("checkpoint:publish")
        os.replace(tmp, path)
        return path

    def _read_manifest(self, lsn: int) -> dict | None:
        """Decode one manifest, or ``None`` when it fails validation."""
        try:
            with open(self._manifest_path(lsn), "rb") as fh:
                blob = fh.read()
        except OSError:
            return None
        if not blob.startswith(_MANIFEST_MAGIC):
            return None
        digest = blob[len(_MANIFEST_MAGIC) : len(_MANIFEST_MAGIC) + 32]
        body = blob[len(_MANIFEST_MAGIC) + 32 :]
        if sha256(_MANIFEST_MAGIC, body) != digest:
            return None
        try:
            state = decode(body)
        except ValueError:
            return None
        return state

    def load_checkpoint(self) -> "Checkpoint | None":
        """The newest durable checkpoint that fully validates.

        A manifest is only usable when its own digest checks out *and*
        every referenced blob file exists with matching content digest;
        otherwise the next-older manifest is tried (counted in
        :attr:`checkpoint_fallbacks`).  ``None`` when no checkpoint
        survives — recovery then replays the whole retained log.
        """
        for lsn in reversed(self._manifest_lsns_on_disk()):
            state = self._read_manifest(lsn)
            if state is None:
                self.checkpoint_fallbacks += 1
                continue
            blobs = []
            for digest in state["shards"]:
                try:
                    with open(self._blob_path(digest), "rb") as fh:
                        blob = fh.read()
                except OSError:
                    blobs = None
                    break
                if sha256(blob).hex()[:_BLOB_NAME_HEX] != digest:
                    blobs = None
                    break
                blobs.append(blob)
            if blobs is None:
                self.checkpoint_fallbacks += 1
                continue
            return Checkpoint(
                lsn=state["lsn"],
                blobs=tuple(blobs),
                replies=tuple(
                    (rid, status, body) for rid, status, body in state["replies"]
                ),
                pending=tuple(state["pending"]),
                evicted=tuple(state["evicted"]),
                next_seq=state["next_seq"],
            )
        return None

    # -- compaction --------------------------------------------------------
    def compact(self, durable_lsn: int | None = None, *,
                retain_segments: int = 1,
                retain_checkpoints: int = 1) -> list[int]:
        """Delete files covered by a durable checkpoint; returns dropped ids.

        With ``durable_lsn=None`` the newest valid manifest's LSN is
        used (no valid manifest means nothing is dropped).  Deletion
        order is segments → superseded manifests → unreferenced blobs
        (and stray ``.tmp`` files), each behind a named crash step; any
        interruption leaves only *extra* files, which the next pass
        removes.  *retain_checkpoints* keeps that many of the newest
        valid manifests (at least 1 — compaction without a durable
        checkpoint would strand the log).
        """
        if retain_checkpoints < 1:
            raise JournalError("retain_checkpoints must be >= 1")
        if durable_lsn is None:
            manifests = [
                lsn for lsn in self._manifest_lsns_on_disk()
                if self._read_manifest(lsn) is not None
            ]
            if not manifests:
                return []
            durable_lsn = manifests[-1]
        dropped = super().compact(durable_lsn, retain_segments=retain_segments)
        self._gc_checkpoints(retain_checkpoints)
        return dropped

    def _drop_segments(self, segment_ids: list[int]) -> None:
        for segment_id in segment_ids:
            self._step(f"compact:segment:{segment_id}")
            try:
                os.unlink(self._segment_path(segment_id))
            except OSError:
                pass  # already gone (a previous interrupted pass)

    def _gc_checkpoints(self, retain_checkpoints: int) -> None:
        lsns = self._manifest_lsns_on_disk()
        valid = [lsn for lsn in lsns if self._read_manifest(lsn) is not None]
        keep = set(valid[-retain_checkpoints:])
        referenced: set[str] = set()
        for lsn in keep:
            state = self._read_manifest(lsn)
            if state is not None:
                referenced.update(state["shards"])
        for lsn in lsns:
            if lsn in keep:
                continue
            self._step(f"compact:manifest:{lsn}")
            try:
                os.unlink(self._manifest_path(lsn))
            except OSError:
                pass
        for name in sorted(os.listdir(self.directory)):
            path = os.path.join(self.directory, name)
            if name.endswith(".tmp"):
                self._step(f"compact:tmp:{name}")
                try:
                    os.unlink(path)
                except OSError:
                    pass
            elif name.startswith("blob-") and name.endswith(".bin"):
                if name[5:-4] not in referenced:
                    self._step(f"compact:blob:{name}")
                    try:
                        os.unlink(path)
                    except OSError:
                        pass


def _scan_header(data: bytes, path: str) -> tuple[dict, int, bool]:
    """Decode the framed segment header; returns (header, end offset, torn)."""
    pos = len(_SEGMENT_MAGIC)
    end = len(data)
    if pos + 4 + _FRAME_DIGEST_BYTES > end:
        return {}, pos, True
    size = int.from_bytes(data[pos : pos + 4], "big")
    digest = data[pos + 4 : pos + 4 + _FRAME_DIGEST_BYTES]
    body_start = pos + 4 + _FRAME_DIGEST_BYTES
    body = data[body_start : body_start + size]
    if len(body) < size or sha256(body)[:_FRAME_DIGEST_BYTES] != digest:
        return {}, pos, True
    try:
        header = decode(body)
    except ValueError as exc:
        raise JournalError(f"{path}: undecodable segment header: {exc}") from exc
    return header, body_start + size, False


class JournalMaintenance:
    """Checkpoint + compaction cadence for a :class:`SegmentedFileJournal`.

    Call :meth:`run` from a point where the service is quiescent — the
    frontend's ``after_batch`` hook (use :meth:`attach`) or between
    scenario steps.  Every *checkpoint_every* appended records it pulls
    a fresh :class:`Checkpoint` from *checkpoint_source* (the service's
    :meth:`~repro.service.server.MarketService.checkpoint`), persists
    it, and compacts the journal against it under the retention policy.
    Snapshots are incremental (dirty shards only — see
    :meth:`~repro.service.shard.ShardedBank.snapshot`), so the cut
    never scales with total state, only with what changed.
    """

    def __init__(self, journal: SegmentedFileJournal,
                 checkpoint_source: Callable[[], "Checkpoint"], *,
                 checkpoint_every: int = 256,
                 retain_segments: int = 1,
                 retain_checkpoints: int = 1) -> None:
        self.journal = journal
        self.checkpoint_source = checkpoint_source
        self.checkpoint_every = checkpoint_every
        self.retain_segments = retain_segments
        self.retain_checkpoints = retain_checkpoints
        self.last_checkpoint_lsn = -1
        self.checkpoints_cut = 0
        self.segments_deleted = 0
        registry = journal.obs.registry
        self._m_checkpoints = registry.counter(
            "repro_journal_checkpoints_total",
            "durable checkpoints cut by journal maintenance",
        )
        self._m_disk = registry.gauge(
            "repro_journal_disk_bytes",
            "bytes on disk under the journal directory",
        )
        existing = journal.load_checkpoint()
        if existing is not None:
            self.last_checkpoint_lsn = existing.lsn

    def attach(self, frontend) -> None:
        """Chain :meth:`run` onto *frontend*'s after-batch hook."""
        frontend.add_after_batch(lambda: self.run())

    def run(self, *, force: bool = False) -> bool:
        """Cut + persist a checkpoint and compact, when one is due."""
        appended = self.journal.last_lsn - self.last_checkpoint_lsn
        if not force and appended < self.checkpoint_every:
            return False
        if self.journal.last_lsn < 0:
            return False
        checkpoint = self.checkpoint_source()
        self.journal.write_checkpoint(checkpoint)
        self.last_checkpoint_lsn = checkpoint.lsn
        self.checkpoints_cut += 1
        self._m_checkpoints.inc()
        dropped = self.journal.compact(
            checkpoint.lsn,
            retain_segments=self.retain_segments,
            retain_checkpoints=self.retain_checkpoints,
        )
        self.segments_deleted += len(dropped)
        self._m_disk.set(self.journal.disk_usage())
        return True


@dataclass(frozen=True)
class Checkpoint:
    """Shard snapshot blobs plus the journal position they reflect.

    Every journal record with ``lsn <= lsn`` is already folded into the
    blobs; recovery restores the blobs and replays only what comes
    after.  Because compaction may have deleted records before the cut,
    a checkpoint also carries the request-lifecycle state those records
    used to prove:

    * ``replies`` — the reply cache, ``(rid, status, body)`` triples in
      completion order (oldest first, so eviction order survives);
    * ``pending`` — accepted-but-unanswered requests (each the journaled
      accept payload plus its ``rid``), re-enqueued on recovery;
    * ``evicted`` — tombstone digests of rids whose cached replies were
      evicted (see :meth:`MarketService.submit <repro.service.server
      .MarketService.submit>`): a retry of one is answered with an
      explicit error, never re-executed;
    * ``next_seq`` — the sequence-number watermark (auto-generated rids
      embed it; it must never rewind).

    The v1 wire format (``lsn`` + ``blobs`` only) is still decoded; the
    lifecycle fields default to empty, which recovery treats as "scan
    the whole retained journal" — exactly the old behavior.
    """

    lsn: int
    blobs: tuple[bytes, ...]
    replies: tuple = ()
    pending: tuple = ()
    evicted: tuple = ()
    next_seq: int = 0

    def to_bytes(self) -> bytes:
        body = encode({
            "lsn": self.lsn,
            "blobs": list(self.blobs),
            "replies": [list(entry) for entry in self.replies],
            "pending": list(self.pending),
            "evicted": list(self.evicted),
            "next_seq": self.next_seq,
        })
        return _CKPT_MAGIC + sha256(_CKPT_MAGIC, body) + body

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Checkpoint":
        if blob.startswith(_CKPT_MAGIC):
            magic = _CKPT_MAGIC
        elif blob.startswith(_CKPT_MAGIC_V1):
            magic = _CKPT_MAGIC_V1
        else:
            raise JournalError("not a service checkpoint (bad magic)")
        digest = blob[len(magic) : len(magic) + 32]
        body = blob[len(magic) + 32 :]
        if sha256(magic, body) != digest:
            raise JournalError("checkpoint integrity digest mismatch")
        try:
            state = decode(body)
        except ValueError as exc:
            raise JournalError(f"checkpoint body undecodable: {exc}") from exc
        return cls(
            lsn=state["lsn"],
            blobs=tuple(state["blobs"]),
            replies=tuple(
                (rid, status, body_)
                for rid, status, body_ in state.get("replies", ())
            ),
            pending=tuple(state.get("pending", ())),
            evicted=tuple(state.get("evicted", ())),
            next_seq=state.get("next_seq", 0),
        )

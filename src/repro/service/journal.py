"""Write-ahead journal for the market-administrator service.

The bank's books live in memory; a crash mid-batch would otherwise
lose every deposit applied since the last snapshot and — worse — lose
the *deposited-serial store*, reopening every double-spend.  The
journal closes that hole with the classic discipline:

* **append before apply** — every state mutation (account opening,
  withdrawal debit, deposit commit) is recorded in the journal *before*
  the books change.  The record carries everything needed to redo the
  mutation (and to synthesize the client's reply), so after a crash the
  journal plus the last checkpoint reconstruct exactly the committed
  state: a mutation is either journaled (and will be re-applied) or it
  never happened.  Nothing is ever half-applied.
* **idempotent replay keyed on request ids** — records carry the
  originating request id (``rid``); replay skips a rid it has already
  applied, so duplicated records (client retries, overlapping recovery
  passes) can never double-apply a deposit.
* **fsync-free in-memory mode** — :class:`Journal` keeps records in a
  list, which under the fault harness plays the role of the disk that
  survives the simulated crash (the service and bank objects are
  discarded; the journal object is handed to recovery).
  :class:`FileJournal` is the durable variant: length-prefixed,
  digest-framed records appended to a real file, with torn-tail
  detection on load.

Record kinds (see :mod:`repro.service.server` for who writes what)::

    accept  {sender, kind, payload}        service accepted a request
    apply   op-specific redo payload       bank is about to mutate
    reply   {status, body}                 terminal answer for a rid

A :class:`Checkpoint` pairs per-shard snapshot blobs with the journal
position they reflect; recovery restores the blobs and replays only
records after that position.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Iterator

import repro.obs as obs
from repro.crypto.hashing import sha256
from repro.net.codec import decode, encode

__all__ = [
    "JournalError",
    "JournalRecord",
    "Journal",
    "FileJournal",
    "Checkpoint",
]

_CKPT_MAGIC = b"repro-service-checkpoint-v1"
_FILE_MAGIC = b"repro-journal-v1\n"
_FRAME_DIGEST_BYTES = 8

#: Record kinds the service/bank layers write.
RECORD_KINDS = ("accept", "apply", "reply")


class JournalError(Exception):
    """Journal rejected an operation or a persisted journal is corrupt."""


@dataclass(frozen=True)
class JournalRecord:
    """One journaled event.

    ``lsn`` is the log sequence number (dense, starting at 0); ``rid``
    is the request id the record belongs to (empty for out-of-band
    mutations such as load-generation minting); ``op`` names the
    operation (request kind or bank mutation); ``payload`` is a
    codec-encodable value carrying everything replay needs.
    """

    lsn: int
    kind: str
    rid: str
    op: str
    payload: Any

    def to_state(self) -> dict:
        return {
            "lsn": self.lsn,
            "kind": self.kind,
            "rid": self.rid,
            "op": self.op,
            "payload": self.payload,
        }

    @classmethod
    def from_state(cls, state: dict) -> "JournalRecord":
        return cls(
            lsn=state["lsn"],
            kind=state["kind"],
            rid=state["rid"],
            op=state["op"],
            payload=state["payload"],
        )


class Journal:
    """In-memory, fsync-free write-ahead journal (the test/fault mode).

    Payloads are normalized through the canonical codec on append —
    appending is exactly as strict as sending the value over the wire,
    and the journal can never share mutable state with the live books
    (a record read back at recovery is a fresh decoded copy).
    """

    def __init__(self, *, telemetry: "obs.Telemetry | None" = None) -> None:
        self._records: list[JournalRecord] = []
        self._observers: list = []
        self._bind_obs(telemetry)

    def add_observer(self, fn) -> None:
        """Call *fn(record)* synchronously for every appended record.

        The segment-export hook: a replication shipper registered here
        sees each record on the appending thread *before* the append
        returns — and therefore before any reply that depends on the
        record is sent — which is what lets a peer's copy of the
        journal be a superset of every acknowledged request.  Records
        loaded from disk (:class:`FileJournal` recovery) do not fire;
        only new appends do.
        """
        self._observers.append(fn)

    def _bind_obs(self, telemetry: "obs.Telemetry | None") -> None:
        """Attach a telemetry stack (the service shares its own down)."""
        self.obs = telemetry if telemetry is not None else obs.get_default()
        registry = self.obs.registry
        self._m_appends = {
            kind: registry.counter(
                "repro_journal_appends_total",
                "journal records appended, by record kind", kind=kind,
            )
            for kind in RECORD_KINDS
        }
        self._m_bytes = registry.counter(
            "repro_journal_append_bytes_total",
            "encoded payload bytes appended to the journal",
        )
        self._m_lsn = registry.gauge(
            "repro_journal_lsn", "log sequence number of the newest record"
        )

    def __len__(self) -> int:
        return len(self._records)

    @property
    def last_lsn(self) -> int:
        """LSN of the newest record, or ``-1`` when empty."""
        return len(self._records) - 1

    def append(self, kind: str, rid: str, op: str, payload: Any) -> JournalRecord:
        """Durably record one event; returns the record (with its LSN)."""
        if kind not in RECORD_KINDS:
            raise JournalError(f"unknown journal record kind {kind!r}")
        try:
            encoded = encode(payload)
            normalized = decode(encoded)
        except (TypeError, ValueError) as exc:
            raise JournalError(f"unjournalable payload for {op!r}: {exc}") from exc
        record = JournalRecord(
            lsn=len(self._records), kind=kind, rid=rid, op=op, payload=normalized
        )
        # the span inherits the active request's trace id (the apply or
        # submit span is on the tracer stack), so journal time shows up
        # inside the request's timeline, not as a detached blip
        with self.obs.tracer.span("journal_append", kind=kind, op=op,
                                  lsn=record.lsn, bytes=len(encoded)):
            self._records.append(record)
            self._persist(record)
            for observer in self._observers:
                observer(record)
        self._m_appends[kind].inc()
        self._m_bytes.inc(len(encoded))
        self._m_lsn.set(record.lsn)
        return record

    def _persist(self, record: JournalRecord) -> None:
        """Hook for durable subclasses; in-memory mode does nothing."""

    def records(self, *, after: int = -1) -> Iterator[JournalRecord]:
        """Records with ``lsn > after``, in LSN order."""
        start = after + 1
        if start < 0:
            start = 0
        return iter(self._records[start:])


class FileJournal(Journal):
    """Journal persisted to an append-only file.

    Frame format after a one-line magic header: 4-byte big-endian body
    length, the first 8 bytes of ``sha256(body)``, then the
    codec-encoded record.  :meth:`load` (run by the constructor when
    the file exists) stops at the first torn frame — a crash mid-append
    costs at most the record being written, never the records before
    it — and raises :class:`JournalError` on corruption *before* the
    tail, which no crash can produce.
    """

    def __init__(self, path: str | os.PathLike[str], *,
                 telemetry: "obs.Telemetry | None" = None) -> None:
        super().__init__(telemetry=telemetry)
        self.path = os.fspath(path)
        self.torn_tail = False
        if os.path.exists(self.path):
            self._load()
            self._fh = open(self.path, "ab")
        else:
            self._fh = open(self.path, "wb")
            self._fh.write(_FILE_MAGIC)
            self._fh.flush()

    def close(self) -> None:
        self._fh.close()

    def _persist(self, record: JournalRecord) -> None:
        body = encode(record.to_state())
        frame = (
            len(body).to_bytes(4, "big")
            + sha256(body)[:_FRAME_DIGEST_BYTES]
            + body
        )
        self._fh.write(frame)
        self._fh.flush()

    def _load(self) -> None:
        with open(self.path, "rb") as fh:
            data = fh.read()
        if not data.startswith(_FILE_MAGIC):
            raise JournalError(f"{self.path}: not a journal file (bad magic)")
        pos = len(_FILE_MAGIC)
        end = len(data)
        while pos < end:
            if pos + 4 + _FRAME_DIGEST_BYTES > end:
                self.torn_tail = True
                break
            size = int.from_bytes(data[pos : pos + 4], "big")
            digest = data[pos + 4 : pos + 4 + _FRAME_DIGEST_BYTES]
            body_start = pos + 4 + _FRAME_DIGEST_BYTES
            body = data[body_start : body_start + size]
            if len(body) < size:
                self.torn_tail = True
                break
            if sha256(body)[:_FRAME_DIGEST_BYTES] != digest:
                if body_start + size == end:
                    # torn write inside the final frame's body
                    self.torn_tail = True
                    break
                raise JournalError(
                    f"{self.path}: corrupt frame at byte {pos} (digest mismatch)"
                )
            try:
                record = JournalRecord.from_state(decode(body))
            except (ValueError, KeyError, TypeError) as exc:
                raise JournalError(
                    f"{self.path}: undecodable frame at byte {pos}: {exc}"
                ) from exc
            if record.lsn != len(self._records):
                raise JournalError(
                    f"{self.path}: LSN gap at byte {pos} "
                    f"(got {record.lsn}, expected {len(self._records)})"
                )
            self._records.append(record)
            pos = body_start + size
        if self.torn_tail:
            # drop the torn bytes so new appends start on a clean frame
            with open(self.path, "rb+") as fh:
                fh.truncate(self._tail_offset())

    def _tail_offset(self) -> int:
        offset = len(_FILE_MAGIC)
        for record in self._records:
            body = encode(record.to_state())
            offset += 4 + _FRAME_DIGEST_BYTES + len(body)
        return offset


@dataclass(frozen=True)
class Checkpoint:
    """Shard snapshot blobs plus the journal position they reflect.

    Every journal record with ``lsn <= lsn`` is already folded into the
    blobs; recovery replays only what comes after.  The bank-state
    *replay* cut is ``lsn``; request-lifecycle scans (reply cache,
    in-flight redo) always read the whole journal.
    """

    lsn: int
    blobs: tuple[bytes, ...]

    def to_bytes(self) -> bytes:
        body = encode({"lsn": self.lsn, "blobs": list(self.blobs)})
        return _CKPT_MAGIC + sha256(_CKPT_MAGIC, body) + body

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Checkpoint":
        if not blob.startswith(_CKPT_MAGIC):
            raise JournalError("not a service checkpoint (bad magic)")
        digest = blob[len(_CKPT_MAGIC) : len(_CKPT_MAGIC) + 32]
        body = blob[len(_CKPT_MAGIC) + 32 :]
        if sha256(_CKPT_MAGIC, body) != digest:
            raise JournalError("checkpoint integrity digest mismatch")
        try:
            state = decode(body)
        except ValueError as exc:
            raise JournalError(f"checkpoint body undecodable: {exc}") from exc
        return cls(lsn=state["lsn"], blobs=tuple(state["blobs"]))

"""Sharded bank state for the market-administrator service.

One logical bank, N physical shards.  Two independent partition keys
split the three security-critical structures of
:class:`~repro.ecash.dec.DECBank`:

* **accounts and the withdrawal ledger** shard by a stable hash of the
  account id — every balance mutation for an account touches exactly
  one shard;
* **the deposited-serial store** shards by a stable hash of each leaf
  serial.  Conflicting deposits (same node, ancestor or descendant)
  always share at least one leaf serial, and equal serials hash to the
  same shard — so per-shard membership checks are *sufficient* for
  global double-spend detection.  No cross-shard coordination is
  needed on the hot path.

Each shard *is* a :class:`~repro.ecash.dec.DECBank` holding its slice,
which is what lets persistence reuse :mod:`repro.core.ledger`
verbatim: :meth:`ShardedBank.snapshot` is one
:func:`~repro.core.ledger.snapshot_bank` blob per shard (each with its
own integrity digest, so corruption is localized to a shard), and the
cross-shard :meth:`ShardedBank.audit` merges the slices into one
logical bank and runs :func:`~repro.core.ledger.audit_bank` on it —
plus placement invariants no single shard can see (a serial or account
living on the wrong shard, duplicates across shards).

Hashing is :func:`repro.crypto.hashing.sha256`-based, never Python's
salted ``hash()``, so placement is stable across processes and
restarts — a snapshot taken by one service instance restores into
another with the same shard count.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

import repro.obs as obs
from repro.core.ledger import AuditReport, audit_bank, restore_bank, snapshot_bank
from repro.crypto.cl_sig import CLKeyPair, CLPublicKey
from repro.crypto.hashing import sha256
from repro.ecash.dec import DECBank, DoubleSpendError, DoubleSpendEvidence
from repro.ecash.spend import DECParams, SpendToken
from repro.ecash.tree import leaf_serials
from repro.service.journal import Checkpoint, Journal, JournalError, JournalRecord

__all__ = ["ShardedBank", "account_shard", "serial_shard"]


def account_shard(aid: str, n_shards: int) -> int:
    """Stable home shard of an account id."""
    return int.from_bytes(sha256(b"account-shard", aid.encode()), "big") % n_shards


def serial_shard(serial: int, n_shards: int) -> int:
    """Stable home shard of a leaf serial."""
    nbytes = (serial.bit_length() + 7) // 8 or 1
    return int.from_bytes(
        sha256(b"serial-shard", serial.to_bytes(nbytes, "big")), "big"
    ) % n_shards


class ShardedBank:
    """N :class:`DECBank` shards behind the one-bank interface.

    All shards share the same cryptographic identity (parameters and CL
    keypair) — sharding partitions *state*, not *trust*.  Mutations are
    plain dict operations; the expensive verification work happens
    upstream in :mod:`repro.service.batcher`, so the apply path here is
    safe to run serially under the server loop (which is what makes
    "zero double-deposits admitted" a structural guarantee rather than
    a race to win).
    """

    def __init__(
        self,
        params: DECParams,
        keypair: CLKeyPair,
        rng: random.Random,
        *,
        n_shards: int = 4,
        journal: Journal | None = None,
        telemetry: "obs.Telemetry | None" = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self.params = params
        self.keypair = keypair
        self.n_shards = n_shards
        self.shards: list[DECBank] = [
            DECBank(params=params, keypair=keypair, rng=rng) for _ in range(n_shards)
        ]
        self.deposit_seq = 0
        #: write-ahead journal; every mutation appends its redo record
        #: here *before* the books change (None = journaling off)
        self.journal = journal
        # incremental-snapshot bookkeeping: shards mutated since the
        # last snapshot() call, plus the blobs of the clean ones
        self._dirty: set[int] = set(range(n_shards))
        self._blob_cache: dict[int, bytes] = {}
        self._bind_obs(telemetry)

    def _bind_obs(self, telemetry: "obs.Telemetry | None") -> None:
        self.obs = telemetry if telemetry is not None else obs.get_default()
        self._m_replayed = self.obs.registry.counter(
            "repro_recovery_replayed_total",
            "journal apply records replayed into recovered banks",
        )

    @classmethod
    def create(
        cls,
        params: DECParams,
        rng: random.Random,
        *,
        n_shards: int = 4,
        journal: Journal | None = None,
    ) -> "ShardedBank":
        from repro.crypto.cl_sig import cl_keygen

        return cls(
            params, cl_keygen(params.backend, rng), rng,
            n_shards=n_shards, journal=journal,
        )

    def _journal_apply(self, rid: str, op: str, payload: dict) -> None:
        if self.journal is not None:
            self.journal.append("apply", rid, op, payload)

    def _touch(self, index: int) -> None:
        """Mark shard *index* dirty for the next incremental snapshot."""
        self._dirty.add(index)

    @property
    def public_key(self) -> CLPublicKey:
        return self.keypair.public

    # -- placement ---------------------------------------------------------
    def account_home(self, aid: str) -> DECBank:
        return self.shards[account_shard(aid, self.n_shards)]

    def serial_home(self, serial: int) -> DECBank:
        return self.shards[serial_shard(serial, self.n_shards)]

    # -- accounts ----------------------------------------------------------
    def open_account(self, aid: str, initial_balance: int = 0, *, rid: str = "") -> None:
        shard = account_shard(aid, self.n_shards)
        home = self.shards[shard]
        if aid in home.accounts:
            raise ValueError(f"account {aid!r} already exists")
        with self.obs.tracer.span("shard_apply", kind="open-account", shard=shard):
            self._journal_apply(rid, "open-account",
                                {"aid": aid, "balance": initial_balance})
            self._touch(shard)
            home.open_account(aid, initial_balance)

    def has_account(self, aid: str) -> bool:
        return aid in self.account_home(aid).accounts

    def balance(self, aid: str) -> int:
        return self.account_home(aid).balance(aid)

    # -- withdraw ----------------------------------------------------------
    def apply_withdrawal(self, aid: str, *, rid: str = "", extra: dict | None = None) -> None:
        """Debit one coin of value ``2^L`` and record the withdrawal.

        The blind issuance itself (the crypto) happens in the batcher;
        this is the serial bookkeeping step.  Raises :class:`ValueError`
        when the account is unknown or underfunded — nothing is then
        recorded, and the caller must discard the issued signature.

        *extra* rides along in the journal record (the service passes
        the issued signature, so recovery can re-send the lost reply).
        """
        shard = account_shard(aid, self.n_shards)
        home = self.shards[shard]
        value = 1 << self.params.tree_level
        if home.accounts.get(aid, 0) < value:
            raise ValueError(f"account {aid!r} cannot cover a coin of value {value}")
        payload = {"aid": aid, "value": value}
        if extra:
            payload.update(extra)
        with self.obs.tracer.span("shard_apply", kind="withdraw", shard=shard):
            self._journal_apply(rid, "withdraw", payload)
            self._touch(shard)
            home.accounts[aid] -= value
            home.withdrawals.append(aid)

    # -- deposit -----------------------------------------------------------
    def expand_serials(self, token: SpendToken) -> list[int]:
        """Leaf serials covered by *token* (tower exponentiations)."""
        return leaf_serials(
            self.params.tower, token.node, token.node_key, self.params.tree_level
        )

    def check_deposit(self, serials: Iterable[int]) -> DoubleSpendEvidence | None:
        """First double-spend conflict among *serials*, or ``None``."""
        for serial in serials:
            prior = self.serial_home(serial)._seen_serials.get(serial)
            if prior is not None:
                return DoubleSpendEvidence(
                    serial=serial, prior=prior[:3], offending_node=None
                )
        return None

    def apply_deposit(
        self, aid: str, token: SpendToken, serials: Sequence[int], *, rid: str = ""
    ) -> int:
        """Record a *verified* deposit; returns the credited amount.

        Re-checks for conflicts under the same lock-free-serial regime
        as :meth:`DECBank.deposit`: on :class:`DoubleSpendError` nothing
        is credited, no serials are recorded on any shard, and nothing
        is journaled — the journal only ever holds mutations that the
        double-spend check has admitted.
        """
        shard = account_shard(aid, self.n_shards)
        home = self.shards[shard]
        if aid not in home.accounts:
            raise ValueError(f"unknown account {aid!r}")
        with self.obs.tracer.span("shard_apply", kind="deposit", shard=shard,
                                  n=len(serials)):
            conflict = self.check_deposit(serials)
            if conflict is not None:
                raise DoubleSpendError(
                    f"leaf serial already deposited (prior: {conflict.prior})",
                    evidence=DoubleSpendEvidence(
                        serial=conflict.serial,
                        prior=conflict.prior,
                        offending_node=(aid, token.node.level, token.node.index),
                    ),
                )
            amount = token.denomination(self.params.tree_level)
            self._journal_apply(
                rid,
                "deposit",
                {
                    "aid": aid,
                    "level": token.node.level,
                    "index": token.node.index,
                    "serials": list(serials),
                    "amount": amount,
                },
            )
            self._commit_deposit(
                aid, token.node.level, token.node.index, serials, amount
            )
        return amount

    def _commit_deposit(
        self, aid: str, level: int, index: int, serials: Sequence[int], amount: int
    ) -> None:
        record = (aid, level, index, self.deposit_seq)
        self.deposit_seq += 1
        for serial in serials:
            self._touch(serial_shard(serial, self.n_shards))
            self.serial_home(serial)._seen_serials[serial] = record
        self._touch(account_shard(aid, self.n_shards))
        self.account_home(aid).accounts[aid] += amount

    # -- persistence (composed from core.ledger) ---------------------------
    def snapshot(self) -> list[bytes]:
        """One :func:`snapshot_bank` blob per shard, in shard order.

        Incremental (copy-on-write): only shards mutated since the last
        call are re-serialized; a clean shard reuses its cached blob
        byte for byte, which is what lets the segmented journal's
        content-addressed checkpoint store skip re-writing it entirely.
        ``deposit_seq`` is stamped into re-serialized shards only — a
        deposit always dirties the shards it touched, so the per-shard
        ``max`` that :meth:`restore` takes still recovers the global
        counter exactly.
        """
        blobs: list[bytes] = []
        for index, shard in enumerate(self.shards):
            if index in self._dirty or index not in self._blob_cache:
                shard.deposit_seq = self.deposit_seq
                self._blob_cache[index] = snapshot_bank(shard)
            blobs.append(self._blob_cache[index])
        self._dirty.clear()
        return blobs

    def restore(self, blobs: Sequence[bytes]) -> None:
        """Restore all shards; shard count and order must match.

        A corrupt blob raises :class:`~repro.core.ledger.SnapshotError`
        identifying the shard; already-restored shards keep their new
        state, so callers treat any raise as "restore failed, retry
        from good blobs" (the blobs, not this object, are the source of
        truth).
        """
        if len(blobs) != self.n_shards:
            raise ValueError(
                f"snapshot has {len(blobs)} shards, bank has {self.n_shards}"
            )
        from repro.core.ledger import SnapshotError

        for index, (shard, blob) in enumerate(zip(self.shards, blobs)):
            try:
                restore_bank(shard, blob)
            except SnapshotError as exc:
                raise SnapshotError(f"shard {index}: {exc}") from exc
        self.deposit_seq = max(shard.deposit_seq for shard in self.shards)
        self._dirty = set(range(self.n_shards))
        self._blob_cache.clear()

    # -- crash recovery (checkpoint + journal replay) ----------------------
    def checkpoint(self) -> Checkpoint:
        """Snapshot every shard, stamped with the current journal position."""
        lsn = self.journal.last_lsn if self.journal is not None else -1
        return Checkpoint(lsn=lsn, blobs=tuple(self.snapshot()))

    @classmethod
    def recover(
        cls,
        params: DECParams,
        keypair: CLKeyPair,
        rng: random.Random,
        journal: Journal,
        *,
        checkpoint: Checkpoint | None = None,
        n_shards: int = 4,
        telemetry: "obs.Telemetry | None" = None,
    ) -> "ShardedBank":
        """Rebuild the bank from a checkpoint plus the journal's tail.

        Restores the checkpoint blobs (when given), then replays every
        ``apply`` record after the checkpoint's LSN, idempotently keyed
        on request ids.  Journaling is detached during replay (replay
        must not re-journal) and re-attached before returning, so the
        recovered bank journals new mutations to the same log.  The
        result is bit-equal to the pre-crash *committed* state: every
        journaled mutation present, nothing half-applied.
        """
        bank = cls(params, keypair, rng, n_shards=n_shards, journal=None,
                   telemetry=telemetry)
        start = -1
        if checkpoint is not None:
            bank.restore(checkpoint.blobs)
            start = checkpoint.lsn
        if journal.first_lsn > start + 1:
            # compaction deleted records the given checkpoint does not
            # cover; replaying only the tail would silently lose state
            raise JournalError(
                f"journal compacted to lsn {journal.first_lsn} but recovery "
                f"starts at lsn {start + 1}; pass the checkpoint the journal "
                "was compacted against"
            )
        applied: set[str] = set()
        replayed = 0
        with bank.obs.tracer.span("bank_replay", lsn=journal.last_lsn) as span:
            for record in journal.records():
                if record.kind != "apply":
                    continue
                if record.lsn <= start:
                    # folded into the checkpoint already; remember the rid so
                    # a duplicate record after the cut can never re-apply it
                    if record.rid:
                        applied.add(record.rid)
                    continue
                bank._replay_record(record, applied)
                replayed += 1
            span.set(replayed=replayed)
        bank._m_replayed.inc(replayed)
        bank.journal = journal
        return bank

    def _replay_record(self, record: JournalRecord, applied: set[str]) -> None:
        """Redo one journaled mutation (recovery path; no re-journaling)."""
        if record.rid:
            if record.rid in applied:
                return
            applied.add(record.rid)
        payload = record.payload
        if record.op == "open-account":
            aid = payload["aid"]
            home = self.account_home(aid)
            if aid in home.accounts:
                raise JournalError(
                    f"journal replay (lsn {record.lsn}): account {aid!r} "
                    "already exists"
                )
            self._touch(account_shard(aid, self.n_shards))
            home.open_account(aid, payload["balance"])
        elif record.op == "withdraw":
            aid = payload["aid"]
            home = self.account_home(aid)
            if home.accounts.get(aid, 0) < payload["value"]:
                raise JournalError(
                    f"journal replay (lsn {record.lsn}): account {aid!r} "
                    f"cannot cover a withdrawal of {payload['value']}"
                )
            self._touch(account_shard(aid, self.n_shards))
            home.accounts[aid] -= payload["value"]
            home.withdrawals.append(aid)
        elif record.op == "deposit":
            aid = payload["aid"]
            node = (aid, payload["level"], payload["index"])
            for serial in payload["serials"]:
                prior = self.serial_home(serial)._seen_serials.get(serial)
                if prior is not None:
                    if prior[:3] == node:
                        return  # same deposit already on the books: idempotent
                    raise JournalError(
                        f"journal replay (lsn {record.lsn}): serial {serial} "
                        f"already deposited by {prior[:3]}"
                    )
            if aid not in self.account_home(aid).accounts:
                raise JournalError(
                    f"journal replay (lsn {record.lsn}): deposit for unknown "
                    f"account {aid!r}"
                )
            self._commit_deposit(
                aid, payload["level"], payload["index"],
                payload["serials"], payload["amount"],
            )
        else:
            raise JournalError(
                f"journal replay (lsn {record.lsn}): unknown op {record.op!r}"
            )

    def merged(self, rng: random.Random | None = None) -> DECBank:
        """The logical one-bank view: union of every shard's slice."""
        merged = DECBank(
            params=self.params,
            keypair=self.keypair,
            rng=rng or random.Random(0),
        )
        for shard in self.shards:
            merged.accounts.update(shard.accounts)
            merged.withdrawals.extend(shard.withdrawals)
            merged._seen_serials.update(shard._seen_serials)
        merged.deposit_seq = self.deposit_seq
        return merged

    def audit(self, *, outstanding_float: int | None = None,
              allow_foreign_value: bool = False) -> AuditReport:
        """Cross-shard audit: placement invariants + the merged-book audit.

        Composes :func:`repro.core.ledger.audit_bank` over the merged
        view (so every single-bank invariant — balances, conservation,
        serial-record consistency — is checked globally) and adds the
        findings only a sharded store can violate: entries living on
        the wrong shard or duplicated across shards.
        """
        findings: list[str] = []
        seen_accounts: dict[str, int] = {}
        seen_serials: dict[int, int] = {}
        for index, shard in enumerate(self.shards):
            for aid in shard.accounts:
                if account_shard(aid, self.n_shards) != index:
                    findings.append(
                        f"account {aid!r} stored on shard {index}, "
                        f"home is {account_shard(aid, self.n_shards)}"
                    )
                if aid in seen_accounts:
                    findings.append(
                        f"account {aid!r} duplicated on shards "
                        f"{seen_accounts[aid]} and {index}"
                    )
                seen_accounts[aid] = index
            for aid in shard.withdrawals:
                if account_shard(aid, self.n_shards) != index:
                    findings.append(
                        f"withdrawal by {aid!r} recorded on shard {index}, "
                        f"home is {account_shard(aid, self.n_shards)}"
                    )
            for serial in shard._seen_serials:
                if serial_shard(serial, self.n_shards) != index:
                    findings.append(
                        f"serial {serial} stored on shard {index}, "
                        f"home is {serial_shard(serial, self.n_shards)}"
                    )
                if serial in seen_serials:
                    findings.append(
                        f"serial {serial} duplicated on shards "
                        f"{seen_serials[serial]} and {index}"
                    )
                seen_serials[serial] = index
        merged_report = audit_bank(self.merged(), outstanding_float=outstanding_float,
                                   allow_foreign_value=allow_foreign_value)
        return AuditReport(findings=tuple(findings) + merged_report.findings)

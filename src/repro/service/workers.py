"""Persistent process-pool backend for verification batches.

The :class:`~repro.service.batcher.VerificationBatcher` splits each
flush into per-chunk jobs whose outcomes depend only on the chunk and
its deterministic seed — never on which process ran it.  This module
supplies the *executors* for those chunks:

* :class:`InlineBackend` — runs every chunk in the calling process
  (the test-suite/profiling path, and the ``REPRO_PROCESSES=1`` path);
* :class:`PooledBackend` — a persistent
  :class:`~concurrent.futures.ProcessPoolExecutor` whose workers warm
  the :mod:`repro.crypto.fastexp` tables for the bank key **once at
  start** (the per-flush pools of :func:`repro.metrics.parallel.sweep`
  would pay table builds on every flush under spawn semantics), and
  which **degrades to inline** — permanently, with a counter bumped —
  the moment the pool breaks, so a crashed worker costs one retried
  flush, never a lost verdict.

Both backends derive per-chunk seeds through
:func:`repro.metrics.parallel.sweep_points`, which is what makes the
pooled path *bit-identical* to the inline one: same chunks, same
seeds, same merge order (the pool's ``map`` preserves input order).
The cross-process parity suite (``tests/service/test_worker_parity.py``)
holds this line.

:func:`make_backend` is the policy entry point: it resolves the worker
count (explicit argument, else ``REPRO_PROCESSES``, else serial),
returns inline for one worker, and falls back to inline when the pool
cannot be spawned at all.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Sequence

import repro.obs as obs
from repro.crypto import fastexp, tablestore
from repro.crypto.cl_sig import CLPublicKey
from repro.ecash.spend import (
    DECParams,
    adopt_verification_tables,
    export_verification_tables,
    warm_verification_tables,
)
from repro.metrics.parallel import SweepPoint, env_processes, sweep_points

__all__ = [
    "VerificationBackend",
    "InlineBackend",
    "PooledBackend",
    "make_backend",
]


def _warm_worker(params: DECParams, bank_pk: CLPublicKey | None,
                 fastexp_config: dict,
                 table_ref: "tablestore.TableRef | None" = None) -> None:
    """Pool initializer: run once in every worker process at start.

    Mirrors the parent's fast-exp policy (the child may have been
    spawned, not forked, in which case it read ``REPRO_FASTEXP`` fresh)
    and readies the fixed-base/Miller tables for the bank key, so the
    first chunk a worker sees already runs on warm tables.  With a
    *table_ref* the worker *attaches* to the parent's published blob
    (:mod:`repro.crypto.tablestore`) instead of re-deriving the tables
    — any load/validation failure silently falls back to the local
    build, whose tables (and therefore every reply) are identical.
    """
    fastexp.configure(**fastexp_config)
    if not fastexp.enabled():
        return
    if table_ref is not None:
        try:
            adopt_verification_tables(params, tablestore.load(table_ref))
            return
        except Exception:
            pass
    warm_verification_tables(params, bank_pk)
    # chunks arrive with their own unpickled params/backend copies;
    # parking the warm tables in the backend's shared registry lets
    # those copies adopt on __setstate__ instead of rebuilding
    register = getattr(params.backend, "register_shared", None)
    if register is not None:
        register()


def _pool_ping(_: int) -> int:
    """Trivial pool task used to force workers up at construction."""
    return os.getpid()


def _run_point(job: tuple[Callable[[SweepPoint], Any], SweepPoint]) -> tuple[int, Any]:
    """Evaluate one chunk in a worker; tag the result with the worker pid.

    The pid tag feeds the per-worker dispatch gauges — it never leaves
    the process as telemetry (worker ids are exported as dense indices,
    not pids).
    """
    worker, point = job
    return os.getpid(), worker(point)


class VerificationBackend:
    """Executor interface the batcher dispatches flushes through."""

    #: Worker processes this backend fans out across (1 = inline).
    workers: int = 1

    def run(self, worker: Callable[[SweepPoint], Any], grid: Sequence[Any],
            *, seed: int = 0) -> list[Any]:
        """Evaluate *worker* at every grid point; results in grid order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any pooled resources (idempotent)."""

    def __enter__(self) -> "VerificationBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class InlineBackend(VerificationBackend):
    """Run every chunk in the calling process (the serial reference)."""

    workers = 1

    def run(self, worker: Callable[[SweepPoint], Any], grid: Sequence[Any],
            *, seed: int = 0) -> list[Any]:
        return [worker(point) for point in sweep_points(grid, seed)]


class PooledBackend(VerificationBackend):
    """A persistent, warm worker pool with graceful inline degradation.

    Construction is eager: the pool is spawned and every worker runs
    the fast-exp warm-up before the constructor returns, so spawn
    failures surface here (where :func:`make_backend` can fall back)
    rather than mid-flush.  If the pool breaks later — a worker
    segfaults, the OS reaps it — the failing dispatch is re-run inline
    (identical seeds, identical results) and the backend stays inline
    for good: correctness never waits on a pool restart.
    """

    def __init__(
        self,
        params: DECParams,
        bank_pk: CLPublicKey | None,
        *,
        processes: int,
        telemetry: "obs.Telemetry | None" = None,
        share_tables: bool = True,
    ) -> None:
        if processes < 2:
            raise ValueError("PooledBackend needs at least 2 workers; "
                             "use InlineBackend for serial dispatch")
        self.workers = processes
        self.params = params
        self.bank_pk = bank_pk
        self.degraded = False
        self.dispatches = 0
        self.fallbacks = 0
        self._bind_obs(telemetry)
        self._worker_ids: dict[int, int] = {}  # pid -> dense worker index
        # publish the parent's warm tables once; workers attach instead
        # of rebuilding.  Publication failure is never fatal — workers
        # fall back to identical local builds.
        self._store: tablestore.TableStore | None = None
        table_ref = None
        if share_tables and fastexp.enabled():
            store = tablestore.TableStore()
            try:
                table_ref = store.publish(
                    export_verification_tables(params, bank_pk)
                )
                self._store = store
            except Exception:
                store.close()
        self.table_ref = table_ref
        self._pool = ProcessPoolExecutor(
            max_workers=processes,
            initializer=_warm_worker,
            initargs=(params, bank_pk, fastexp.configure(), table_ref),
        )
        # force the workers up (and warmed) now: a pool that cannot
        # spawn fails construction, not the first real flush
        try:
            pids = set(self._pool.map(_pool_ping, range(processes * 2)))
        except Exception:
            self._pool.shutdown(wait=False, cancel_futures=True)
            raise
        for pid in sorted(pids):
            self._worker_ids.setdefault(pid, len(self._worker_ids))
        self._m_workers.set(len(self._worker_ids))

    def _bind_obs(self, telemetry: "obs.Telemetry | None") -> None:
        self.obs = telemetry if telemetry is not None else obs.get_default()
        registry = self.obs.registry
        self._m_workers = registry.gauge(
            "repro_pool_workers", "live worker processes in the verify pool"
        )
        self._m_dispatches = registry.counter(
            "repro_pool_dispatches_total", "chunk grids dispatched to the pool"
        )
        self._m_fallbacks = registry.counter(
            "repro_pool_fallbacks_total",
            "dispatches degraded to inline after a pool failure",
        )
        self._m_worker_chunks: dict[int, obs.Counter] = {}

    def _count_chunk(self, pid: int) -> None:
        index = self._worker_ids.setdefault(pid, len(self._worker_ids))
        counter = self._m_worker_chunks.get(index)
        if counter is None:
            counter = self._m_worker_chunks[index] = self.obs.registry.counter(
                "repro_pool_worker_chunks_total",
                "chunks executed, by worker", worker=str(index),
            )
        counter.inc()

    def run(self, worker: Callable[[SweepPoint], Any], grid: Sequence[Any],
            *, seed: int = 0) -> list[Any]:
        points = sweep_points(grid, seed)
        if self.degraded or not points:
            return [worker(point) for point in points]
        tracer = self.obs.tracer
        t0 = tracer.clock() if tracer.enabled else 0.0
        try:
            tagged = list(self._pool.map(
                _run_point, [(worker, point) for point in points]
            ))
        except (BrokenProcessPool, OSError, RuntimeError) as exc:
            # the pool is gone (worker killed, executor shut down, fd
            # exhaustion); nothing was applied — chunk work is pure —
            # so the inline re-run is safe and bit-identical.  A worker
            # exception of these types re-raises identically inline.
            self._degrade(exc)
            return [worker(point) for point in points]
        self.dispatches += 1
        self._m_dispatches.inc()
        results = []
        for pid, result in tagged:
            self._count_chunk(pid)
            results.append(result)
        if tracer.enabled:
            tracer.emit("pool_dispatch", trace="pool", start=t0,
                        end=tracer.clock(), chunks=len(points),
                        workers=self.workers)
        self._m_workers.set(len(self._worker_ids))
        return results

    def _degrade(self, exc: Exception) -> None:
        self.degraded = True
        self.fallbacks += 1
        self._m_fallbacks.inc()
        self._m_workers.set(0)
        self._pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=True)
        if self._store is not None:
            self._store.close()
            self._store = None
        self._m_workers.set(0)


def make_backend(
    params: DECParams,
    bank_pk: CLPublicKey | None = None,
    *,
    processes: int | None = None,
    telemetry: "obs.Telemetry | None" = None,
    share_tables: bool = True,
) -> VerificationBackend:
    """The right backend for *processes* workers, degrading gracefully.

    ``processes=None`` resolves through ``REPRO_PROCESSES`` (unset →
    serial: a library import must never spawn a pool uninvited).  One
    worker — or a pool that fails to spawn — yields the inline backend,
    so callers always get *a* working executor; whether it is pooled is
    visible via :attr:`VerificationBackend.workers`.
    """
    n = processes if processes is not None else env_processes(1)
    if n <= 1:
        return InlineBackend()
    try:
        return PooledBackend(params, bank_pk, processes=n, telemetry=telemetry,
                             share_tables=share_tables)
    except Exception:
        # no multiprocessing on this host (sandbox, missing /dev/shm,
        # fork bombs disallowed...): serve inline rather than not at all
        tel = telemetry if telemetry is not None else obs.get_default()
        tel.registry.counter(
            "repro_pool_fallbacks_total",
            "dispatches degraded to inline after a pool failure",
        ).inc()
        return InlineBackend()

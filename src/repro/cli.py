"""Command-line interface: demos, attacks and figure regeneration.

Installed as ``repro-market`` (see ``pyproject.toml``), also runnable
as ``python -m repro.cli``.  Subcommands:

* ``demo dec`` / ``demo pbs`` — run one full market session and print
  the Table-I/Table-II style meters.
* ``attack denomination`` — Monte-Carlo denomination-attack sweep over
  the cash-break strategies.
* ``attack timing`` — the deposit timing-correlation experiment (why
  the paper's random waits exist).
* ``attack combined`` — the fused timing×denomination adversary: shows
  either defence alone fails (defence in depth).
* ``fig2`` / ``fig5`` — regenerate the corresponding paper figure as an
  ASCII table + plot at CLI-friendly sizes (the pytest benches are the
  full-fidelity versions).
* ``report`` — run every experiment at reduced scale and emit one
  markdown report with paper-vs-measured numbers.
* ``chain`` — search a first-kind Cunningham chain (feel Fig. 2's cost
  directly).
"""

from __future__ import annotations

import argparse
import random
import sys
import time

from repro.attacks.linkage import denomination_experiment
from repro.attacks.timing import timing_experiment
from repro.core.ppms_dec import PPMSdecSession
from repro.core.ppms_pbs import PPMSpbsSession
from repro.crypto.cunningham import find_chain_with_stats
from repro.ecash.dec import setup
from repro.metrics import format_table, format_traffic_table
from repro.metrics.series import FigureData, render_ascii_plot, render_table

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-market",
        description="Privacy Preserving Market Schemes for Mobile Sensing (ICPP 2015) — reproduction CLI",
    )
    parser.add_argument("--seed", type=int, default=2015, help="master RNG seed")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run one market session end to end")
    demo.add_argument("mechanism", choices=["dec", "pbs"])
    demo.add_argument("--level", type=int, default=3, help="coin tree level L (dec)")
    demo.add_argument("--payment", type=int, default=5, help="per-SP payment (dec)")
    demo.add_argument("--participants", type=int, default=2)
    demo.add_argument("--rsa-bits", type=int, default=1024)
    demo.add_argument(
        "--break", dest="break_algorithm", default="epcba",
        choices=["unitary", "pcba", "epcba"],
    )

    attack = sub.add_parser("attack", help="run a privacy-attack experiment")
    attack_sub = attack.add_subparsers(dest="attack_kind", required=True)
    denom = attack_sub.add_parser("denomination")
    denom.add_argument("--level", type=int, default=6)
    denom.add_argument("--jobs", type=int, default=20)
    denom.add_argument("--trials", type=int, default=300)
    timing = attack_sub.add_parser("timing")
    timing.add_argument("--participants", type=int, default=20)
    timing.add_argument("--trials", type=int, default=200)
    combined = attack_sub.add_parser("combined")
    combined.add_argument("--participants", type=int, default=10)
    combined.add_argument("--trials", type=int, default=50)
    combined.add_argument("--level", type=int, default=6)

    fig2 = sub.add_parser("fig2", help="setup time vs level (chain search)")
    fig2.add_argument("--max-level", type=int, default=4)
    fig2.add_argument("--chain-bits", type=int, default=12)

    fig5 = sub.add_parser("fig5", help="multi-round PPMSdec vs PPMSpbs")
    fig5.add_argument("--max-rounds", type=int, default=15)
    fig5.add_argument("--step", type=int, default=5)

    report = sub.add_parser("report", help="run every experiment at reduced scale")
    report.add_argument("--out", default=None, help="write markdown here (default: stdout)")
    report.add_argument("--trials", type=int, default=200)
    report.add_argument("--rounds", type=int, default=8)

    chain = sub.add_parser("chain", help="search a first-kind Cunningham chain")
    chain.add_argument("length", type=int)
    chain.add_argument("--bits", type=int, default=12)

    return parser


def _cmd_demo(args, rng: random.Random) -> int:
    if args.mechanism == "dec":
        params = setup(args.level, rng, security_bits=48)
        session = PPMSdecSession(params, rng, rsa_bits=args.rsa_bits,
                                 break_algorithm=args.break_algorithm)
        jo = session.new_job_owner("jo", funds=(1 << args.level) * args.participants)
        sps = [session.new_participant(f"sp-{i}") for i in range(args.participants)]
        session.run_job(jo, sps, payment=args.payment)
        for i in range(args.participants):
            print(f"sp-{i} balance: {session.ma.bank.balance(f'sp-{i}')}")
        counter, meter = session.counter, session.transport.meter
    else:
        session = PPMSpbsSession(rng, rsa_bits=args.rsa_bits)
        jo = session.new_job_owner(funds=args.participants)
        sps = [session.new_participant() for _ in range(args.participants)]
        session.run_job(jo, sps)
        for i, sp in enumerate(sps):
            print(f"sp-{i} balance: "
                  f"{session.ma.bank.balance(sp.account_pub.fingerprint())}")
        counter, meter = session.counter, session.transport.meter
    print()
    print(format_table(counter, ["JO", "SP", "MA"], title="Operation counts:"))
    print()
    print(format_traffic_table(meter, ["JO", "SP", "MA"], title="Traffic:"))
    return 0


def _cmd_attack(args, rng: random.Random) -> int:
    if args.attack_kind == "denomination":
        import repro.core.optimal_break  # noqa: F401 — registers "optimal"

        print(f"{'strategy':>10} {'ident-rate':>12} {'anonymity-set':>15}")
        for strategy in ("none", "pcba", "epcba", "optimal", "unitary"):
            summary = denomination_experiment(
                strategy, level=args.level, n_jobs=args.jobs,
                trials=args.trials, rng=rng,
            )
            print(f"{strategy:>10} {summary.identification_rate:>11.1%} "
                  f"{summary.mean_anonymity_set:>15.2f}")
    elif args.attack_kind == "timing":
        result = timing_experiment(
            participants=args.participants, trials=args.trials, rng=rng
        )
        print(f"immediate deposits : adversary links {result.immediate_accuracy:.1%}")
        print(f"randomized waits   : adversary links {result.randomized_accuracy:.1%}")
        print(f"chance level       : {1 / result.participants:.1%}")
    else:
        from repro.attacks.combined import combined_experiment

        print(f"{'defences':<22} {'timing':>8} {'denom':>8} {'combined':>10}")
        for strategy, waits, label in (
            (None, False, "none"),
            (None, True, "random waits only"),
            ("unitary", False, "cash break only"),
            ("unitary", True, "both (the paper's)"),
        ):
            r = combined_experiment(
                level=args.level, participants=args.participants,
                trials=args.trials, rng=rng,
                break_strategy=strategy, random_waits=waits,
            )
            print(f"{label:<22} {r.timing_only:>7.0%} "
                  f"{r.denomination_only:>7.0%} {r.combined:>9.0%}")
    return 0


def _cmd_fig2(args, rng: random.Random) -> int:
    fig = FigureData(title="Fig. 2 — Setup executing time vs level",
                     xlabel="level L", ylabel="seconds")
    search = fig.new_series("chain-search")
    offline = fig.new_series("precomputed")
    for level in range(args.max_level + 1):
        t0 = time.perf_counter()
        setup(level, rng, use_known_chain=False, chain_bits=args.chain_bits,
              security_bits=32, real_pairing=False)
        search.add(level, time.perf_counter() - t0)
        t0 = time.perf_counter()
        setup(level, rng, use_known_chain=True, security_bits=32, real_pairing=False)
        offline.add(level, time.perf_counter() - t0)
    print(render_table(fig, precision=4))
    print()
    print(render_ascii_plot(fig, logy=True))
    return 0


def _cmd_fig5(args, rng: random.Random) -> int:
    fig = FigureData(title="Fig. 5 — cumulative executing time over rounds",
                     xlabel="rounds", ylabel="seconds")
    dec_series = fig.new_series("PPMSdec")
    pbs_series = fig.new_series("PPMSpbs")
    params = setup(3, rng, security_bits=48)
    for n_rounds in range(args.step, args.max_rounds + 1, args.step):
        t0 = time.perf_counter()
        session = PPMSdecSession(params, rng, rsa_bits=512)
        jo = session.new_job_owner("jo", funds=8 * n_rounds)
        for i in range(n_rounds):
            session.run_job(jo, [session.new_participant(f"sp-{i}")],
                            payment=1 + i % 8)
        dec_series.add(n_rounds, time.perf_counter() - t0)

        t0 = time.perf_counter()
        session_p = PPMSpbsSession(rng, rsa_bits=512)
        jo_p = session_p.new_job_owner(funds=n_rounds)
        for _ in range(n_rounds):
            session_p.run_job(jo_p, [session_p.new_participant()])
        pbs_series.add(n_rounds, time.perf_counter() - t0)
    print(render_table(fig))
    print()
    print(render_ascii_plot(fig))
    return 0


def _cmd_chain(args, rng: random.Random) -> int:
    t0 = time.perf_counter()
    chain, attempts = find_chain_with_stats(args.length, args.bits, rng)
    elapsed = time.perf_counter() - t0
    print(f"chain of length {chain.length} found in {elapsed:.3f}s "
          f"after {attempts} candidates:")
    for p in chain.primes():
        print(f"  {p}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    rng = random.Random(args.seed)
    if args.command == "demo":
        return _cmd_demo(args, rng)
    if args.command == "attack":
        return _cmd_attack(args, rng)
    if args.command == "fig2":
        return _cmd_fig2(args, rng)
    if args.command == "fig5":
        return _cmd_fig5(args, rng)
    if args.command == "report":
        from repro.metrics.report import generate_report

        text = generate_report(seed=args.seed, privacy_trials=args.trials,
                               fig5_rounds=args.rounds)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text + "\n")
            print(f"report written to {args.out}")
        else:
            print(text)
        return 0
    if args.command == "chain":
        return _cmd_chain(args, rng)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())

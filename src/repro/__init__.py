"""repro — reproduction of *Privacy Preserving Market Schemes for
Mobile Sensing* (Zhang, Mao, Zhang, Zhong; ICPP 2015).

Two privacy-preserving mobile-sensing market mechanisms, with every
substrate built from scratch:

* **PPMSdec** (:class:`repro.core.PPMSdecSession`) — markets with
  arbitrary per-participant payments, built on binary-tree divisible
  e-cash over a Cunningham-chain group tower, blind Camenisch–
  Lysyanskaya certification over a Tate pairing, and the PCBA/EPCBA
  cash-break algorithms that defeat the denomination attack.
* **PPMSpbs** (:class:`repro.core.PPMSpbsSession`) — unitary-payment
  markets, built on an RSA partially blind signature coin.

Quick start::

    import random
    from repro import ecash
    from repro.core import PPMSdecSession

    rng = random.Random(0)
    params = ecash.setup(level=4, rng=rng)
    market = PPMSdecSession(params, rng)
    jo = market.new_job_owner("hospital", funds=64)
    sp = market.new_participant("alice")
    market.run_job(jo, [sp], payment=5)

See ``examples/`` for complete scenarios and ``DESIGN.md`` for the
system inventory and the paper-experiment index.
"""

from repro import (
    attacks,
    core,
    crypto,
    ecash,
    metrics,
    net,
    obs,
    service,
    sim,
    workloads,
)

__version__ = "1.0.0"

__all__ = [
    "attacks",
    "core",
    "crypto",
    "ecash",
    "metrics",
    "net",
    "obs",
    "service",
    "sim",
    "workloads",
    "__version__",
]

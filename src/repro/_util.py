"""Small shared helpers used across the ``repro`` package.

Everything here is dependency-free and deliberately boring: byte/int
conversions, deterministic random sources, and tiny validation helpers.
Keeping them in one private module avoids circular imports between the
crypto substrates.
"""

from __future__ import annotations

import random
from typing import Iterator

__all__ = [
    "int_to_bytes",
    "bytes_to_int",
    "bit_length_bytes",
    "make_rng",
    "rand_int_bits",
    "rand_below",
    "rand_range",
    "chunked",
]


def int_to_bytes(value: int, length: int | None = None) -> bytes:
    """Encode a non-negative integer big-endian.

    When *length* is omitted the minimal number of bytes is used (with
    ``0`` encoding to a single zero byte so round-trips are stable).
    """
    if value < 0:
        raise ValueError("cannot encode negative integer")
    if length is None:
        length = max(1, (value.bit_length() + 7) // 8)
    return value.to_bytes(length, "big")


def bytes_to_int(data: bytes) -> int:
    """Decode a big-endian byte string into a non-negative integer."""
    return int.from_bytes(data, "big")


def bit_length_bytes(bits: int) -> int:
    """Number of bytes needed to hold *bits* bits."""
    if bits < 0:
        raise ValueError("bit count must be non-negative")
    return (bits + 7) // 8


def make_rng(seed: int | None = None) -> random.Random:
    """Return a :class:`random.Random` for protocol simulation.

    All randomness in the library flows through explicitly passed
    ``random.Random`` instances so experiments are reproducible.  This is
    a *simulation* library: we deliberately use a seedable PRNG instead of
    ``secrets`` so that test suites and benchmarks are deterministic.
    """
    return random.Random(seed)


def rand_int_bits(rng: random.Random, bits: int) -> int:
    """Uniform random integer with exactly *bits* bits (MSB set)."""
    if bits <= 0:
        raise ValueError("bit count must be positive")
    if bits == 1:
        return 1
    return (1 << (bits - 1)) | rng.getrandbits(bits - 1)


def rand_below(rng: random.Random, upper: int) -> int:
    """Uniform random integer in ``[0, upper)``."""
    if upper <= 0:
        raise ValueError("upper bound must be positive")
    return rng.randrange(upper)


def rand_range(rng: random.Random, lower: int, upper: int) -> int:
    """Uniform random integer in ``[lower, upper)``."""
    if upper <= lower:
        raise ValueError("empty range")
    return rng.randrange(lower, upper)


def chunked(data: bytes, size: int) -> Iterator[bytes]:
    """Yield consecutive *size*-byte chunks of *data* (last may be short)."""
    if size <= 0:
        raise ValueError("chunk size must be positive")
    for start in range(0, len(data), size):
        yield data[start : start + size]

"""Multi-process cluster launcher (single host, CI-friendly).

Runs each :class:`~repro.cluster.node.ClusterNode` in its own Python
process, which is what makes SIGKILL a real experiment instead of a
simulation: the killed node's books, journal and sockets genuinely
vanish, and the only surviving state is whatever its shipper already
pushed into the peer's kernel buffers.

The pieces:

* **bootstrap blob** — one file carrying the DEC parameters *and* the
  CL issuing secrets (``x``, ``y``) plus the cluster layout, so every
  node process reconstructs an identical market administrator without
  re-running setup.  Sharding partitions *state*, not trust: the blob
  is the MA's own key material and the rundir stands in for the MA's
  provisioning channel — treat it accordingly.
* **``node`` CLI** (``python -m repro.cluster.launcher node``) — the
  child entry point.  Dynamic mode binds ephemeral ports and reports
  them via ``<id>.json``; fixed mode (when ``cluster.json`` is
  pre-written by ``init``, e.g. under docker compose) binds the
  declared ports.  Either way the child waits for ``cluster.json``,
  installs the map, connects its shipper, touches ``<id>.ready`` and
  serves until a ``shutdown`` control frame.
* **``init`` CLI** — generates a bootstrap blob + fixed-address
  ``cluster.json`` for static deployments (``docker-compose.cluster.yml``
  drives this).
* :class:`ProcessCluster` — the parent-side orchestrator used by the
  smoke tests and ``make cluster-demo``: spawn N children, collect
  their reports, publish the map, and expose ``kill`` (SIGKILL) /
  ``failover`` / ``dump_journals`` / ``telemetry`` over the nodes'
  control ports.

All parent↔child coordination is plain files in the rundir (written
via rename, so readers never see a torn file) plus control frames on
the replication ports — no extra dependencies, works anywhere Python
and a loopback interface exist.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
from typing import Any

from repro.crypto.cl_sig import CLKeyPair, CLPublicKey
from repro.crypto.hashing import sha256
from repro.cluster.node import ClusterNode
from repro.cluster.replicate import control_call
from repro.cluster.ring import ClusterMap, DEFAULT_VNODES
from repro.ecash.params_io import export_params, import_params
from repro.net.codec import decode, encode

__all__ = [
    "write_bootstrap",
    "read_bootstrap",
    "node_main",
    "ProcessCluster",
    "main",
]

_BOOT_MAGIC = b"repro-cluster-bootstrap-v1"


# -- bootstrap blob --------------------------------------------------------
def write_bootstrap(path: str, params, keypair, *, nodes: list[str],
                    vnodes: int = DEFAULT_VNODES, n_shards: int = 4,
                    checkpoint_every: int = 64) -> None:
    """Serialize everything a node process needs to become the MA."""
    state = {
        "params": export_params(params, keypair.public),
        "x": keypair.x,
        "y": keypair.y,
        "nodes": list(nodes),
        "vnodes": vnodes,
        "n_shards": n_shards,
        "checkpoint_every": checkpoint_every,
    }
    body = encode(state)
    _write_atomic(path, _BOOT_MAGIC + sha256(_BOOT_MAGIC, body) + body,
                  binary=True)


def read_bootstrap(path: str) -> dict:
    """Load a bootstrap blob; returns params/keypair/layout in one dict."""
    with open(path, "rb") as fh:
        blob = fh.read()
    if not blob.startswith(_BOOT_MAGIC):
        raise ValueError(f"{path}: not a cluster bootstrap blob (bad magic)")
    digest = blob[len(_BOOT_MAGIC):len(_BOOT_MAGIC) + 32]
    body = blob[len(_BOOT_MAGIC) + 32:]
    if sha256(_BOOT_MAGIC, body) != digest:
        raise ValueError(f"{path}: bootstrap integrity digest mismatch")
    state = decode(body)
    params, public = import_params(state["params"])
    if public is None:
        backend = params.backend
        exp = getattr(backend, "exp_fixed", backend.exp)
        public = CLPublicKey(X=exp(backend.g, state["x"]),
                             Y=exp(backend.g, state["y"]))
    return {
        "params": params,
        "keypair": CLKeyPair(x=state["x"], y=state["y"], public=public),
        "nodes": list(state["nodes"]),
        "vnodes": int(state["vnodes"]),
        "n_shards": int(state["n_shards"]),
        "checkpoint_every": int(state["checkpoint_every"]),
    }


def _write_atomic(path: str, data: Any, *, binary: bool = False) -> None:
    """Write-then-rename so concurrent readers never see a torn file."""
    tmp = f"{path}.tmp.{os.getpid()}"
    mode = "wb" if binary else "w"
    with open(tmp, mode) as fh:
        fh.write(data)
    os.replace(tmp, path)


def _wait_for_file(path: str, *, timeout: float) -> str:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as fh:
                return fh.read()
        time.sleep(0.02)
    raise TimeoutError(f"gave up waiting for {path}")


# -- child process ---------------------------------------------------------
def node_main(rundir: str, node_id: str, *, bind_host: str | None = None,
              setup_timeout: float = 60.0) -> int:
    """Run one cluster node until a ``shutdown`` control frame.

    Dynamic mode (the default, used by :class:`ProcessCluster`): bind
    ephemeral ports, report them in ``<id>.json``, wait for the parent
    to publish ``cluster.json``.  Fixed mode (``cluster.json`` already
    present and naming this node): bind the declared ports directly —
    the docker-compose path, where addresses are known up front.
    """
    bootstrap = read_bootstrap(os.path.join(rundir, "bootstrap.blob"))
    cluster_path = os.path.join(rundir, "cluster.json")

    port = replica_port = 0
    host = bind_host or "127.0.0.1"
    if os.path.exists(cluster_path):
        published = json.loads(_wait_for_file(cluster_path, timeout=1.0))
        if node_id in published.get("replicas", {}):
            port = int(published["map"]["addresses"][node_id][1])
            replica_port = int(published["replicas"][node_id][1])

    node = ClusterNode(
        node_id, bootstrap["params"], bootstrap["keypair"],
        n_shards=bootstrap["n_shards"],
        checkpoint_every=bootstrap["checkpoint_every"],
        host=host, port=port, replica_port=replica_port,
        seed=bootstrap["nodes"].index(node_id),
    )
    _write_atomic(
        os.path.join(rundir, f"{node_id}.json"),
        json.dumps({"node": node_id, "pid": os.getpid(),
                    "frontend": list(node.address),
                    "replica": list(node.replica_address)}),
    )
    published = json.loads(_wait_for_file(cluster_path, timeout=setup_timeout))
    node.control({"type": "set-map", "map": published["map"]})
    peer = ClusterMap.from_state(published["map"]).replica_peer(node_id)
    peer_addr = published["replicas"][peer]
    node.connect_shipper((peer_addr[0], int(peer_addr[1])))
    _write_atomic(os.path.join(rundir, f"{node_id}.ready"), "ready\n")

    node.shutdown_requested.wait()
    node.close()
    return 0


# -- parent-side orchestrator ----------------------------------------------
class ProcessCluster:
    """Spawn, address, and command a subprocess cluster.

    The parent keeps the authoritative :class:`ClusterMap`; routers
    built by :meth:`router` refresh from it, and :meth:`failover`
    pushes each new version to the survivors' control ports so their
    own view (served to any other client asking ``{"type": "map"}``)
    stays current.
    """

    def __init__(self, params, keypair, rundir: str, *, n_nodes: int = 3,
                 n_shards: int = 4, vnodes: int = DEFAULT_VNODES,
                 checkpoint_every: int = 64, setup_timeout: float = 90.0,
                 python: str = sys.executable) -> None:
        if n_nodes < 2:
            raise ValueError("a cluster needs at least two nodes")
        self.rundir = rundir
        os.makedirs(rundir, exist_ok=True)
        names = [f"n{i}" for i in range(n_nodes)]
        write_bootstrap(os.path.join(rundir, "bootstrap.blob"),
                        params, keypair, nodes=names, vnodes=vnodes,
                        n_shards=n_shards, checkpoint_every=checkpoint_every)

        env = dict(os.environ)
        src = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

        self.procs: dict[str, subprocess.Popen] = {}
        self._logs: dict[str, Any] = {}
        for name in names:
            log = open(os.path.join(rundir, f"{name}.log"), "w")
            self._logs[name] = log
            self.procs[name] = subprocess.Popen(
                [python, "-m", "repro.cluster.launcher", "node",
                 "--rundir", rundir, "--node", name],
                env=env, stdout=log, stderr=subprocess.STDOUT,
            )

        reports = {
            name: json.loads(self._await(f"{name}.json", setup_timeout, name))
            for name in names
        }
        self.replicas = {n: tuple(r["replica"]) for n, r in reports.items()}
        self.map = ClusterMap(
            version=0, nodes=tuple(names),
            addresses={n: tuple(r["frontend"]) for n, r in reports.items()},
            vnodes=vnodes,
        )
        _write_atomic(
            os.path.join(rundir, "cluster.json"),
            json.dumps({"map": self.map.to_state(),
                        "replicas": {n: list(a) for n, a in self.replicas.items()}}),
        )
        for name in names:
            self._await(f"{name}.ready", setup_timeout, name)
        self.dead: set[str] = set()

    def _await(self, filename: str, timeout: float, name: str) -> str:
        try:
            return _wait_for_file(os.path.join(self.rundir, filename),
                                  timeout=timeout)
        except TimeoutError:
            proc = self.procs.get(name)
            status = proc.poll() if proc is not None else None
            raise RuntimeError(
                f"node {name!r} never produced {filename} "
                f"(exit status {status}; see {self.rundir}/{name}.log)"
            ) from None

    # -- commanding the fleet ---------------------------------------------
    def control(self, name: str, frame: dict, *, timeout: float = 30.0) -> dict:
        """One control-frame exchange with *name*'s replication port."""
        return control_call(self.replicas[name], frame, timeout=timeout)

    def router(self, **kwargs):
        """A :class:`ClusterRouter` refreshing from the parent's map."""
        from repro.cluster.router import ClusterRouter

        kwargs.setdefault("refresh", lambda: self.map)
        return ClusterRouter(self.map, **kwargs)

    def kill(self, name: str) -> None:
        """SIGKILL one node — the real crash, nothing flushed or closed."""
        if name in self.dead:
            return
        self.dead.add(name)
        proc = self.procs[name]
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)

    def failover(self, dead: str) -> str:
        """Adopt *dead*'s slice on its peer; publish the rebound map."""
        adopter = self.map.replica_peer(dead)
        if adopter in self.dead:
            raise RuntimeError(
                f"designated peer {adopter!r} of {dead!r} is also dead; "
                "re-replication after failover is out of scope"
            )
        result = self.control(adopter, {"type": "adopt", "node": dead})
        if not result.get("ok"):
            raise RuntimeError(f"adoption of {dead!r} failed: {result}")
        self.map = self.map.rebind(dead, tuple(result["address"]))
        for name in self.map.nodes:
            if name not in self.dead:
                self.control(name, {"type": "set-map",
                                    "map": self.map.to_state()})
        return adopter

    def dump_journals(self) -> dict[str, list[dict]]:
        """Per-slice journal record states from every live node."""
        dumps: dict[str, list[dict]] = {}
        for name in self.map.nodes:
            if name in self.dead:
                continue
            reply = self.control(name, {"type": "dump"})
            if reply.get("ok"):
                dumps.update(reply["journals"])
        return dumps

    def telemetry_snapshots(self) -> dict[str, dict]:
        """Per-node metrics snapshots (feed for ``tools/merge_telemetry``)."""
        snaps: dict[str, dict] = {}
        for name in self.map.nodes:
            if name in self.dead:
                continue
            reply = self.control(name, {"type": "telemetry"})
            if reply.get("ok"):
                snaps[name] = reply["metrics"]
        return snaps

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        for name, proc in self.procs.items():
            if name in self.dead:
                continue
            try:
                self.control(name, {"type": "shutdown"}, timeout=5.0)
            except Exception:
                pass
        deadline = time.monotonic() + 10.0
        for name, proc in self.procs.items():
            remaining = max(0.1, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10)
        for log in self._logs.values():
            log.close()

    def __enter__(self) -> "ProcessCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- CLI -------------------------------------------------------------------
def _cmd_init(args: argparse.Namespace) -> int:
    """Generate bootstrap + fixed-address cluster.json (compose mode)."""
    import random

    from repro.crypto.cl_sig import cl_keygen
    from repro.ecash.dec import setup

    entries = []
    for spec in args.nodes:
        parts = spec.split(":")
        if len(parts) != 4:
            raise SystemExit(
                f"bad --nodes entry {spec!r} (want name:host:port:replica_port)"
            )
        entries.append((parts[0], parts[1], int(parts[2]), int(parts[3])))

    os.makedirs(args.rundir, exist_ok=True)
    rng = random.Random(args.seed)
    params = setup(args.tree_level, rng, security_bits=args.security_bits,
                   real_pairing=False, edge_rounds=args.edge_rounds)
    keypair = cl_keygen(params.backend, rng)
    names = [e[0] for e in entries]
    write_bootstrap(os.path.join(args.rundir, "bootstrap.blob"),
                    params, keypair, nodes=names, vnodes=args.vnodes,
                    n_shards=args.n_shards,
                    checkpoint_every=args.checkpoint_every)
    cmap = ClusterMap(
        version=0, nodes=tuple(names),
        addresses={name: (host, port) for name, host, port, _ in entries},
        vnodes=args.vnodes,
    )
    _write_atomic(
        os.path.join(args.rundir, "cluster.json"),
        json.dumps({"map": cmap.to_state(),
                    "replicas": {name: [host, rport]
                                 for name, host, _, rport in entries}}),
    )
    print(f"wrote bootstrap + cluster.json for {len(names)} nodes "
          f"to {args.rundir}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.cluster.launcher",
        description="single-host multi-process cluster launcher",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    node = sub.add_parser("node", help="run one cluster node process")
    node.add_argument("--rundir", required=True)
    node.add_argument("--node", required=True, dest="node_id")
    node.add_argument("--bind-host", default=None)

    init = sub.add_parser("init", help="write bootstrap + fixed cluster.json")
    init.add_argument("--rundir", required=True)
    init.add_argument("--nodes", nargs="+", required=True,
                      metavar="NAME:HOST:PORT:RPORT")
    init.add_argument("--seed", type=int, default=7)
    init.add_argument("--tree-level", type=int, default=4)
    init.add_argument("--security-bits", type=int, default=80)
    init.add_argument("--edge-rounds", type=int, default=6)
    init.add_argument("--vnodes", type=int, default=DEFAULT_VNODES)
    init.add_argument("--n-shards", type=int, default=4)
    init.add_argument("--checkpoint-every", type=int, default=64)

    args = parser.parse_args(argv)
    if args.command == "node":
        return node_main(args.rundir, args.node_id, bind_host=args.bind_host)
    return _cmd_init(args)


if __name__ == "__main__":
    sys.exit(main())

"""Consistent-hash ring and the versioned cluster map.

The cluster partitions the market administrator's keyspace the same
way :mod:`repro.service.shard` partitions it inside one process — by a
stable :func:`repro.crypto.hashing.sha256` hash, never Python's salted
``hash()`` — but across *nodes* instead of across in-process shards.
Every routable request carries a partition key (the account id for all
account-scoped operations), and :class:`HashRing` maps that key to
exactly one node:

* each node contributes ``vnodes`` points on a 64-bit circle, at
  ``sha256("cluster-ring", node, index)``;
* a key lands at ``sha256("cluster-key", key)`` and is owned by the
  first node point at or clockwise after it (wrapping at the top).

Virtual nodes smooth the slice sizes (with one point per node a
3-node ring can be arbitrarily lopsided); the assignment depends only
on the *ring membership* and the vnode count, so every router, node
and test derives the identical ring with no coordination.

:class:`ClusterMap` adds what the ring deliberately leaves out — where
each node currently *is*.  Failover never changes the ring: a dead
node's identity (and therefore its slice) is adopted by a survivor,
which starts serving the dead node's keys at a new address.  Only the
address table changes, under a bumped ``version``; routers holding a
stale map keep routing to the dead address, fail, refresh, and land on
the adopter deterministically.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.crypto.hashing import sha256

__all__ = ["HashRing", "ClusterMap", "ring_point", "key_point", "DEFAULT_VNODES"]

#: Virtual-node count per physical node.  128 keeps the largest slice
#: within a few percent of fair for small clusters while the ring stays
#: tiny (3 nodes -> 384 points).
DEFAULT_VNODES = 128

_SPACE_BITS = 64
_SPACE = 1 << _SPACE_BITS


def ring_point(node: str, index: int) -> int:
    """The 64-bit circle position of one virtual node."""
    digest = sha256(b"cluster-ring", node.encode(), index.to_bytes(4, "big"))
    return int.from_bytes(digest[:8], "big")


def key_point(key: str) -> int:
    """The 64-bit circle position of one partition key."""
    digest = sha256(b"cluster-key", key.encode())
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Deterministic consistent-hash ring over a fixed node membership."""

    def __init__(self, nodes: tuple[str, ...] | list[str], *,
                 vnodes: int = DEFAULT_VNODES) -> None:
        if not nodes:
            raise ValueError("a ring needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ValueError("ring nodes must be unique")
        if vnodes < 1:
            raise ValueError("vnodes must be positive")
        self.nodes = tuple(nodes)
        self.vnodes = vnodes
        points: list[tuple[int, str]] = []
        for node in self.nodes:
            for index in range(vnodes):
                points.append((ring_point(node, index), node))
        # sha256 collisions on the 64-bit circle are effectively
        # impossible, but sorting the (point, node) pair keeps even that
        # case deterministic
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [n for _, n in points]

    def owner(self, key: str) -> str:
        """The node owning *key*: first point clockwise from the key."""
        at = key_point(key)
        index = bisect.bisect_left(self._points, at)
        if index == len(self._points):
            index = 0  # wrap past the top of the circle
        return self._owners[index]

    def slice_share(self, samples: int = 4096) -> dict[str, float]:
        """Approximate share of the key space owned per node.

        Measured arc length, not sampled keys: exact for the ring's
        point set, cheap, and deterministic.  *samples* is accepted for
        API compatibility but unused.
        """
        arcs: dict[str, int] = {node: 0 for node in self.nodes}
        for i, point in enumerate(self._points):
            prev = self._points[i - 1] if i else self._points[-1] - _SPACE
            arcs[self._owners[i]] += point - prev
        return {node: arc / _SPACE for node, arc in arcs.items()}

    def successor(self, node: str) -> str:
        """The next node in membership order (the designated replica peer)."""
        index = self.nodes.index(node)
        return self.nodes[(index + 1) % len(self.nodes)]


@dataclass(frozen=True)
class ClusterMap:
    """Versioned view of the cluster: fixed ring membership + live addresses.

    ``nodes`` lists the *ring* members — the partition of the keyspace —
    and never changes after setup.  ``addresses`` maps each member to
    the host/port currently serving its slice; failover rebinds a dead
    member's address to its adopter and bumps ``version``.  Everything
    is plain data so the map crosses the wire through the canonical
    codec.
    """

    version: int
    nodes: tuple[str, ...]
    addresses: dict[str, tuple[str, int]]
    vnodes: int = DEFAULT_VNODES
    _ring: HashRing | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        missing = [n for n in self.nodes if n not in self.addresses]
        if missing:
            raise ValueError(f"nodes without an address: {missing}")
        object.__setattr__(self, "_ring", HashRing(self.nodes, vnodes=self.vnodes))

    @property
    def ring(self) -> HashRing:
        return self._ring  # type: ignore[return-value]

    def owner_of(self, key: str) -> str:
        return self.ring.owner(key)

    def address_of(self, node: str) -> tuple[str, int]:
        return self.addresses[node]

    def route(self, key: str) -> tuple[str, tuple[str, int]]:
        """``(owner node, current address)`` for one partition key."""
        node = self.owner_of(key)
        return node, self.addresses[node]

    def replica_peer(self, node: str) -> str:
        """Where *node* ships its checkpoints and journal segments."""
        if len(self.nodes) < 2:
            raise ValueError("replication needs at least two nodes")
        return self.ring.successor(node)

    def rebind(self, node: str, address: tuple[str, int]) -> "ClusterMap":
        """New map (version + 1) with *node* served at *address*.

        This is the failover primitive: the ring — and with it every
        key's owner — is untouched; only where that owner answers
        changes.
        """
        if node not in self.addresses:
            raise KeyError(f"unknown node {node!r}")
        addresses = dict(self.addresses)
        addresses[node] = (address[0], int(address[1]))
        return ClusterMap(version=self.version + 1, nodes=self.nodes,
                          addresses=addresses, vnodes=self.vnodes)

    # -- wire form ---------------------------------------------------------
    def to_state(self) -> dict:
        return {
            "version": self.version,
            "nodes": list(self.nodes),
            "addresses": {n: [h, p] for n, (h, p) in self.addresses.items()},
            "vnodes": self.vnodes,
        }

    @classmethod
    def from_state(cls, state: dict) -> "ClusterMap":
        return cls(
            version=int(state["version"]),
            nodes=tuple(state["nodes"]),
            addresses={n: (a[0], int(a[1]))
                       for n, a in state["addresses"].items()},
            vnodes=int(state.get("vnodes", DEFAULT_VNODES)),
        )

"""Checkpoint and journal-segment shipping between cluster nodes.

Every node streams its durability state to one designated peer (its
ring successor) so that peer can **adopt the node's slice** after a
crash, using the exact recovery machinery the single-node service
already proves out (:meth:`repro.service.server.MarketService.recover`
= snapshot restore + rid-idempotent tail replay).  Two kinds of
payload cross the replication link, both as RPW1 frames over a
dedicated TCP listener:

* **journal records** — shipped *synchronously* from the journal's
  append hook (:meth:`repro.service.journal.Journal.add_observer`):
  the ``sendall`` happens on the appending thread before the append
  returns, and the service only answers a request after its journal
  records are appended.  Every acknowledged request is therefore on
  the peer's wire (or the send raised and the shipper degraded) before
  the client could have seen the verdict — a SIGKILL after that point
  loses nothing, because the kernel still delivers sent bytes.
* **checkpoints** — periodic full snapshots (taken on the frontend's
  ``after_batch`` hook, the one place the service is quiescent) that
  bound how much journal tail an adoption must replay.  The newest
  checkpoint supersedes older ones.

When the link is down, records spool in order and a background thread
reconnects with bounded backoff, re-shipping a fresh checkpoint first
(the spool may have overflowed the peer's view otherwise — a full
snapshot plus the spooled tail is always sufficient).  During a
degraded window the no-loss guarantee narrows to "whatever reached the
peer"; the runbook's failover entry spells this out.

Shipping is **segment-aware** (see ``docs/storage.md``): every record
frame carries the segment id its LSN maps to, and a reconnect opens
with a *sync* hello — the receiver answers with its cursor
``(segment, lsn)``, the high-water mark it already holds, and the
shipper prunes its spool to strictly-newer records before replaying.
Resume cost is therefore the gap, not the spool; and a receiver
running with ``trim_on_checkpoint=True`` keeps only the journal tail
after each shipped checkpoint, bounding replica memory the same way
compaction bounds source disk.

:class:`ReplicaReceiver` is the listening side: it stores per-source
checkpoint + record streams, answers control frames (ping/adopt/dump —
the handler is injected by :class:`repro.cluster.node.ClusterNode`),
and tracks stream liveness so adoption can wait for the kernel to
drain a dead peer's final bytes before recovering.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.net.wire import FrameDecoder, encode_frame, read_frame, write_frame, WireError
from repro.service.journal import (
    DEFAULT_SEGMENT_RECORDS,
    Checkpoint,
    Journal,
    JournalError,
    JournalRecord,
)

__all__ = [
    "ReplicaSlot",
    "ReplicaReceiver",
    "JournalShipper",
    "journal_from_records",
    "control_call",
]


def journal_from_records(states: list[dict]) -> Journal:
    """An in-memory journal holding shipped record *states* verbatim.

    The shipped stream is already LSN-ordered and codec-normalized (it
    was appended once on the source node); rebuilding through
    :meth:`Journal.append` would re-assign LSNs and re-fire hooks, so
    the records are installed directly.  A stream whose first record
    carries a non-zero LSN (the receiver trimmed on a checkpoint, or
    the source compacted before the link came up) becomes a journal
    with the matching ``first_lsn``, so recovery's compaction guard
    sees the truth.
    """
    journal = Journal()
    records = [JournalRecord.from_state(s) for s in states]
    for prev, cur in zip(records, records[1:]):
        if cur.lsn != prev.lsn + 1:
            raise JournalError(
                f"shipped record stream has a gap: lsn {prev.lsn} is "
                f"followed by lsn {cur.lsn}"
            )
    if records:
        journal._base_lsn = records[0].lsn
    journal._records.extend(records)
    return journal


def control_call(address: tuple[str, int], frame: dict, *,
                 timeout: float = 30.0) -> dict:
    """One request/reply exchange with a node's replication listener."""
    with socket.create_connection(address, timeout=timeout) as sock:
        sock.settimeout(timeout)
        write_frame(sock, frame)
        reply = read_frame(sock)
    if reply is None:
        raise WireError(f"replication peer {address} closed during a control call")
    return reply


@dataclass
class ReplicaSlot:
    """Everything one source node has shipped here.

    ``last_lsn``/``last_segment`` are real fields (not derived from
    ``records``) so they survive checkpoint trimming: the cursor a sync
    hello answers with must be the true high-water mark even after the
    records below a checkpoint were dropped.
    """

    node: str
    checkpoint: bytes | None = None
    checkpoint_lsn: int = -1
    records: list[dict] = field(default_factory=list)
    streams: int = 0  # live shipping connections for this source
    last_lsn: int = -1
    last_segment: int = -1


class ReplicaReceiver:
    """TCP listener accepting replica streams and control frames.

    Stream frames (fire-and-forget from the shipper, except the sync
    hello which is answered with a cursor)::

        {type: "hello",      node}                   opens a stream
        {type: "hello",      node, sync: true}       opens + cursor reply
        {type: "record",     node, segment, record}  one journal record
        {type: "checkpoint", node, blob}             newest full snapshot

    The cursor reply is ``{ok, type: "cursor", node, segment, lsn}`` —
    the highest LSN (and its segment) this receiver already holds for
    the source, so a reconnecting shipper can prune its spool instead
    of replaying everything since the last checkpoint.

    Any other frame is treated as a *control* request: handed to the
    injected ``control`` callable, whose dict result is written back as
    the reply (exceptions become ``{ok: false, error}``).  The control
    plane — ping, map exchange, adoption, dumps — therefore rides the
    same listener, one port per node.

    With ``trim_on_checkpoint=True``, every checkpoint frame drops the
    stored records it covers (LSN ≤ the checkpoint's cut): adoption
    then restores the checkpoint and replays only the tail, and the
    slot's memory is bounded the way compaction bounds source disk.
    The default (``False``) keeps the full stream, which the cluster
    sweep's uncompacted shadow replay requires.
    """

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0,
                 control: Callable[[dict], dict] | None = None,
                 trim_on_checkpoint: bool = False) -> None:
        self.trim_on_checkpoint = trim_on_checkpoint
        self._listener = socket.create_server((host, port))
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self.control = control
        self._slots: dict[str, ReplicaSlot] = {}
        self._lock = threading.Lock()
        self._closed = threading.Event()
        self._running = True
        self._threads: list[threading.Thread] = []
        accept = threading.Thread(target=self._accept_loop,
                                  name="replica-accept", daemon=True)
        accept.start()
        self._threads.append(accept)

    # -- store -------------------------------------------------------------
    def slot(self, node: str) -> ReplicaSlot:
        with self._lock:
            if node not in self._slots:
                self._slots[node] = ReplicaSlot(node=node)
            return self._slots[node]

    def sources(self) -> list[str]:
        with self._lock:
            return sorted(self._slots)

    def wait_drained(self, node: str, *, timeout: float = 10.0) -> ReplicaSlot:
        """The slot for *node*, once no shipping stream is live.

        After a source dies, its final ``sendall``-ed bytes are still
        in flight in the kernel; the reader thread drains them and then
        sees EOF.  Waiting for the stream count to hit zero is what
        makes "adopt from shipped state" race-free against the kill.
        """
        deadline = time.monotonic() + timeout
        slot = self.slot(node)
        while time.monotonic() < deadline:
            with self._lock:
                if slot.streams == 0:
                    return slot
            time.sleep(0.01)
        return slot  # adopt from what arrived; recovery is idempotent

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        if not self._running:
            return
        self._running = False
        self._closed.set()
        try:
            self._listener.close()
        except OSError:
            pass

    def __enter__(self) -> "ReplicaReceiver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- wire side ---------------------------------------------------------
    def _accept_loop(self) -> None:
        while self._running:
            try:
                sock, _peer = self._listener.accept()
            except OSError:
                return
            thread = threading.Thread(target=self._serve, args=(sock,),
                                      name="replica-conn", daemon=True)
            thread.start()

    def _serve(self, sock: socket.socket) -> None:
        decoder = FrameDecoder()
        stream_node: str | None = None
        try:
            while self._running:
                data = sock.recv(65536)
                if not data:
                    return
                decoder.feed(data)
                for frame in decoder.frames():
                    reply = self._handle(frame, sock)
                    if stream_node is None and isinstance(frame, dict) \
                            and frame.get("type") == "hello":
                        stream_node = frame["node"]
                    if reply is not None:
                        sock.sendall(encode_frame(reply))
        except (OSError, WireError):
            return
        finally:
            if stream_node is not None:
                with self._lock:
                    self._slots[stream_node].streams -= 1
            try:
                sock.close()
            except OSError:
                pass

    def _handle(self, frame: Any, sock: socket.socket) -> dict | None:
        if not isinstance(frame, dict):
            return {"ok": False, "error": "frame must be a dict"}
        kind = frame.get("type")
        if kind == "hello":
            slot = self.slot(frame["node"])
            with self._lock:
                slot.streams += 1
                if frame.get("sync"):
                    return {"ok": True, "type": "cursor", "node": slot.node,
                            "segment": slot.last_segment,
                            "lsn": slot.last_lsn}
            return None
        if kind == "record":
            slot = self.slot(frame["node"])
            record = frame["record"]
            with self._lock:
                # idempotent by LSN: a reconnecting shipper replays its
                # (cursor-pruned) spool, and overlap with records that
                # already arrived must not duplicate
                if record["lsn"] > slot.last_lsn:
                    slot.records.append(record)
                    slot.last_lsn = record["lsn"]
                    segment = frame.get("segment")
                    if segment is None:
                        segment = record["lsn"] // DEFAULT_SEGMENT_RECORDS
                    slot.last_segment = segment
            return None
        if kind == "checkpoint":
            slot = self.slot(frame["node"])
            blob = frame["blob"]
            cut = -1
            if self.trim_on_checkpoint:
                try:
                    cut = Checkpoint.from_bytes(blob).lsn
                except JournalError:
                    cut = -1  # keep everything rather than trust a bad blob
            with self._lock:
                slot.checkpoint = blob
                if cut >= 0:
                    slot.checkpoint_lsn = cut
                    slot.records = [r for r in slot.records if r["lsn"] > cut]
            return None
        if self.control is not None:
            try:
                return self.control(frame)
            except Exception as exc:  # control errors answer, not kill
                return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        return {"ok": False, "error": f"unknown frame type {kind!r}"}


class JournalShipper:
    """Streams one node's journal records and checkpoints to its peer.

    Register :meth:`on_record` as a journal observer and call
    :meth:`maybe_checkpoint` from the frontend's ``after_batch`` hook.
    ``healthy`` is the degradation flag: ``False`` means the link is
    down and records are spooling for the reconnect thread.

    *segment_records* is the shipping-side segment geometry: each
    record frame carries ``lsn // segment_records`` as its segment id
    so receiver cursors speak ``(segment, lsn)``.  It should match the
    source journal's geometry when the source is a
    :class:`~repro.service.journal.SegmentedFileJournal`.
    ``last_checkpoint_lsn`` is the cut of the newest checkpoint that
    reached the peer (-1 before the first) — the LSN local compaction
    may safely treat as replica-durable.
    """

    def __init__(self, node: str, peer: tuple[str, int], *,
                 checkpoint_every: int = 256,
                 segment_records: int = DEFAULT_SEGMENT_RECORDS,
                 timeout: float = 10.0,
                 reconnect_backoff: float = 0.1,
                 max_backoff: float = 5.0) -> None:
        self.node = node
        self.peer = (peer[0], int(peer[1]))
        self.checkpoint_every = checkpoint_every
        self.segment_records = segment_records
        self.last_checkpoint_lsn = -1
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._lock = threading.Lock()
        self._spool: list[dict] = []
        self._since_checkpoint = 0
        self._running = True
        self._backoff = reconnect_backoff
        self._max_backoff = max_backoff
        self.shipped_records = 0
        self.shipped_checkpoints = 0
        self._reconnector: threading.Thread | None = None
        self._checkpoint_source: Callable[[], Checkpoint] | None = None
        try:
            self._open()
        except OSError:
            self._degrade()

    @property
    def healthy(self) -> bool:
        return self._sock is not None

    def bind_checkpoints(self, source: Callable[[], Checkpoint]) -> None:
        """Set the checkpoint factory (the service's, on its thread)."""
        self._checkpoint_source = source

    # -- hot path (journal observer, appending thread) ---------------------
    def on_record(self, record: JournalRecord) -> None:
        frame = {"type": "record", "node": self.node,
                 "segment": record.lsn // self.segment_records,
                 "record": record.to_state()}
        with self._lock:
            if self._sock is not None:
                try:
                    self._sock.sendall(encode_frame(frame))
                    self.shipped_records += 1
                    self._since_checkpoint += 1
                    return
                except OSError:
                    self._drop_locked()
            self._spool.append(frame)
        self._degrade()

    def maybe_checkpoint(self, *, force: bool = False) -> bool:
        """Ship a fresh checkpoint when the segment budget is spent.

        Must run where the service is quiescent (the dispatcher's
        ``after_batch`` hook): taking the snapshot reads every shard.
        """
        if self._checkpoint_source is None:
            return False
        with self._lock:
            due = force or self._since_checkpoint >= self.checkpoint_every
            if not due or self._sock is None:
                return False
        checkpoint = self._checkpoint_source()
        frame = {"type": "checkpoint", "node": self.node,
                 "blob": checkpoint.to_bytes()}
        with self._lock:
            if self._sock is None:
                return False
            try:
                self._sock.sendall(encode_frame(frame))
            except OSError:
                self._drop_locked()
                self._degrade()
                return False
            self.shipped_checkpoints += 1
            self.last_checkpoint_lsn = checkpoint.lsn
            self._since_checkpoint = 0
        return True

    # -- link management ---------------------------------------------------
    def _open(self) -> None:
        sock = socket.create_connection(self.peer, timeout=self.timeout)
        sock.settimeout(self.timeout)
        sock.sendall(encode_frame({"type": "hello", "node": self.node}))
        with self._lock:
            self._sock = sock

    def _drop_locked(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _degrade(self) -> None:
        with self._lock:
            if not self._running or self._reconnector is not None:
                return
            self._reconnector = threading.Thread(
                target=self._reconnect_loop, name=f"ship-{self.node}",
                daemon=True,
            )
            self._reconnector.start()

    def _reconnect_loop(self) -> None:
        delay = self._backoff
        while self._running:
            time.sleep(delay)
            delay = min(delay * 2, self._max_backoff)
            try:
                sock = socket.create_connection(self.peer, timeout=self.timeout)
                sock.settimeout(self.timeout)
                sock.sendall(encode_frame(
                    {"type": "hello", "node": self.node, "sync": True}))
                cursor = read_frame(sock)
            except (OSError, WireError):
                continue
            if not isinstance(cursor, dict) or cursor.get("type") != "cursor":
                try:
                    sock.close()
                except OSError:
                    pass
                continue
            # the cursor is the peer's (segment, lsn) high-water mark:
            # everything at or below it already arrived (the receiver
            # dedups by LSN anyway, but pruning here avoids re-sending
            # a potentially large spool over a slow link)
            acked = cursor.get("lsn", -1)
            with self._lock:
                self._spool = [f for f in self._spool
                               if f["record"]["lsn"] > acked]
            # replay the spool on the *private* socket before publishing
            # it: while ``_sock`` is None the hot path keeps spooling, so
            # live records can never interleave with (or overtake) the
            # backlog.  The spool is complete — every record since the
            # drop either shipped or spooled — so no checkpoint is
            # needed for correctness; one is marked due anyway (shipped
            # later from the dispatcher thread, the only thread allowed
            # to snapshot the bank) to bound the peer's replay tail.
            failed = False
            while not failed:
                with self._lock:
                    if not self._spool:
                        self._sock = sock
                        self._since_checkpoint = self.checkpoint_every
                        self._reconnector = None
                        return
                    batch, self._spool = self._spool, []
                for index, frame in enumerate(batch):
                    try:
                        sock.sendall(encode_frame(frame))
                        self.shipped_records += 1
                    except OSError:
                        with self._lock:
                            self._spool = batch[index:] + self._spool
                        try:
                            sock.close()
                        except OSError:
                            pass
                        failed = True
                        break

    def close(self) -> None:
        self._running = False
        with self._lock:
            self._drop_locked()

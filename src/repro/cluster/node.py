"""One cluster node: a sliced market service plus its cluster plumbing.

A :class:`ClusterNode` wires together, for one ring member:

* a fresh :class:`~repro.service.server.MarketService` (its own
  :class:`~repro.service.shard.ShardedBank`, journal, reply cache) that
  owns this node's slice of the account space — sharding partitions
  *state*; every node holds the same DEC parameters and CL issuing key,
  so any node's verdicts verify under the one bank public key;
* a :class:`~repro.service.frontend.ServiceFrontend` serving the slice
  over the ordinary wire protocol (routers don't know nodes are sliced);
* a :class:`~repro.cluster.replicate.ReplicaReceiver` that doubles as
  the node's **control plane** — ping / map exchange / adopt / dump /
  telemetry / shutdown frames ride the replication port — and stores
  whatever the ring predecessor ships here;
* a :class:`~repro.cluster.replicate.JournalShipper` streaming this
  node's journal (synchronously, before replies) and checkpoints
  (from the frontend's ``after_batch`` hook) to the ring successor.

**Adoption** is the failover move: when a node dies, its designated
peer replays the shipped checkpoint + journal tail through
:meth:`MarketService.recover` — the same rid-idempotent machinery the
single-node crash tests prove — and starts a second frontend serving
the dead node's slice at a new address.  The cluster map then rebinds
the dead node id to that address (version + 1); the ring, and with it
every key's owner, never changes.

:class:`LocalCluster` runs N nodes in one process (threads, ephemeral
ports) — the fast harness the cluster test suite drives; the
subprocess form lives in :mod:`repro.cluster.launcher`.
"""

from __future__ import annotations

import random
import threading
from typing import Any

import repro.obs as obs
from repro.cluster.replicate import (
    JournalShipper,
    ReplicaReceiver,
    journal_from_records,
)
from repro.cluster.ring import ClusterMap, DEFAULT_VNODES
from repro.service.aio import AsyncServiceFrontend
from repro.service.frontend import ServiceFrontend
from repro.service.journal import DEFAULT_SEGMENT_RECORDS, Checkpoint, Journal
from repro.service.server import MarketService
from repro.service.shard import ShardedBank

__all__ = ["ClusterNode", "LocalCluster"]


class ClusterNode:
    """One ring member: sliced service + frontend + replication endpoints."""

    def __init__(self, node_id: str, params, keypair, *,
                 n_shards: int = 4, host: str = "127.0.0.1",
                 port: int = 0, replica_port: int = 0, seed: int = 0,
                 checkpoint_every: int = 64,
                 segment_records: int = DEFAULT_SEGMENT_RECORDS,
                 journal_retention: int | None = None,
                 async_frontend: bool = False,
                 telemetry: "obs.Telemetry | None" = None) -> None:
        self.id = node_id
        self.params = params
        self.keypair = keypair
        self.n_shards = n_shards
        self.host = host
        #: serve this node's slices from the asyncio front door instead
        #: of thread-per-connection; everything behind the listener
        #: (dispatcher, service, replication hooks) is identical
        self.async_frontend = async_frontend
        self.checkpoint_every = checkpoint_every
        self.segment_records = segment_records
        #: segments to retain past the replica-durable cut; ``None``
        #: (the default) disables local compaction entirely, keeping
        #: ``dump_journals`` complete for the cluster sweep's shadow
        #: replay.  Setting it bounds this node's journal memory to
        #: roughly ``(retention + 1) * segment_records`` records once a
        #: checkpoint has reached the peer (see docs/storage.md).
        self.journal_retention = journal_retention
        self.telemetry = telemetry if telemetry is not None else obs.Telemetry.disabled()
        self.telemetry.registry.gauge(
            "repro_cluster_node_info", "cluster node identity", node=node_id,
        ).set(1)
        self._m_adoptions = self.telemetry.registry.counter(
            "repro_cluster_adoptions_total", "slices adopted from dead peers",
            node=node_id,
        )

        # the slice: in-memory journal — durability here is the *peer's*
        # copy (shipped before any reply), which is exactly what a
        # SIGKILL leaves behind; FileJournal can be slotted in for
        # belt-and-braces local durability without changing anything else
        self.journal = Journal(segment_records=segment_records,
                               telemetry=self.telemetry)
        bank = ShardedBank(params, keypair, random.Random(seed),
                           n_shards=n_shards, journal=self.journal,
                           telemetry=self.telemetry)
        self.service = MarketService(bank, name=f"MA-{node_id}",
                                     journal=self.journal,
                                     telemetry=self.telemetry)
        frontend_cls = AsyncServiceFrontend if async_frontend else ServiceFrontend
        self.frontend = frontend_cls(self.service, host=host, port=port,
                                     telemetry=self.telemetry).start()
        self.receiver = ReplicaReceiver(host=host, port=replica_port,
                                        control=self.control)
        self.shipper: JournalShipper | None = None
        self.map: ClusterMap | None = None
        #: dead peer id -> (recovered service, its frontend)
        self.adopted: dict[str, tuple[MarketService, ServiceFrontend]] = {}
        self._lock = threading.Lock()
        self.shutdown_requested = threading.Event()

    @property
    def address(self) -> tuple[str, int]:
        """Where this node's own slice answers requests."""
        return self.frontend.address

    @property
    def replica_address(self) -> tuple[str, int]:
        """Where peers ship state and operators send control frames."""
        return self.receiver.address

    def serving(self) -> list[str]:
        """Every slice this node currently answers for (own + adopted)."""
        with self._lock:
            return [self.id, *self.adopted]

    # -- replication out ---------------------------------------------------
    def connect_shipper(self, peer: tuple[str, int]) -> None:
        """Start streaming journal + checkpoints to *peer* (ring successor).

        Called once the peer's receiver is listening; the shipper hangs
        off the journal's append hook (records, synchronous) and the
        frontend's ``after_batch`` hook (checkpoints, quiescent).
        """
        if self.shipper is not None:
            raise RuntimeError(f"{self.id}: shipper already connected")
        self.shipper = JournalShipper(self.id, peer,
                                      checkpoint_every=self.checkpoint_every,
                                      segment_records=self.segment_records)
        self.shipper.bind_checkpoints(self.service.checkpoint)
        self.journal.add_observer(self.shipper.on_record)
        self.frontend.after_batch = self._after_batch

    def _after_batch(self) -> None:
        if self.shipper is None:
            return
        self.shipper.maybe_checkpoint()
        if (self.journal_retention is not None
                and self.shipper.last_checkpoint_lsn >= 0):
            # a checkpoint at that LSN reached the peer, so records at
            # or below it are replica-durable: adoption restores the
            # checkpoint and needs only the tail.  Local compaction to
            # the same cut keeps this node's memory bounded.
            self.journal.compact(self.shipper.last_checkpoint_lsn,
                                 retain_segments=self.journal_retention)

    # -- control plane -----------------------------------------------------
    def control(self, frame: dict) -> dict:
        """Answer one control frame (from the receiver or called directly)."""
        kind = frame.get("type")
        if kind == "ping":
            return {"ok": True, "node": self.id, "serving": self.serving()}
        if kind == "map":
            state = self.map.to_state() if self.map is not None else None
            return {"ok": True, "node": self.id, "map": state}
        if kind == "set-map":
            cmap = ClusterMap.from_state(frame["map"])
            with self._lock:
                # versions are monotonic; a racing stale push is ignored
                if self.map is None or cmap.version > self.map.version:
                    self.map = cmap
                version = self.map.version
            return {"ok": True, "node": self.id, "version": version}
        if kind == "adopt":
            return self.adopt(frame["node"])
        if kind == "dump":
            return {"ok": True, "node": self.id, "journals": self.dump_journals()}
        if kind == "telemetry":
            return {"ok": True, "node": self.id,
                    "metrics": self.telemetry.registry.snapshot()}
        if kind == "shutdown":
            self.shutdown_requested.set()
            return {"ok": True, "node": self.id}
        return {"ok": False, "error": f"unknown control frame type {kind!r}"}

    def adopt(self, dead: str) -> dict:
        """Recover *dead*'s slice from shipped state; serve it here.

        Waits for the dead peer's final in-flight bytes to drain (the
        kernel delivers ``sendall``-ed data after a SIGKILL), then runs
        checkpoint restore + rid-idempotent journal replay and opens a
        fresh frontend for the slice.  Idempotent: a second adopt call
        answers with the already-serving address.
        """
        with self._lock:
            if dead in self.adopted:
                _svc, front = self.adopted[dead]
                return {"ok": True, "node": dead, "adopter": self.id,
                        "address": list(front.address), "already": True}
        if dead == self.id:
            return {"ok": False, "error": "a node cannot adopt itself"}
        slot = self.receiver.wait_drained(dead)
        if slot.checkpoint is None and not slot.records:
            return {"ok": False,
                    "error": f"nothing shipped from {dead!r}; cannot adopt"}
        ckpt = Checkpoint.from_bytes(slot.checkpoint) if slot.checkpoint else None
        journal = journal_from_records(slot.records)
        service = MarketService.recover(
            self.params, self.keypair, journal, checkpoint=ckpt,
            n_shards=self.n_shards, name=f"MA-{dead}",
            telemetry=self.telemetry,
        )
        frontend_cls = (AsyncServiceFrontend if self.async_frontend
                        else ServiceFrontend)
        frontend = frontend_cls(service, host=self.host, port=0,
                                telemetry=self.telemetry).start()
        with self._lock:
            self.adopted[dead] = (service, frontend)
        self._m_adoptions.inc()
        return {"ok": True, "node": dead, "adopter": self.id,
                "address": list(frontend.address),
                "checkpoint_lsn": ckpt.lsn if ckpt else -1,
                "records": len(slot.records)}

    def dump_journals(self) -> dict[str, list[dict]]:
        """Every served slice's journal, as record states (for the sweep)."""
        dumps = {self.id: [r.to_state() for r in self.journal.records()]}
        with self._lock:
            adopted = dict(self.adopted)
        for dead, (service, _front) in adopted.items():
            dumps[dead] = [r.to_state() for r in service.journal.records()]
        return dumps

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Graceful teardown (tests, clean shutdown — not the SIGKILL path)."""
        if self.shipper is not None:
            self.shipper.close()
        self.frontend.close()
        with self._lock:
            adopted, self.adopted = dict(self.adopted), {}
        for _dead, (_service, frontend) in adopted.items():
            frontend.close()
        self.receiver.close()

    def kill(self) -> None:
        """Abrupt in-process death: drop every socket, skip all draining.

        The closest a thread-hosted node gets to SIGKILL — anything the
        shipper already ``sendall``-ed survives in the peer's kernel
        buffer, everything else (books, journal, reply cache) is simply
        abandoned with the object.
        """
        if self.shipper is not None:
            self.shipper.close()
        self.frontend.close()
        self.receiver.close()

    def __enter__(self) -> "ClusterNode":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class LocalCluster:
    """N cluster nodes in one process — the fast, test-friendly harness.

    Builds the nodes, composes the version-0 :class:`ClusterMap` from
    their ephemeral frontend ports, pushes it everywhere, and connects
    each node's shipper to its ring successor.  ``kill`` + ``failover``
    model the crash story without subprocesses; the launcher module
    provides the real-SIGKILL equivalent.
    """

    def __init__(self, params, keypair, *, n_nodes: int = 3,
                 n_shards: int = 4, vnodes: int = DEFAULT_VNODES,
                 checkpoint_every: int = 64,
                 segment_records: int = DEFAULT_SEGMENT_RECORDS,
                 journal_retention: int | None = None,
                 async_frontend: bool = False,
                 telemetry_factory=None) -> None:
        if n_nodes < 2:
            raise ValueError("a cluster needs at least two nodes")
        self.params = params
        self.keypair = keypair
        names = tuple(f"n{i}" for i in range(n_nodes))
        self.nodes: dict[str, ClusterNode] = {}
        for i, name in enumerate(names):
            telemetry = telemetry_factory() if telemetry_factory else None
            self.nodes[name] = ClusterNode(
                name, params, keypair, n_shards=n_shards, seed=i,
                checkpoint_every=checkpoint_every,
                segment_records=segment_records,
                journal_retention=journal_retention,
                async_frontend=async_frontend, telemetry=telemetry,
            )
        self.map = ClusterMap(
            version=0, nodes=names,
            addresses={n: self.nodes[n].address for n in names},
            vnodes=vnodes,
        )
        self.dead: set[str] = set()
        for node in self.nodes.values():
            node.control({"type": "set-map", "map": self.map.to_state()})
        for name in names:
            peer = self.map.replica_peer(name)
            self.nodes[name].connect_shipper(self.nodes[peer].replica_address)

    def router(self, **kwargs):
        """A :class:`ClusterRouter` over this cluster's live map."""
        from repro.cluster.router import ClusterRouter

        kwargs.setdefault("refresh", lambda: self.map)
        return ClusterRouter(self.map, **kwargs)

    def kill(self, name: str) -> None:
        """Abruptly kill one node (no drain, no goodbye)."""
        if name in self.dead:
            return
        self.dead.add(name)
        self.nodes[name].kill()

    def failover(self, dead: str) -> str:
        """Have *dead*'s peer adopt its slice; publish the rebound map.

        Returns the adopter's node id.  The new map (version + 1) is
        pushed to every survivor, so any router refreshing off a live
        node re-routes deterministically.
        """
        adopter = self.map.replica_peer(dead)
        if adopter in self.dead:
            raise RuntimeError(
                f"designated peer {adopter!r} of {dead!r} is also dead; "
                "re-replication after failover is out of scope"
            )
        result = self.nodes[adopter].adopt(dead)
        if not result.get("ok"):
            raise RuntimeError(f"adoption of {dead!r} failed: {result}")
        self.map = self.map.rebind(dead, tuple(result["address"]))
        for name, node in self.nodes.items():
            if name not in self.dead:
                node.control({"type": "set-map", "map": self.map.to_state()})
        return adopter

    def dump_journals(self) -> dict[str, list[dict]]:
        """Per-slice journal record states across every live node."""
        dumps: dict[str, list[dict]] = {}
        for name, node in self.nodes.items():
            if name in self.dead:
                continue
            dumps.update(node.dump_journals())
        return dumps

    def telemetry_snapshots(self) -> dict[str, dict]:
        """Per-node metrics snapshots (feed for the merge tool)."""
        return {name: node.telemetry.registry.snapshot()
                for name, node in self.nodes.items() if name not in self.dead}

    def close(self) -> None:
        for name, node in self.nodes.items():
            if name not in self.dead:
                node.close()

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

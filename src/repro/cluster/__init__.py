"""Horizontally sharded multi-node market administrator.

One :class:`~repro.service.server.MarketService` scales vertically
(worker pools, batching); this package scales it *horizontally*: N
node processes each own a consistent-hash slice of the account space,
clients route by partition key, and every node ships its journal and
checkpoints to a designated peer so a survivor can adopt a dead node's
slice.  The layers:

* :mod:`repro.cluster.ring` — deterministic hash ring + versioned
  :class:`~repro.cluster.ring.ClusterMap` (failover rebinds addresses,
  never ownership);
* :mod:`repro.cluster.router` — client-side
  :class:`~repro.cluster.router.ClusterRouter` (and the thin
  :class:`~repro.cluster.router.ClusterProxy` front door) producing
  replies byte-identical to a single node's;
* :mod:`repro.cluster.replicate` — synchronous journal shipping +
  periodic checkpoints between peers;
* :mod:`repro.cluster.node` — one node's wiring, plus the in-process
  :class:`~repro.cluster.node.LocalCluster` harness;
* :mod:`repro.cluster.launcher` — subprocess launcher, bootstrap
  blobs, and the :class:`~repro.cluster.launcher.ProcessCluster`
  orchestrator (the real-SIGKILL harness).
"""

from repro.cluster.node import ClusterNode, LocalCluster
from repro.cluster.replicate import (
    JournalShipper,
    ReplicaReceiver,
    control_call,
    journal_from_records,
)
from repro.cluster.ring import DEFAULT_VNODES, ClusterMap, HashRing
from repro.cluster.router import (
    ClusterProxy,
    ClusterRouter,
    RouteError,
    StaleClusterMapError,
)

__all__ = [
    "HashRing",
    "ClusterMap",
    "DEFAULT_VNODES",
    "ClusterRouter",
    "ClusterProxy",
    "RouteError",
    "StaleClusterMapError",
    "ReplicaReceiver",
    "JournalShipper",
    "journal_from_records",
    "control_call",
    "ClusterNode",
    "LocalCluster",
]

"""Client-side request routing over the cluster map, plus a thin proxy.

:class:`ClusterRouter` is how a client speaks to the sharded cluster
as if it were one market administrator.  Every account-scoped request
carries its partition key (the account id); the router hashes it onto
the ring, dials the owning node's current address over the existing
RPW1 wire protocol (:class:`~repro.service.frontend.ServiceClient`),
and returns the node's verdict with the transport-local envelope
fields (``cid``, ``req`` — connection- and node-relative counters)
stripped.  What remains is exactly the service's verdict dict, which
is why a cluster's replies are byte-identical to the single-node
service's for the same deterministic trace (the parity suite encodes
both through the canonical codec and compares bytes).

Failure handling is two nested loops:

* **inside one node address** — :meth:`ServiceClient.call` retries
  with bounded backoff under a *stable rid*, so a lost reply is
  re-answered from the service's reply cache, never re-executed;
* **across map versions** — when an address is conclusively dead
  (retries exhausted), the router polls its ``refresh`` callback for a
  newer cluster map.  Failover never changes key ownership (the ring
  is fixed; only the dead node's address is rebound to its adopter),
  so re-routing after a version bump is deterministic: same key, same
  owning node id, new address.  If no newer map appears within the
  budget, :class:`StaleClusterMapError` tells the caller the router's
  view of the world is the problem — the runbook entry for "router
  sees stale cluster map" keys off this exception.

:class:`ClusterProxy` is the thin server-side form of the same logic:
a TCP front-end speaking the ordinary single-node wire protocol whose
handler is a router call, so unmodified clients (``run_socket_trace``,
the examples) can drive the whole cluster through one address.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any

from repro.cluster.ring import ClusterMap
from repro.net.wire import FrameDecoder, WireError, encode_frame
from repro.service.frontend import ServiceClient

__all__ = ["ClusterRouter", "ClusterProxy", "StaleClusterMapError", "RouteError"]

#: Reply keys that exist only on the wire, never in the service verdict.
_ENVELOPE_KEYS = ("cid", "req")


class RouteError(ValueError):
    """The request carries no partition key the router can hash."""


class StaleClusterMapError(RuntimeError):
    """A node is unreachable and no newer cluster map could be fetched."""

    def __init__(self, message: str, *, version: int) -> None:
        super().__init__(message)
        self.version = version


def _strip_envelope(reply: dict) -> dict:
    return {k: v for k, v in reply.items() if k not in _ENVELOPE_KEYS}


class ClusterRouter:
    """Routes requests by partition key over a versioned cluster map.

    *refresh* is the map feed: a zero-argument callable returning the
    newest :class:`ClusterMap` (or a ``to_state`` dict, or ``None`` for
    "nothing newer").  In-process harnesses pass a closure over the
    launcher's map; remote clients pass something that asks any live
    node's control port.

    Thread safety: one router may be shared across threads (the proxy
    does); each node's client is guarded by a per-node lock, so two
    threads talking to *different* nodes proceed in parallel while two
    talking to the same node serialize — the single connection per
    node is deliberate (it preserves per-sender FIFO through the
    node's dispatcher).
    """

    def __init__(self, cmap: ClusterMap, *, refresh=None,
                 timeout: float = 30.0, connect_timeout: float | None = 5.0,
                 attempts: int = 3, backoff: float = 0.05,
                 refresh_attempts: int = 25,
                 refresh_backoff: float = 0.2) -> None:
        self.map = cmap
        self.refresh = refresh
        self.timeout = timeout
        self.connect_timeout = connect_timeout
        self.attempts = attempts
        self.backoff = backoff
        self.refresh_attempts = refresh_attempts
        self.refresh_backoff = refresh_backoff
        self._clients: dict[str, ServiceClient] = {}
        self._node_locks: dict[str, threading.Lock] = {}
        self._lock = threading.Lock()
        self._next_rid = 0
        self.reroutes = 0

    # -- plumbing ----------------------------------------------------------
    def _node_lock(self, node: str) -> threading.Lock:
        with self._lock:
            if node not in self._node_locks:
                self._node_locks[node] = threading.Lock()
            return self._node_locks[node]

    def _client(self, node: str) -> ServiceClient:
        """The (cached) connection to *node*'s current address."""
        address = self.map.address_of(node)
        client = self._clients.get(node)
        if client is not None and client.address == (address[0], int(address[1])):
            return client
        if client is not None:
            client.close()
        client = ServiceClient(address, timeout=self.timeout,
                               connect_timeout=self.connect_timeout)
        self._clients[node] = client
        return client

    def _drop_client(self, node: str) -> None:
        client = self._clients.pop(node, None)
        if client is not None:
            client.close()

    def _mint_rid(self, sender: str | None) -> str:
        with self._lock:
            n = self._next_rid
            self._next_rid += 1
        return f"router:{sender or 'anon'}:{n}"

    def _refreshed_map(self, *, newer_than: int) -> ClusterMap | None:
        """Poll the refresh feed until a map newer than *newer_than*."""
        if self.refresh is None:
            return None
        delay = self.refresh_backoff
        for attempt in range(self.refresh_attempts):
            if attempt:
                time.sleep(delay)
            fetched = self.refresh()
            if isinstance(fetched, dict):
                fetched = ClusterMap.from_state(fetched)
            if fetched is not None and fetched.version > newer_than:
                return fetched
        return None

    # -- the routed request ------------------------------------------------
    def key_of(self, kind: str, payload: Any) -> str:
        """The partition key of one request (account id for all kinds)."""
        if isinstance(payload, dict) and isinstance(payload.get("aid"), str):
            return payload["aid"]
        raise RouteError(
            f"{kind} payload carries no 'aid' partition key; "
            "use fan-out helpers (audit) for keyless requests"
        )

    def request(self, kind: str, payload: Any, *, sender: str | None = None,
                rid: str | None = None, now: float = 0.0,
                key: str | None = None) -> dict:
        """Route one request to its owner; re-route across failover.

        Returns the service verdict dict (envelope fields stripped).
        The rid is minted once and pinned across every retry and every
        re-route, so a request that straddles a failover — accepted by
        the dying node, retried against the adopter — is answered from
        the adopted reply cache instead of running twice.
        """
        if key is None:
            key = self.key_of(kind, payload)
        if rid is None:
            rid = self._mint_rid(sender)
        while True:
            node = self.map.owner_of(key)
            with self._node_lock(node):
                try:
                    client = self._client(node)
                    reply = client.call(
                        kind, payload, rid=rid, now=now, sender=sender,
                        attempts=self.attempts, backoff=self.backoff,
                    )
                    return _strip_envelope(reply)
                except (OSError, WireError) as exc:
                    self._drop_client(node)
                    stale_version = self.map.version
                    cause = exc
            newer = self._refreshed_map(newer_than=stale_version)
            if newer is None:
                raise StaleClusterMapError(
                    f"node {node!r} at {self.map.address_of(node)} is "
                    f"unreachable and no cluster map newer than version "
                    f"{stale_version} was published", version=stale_version,
                ) from cause
            self.map = newer
            self.reroutes += 1

    # -- fan-out helpers ---------------------------------------------------
    def audit(self) -> dict:
        """Cluster-wide audit: every node's verdict, merged.

        ``clean`` only when every node is clean; findings come back
        prefixed with the owning node id so an operator can tell which
        slice is sick.
        """
        findings: list[str] = []
        clean = True
        for node in self.map.nodes:
            reply = self.request("audit", {}, key=f"@{node}",
                                 rid=self._mint_rid(f"audit:{node}"))
            if reply.get("status") != "OK":
                clean = False
                findings.append(f"{node}: audit failed: {reply}")
                continue
            if not reply.get("clean", False):
                clean = False
            findings.extend(f"{node}: {f}" for f in reply.get("findings", ()))
        return {"status": "OK", "clean": clean, "findings": findings}

    def close(self) -> None:
        with self._lock:
            clients, self._clients = dict(self._clients), {}
        for client in clients.values():
            client.close()

    def __enter__(self) -> "ClusterRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ClusterProxy:
    """A single-address TCP front door whose backend is the router.

    Speaks the exact single-node wire protocol — request frames with
    ``cid``/``kind``/``payload``/``sender``/``rid``/``now`` — so any
    existing client or load generator can point at the proxy and drive
    the whole cluster.  One thread per connection, requests answered in
    order per connection (the thin mode: no cross-connection batching —
    the per-node dispatchers behind it still batch across everything
    the proxy forwards).
    """

    def __init__(self, router: ClusterRouter, *, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.router = router
        self._listener = socket.create_server((host, port))
        self.address: tuple[str, int] = self._listener.getsockname()[:2]
        self._running = True
        #: requests *handled*, not necessarily *delivered*: incremented
        #: once _answer returns, before the reply is written to the
        #: socket (so a client holding a reply always observes the
        #: count).  A send that then fails still counts — the OSError
        #: tears the connection down, not the tally.
        self.served = 0
        accept = threading.Thread(target=self._accept_loop,
                                  name="proxy-accept", daemon=True)
        accept.start()

    def close(self) -> None:
        self._running = False
        try:
            self._listener.close()
        except OSError:
            pass

    def __enter__(self) -> "ClusterProxy":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _accept_loop(self) -> None:
        while self._running:
            try:
                sock, _peer = self._listener.accept()
            except OSError:
                return
            thread = threading.Thread(target=self._serve, args=(sock,),
                                      name="proxy-conn", daemon=True)
            thread.start()

    def _serve(self, sock: socket.socket) -> None:
        decoder = FrameDecoder()
        try:
            while self._running:
                data = sock.recv(65536)
                if not data:
                    return
                decoder.feed(data)
                for request in decoder.frames():
                    reply = self._answer(request)
                    # count before sending: a client that has the reply
                    # in hand must observe the request as served
                    self.served += 1
                    sock.sendall(encode_frame(reply))
        except (OSError, WireError):
            return
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def _answer(self, request: Any) -> dict:
        if not isinstance(request, dict) or not isinstance(request.get("kind"), str):
            return {"cid": request.get("cid") if isinstance(request, dict) else None,
                    "status": "ERROR", "error": "request must be a dict with a 'kind'"}
        cid = request.get("cid")
        try:
            if request["kind"] == "audit":
                verdict = self.router.audit()
            else:
                verdict = self.router.request(
                    request["kind"], request.get("payload"),
                    sender=request.get("sender"), rid=request.get("rid"),
                    now=float(request.get("now", 0.0)),
                )
        except (RouteError, StaleClusterMapError, WireError, OSError) as exc:
            return {"cid": cid, "status": "ERROR", "error": str(exc)}
        return {"cid": cid, **verdict}

"""Combined adversary: timing and denomination signals together.

The paper treats the denomination attack (Section IV-B) and the
deposit-timing threat (Section IV-A8's random waits) separately; a real
curious MA holds *both* signals at once — it relayed every payment (so
it knows when each pseudonym was paid, and which job each pseudonym
registered for), and it books every deposit (account, amount, time).

:func:`combined_experiment` measures identification under all four
defence combinations::

                       │ deposits immediate │ deposits randomized
    ───────────────────┼────────────────────┼────────────────────
    no cash break      │  broken (both)     │  denomination alone
    unitary cash break │  timing alone      │  protected

The combined adversary fuses signals: the timing correlator proposes an
account→pseudonym match (hence a concrete job, since the MA saw the
pseudonymous labor registration), and the denomination candidates
either corroborate or veto it.  The experiment's point is the
defence-in-depth claim: *either* defence alone leaves a working attack;
the mechanism needs both.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.attacks.denomination import candidate_jobs
from repro.attacks.timing import DeliveryEvent, TimedDeposit, TimingAdversary
from repro.core.cashbreak import BREAK_FN_BY_NAME

__all__ = ["CombinedResult", "combined_experiment"]


@dataclass(frozen=True)
class CombinedResult:
    """Identification rates of each adversary variant."""

    timing_only: float
    denomination_only: float
    combined: float
    trials: int
    participants: int


def _one_trial(
    rng: random.Random,
    *,
    level: int,
    participants: int,
    break_strategy: str | None,
    random_waits: bool,
    delivery_gap: float = 1.0,
):
    """Simulate one market day; return the MA's full observation."""
    jobs = {f"job-{i}": rng.randint(1, 1 << level) for i in range(participants)}
    job_of_pseudonym = {i: f"job-{i}" for i in range(participants)}

    deliveries, deposits = [], []
    deposit_coins: dict[int, list[int]] = {}
    t = 0.0
    for i in range(participants):
        t += rng.expovariate(1.0 / delivery_gap)
        deliveries.append(DeliveryEvent(time=t, pseudonym=i))
        payment = jobs[f"job-{i}"]
        if break_strategy is None:
            coins = [payment]
        else:
            coins = [d for d in BREAK_FN_BY_NAME[break_strategy](payment, level) if d]
        deposit_coins[i] = coins
        wait = (rng.expovariate(1.0 / (5.0 * delivery_gap))
                if random_waits else rng.uniform(0, 1e-6))
        deposits.append(TimedDeposit(time=t + wait, aid=i))
    return jobs, job_of_pseudonym, deliveries, deposits, deposit_coins


def combined_experiment(
    *,
    level: int,
    participants: int,
    trials: int,
    rng: random.Random,
    break_strategy: str | None = "unitary",
    random_waits: bool = True,
) -> CombinedResult:
    """Measure timing-only, denomination-only and fused identification.

    Each participant's true job is ``job-<i>``; an adversary variant
    scores when it names that job for account *i*.
    """
    adversary = TimingAdversary()
    hits_t = hits_d = hits_c = 0
    for _ in range(trials):
        jobs, job_of_pseud, deliveries, deposits, coins = _one_trial(
            rng, level=level, participants=participants,
            break_strategy=break_strategy, random_waits=random_waits,
        )
        timing_guess = adversary.link(deliveries, deposits)
        for aid in range(participants):
            true_job = f"job-{aid}"
            # timing-only: guessed pseudonym's registered job
            t_job = job_of_pseud.get(timing_guess.get(aid, -1))
            hits_t += t_job == true_job

            # denomination-only: unique candidate or a uniform pick
            denom_candidates = candidate_jobs(jobs, coins[aid])
            if len(denom_candidates) == 1:
                d_job = next(iter(denom_candidates))
            elif denom_candidates:
                d_job = rng.choice(sorted(denom_candidates))
            else:
                d_job = None
            hits_d += d_job == true_job

            # combined: keep the timing guess when the denomination
            # evidence corroborates it, otherwise fall back to the
            # denomination pick
            if t_job is not None and (not denom_candidates or t_job in denom_candidates):
                c_job = t_job
            else:
                c_job = d_job
            hits_c += c_job == true_job

    n = trials * participants
    return CombinedResult(
        timing_only=hits_t / n,
        denomination_only=hits_d / n,
        combined=hits_c / n,
        trials=trials,
        participants=participants,
    )

"""Adversary observation models: what each curious party actually sees.

The paper's threat model (Section III-B) makes the MA and the JOs
honest-but-curious-to-malicious insiders.  These classes materialize
each adversary's *view* from the simulation artefacts so the privacy
experiments can only use information the real adversary would hold —
a guard against accidentally "cheating" attacks in the analysis code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.transport import Envelope, Transport

__all__ = ["CuriousMAView", "CuriousJOView", "NetworkEavesdropperView"]


@dataclass
class CuriousMAView:
    """Everything a curious MA can record.

    The MA relays *all* traffic and runs the bank, so it sees: the
    bulletin board, every envelope's metadata and any plaintext payload,
    the withdrawal ledger (account, value) and the deposit ledger
    (account, denominations, times).  It does **not** see inside
    RSA ciphertexts addressed to residents.
    """

    published_jobs: dict[str, int] = field(default_factory=dict)
    withdrawal_ledger: list[tuple[str, int]] = field(default_factory=list)
    deposit_ledger: list[tuple[str, int, float]] = field(default_factory=list)
    envelopes: list[Envelope] = field(default_factory=list)

    def observe_job(self, job_id: str, payment: int) -> None:
        self.published_jobs[job_id] = payment

    def observe_withdrawal(self, aid: str, value: int) -> None:
        self.withdrawal_ledger.append((aid, value))

    def observe_deposit(self, aid: str, amount: int, at_time: float) -> None:
        self.deposit_ledger.append((aid, amount, at_time))

    def attach(self, transport: Transport) -> None:
        transport.add_observer(self.envelopes.append)

    def deposits_of(self, aid: str) -> list[int]:
        """The denomination stream the MA correlates to one account."""
        return [amount for (a, amount, _) in self.deposit_ledger if a == aid]


@dataclass
class CuriousJOView:
    """What a curious job owner records about its own job.

    The JO sees the pseudonyms that registered for its job, the blinded
    payment requests it signed, and the data reports it received.  The
    blindness of the payment signature is what stands between this view
    and transaction linkage.
    """

    labor_pseudonyms: list[bytes] = field(default_factory=list)
    blinded_requests: list[int] = field(default_factory=list)
    received_reports: list[bytes] = field(default_factory=list)

    def observe_labor(self, pseudonym: bytes) -> None:
        self.labor_pseudonyms.append(pseudonym)

    def observe_blinded_request(self, blinded: int) -> None:
        self.blinded_requests.append(blinded)

    def observe_report(self, payload: bytes) -> None:
        self.received_reports.append(payload)


@dataclass
class NetworkEavesdropperView:
    """A network-level observer outside the mix: sizes and counts only."""

    message_sizes: list[int] = field(default_factory=list)

    def attach(self, transport: Transport) -> None:
        transport.add_observer(lambda env: self.message_sizes.append(env.wire_bytes))

    def size_histogram(self) -> dict[int, int]:
        hist: dict[int, int] = {}
        for size in self.message_sizes:
            hist[size] = hist.get(size, 0) + 1
        return hist

"""Privacy-attack simulations: adversary views, the denomination attack,
and linkage experiments (paper Sections III-B2 and IV-B)."""

from repro.attacks.adversary import CuriousJOView, CuriousMAView, NetworkEavesdropperView
from repro.attacks.combined import CombinedResult, combined_experiment
from repro.attacks.denomination import (
    DenominationAttackResult,
    candidate_jobs,
    reachable_sums,
    run_denomination_attack,
)
from repro.attacks.linkage import (
    LinkageSummary,
    denomination_experiment,
    withdrawal_unlinkability_experiment,
)
from repro.attacks.longitudinal import LongitudinalResult, longitudinal_experiment
from repro.attacks.malicious import (
    MisbehaviourOutcome,
    jo_reuses_node,
    jo_ships_garbage,
    jo_underpays,
    ma_peeks_payment,
    sp_replays_token,
)
from repro.attacks.timing import TimingAdversary, timing_experiment

__all__ = [
    "CombinedResult",
    "combined_experiment",
    "CuriousMAView",
    "CuriousJOView",
    "NetworkEavesdropperView",
    "DenominationAttackResult",
    "candidate_jobs",
    "reachable_sums",
    "run_denomination_attack",
    "LinkageSummary",
    "denomination_experiment",
    "withdrawal_unlinkability_experiment",
    "LongitudinalResult",
    "longitudinal_experiment",
    "TimingAdversary",
    "timing_experiment",
    "MisbehaviourOutcome",
    "jo_underpays",
    "jo_reuses_node",
    "jo_ships_garbage",
    "sp_replays_token",
    "ma_peeks_payment",
]

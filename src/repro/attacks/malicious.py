"""Malicious-party behaviours and the checks that catch them.

The paper's trust model allows any insider to turn adversarial.  Each
function here stages one concrete misbehaviour against the honest
counter-party code and returns what happened, so the test suite (and
curious users) can see exactly which check of the mechanism fires:

* :func:`jo_underpays` — the JO advertises *w* but ships fewer real
  coins, padding the difference with extra fakes.  Caught by the SP's
  coin count check before it confirms (paper: "SP check whether there
  are w valid e-coin").
* :func:`jo_reuses_node` — the JO pays two SPs with the same tree node.
  Both payments *verify* (the coins are individually valid); the bank's
  serial expansion catches the second deposit.
* :func:`jo_ships_garbage` — the payment is all fakes.  The SP finds
  zero valid coins and refuses to release its data.
* :func:`sp_replays_token` — the SP deposits the same coin twice.
* :func:`ma_peeks_payment` — the MA tries to open a designated-receiver
  payment it relays.  Decryption without the pseudonym key fails, so
  all the MA can act on is the ciphertext length (which the fake-coin
  padding flattens).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto import rsa
from repro.ecash.dec import DoubleSpendError
from repro.ecash.fake import pad_payment
from repro.ecash.spend import create_spend, verify_spend
from repro.net.codec import encode

__all__ = [
    "MisbehaviourOutcome",
    "jo_underpays",
    "jo_reuses_node",
    "jo_ships_garbage",
    "sp_replays_token",
    "ma_peeks_payment",
    "pbs_sp_mints_unsigned_coin",
    "pbs_sp_steals_coin",
    "pbs_jo_swaps_serial",
]


@dataclass(frozen=True)
class MisbehaviourOutcome:
    """What the staged attack achieved and which defence fired."""

    attack: str
    succeeded: bool
    caught_by: str
    detail: str = ""


def _withdraw(session, aid: str):
    """Helper: give an account a certified coin outside run_job."""
    from repro.ecash.dec import begin_withdrawal, finish_withdrawal

    secret, request = begin_withdrawal(session.params, session.rng)
    signature = session.ma.bank.issue(aid, request)
    return finish_withdrawal(session.params, session.ma.bank.public_key, secret, signature)


def jo_underpays(session, advertised: int, shipped: int) -> MisbehaviourOutcome:
    """JO advertises *advertised* credits, ships only *shipped*."""
    if shipped >= advertised:
        raise ValueError("underpayment requires shipped < advertised")
    params = session.params
    session.ma.bank.open_account("cheat-jo", 1 << params.tree_level)
    coin = _withdraw(session, "cheat-jo")
    wallet = coin.wallet()
    sp = session.new_participant("victim-sp")
    rpk_sp = sp.make_labor_identity(session.counter)
    jo_key = rsa.generate_keypair(512, session.rng)

    blobs = []
    remaining = shipped
    while remaining:
        denom = 1 << (remaining.bit_length() - 1)
        node = wallet.allocate(denom)
        token = create_spend(
            params, session.ma.bank.public_key, coin.secret, coin.signature, node, session.rng
        )
        blobs.append(encode(token))
        remaining -= denom
    padded = pad_payment(blobs, slots=params.tree_level + 2, rng=session.rng)
    sig = rsa.sign(jo_key, rpk_sp.fingerprint())
    ciphertext = rsa.encrypt(rpk_sp, encode({"coins": padded, "sig": sig}), session.rng)

    bundle = sp.open_payment(ciphertext, jo_key.public, session.ma.bank.public_key,
                             session.counter)
    received = bundle.total_value(params.tree_level)
    return MisbehaviourOutcome(
        attack="jo_underpays",
        succeeded=received >= advertised,
        caught_by="SP coin-count check before confirming",
        detail=f"SP counted {received} valid credits against advertised {advertised}",
    )


def jo_reuses_node(session) -> MisbehaviourOutcome:
    """JO pays two SPs with spends of the same node."""
    params = session.params
    session.ma.bank.open_account("reuse-jo", 1 << params.tree_level)
    session.ma.bank.open_account("sp-a", 0)
    session.ma.bank.open_account("sp-b", 0)
    coin = _withdraw(session, "reuse-jo")
    node = coin.wallet().allocate(1)
    t1 = create_spend(params, session.ma.bank.public_key, coin.secret, coin.signature,
                      node, session.rng)
    t2 = create_spend(params, session.ma.bank.public_key, coin.secret, coin.signature,
                      node, session.rng)
    # both tokens verify individually — the SPs accept them
    assert verify_spend(params, session.ma.bank.public_key, t1)
    assert verify_spend(params, session.ma.bank.public_key, t2)
    session.ma.bank.deposit("sp-a", t1)
    try:
        session.ma.bank.deposit("sp-b", t2)
        return MisbehaviourOutcome(
            attack="jo_reuses_node", succeeded=True,
            caught_by="nothing — DEFENCE FAILED",
        )
    except DoubleSpendError as exc:
        return MisbehaviourOutcome(
            attack="jo_reuses_node",
            succeeded=False,
            caught_by="bank leaf-serial expansion at second deposit",
            detail=str(exc),
        )


def jo_ships_garbage(session, slots: int = 6) -> MisbehaviourOutcome:
    """JO sends a payment made entirely of fake coins."""
    sp = session.new_participant("garbage-victim")
    rpk_sp = sp.make_labor_identity(session.counter)
    jo_key = rsa.generate_keypair(512, session.rng)
    padded = pad_payment([], slots=slots, rng=session.rng, reference_length=256)
    sig = rsa.sign(jo_key, rpk_sp.fingerprint())
    ciphertext = rsa.encrypt(rpk_sp, encode({"coins": padded, "sig": sig}), session.rng)
    bundle = sp.open_payment(ciphertext, jo_key.public, session.ma.bank.public_key,
                             session.counter)
    return MisbehaviourOutcome(
        attack="jo_ships_garbage",
        succeeded=bool(bundle.tokens),
        caught_by="SP verification: zero valid coins, data withheld",
        detail=f"{bundle.fake_count} fakes identified, {len(bundle.tokens)} coins",
    )


def sp_replays_token(session) -> MisbehaviourOutcome:
    """SP deposits the identical coin twice."""
    params = session.params
    session.ma.bank.open_account("replay-jo", 1 << params.tree_level)
    session.ma.bank.open_account("replay-sp", 0)
    coin = _withdraw(session, "replay-jo")
    node = coin.wallet().allocate(2)
    token = create_spend(params, session.ma.bank.public_key, coin.secret, coin.signature,
                         node, session.rng)
    session.ma.bank.deposit("replay-sp", token)
    try:
        session.ma.bank.deposit("replay-sp", token)
        return MisbehaviourOutcome(
            attack="sp_replays_token", succeeded=True,
            caught_by="nothing — DEFENCE FAILED",
        )
    except DoubleSpendError as exc:
        return MisbehaviourOutcome(
            attack="sp_replays_token",
            succeeded=False,
            caught_by="bank serial store (same serials, same account)",
            detail=str(exc),
        )


def ma_peeks_payment(session, rng: random.Random) -> MisbehaviourOutcome:
    """The MA tries to open a relayed designated-receiver payment."""
    params = session.params
    session.ma.bank.open_account("peek-jo", 1 << params.tree_level)
    coin = _withdraw(session, "peek-jo")
    node = coin.wallet().allocate(1)
    token = create_spend(params, session.ma.bank.public_key, coin.secret, coin.signature,
                         node, session.rng)
    sp_key = rsa.generate_keypair(512, rng)
    ciphertext = rsa.encrypt(
        sp_key.public, encode({"coins": [encode(token)], "sig": 0}), rng
    )
    # the MA holds the ciphertext but no pseudonym private key; its only
    # decryption oracle is a key it controls
    ma_key = rsa.generate_keypair(512, rng)
    try:
        rsa.decrypt(ma_key, ciphertext)
        opened = True
    except ValueError:
        opened = False
    return MisbehaviourOutcome(
        attack="ma_peeks_payment",
        succeeded=opened,
        caught_by="designated-receiver encryption (integrity tag mismatch)",
        detail=f"ciphertext length visible: {len(ciphertext)} bytes",
    )


# ---------------------------------------------------------------------------
# PPMSpbs misbehaviours (Section V's lighter trust surface)
# ---------------------------------------------------------------------------

def pbs_sp_mints_unsigned_coin(pbs_session, rng: random.Random) -> MisbehaviourOutcome:
    """An SP fabricates a 'coin' without the JO ever signing."""
    from repro.crypto.partial_blind import PartialBlindSignature

    jo = pbs_session.new_job_owner(funds=2)
    sp = pbs_session.new_participant()
    forged = PartialBlindSignature(
        value=rng.randrange(2, jo.account_pub.n),
        counter=0,
        common_info=b"forged-serial",
    )
    try:
        pbs_session.ma.handle_deposit(
            forged,
            (sp.account_pub.n, sp.account_pub.e),
            (jo.account_pub.n, jo.account_pub.e),
        )
        return MisbehaviourOutcome(
            attack="pbs_sp_mints_unsigned_coin", succeeded=True,
            caught_by="nothing — DEFENCE FAILED",
        )
    except ValueError as exc:
        return MisbehaviourOutcome(
            attack="pbs_sp_mints_unsigned_coin",
            succeeded=False,
            caught_by="partially blind signature verification at deposit",
            detail=str(exc),
        )


def pbs_sp_steals_coin(pbs_session) -> MisbehaviourOutcome:
    """A thief deposits an honest SP's coin into its own account.

    The coin binds the payee's key fingerprint inside the signed
    message, so re-targeting it must fail verification.
    """
    jo = pbs_session.new_job_owner(funds=2)
    victim = pbs_session.new_participant()
    thief = pbs_session.new_participant()
    (receipt,) = pbs_session.run_job(jo, [victim], deposit=False)
    try:
        pbs_session.ma.handle_deposit(
            receipt.signature,
            (thief.account_pub.n, thief.account_pub.e),
            receipt.jo_account_key,
        )
        return MisbehaviourOutcome(
            attack="pbs_sp_steals_coin", succeeded=True,
            caught_by="nothing — DEFENCE FAILED",
        )
    except ValueError as exc:
        return MisbehaviourOutcome(
            attack="pbs_sp_steals_coin",
            succeeded=False,
            caught_by="payee key bound inside the signed message",
            detail=str(exc),
        )


def pbs_jo_swaps_serial(pbs_session, rng: random.Random) -> MisbehaviourOutcome:
    """A JO signs under a different serial than the SP agreed to.

    The SP's unblinding verification catches the substitution before it
    confirms — the JO gains nothing and loses the data.
    """
    from repro.crypto.partial_blind import PartialBlindRequester, PartialBlindSigner

    jo = pbs_session.new_job_owner(funds=2)
    sp = pbs_session.new_participant()
    signer = PartialBlindSigner(jo.account_key)
    requester = PartialBlindRequester(jo.account_pub, rng)
    blinded = requester.blind(sp.account_pub.fingerprint(), b"agreed-serial")
    blind_sig, ctr = signer.sign_blinded(blinded, b"SWAPPED-serial")
    try:
        requester.unblind(blind_sig, ctr)
        return MisbehaviourOutcome(
            attack="pbs_jo_swaps_serial", succeeded=True,
            caught_by="nothing — DEFENCE FAILED",
        )
    except ValueError as exc:
        return MisbehaviourOutcome(
            attack="pbs_jo_swaps_serial",
            succeeded=False,
            caught_by="SP verification at unblinding (Section V step 5)",
            detail=str(exc),
        )

"""Linkage-privacy experiments: quantify what each adversary can learn.

Two experiment harnesses, matching the privacy analysis of Sections
IV-B and V-B:

* :func:`denomination_experiment` — the MA's job-linkage inference
  against PPMSdec deposits, sweeping the cash-break strategy.  Shows
  the anonymity-set growth from ``none`` (whole payment as one coin —
  the strawman the paper's attack defeats) through ``pcba``/``epcba``
  to ``unitary``.
* :func:`withdrawal_unlinkability_experiment` — the MA's attempt to
  link a deposit back to the withdrawal that funded it using
  *everything deterministic it sees* (coin serials).  With blind
  issuance the serial distributions are independent of the withdrawal,
  so the adversary's best guess is chance; the experiment measures the
  actual guess rate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.attacks.denomination import (
    DenominationAttackResult,
    run_denomination_attack,
)
from repro.core.cashbreak import BREAK_FN_BY_NAME

__all__ = [
    "LinkageSummary",
    "denomination_experiment",
    "denomination_experiment_grid",
    "withdrawal_unlinkability_experiment",
]


@dataclass(frozen=True)
class LinkageSummary:
    """Aggregate outcome over many attacked SPs."""

    strategy: str
    trials: int
    identified: int
    mean_anonymity_set: float

    @property
    def identification_rate(self) -> float:
        return self.identified / self.trials if self.trials else 0.0


def denomination_experiment(
    strategy: str,
    *,
    level: int,
    n_jobs: int,
    trials: int,
    rng: random.Random,
    deposits_visible: str = "all",
) -> LinkageSummary:
    """Monte-Carlo denomination attack under one break *strategy*.

    Each trial publishes *n_jobs* jobs with i.i.d. uniform payments in
    ``[1, 2^level]``, picks one as the SP's true job, breaks its payment
    with *strategy* (``"none"`` = single coin of the exact value) and
    lets the MA attack the resulting deposit multiset.

    ``deposits_visible`` controls how much of the stream the MA has
    correlated to one account: ``"all"`` (worst case for the SP) or
    ``"half"`` (the SP interleaves accounts / waits out the window).
    """
    if strategy == "none":
        break_fn = lambda w, lvl: [w]
    else:
        break_fn = BREAK_FN_BY_NAME[strategy]
    identified = 0
    anonymity_total = 0
    for _ in range(trials):
        jobs = {f"job-{i}": rng.randint(1, 1 << level) for i in range(n_jobs)}
        true_job = rng.choice(sorted(jobs))
        coins = [d for d in break_fn(jobs[true_job], level) if d > 0]
        if deposits_visible == "half":
            rng.shuffle(coins)
            coins = coins[: max(1, len(coins) // 2)]
        elif deposits_visible != "all":
            raise ValueError("deposits_visible must be 'all' or 'half'")
        result: DenominationAttackResult = run_denomination_attack(jobs, true_job, coins)
        if deposits_visible == "all" and not result.true_job_covered:
            raise AssertionError("complete deposit stream must cover the true job")
        if result.uniquely_identified:
            identified += 1
        anonymity_total += result.anonymity_set_size
    return LinkageSummary(
        strategy=strategy,
        trials=trials,
        identified=identified,
        mean_anonymity_set=anonymity_total / trials if trials else 0.0,
    )


def withdrawal_unlinkability_experiment(
    params,
    bank,
    *,
    n_coins: int,
    rng: random.Random,
) -> float:
    """Measure the MA's deposit→withdrawal linking success.

    *n_coins* accounts each withdraw one coin and spend its root; the
    curious MA, holding the full withdrawal transcripts (commitments)
    and the deposit tokens, guesses which withdrawal funded each
    deposit by the only deterministic handle available — testing each
    withdrawal commitment against the deposited coin.  Blind issuance
    plus commitment hiding makes every test uninformative, so the
    returned rate should hover around chance (``1 / n_coins``).
    """
    from repro.ecash.dec import begin_withdrawal, finish_withdrawal
    from repro.ecash.spend import create_spend
    from repro.ecash.tree import NodeId

    withdrawals = []  # (index, commitment seen by the bank)
    tokens = []
    for i in range(n_coins):
        aid = f"acct-{i}"
        bank.open_account(aid, 1 << params.tree_level)
        secret, request = begin_withdrawal(params, rng)
        signature = bank.issue(aid, request)
        coin = finish_withdrawal(params, bank.public_key, secret, signature)
        withdrawals.append((i, request.commitment))
        tokens.append(
            create_spend(params, bank.public_key, coin.secret, coin.signature, NodeId(0, 0), rng)
        )

    # The MA's best deterministic strategy: compare the (randomized)
    # spend-token values against each withdrawal commitment.  Since CL
    # randomization and fresh Pedersen commitments erase all shared
    # state, this collapses to matching on nothing — i.e. guessing.
    backend = params.backend
    correct = 0
    order = list(range(n_coins))
    rng.shuffle(order)  # deposits arrive in an order unknown to the MA
    for pos, coin_idx in enumerate(order):
        token = tokens[coin_idx]
        matches = [
            i
            for (i, commitment) in withdrawals
            if backend.element_encode(commitment) == backend.element_encode(token.sig_a)
            or commitment == token.commitment_s
        ]
        guess = matches[0] if len(matches) == 1 else rng.randrange(n_coins)
        if guess == coin_idx:
            correct += 1
    return correct / n_coins


def _denomination_grid_worker(point):
    """Module-level worker for :func:`denomination_experiment_grid`."""
    strategy, level, n_jobs, trials = point.params
    rng = random.Random(point.seed)
    return denomination_experiment(
        strategy, level=level, n_jobs=n_jobs, trials=trials, rng=rng
    )


def denomination_experiment_grid(
    grid: list[tuple[str, int, int, int]],
    *,
    seed: int = 0,
    processes: int | None = None,
) -> list[LinkageSummary]:
    """Run many denomination experiments, fanning out over processes.

    *grid* entries are ``(strategy, level, n_jobs, trials)``.  Results
    come back in grid order with deterministic per-point seeds, so a
    parallel run equals a sequential one (see
    :mod:`repro.metrics.parallel`).
    """
    from repro.metrics.parallel import sweep

    return sweep(_denomination_grid_worker, grid, seed=seed, processes=processes)

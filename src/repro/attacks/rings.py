"""Double-spend rings: colluding parties spending one coin node twice.

Paper Section IV-A8 makes identity revelation the deterrent against
double spending in PPMSdec: leaf serials are deterministic in the coin
secret, so two spend tokens covering the same leaf *prove* the fraud
and the bank's evidence names the account that deposited first.

This module mints the adversarial material for that story: a ring
leader withdraws one divisible coin legitimately (the blind withdrawal
protocol — the bank cannot refuse), then fences *k* spend tokens of
the **same wallet node** to k accomplice accounts.  All k tokens
verify individually (the ZK bundle is valid — the coin is real); only
the bank's serial store can catch the collision, and at most one
deposit may ever be admitted.  The campaign simulator asserts exactly
that, plus the identity revelation carried in the rejection evidence.

The helpers here are thin, deliberately: the ring uses the *honest*
withdrawal and spend primitives (that is the point of the attack — no
protocol step is violated until the serial store says so).
:data:`InsufficientFunds` is re-exported so higher layers that juggle
wallets through this toolkit can catch allocation failures without
depending on the ecash layer directly.
"""

from __future__ import annotations

import random

from repro.ecash.dec import Coin, begin_withdrawal, finish_withdrawal
from repro.ecash.spend import DECParams, SpendToken, create_spend
from repro.ecash.wallet import InsufficientFunds

__all__ = [
    "InsufficientFunds",
    "begin_ring_withdrawal",
    "finish_ring_withdrawal",
    "conflicting_spends",
    "evidence_prior_account",
]


def begin_ring_withdrawal(params: DECParams, rng: random.Random):
    """Start the leader's (entirely honest) blind withdrawal.

    Returns ``(secret, request)``; the request goes to the bank — in
    the campaign, through the real service's ``withdraw`` endpoint —
    and the signature comes back blind, so the bank cannot distinguish
    a ring leader from any other resident.
    """
    return begin_withdrawal(params, rng)


def finish_ring_withdrawal(params: DECParams, bank_pk, secret, signature) -> Coin:
    """Unblind the signature into the coin the ring will abuse."""
    return finish_withdrawal(params, bank_pk, secret, signature)


def conflicting_spends(
    params: DECParams,
    bank_pk,
    coin: Coin,
    *,
    denomination: int,
    count: int,
    rng: random.Random,
) -> list[SpendToken]:
    """Mint *count* spend tokens over the **same** node of *coin*.

    Each token is an independently valid spend (fresh ZK randomness,
    verifies against the bank key); every pair shares the node's leaf
    serials, so whichever deposits first wins and the rest must be
    rejected with double-spend evidence naming the winner.
    """
    if count < 1:
        raise ValueError("a ring needs at least one spend")
    node = coin.wallet().allocate(denomination)
    return [
        create_spend(params, bank_pk, coin.secret, coin.signature, node, rng)
        for _ in range(count)
    ]


def evidence_prior_account(body: dict) -> str | None:
    """The account the rejection evidence identifies as depositing first.

    *body* is a ``REJECTED`` reply body from the market service; the
    evidence triple's ``prior`` record leads with the account id — the
    identity-revelation half of the paper's double-spend story.
    Returns ``None`` when the body carries no usable evidence.
    """
    evidence = body.get("evidence")
    if not isinstance(evidence, dict):
        return None
    prior = evidence.get("prior")
    if not isinstance(prior, (list, tuple)) or not prior:
        return None
    return prior[0]

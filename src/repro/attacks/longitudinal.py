"""Longitudinal denomination analysis: does participation help or hurt?

The paper argues (Section IV-B1) that "as the number of jobs that the
SP participates in become greater, the possible sum of previous
deposits could cover all element in [1, 2^L] which makes the
denomination attack completely fail."  That is true for a *single-shot*
adversary staring at one undifferentiated pile of deposits.  But a
curious MA watches the market for a long time and can segment deposits
by epoch (day, week): each epoch yields its own candidate-job set, and
a recurring participant can be attacked by *intersecting evidence
across epochs* — e.g. matching each epoch's deposit multiset against
the jobs *published that epoch*.

:func:`longitudinal_experiment` measures both effects on the same
simulated history:

* **pooled** adversary — the paper's model: all deposits in one pile,
  candidates = jobs (from any epoch) whose payment is a reachable sum.
  Its identification rate collapses as epochs accumulate, exactly as
  the paper predicts.
* **segmenting** adversary — per-epoch candidate sets from per-epoch
  deposits and that epoch's published jobs; an SP is identified if
  *any* epoch pins it uniquely.  Its rate *grows* with epochs: every
  participation is another chance to be pinned.

The takeaway the paper misses: accumulation only protects against an
adversary that cannot segment time — which the deposit timestamps the
bank necessarily holds make unrealistic.  The mitigations are exactly
the paper's other tools (finer breaks, random waits spreading deposits
across epoch boundaries).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.attacks.denomination import candidate_jobs
from repro.core.cashbreak import BREAK_FN_BY_NAME

__all__ = ["LongitudinalResult", "longitudinal_experiment"]


@dataclass(frozen=True)
class LongitudinalResult:
    """Identification rates of the pooled vs segmenting adversary."""

    epochs: int
    pooled_rate: float
    segmenting_rate: float
    trials: int


def longitudinal_experiment(
    *,
    level: int,
    epochs: int,
    jobs_per_epoch: int,
    trials: int,
    rng: random.Random,
    break_strategy: str = "pcba",
) -> LongitudinalResult:
    """Attack one recurring SP over *epochs* market epochs.

    Per epoch, *jobs_per_epoch* jobs are published with i.i.d. uniform
    payments; the SP works exactly one (uniformly chosen) job per epoch
    and deposits its broken payment within that epoch.
    """
    break_fn = BREAK_FN_BY_NAME[break_strategy]
    pooled_hits = 0
    segmenting_hits = 0
    for _ in range(trials):
        epoch_jobs: list[dict[str, int]] = []
        epoch_coins: list[list[int]] = []
        true_jobs: list[str] = []
        for e in range(epochs):
            jobs = {f"e{e}-job-{i}": rng.randint(1, 1 << level)
                    for i in range(jobs_per_epoch)}
            epoch_jobs.append(jobs)
            chosen = rng.choice(sorted(jobs))
            true_jobs.append(chosen)
            epoch_coins.append([d for d in break_fn(jobs[chosen], level) if d])

        # pooled adversary: one pile of coins vs the union of all jobs
        all_jobs = {k: v for jobs in epoch_jobs for k, v in jobs.items()}
        all_coins = [c for coins in epoch_coins for c in coins]
        pooled_candidates = candidate_jobs(all_jobs, all_coins)
        # it "identifies" the SP if the candidate set is exactly the
        # SP's true job set (the strongest pooled claim possible)
        if pooled_candidates == set(true_jobs):
            pooled_hits += 1

        # segmenting adversary: per-epoch candidates; a unique hit in
        # any epoch pins the SP to a job (hence to the job's sensitive
        # subject matter) at least once
        pinned = False
        for jobs, coins, true_job in zip(epoch_jobs, epoch_coins, true_jobs):
            candidates = candidate_jobs(jobs, coins)
            if candidates == {true_job}:
                pinned = True
                break
        if pinned:
            segmenting_hits += 1

    return LongitudinalResult(
        epochs=epochs,
        pooled_rate=pooled_hits / trials if trials else 0.0,
        segmenting_rate=segmenting_hits / trials if trials else 0.0,
        trials=trials,
    )

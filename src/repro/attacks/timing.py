"""Timing-correlation attack on deposits — why the random waits exist.

PPMSdec's money-deposit step prescribes: "SP waits for a random period
of time and then starts to deposit all w e-coins one by one ... waits a
random period of time between two consecutive deposits" (Section
IV-A8).  The threat being countered: the MA knows *when* it delivered
each (pseudonymous) payment, and sees *when* each (identified) account
deposits.  If SPs deposited immediately, delivery→deposit adjacency in
time would link pseudonym to account even though no cryptographic value
connects them.

This module implements that adversary and the experiment showing the
defence working:

* :class:`TimingAdversary` — matches each deposit burst to the closest
  preceding payment delivery (a greedy first-come matching, which is
  the optimal strategy when SPs deposit in delivery order).
* :func:`timing_experiment` — simulates *n* concurrent payments whose
  deposits are delayed by 0 (naive) or by random waits drawn from an
  exponential distribution, and reports the adversary's linking
  accuracy for each policy.

With zero delay the adversary wins almost always; with random waits of
mean comparable to the inter-delivery gap, accuracy collapses toward
chance — the quantitative content of the paper's prescription.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = [
    "DeliveryEvent",
    "TimedDeposit",
    "TimingAdversary",
    "timing_experiment",
    "TimingExperimentResult",
]


@dataclass(frozen=True)
class DeliveryEvent:
    """MA-side record: encrypted payment handed to a pseudonym at *time*."""

    time: float
    pseudonym: int


@dataclass(frozen=True)
class TimedDeposit:
    """MA-side record: account *aid* began depositing at *time*."""

    time: float
    aid: int


class TimingAdversary:
    """The curious MA's timing correlator.

    Strategy: sort deposits by time and assign each to the earliest
    still-unmatched delivery that precedes it.  This is the maximum-
    likelihood matching when every SP's wait is i.i.d. and deposits
    cannot precede deliveries.
    """

    def link(
        self, deliveries: list[DeliveryEvent], deposits: list[TimedDeposit]
    ) -> dict[int, int]:
        """Return the adversary's guessed ``aid -> pseudonym`` mapping."""
        remaining = sorted(deliveries, key=lambda d: d.time)
        guesses: dict[int, int] = {}
        for deposit in sorted(deposits, key=lambda d: d.time):
            candidates = [d for d in remaining if d.time <= deposit.time]
            if not candidates:
                continue
            pick = candidates[0]
            remaining.remove(pick)
            guesses[deposit.aid] = pick.pseudonym
        return guesses


@dataclass(frozen=True)
class TimingExperimentResult:
    """Linking accuracy per deposit-delay policy."""

    immediate_accuracy: float
    randomized_accuracy: float
    participants: int
    trials: int


def timing_experiment(
    *,
    participants: int,
    trials: int,
    rng: random.Random,
    delivery_gap: float = 1.0,
    wait_mean: float | None = None,
) -> TimingExperimentResult:
    """Measure the timing adversary against two deposit policies.

    Per trial, *participants* payments are delivered at i.i.d.
    exponential gaps (mean *delivery_gap*); participant *i* is truly
    pseudonym *i* and account *i*.

    * **immediate** — every SP deposits the instant its payment arrives
      (plus a hair of jitter so ties are well-defined);
    * **randomized** — the paper's policy: each SP waits an
      exponential time with mean *wait_mean* (default: 5× the delivery
      gap, i.e. waits long enough that several other deliveries happen
      in between).
    """
    if wait_mean is None:
        wait_mean = 5.0 * delivery_gap

    def run_policy(randomized: bool) -> float:
        adversary = TimingAdversary()
        correct = 0
        for _ in range(trials):
            t = 0.0
            deliveries = []
            deposits = []
            for i in range(participants):
                t += rng.expovariate(1.0 / delivery_gap)
                deliveries.append(DeliveryEvent(time=t, pseudonym=i))
                wait = rng.expovariate(1.0 / wait_mean) if randomized else rng.uniform(0, 1e-6)
                deposits.append(TimedDeposit(time=t + wait, aid=i))
            guesses = adversary.link(deliveries, deposits)
            correct += sum(1 for aid, pseud in guesses.items() if aid == pseud)
        return correct / (trials * participants)

    return TimingExperimentResult(
        immediate_accuracy=run_policy(randomized=False),
        randomized_accuracy=run_policy(randomized=True),
        participants=participants,
        trials=trials,
    )

"""The denomination attack and its mitigation by cash breaking.

Paper Section IV-B: the MA (who runs the bank *and* publishes the
bulletin board) sees each job's advertised payment and each SP's
deposit stream.  If the deposits of an SP sum in a way only one
published job can explain, the MA links the SP's real account to that
job — breaking job-linkage privacy.

The attack implemented here is the natural Bayesian version: given a
deposit multiset *D* observed for one account, a job with payment *w*
is a *candidate* iff some sub-multiset of *D* sums to *w*.  The
privacy metric is the candidate (anonymity) set: the bigger it is, the
less the MA learns.  Cash breaking grows the subset-sum coverage of a
payment — unitary breaking maximally so — which is exactly why the
paper introduces it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "reachable_sums",
    "candidate_jobs",
    "DenominationAttackResult",
    "run_denomination_attack",
]


def reachable_sums(deposits: Sequence[int]) -> set[int]:
    """All nonzero sums of sub-multisets of *deposits* (DP, not 2^n)."""
    sums: set[int] = set()
    for d in deposits:
        if d <= 0:
            raise ValueError("deposits must be positive")
        sums |= {d} | {s + d for s in sums}
    return sums


def candidate_jobs(
    job_payments: dict[str, int], deposits: Sequence[int]
) -> set[str]:
    """Jobs whose payment some sub-multiset of *deposits* could cover."""
    if not deposits:
        return set()
    sums = reachable_sums(deposits)
    return {job_id for job_id, w in job_payments.items() if w in sums}


@dataclass(frozen=True)
class DenominationAttackResult:
    """Outcome of the attack against one SP's deposit stream."""

    true_job: str
    candidates: frozenset[str]

    @property
    def anonymity_set_size(self) -> int:
        return len(self.candidates)

    @property
    def uniquely_identified(self) -> bool:
        """The MA pinned the SP to exactly the true job."""
        return self.candidates == frozenset({self.true_job})

    @property
    def true_job_covered(self) -> bool:
        """Sanity: the attack's candidate set must contain the truth."""
        return self.true_job in self.candidates


def run_denomination_attack(
    job_payments: dict[str, int],
    true_job: str,
    deposits: Sequence[int],
) -> DenominationAttackResult:
    """Run the MA's inference against one SP.

    *deposits* is the multiset of coin denominations the MA saw the
    SP's account deposit.  The true job must be among the published
    jobs (the MA's candidate model is complete by construction).
    """
    if true_job not in job_payments:
        raise ValueError("true job must be a published job")
    return DenominationAttackResult(
        true_job=true_job,
        candidates=frozenset(candidate_jobs(job_payments, deposits)),
    )

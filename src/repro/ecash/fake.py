"""Fake e-cash ``E(0)`` — denomination-attack padding (paper Sec. IV-A4).

To stop the MA inferring a payment's value from the length of the
encrypted payload, the JO pads the payment with fake coins until the
coin count (and hence the ciphertext length) is the same for every
possible value: "JO generates E(0) by generating a random number whose
bit-length equals the bit-length of E(1)".

A fake coin is a random blob the same length as the encoding of a real
spend token for the corresponding slot.  The receiving SP identifies
fakes because they fail to decode/verify; the MA, seeing only the
RSA-encrypted payment, cannot tell fakes from real coins at all.
"""

from __future__ import annotations

import random

from repro.net.codec import encode

__all__ = ["make_fake_blob", "pad_payment", "FAKE_MARKER_LEN"]

#: fakes carry no marker — this constant documents that deliberately.
FAKE_MARKER_LEN = 0


def make_fake_blob(length: int, rng: random.Random) -> bytes:
    """A uniformly random blob of exactly *length* bytes."""
    if length < 1:
        raise ValueError("fake coin must have positive length")
    return bytes(rng.getrandbits(8) for _ in range(length))


def pad_payment(
    real_blobs: list[bytes],
    slots: int,
    rng: random.Random,
    *,
    reference_length: int | None = None,
) -> list[bytes]:
    """Pad *real_blobs* with fakes up to *slots* entries and shuffle.

    Every fake matches *reference_length* (default: the length of the
    longest real blob, or 64 when there are none) so the padded list's
    total encoded length depends only on *slots*, never on the real
    coin count — which is the whole defence.
    """
    if slots < len(real_blobs):
        raise ValueError("cannot pad below the number of real coins")
    if reference_length is None:
        reference_length = max((len(b) for b in real_blobs), default=64)
    padded = list(real_blobs)
    padded += [make_fake_blob(reference_length, rng) for _ in range(slots - len(real_blobs))]
    rng.shuffle(padded)
    return padded


def payment_wire_size(blobs: list[bytes]) -> int:
    """Encoded size of a padded payment (for the Table II accounting)."""
    return len(encode(blobs))

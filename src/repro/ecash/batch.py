"""Batch verification of spend tokens (performance extension).

The MA verifies every deposited coin; with unitary cash breaks a single
payment produces up to ``2^L`` deposits, so deposit-side verification is
the bank's hot loop.  Two standard techniques cut its cost:

* **Shared-pairing batching** — the two CL pairing equations of each
  token use the fixed points ``g``, ``X`` and ``Y``.  The small-exponent
  random-linear-combination test merges the *first* equation
  (``e(a_i, Y) = e(g, b_i)``) of *n* tokens into two multi-scalar
  pairings: with random ``r_i``,

      e(Π a_i^{r_i}, Y)  ==  e(g, Π b_i^{r_i})

  catches any cheating token except with probability ``~2^-λ`` per
  small-exponent bit length.  (The second CL equation depends on the
  secret message and stays inside the per-token equality proof.)
* **Batched equality equations** — the equality proof's target-group
  equation ``e(X, b~)^z == R_B * V^e`` is linear in G_T, so *n* of them
  also merge under random small exponents into **one** pairing (of a
  multi-exponentiated point) plus per-token G_1/G_T exponentiations —
  far cheaper than a Miller loop each
  (:func:`batched_equality_check`).  The two *statement* pairings per
  token remain: the Fiat–Shamir transcript absorbs the encoded
  statement ``V``, so every verifier must materialize it.
* **Sigma-equation RLC** (the default path) — every remaining
  Fiat–Shamir equation is *linear*: a product of known bases to known
  exponents equals the identity.  The collectors in
  :mod:`repro.crypto.zkp` defer them as
  :class:`~repro.crypto.batchverify.LinearCheck` objects and
  :class:`~repro.crypto.batchverify.BatchVerifier` folds the whole
  batch into one Straus multi-exp per group, with 128-bit hashed
  coefficients and bisection down to exact singleton evaluation on
  failure.  The bases (``g``, ``h``, per-storey generators, per-token
  commitments repeated across rounds) merge heavily, which is where
  the bulk of the speedup lives.

:func:`batch_verify_spends` composes these: eager structural checks
per token, one RLC pass over all sigma equations, then both pairing
equations of every surviving token settled in a single shared pairing
product (Miller loops grouped per fixed point, one final
exponentiation).  Failures bisect with fresh coefficients until
singletons, which are evaluated exactly — so the verdict list is
always *identical* to verifying each token alone, just faster in the
common all-honest case.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.crypto import fastexp
from repro.crypto.batchverify import BatchVerifier, CoefficientSource
from repro.crypto.cl_sig import CLPublicKey
from repro.ecash.spend import (
    CollectedSpend,
    DECParams,
    DeferredGTCheck,
    SpendToken,
    verify_spend,
    verify_spend_collect,
    verify_spend_deferred,
)

__all__ = ["batch_verify_spends", "batched_pairing_check", "batched_equality_check"]

_SMALL_EXP_BITS = 32

_SIGMA_DOMAIN = b"repro.ecash.batch.sigma"
_PAIRING_DOMAIN = b"repro.ecash.batch.pairing"


def _multi_exp(backend, bases, scalars):
    """Source-group ``Π bases[i]^{scalars[i]}``, via the backend's shared
    Straus chain when it has one (both bundled backends do)."""
    fused = getattr(backend, "multi_exp", None)
    if fused is not None:
        return fused(bases, scalars)
    order = backend.order
    return fastexp.multi_exp_generic(
        backend.identity(), backend.mul, bases, [s % order for s in scalars]
    )


def _gt_multi_exp(backend, bases, scalars):
    """Target-group ``Π bases[i]^{scalars[i]}`` with the same dispatch."""
    fused = getattr(backend, "gt_multi_exp", None)
    if fused is not None:
        return fused(bases, scalars)
    order = backend.order
    return fastexp.multi_exp_generic(
        backend.gt_one(), backend.gt_mul, bases, [s % order for s in scalars]
    )


def batched_pairing_check(
    params: DECParams,
    bank_pk: CLPublicKey,
    tokens: Sequence[SpendToken],
    rng: random.Random,
) -> bool:
    """Random-linear-combination test of the first CL equation over all
    *tokens*: ``e(Π a_i^{r_i}, Y) == e(g, Π b_i^{r_i})``.

    A ``True`` result means every token's (a, b) pair is consistent
    except with probability ``<= n * 2^-32``; ``False`` means at least
    one token is bad (but not which — callers then bisect or fall back).
    """
    backend = params.backend
    if not tokens:
        return True
    coeffs = [1 + rng.getrandbits(_SMALL_EXP_BITS) for _ in tokens]
    acc_a = _multi_exp(backend, [t.sig_a for t in tokens], coeffs)
    acc_b = _multi_exp(backend, [t.sig_b for t in tokens], coeffs)
    return backend.gt_eq(
        backend.pair(acc_a, bank_pk.Y), backend.pair(backend.g, acc_b)
    )


def batched_equality_check(
    params: DECParams,
    bank_pk: CLPublicKey,
    checks: Sequence[DeferredGTCheck],
    rng: random.Random,
) -> bool:
    """Random-linear-combination test of *n* deferred G_T equations.

    Each check demands ``e(X, b~_i)^{z_i} == R_{B,i} * V_i^{e_i}``;
    with random small ``r_i`` all *n* collapse (by bilinearity) into

        e(X, Π b~_i^{z_i r_i})  ==  Π (R_{B,i} * V_i^{e_i})^{r_i}

    — one pairing total.  ``True`` certifies every equation except with
    probability ``<= n * 2^-32``; ``False`` means at least one is bad
    (callers fall back to :meth:`DeferredGTCheck.check` per token).

    Soundness of the combination relies on every ``commitment_b``
    lying in the prime-order G_T subgroup — guaranteed because
    :class:`DeferredGTCheck` construction membership-checks it (a
    cofactor-order offset, e.g. ``-R_B`` in F_{p²}^*, would otherwise
    escape the random combination with probability up to 1/2 while
    sequential verification rejects it).
    """
    backend = params.backend
    if not checks:
        return True
    order = backend.order
    coeffs = [1 + rng.getrandbits(_SMALL_EXP_BITS) for _ in checks]
    acc_point = _multi_exp(
        backend,
        [c.sig_b for c in checks],
        [(c.response * r) % order for c, r in zip(checks, coeffs)],
    )
    gt_bases: list = []
    gt_scalars: list = []
    for check, r in zip(checks, coeffs):
        gt_bases.append(check.commitment_b)
        gt_scalars.append(r)
        gt_bases.append(check.statement_gt)
        gt_scalars.append((check.challenge * r) % order)
    acc_gt = _gt_multi_exp(backend, gt_bases, gt_scalars)
    return backend.gt_eq(backend.pair(bank_pk.X, acc_point), acc_gt)


class _GenericPairingBatch:
    """Pairing-product accumulator for backends without a native batch.

    Evaluates each pairing as it is added (no Miller-loop sharing) but
    still lets the caller express the combined equation uniformly; the
    bundled backends override this with
    :meth:`~repro.crypto.pairing.tate.TatePairing.pairing_batch`, which
    shares the final exponentiation and folds scalars into the source
    group.
    """

    def __init__(self, backend) -> None:
        self._backend = backend
        self._acc = backend.gt_one()

    def add_pair(self, fixed, moving, exponent: int = 1) -> None:
        backend = self._backend
        k = exponent % backend.order
        if k == 0:
            return
        term = backend.gt_exp(backend.pair(fixed, moving), k)
        self._acc = backend.gt_mul(self._acc, term)

    def add_gt(self, element, exponent: int = 1) -> None:
        backend = self._backend
        k = exponent % backend.order
        if k == 0:
            return
        self._acc = backend.gt_mul(self._acc, backend.gt_exp(element, k))

    def check(self) -> bool:
        backend = self._backend
        return backend.gt_eq(self._acc, backend.gt_one())


def _make_pairing_batch(backend):
    native = getattr(backend, "pairing_batch", None)
    if native is not None:
        return native()
    return _GenericPairingBatch(backend)


def _batched_cl_verdicts(
    params: DECParams,
    bank_pk: CLPublicKey,
    collected: Sequence[CollectedSpend | None],
    live: Sequence[int],
    source: CoefficientSource,
) -> dict[int, bool]:
    """Verdicts for both pairing equations of every *live* token.

    Each token owes two target-group equations:

    * CL well-formedness   ``e(a~, Y) == e(g, b~)``          (equation 0)
    * deferred equality    ``e(X, b~)^z == R_B · V^e``       (equation 1)

    With per-equation coefficients ``c`` they combine into one pairing
    product that must equal 1; the backend's batch shares Miller loops
    per fixed point (``Y``, ``g``, ``X`` — all comb-promoted) and pays
    one final exponentiation for the whole sub-batch.  A failed product
    bisects with fresh path-salted coefficients; singletons evaluate
    the two equations exactly, so per-token decisions match
    :func:`~repro.ecash.spend.verify_spend` bit for bit.

    All adversarial G_T inputs here (``d.commitment_b``) were
    membership-checked against the order-*r* subgroup when collected;
    ``d.statement_gt`` is verifier-computed from pairings and lands in
    the subgroup by construction.  That invariant is what makes the
    small-exponent combination sound in F_{p²}^* (cofactor order).
    """
    backend = params.backend
    order = backend.order
    verdicts: dict[int, bool] = {}
    if not live:
        return verdicts
    stack: list[tuple[tuple[int, ...], tuple[int, ...]]] = [((), tuple(live))]
    while stack:
        path, indices = stack.pop()
        if len(indices) == 1:
            item = collected[indices[0]]
            token = item.token
            ok = backend.gt_eq(
                backend.pair(token.sig_a, bank_pk.Y),
                backend.pair(backend.g, token.sig_b),
            ) and item.deferred.check(params, bank_pk)
            verdicts[indices[0]] = ok
            continue
        batch = _make_pairing_batch(backend)
        for i in indices:
            item = collected[i]
            token = item.token
            d = item.deferred
            # e(Y, a~)^c · e(g, b~)^-c == 1   (pairing symmetry puts the
            # comb-promoted fixed point first)
            c1 = source.coefficient(order, i, 0, path)
            batch.add_pair(bank_pk.Y, token.sig_a, c1)
            batch.add_pair(backend.g, token.sig_b, -c1)
            # e(X, b~)^{z·c} · R_B^{-c} · V^{-e·c} == 1
            c2 = source.coefficient(order, i, 1, path)
            batch.add_pair(bank_pk.X, d.sig_b, d.response * c2)
            batch.add_gt(d.commitment_b, -c2)
            batch.add_gt(d.statement_gt, -(d.challenge * c2))
        if batch.check():
            for i in indices:
                verdicts[i] = True
        else:
            mid = len(indices) // 2
            stack.append((path + (0,), indices[:mid]))
            stack.append((path + (1,), indices[mid:]))
    return verdicts


def batch_verify_spends(
    params: DECParams,
    bank_pk: CLPublicKey,
    tokens: Sequence[SpendToken],
    rng: random.Random,
    *,
    context: bytes = b"",
    sigma_batch: bool = True,
) -> list[bool]:
    """Verify many spend tokens; semantically equal to per-token
    :func:`~repro.ecash.spend.verify_spend`, faster when all are honest.

    Returns one verdict per token, in order.  The default path collects
    every sigma equation of every token
    (:func:`~repro.ecash.spend.verify_spend_collect`) and discharges
    them through one random-linear-combination pass per group — with
    bisection down to exact singleton evaluation on failure — then
    settles both pairing equations per token in a single shared pairing
    product the same way.  *rng* seeds the combining coefficients
    (hashed, auditable; see :mod:`repro.crypto.batchverify`).

    ``sigma_batch=False`` keeps the older two-stage screen (batched CL
    pairing test + batched equality test, everything else per token);
    both paths return identical verdict lists.
    """
    if not tokens:
        return []
    if not sigma_batch:
        if not batched_pairing_check(params, bank_pk, tokens, rng):
            # a cheater is present: fall back to exact per-token verification
            return [verify_spend(params, bank_pk, token, context=context)
                    for token in tokens]
        # first pairing equation certified for everyone in 2 pairings
        # instead of 2n; run everything else per token, deferring each
        # token's G_T equality equation for one more batched test.
        deferred = [
            verify_spend_deferred(params, bank_pk, token, context=context,
                                  skip_cl_pairing_check=True)
            for token in tokens
        ]
        live = [d for d in deferred if d is not None]
        if batched_equality_check(params, bank_pk, live, rng):
            return [d is not None for d in deferred]
        # some equality equation is bad: discharge each one individually
        return [d is not None and d.check(params, bank_pk) for d in deferred]

    seed = rng.getrandbits(256)
    collected = [
        verify_spend_collect(params, bank_pk, token, context=context)
        for token in tokens
    ]
    sigma = BatchVerifier(seed=seed, domain=_SIGMA_DOMAIN)
    for i, item in enumerate(collected):
        if item is not None:
            sigma.add(i, item.checks)
    sigma_verdicts = sigma.verify()
    live = [
        i for i, item in enumerate(collected)
        if item is not None and sigma_verdicts[i]
    ]
    cl_verdicts = _batched_cl_verdicts(
        params, bank_pk, collected, live, CoefficientSource(seed, _PAIRING_DOMAIN)
    )
    return [cl_verdicts.get(i, False) for i in range(len(tokens))]

"""Batch verification of spend tokens (performance extension).

The MA verifies every deposited coin; with unitary cash breaks a single
payment produces up to ``2^L`` deposits, so deposit-side verification is
the bank's hot loop.  Two standard techniques cut its cost:

* **Shared-pairing batching** — the two CL pairing equations of each
  token use the fixed points ``g``, ``X`` and ``Y``.  The small-exponent
  random-linear-combination test merges the *first* equation
  (``e(a_i, Y) = e(g, b_i)``) of *n* tokens into two multi-scalar
  pairings: with random ``r_i``,

      e(Π a_i^{r_i}, Y)  ==  e(g, Π b_i^{r_i})

  catches any cheating token except with probability ``~2^-λ`` per
  small-exponent bit length.  (The second CL equation depends on the
  secret message and stays inside the per-token equality proof.)
* **Amortized transcript checks** — the Fiat–Shamir sigma-proof
  verifications are independent and share no state, so they simply run
  per token; batching them further would need structure our proofs
  deliberately avoid (shared bases across tokens would link spends).

:func:`batch_verify_spends` runs the batched pairing test and, when it
passes, the remaining per-token checks.  On failure it falls back to
individual verification to identify the offending tokens — so the
result is always *identical* to verifying each token alone, just
faster in the common all-honest case.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.crypto.cl_sig import CLPublicKey
from repro.ecash.spend import DECParams, SpendToken, verify_spend

__all__ = ["batch_verify_spends", "batched_pairing_check"]

_SMALL_EXP_BITS = 32


def batched_pairing_check(
    params: DECParams,
    bank_pk: CLPublicKey,
    tokens: Sequence[SpendToken],
    rng: random.Random,
) -> bool:
    """Random-linear-combination test of the first CL equation over all
    *tokens*: ``e(Π a_i^{r_i}, Y) == e(g, Π b_i^{r_i})``.

    A ``True`` result means every token's (a, b) pair is consistent
    except with probability ``<= n * 2^-32``; ``False`` means at least
    one token is bad (but not which — callers then bisect or fall back).
    """
    backend = params.backend
    if not tokens:
        return True
    acc_a = backend.identity()
    acc_b = backend.identity()
    for token in tokens:
        r = 1 + rng.getrandbits(_SMALL_EXP_BITS)
        acc_a = backend.mul(acc_a, backend.exp(token.sig_a, r))
        acc_b = backend.mul(acc_b, backend.exp(token.sig_b, r))
    return backend.gt_eq(
        backend.pair(acc_a, bank_pk.Y), backend.pair(backend.g, acc_b)
    )


def batch_verify_spends(
    params: DECParams,
    bank_pk: CLPublicKey,
    tokens: Sequence[SpendToken],
    rng: random.Random,
    *,
    context: bytes = b"",
) -> list[bool]:
    """Verify many spend tokens; semantically equal to per-token
    :func:`~repro.ecash.spend.verify_spend`, faster when all are honest.

    Returns one verdict per token, in order.
    """
    if not tokens:
        return []
    if batched_pairing_check(params, bank_pk, tokens, rng):
        # first pairing equation certified for everyone in 2 pairings
        # instead of 2n; remaining checks still run per token.
        return [
            verify_spend(params, bank_pk, token, context=context,
                         skip_cl_pairing_check=True)
            for token in tokens
        ]
    # a cheater is present: fall back to exact per-token verification
    return [verify_spend(params, bank_pk, token, context=context) for token in tokens]

"""Batch verification of spend tokens (performance extension).

The MA verifies every deposited coin; with unitary cash breaks a single
payment produces up to ``2^L`` deposits, so deposit-side verification is
the bank's hot loop.  Two standard techniques cut its cost:

* **Shared-pairing batching** — the two CL pairing equations of each
  token use the fixed points ``g``, ``X`` and ``Y``.  The small-exponent
  random-linear-combination test merges the *first* equation
  (``e(a_i, Y) = e(g, b_i)``) of *n* tokens into two multi-scalar
  pairings: with random ``r_i``,

      e(Π a_i^{r_i}, Y)  ==  e(g, Π b_i^{r_i})

  catches any cheating token except with probability ``~2^-λ`` per
  small-exponent bit length.  (The second CL equation depends on the
  secret message and stays inside the per-token equality proof.)
* **Batched equality equations** — the equality proof's target-group
  equation ``e(X, b~)^z == R_B * V^e`` is linear in G_T, so *n* of them
  also merge under random small exponents into **one** pairing (of a
  multi-exponentiated point) plus per-token G_1/G_T exponentiations —
  far cheaper than a Miller loop each
  (:func:`batched_equality_check`).  The two *statement* pairings per
  token remain: the Fiat–Shamir transcript absorbs the encoded
  statement ``V``, so every verifier must materialize it.
* **Amortized transcript checks** — the remaining Fiat–Shamir
  sigma-proof verifications are independent and share no state, so
  they simply run per token; batching them further would need
  structure our proofs deliberately avoid (shared bases across tokens
  would link spends).

:func:`batch_verify_spends` runs both batched tests and the remaining
per-token checks.  On any batch-test failure it falls back to
individual verification to identify the offending tokens — so the
result is always *identical* to verifying each token alone, just
faster in the common all-honest case (``4`` pairings per batch plus
``2`` per token, versus ``5`` per token unbatched).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.crypto import fastexp
from repro.crypto.cl_sig import CLPublicKey
from repro.ecash.spend import (
    DECParams,
    DeferredGTCheck,
    SpendToken,
    verify_spend,
    verify_spend_deferred,
)

__all__ = ["batch_verify_spends", "batched_pairing_check", "batched_equality_check"]

_SMALL_EXP_BITS = 32


def _multi_exp(backend, bases, scalars):
    """Source-group ``Π bases[i]^{scalars[i]}``, via the backend's shared
    Straus chain when it has one (both bundled backends do)."""
    fused = getattr(backend, "multi_exp", None)
    if fused is not None:
        return fused(bases, scalars)
    order = backend.order
    return fastexp.multi_exp_generic(
        backend.identity(), backend.mul, bases, [s % order for s in scalars]
    )


def _gt_multi_exp(backend, bases, scalars):
    """Target-group ``Π bases[i]^{scalars[i]}`` with the same dispatch."""
    fused = getattr(backend, "gt_multi_exp", None)
    if fused is not None:
        return fused(bases, scalars)
    order = backend.order
    return fastexp.multi_exp_generic(
        backend.gt_one(), backend.gt_mul, bases, [s % order for s in scalars]
    )


def batched_pairing_check(
    params: DECParams,
    bank_pk: CLPublicKey,
    tokens: Sequence[SpendToken],
    rng: random.Random,
) -> bool:
    """Random-linear-combination test of the first CL equation over all
    *tokens*: ``e(Π a_i^{r_i}, Y) == e(g, Π b_i^{r_i})``.

    A ``True`` result means every token's (a, b) pair is consistent
    except with probability ``<= n * 2^-32``; ``False`` means at least
    one token is bad (but not which — callers then bisect or fall back).
    """
    backend = params.backend
    if not tokens:
        return True
    coeffs = [1 + rng.getrandbits(_SMALL_EXP_BITS) for _ in tokens]
    acc_a = _multi_exp(backend, [t.sig_a for t in tokens], coeffs)
    acc_b = _multi_exp(backend, [t.sig_b for t in tokens], coeffs)
    return backend.gt_eq(
        backend.pair(acc_a, bank_pk.Y), backend.pair(backend.g, acc_b)
    )


def batched_equality_check(
    params: DECParams,
    bank_pk: CLPublicKey,
    checks: Sequence[DeferredGTCheck],
    rng: random.Random,
) -> bool:
    """Random-linear-combination test of *n* deferred G_T equations.

    Each check demands ``e(X, b~_i)^{z_i} == R_{B,i} * V_i^{e_i}``;
    with random small ``r_i`` all *n* collapse (by bilinearity) into

        e(X, Π b~_i^{z_i r_i})  ==  Π (R_{B,i} * V_i^{e_i})^{r_i}

    — one pairing total.  ``True`` certifies every equation except with
    probability ``<= n * 2^-32``; ``False`` means at least one is bad
    (callers fall back to :meth:`DeferredGTCheck.check` per token).
    """
    backend = params.backend
    if not checks:
        return True
    order = backend.order
    coeffs = [1 + rng.getrandbits(_SMALL_EXP_BITS) for _ in checks]
    acc_point = _multi_exp(
        backend,
        [c.sig_b for c in checks],
        [(c.response * r) % order for c, r in zip(checks, coeffs)],
    )
    gt_bases: list = []
    gt_scalars: list = []
    for check, r in zip(checks, coeffs):
        gt_bases.append(check.commitment_b)
        gt_scalars.append(r)
        gt_bases.append(check.statement_gt)
        gt_scalars.append((check.challenge * r) % order)
    acc_gt = _gt_multi_exp(backend, gt_bases, gt_scalars)
    return backend.gt_eq(backend.pair(bank_pk.X, acc_point), acc_gt)


def batch_verify_spends(
    params: DECParams,
    bank_pk: CLPublicKey,
    tokens: Sequence[SpendToken],
    rng: random.Random,
    *,
    context: bytes = b"",
) -> list[bool]:
    """Verify many spend tokens; semantically equal to per-token
    :func:`~repro.ecash.spend.verify_spend`, faster when all are honest.

    Returns one verdict per token, in order.
    """
    if not tokens:
        return []
    if not batched_pairing_check(params, bank_pk, tokens, rng):
        # a cheater is present: fall back to exact per-token verification
        return [verify_spend(params, bank_pk, token, context=context)
                for token in tokens]
    # first pairing equation certified for everyone in 2 pairings
    # instead of 2n; run everything else per token, deferring each
    # token's G_T equality equation for one more batched test.
    deferred = [
        verify_spend_deferred(params, bank_pk, token, context=context,
                              skip_cl_pairing_check=True)
        for token in tokens
    ]
    live = [d for d in deferred if d is not None]
    if batched_equality_check(params, bank_pk, live, rng):
        return [d is not None for d in deferred]
    # some equality equation is bad: discharge each one individually
    return [d is not None and d.check(params, bank_pk) for d in deferred]

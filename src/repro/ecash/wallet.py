"""Coin wallets: allocation of unspent tree nodes.

A withdrawn coin of value ``2^L`` can be spent piecewise as tree nodes;
the wallet is the spender's local bookkeeping that (a) never allocates
conflicting nodes and (b) serves each requested denomination from an
available node — a classic *buddy allocator* over the coin tree.

The wallet is pure state; the cryptographic spend itself happens in
:mod:`repro.ecash.spend`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ecash.tree import CoinTree, NodeId

__all__ = ["Wallet", "InsufficientFunds"]


class InsufficientFunds(Exception):
    """Raised when no unspent node can cover a requested denomination."""


@dataclass
class Wallet:
    """Spend-side state of one divisible coin.

    Attributes
    ----------
    tree:
        The static coin-tree shape.
    secret:
        The coin secret *s* certified by the bank's blind CL signature.
    spent:
        Nodes already allocated to payments.
    """

    tree: CoinTree
    secret: int
    spent: set[NodeId] = field(default_factory=set)

    # -- balance ----------------------------------------------------------
    @property
    def total_value(self) -> int:
        return self.tree.total_value

    @property
    def spent_value(self) -> int:
        return sum(node.value(self.tree.level) for node in self.spent)

    @property
    def balance(self) -> int:
        return self.total_value - self.spent_value

    # -- queries ------------------------------------------------------------
    def is_available(self, node: NodeId) -> bool:
        """Whether *node* conflicts with nothing already spent."""
        if node.level > self.tree.level:
            return False
        return not any(node.conflicts_with(used) for used in self.spent)

    def available_nodes(self, level: int) -> list[NodeId]:
        """All still-available nodes at the given *level*."""
        return [n for n in self.tree.nodes_at(level) if self.is_available(n)]

    # -- allocation ----------------------------------------------------------
    def allocate(self, denomination: int) -> NodeId:
        """Reserve one node of the given power-of-two *denomination*.

        Prefers the lowest-index available node (deterministic for
        tests); raises :class:`InsufficientFunds` when fragmentation or
        balance rules it out.
        """
        if denomination <= 0 or denomination & (denomination - 1):
            raise ValueError("denomination must be a positive power of two")
        if denomination > self.total_value:
            raise InsufficientFunds(
                f"denomination {denomination} exceeds coin value {self.total_value}"
            )
        level = self.tree.level - denomination.bit_length() + 1
        for node in self.tree.nodes_at(level):
            if self.is_available(node):
                self.spent.add(node)
                return node
        raise InsufficientFunds(f"no available node for denomination {denomination}")

    def allocate_amount(self, denominations: list[int]) -> list[NodeId]:
        """Reserve nodes for a full cash-break plan, atomically.

        Either every denomination is served or the wallet is left
        untouched and :class:`InsufficientFunds` propagates.
        """
        allocated: list[NodeId] = []
        try:
            for denom in denominations:
                if denom == 0:
                    continue  # fake-coin placeholder, nothing to reserve
                allocated.append(self.allocate(denom))
        except InsufficientFunds:
            for node in allocated:
                self.spent.discard(node)
            raise
        return allocated

    def release(self, node: NodeId) -> None:
        """Return a reserved node to the pool (e.g. failed delivery)."""
        self.spent.discard(node)

"""Binary-tree Divisible E-cash (the substrate of PPMSdec).

Modules:

* :mod:`~repro.ecash.tree` — coin tree, node keys, leaf serials
* :mod:`~repro.ecash.wallet` — buddy allocation of unspent nodes
* :mod:`~repro.ecash.spend` — spend-token creation and verification
* :mod:`~repro.ecash.dec` — scheme facade: setup / withdraw / deposit
* :mod:`~repro.ecash.fake` — fake-coin padding against the
  denomination attack
"""

from repro.ecash.dec import (
    Coin,
    DECBank,
    DoubleSpendError,
    DoubleSpendEvidence,
    begin_withdrawal,
    finish_withdrawal,
    setup,
)
from repro.ecash.batch import batch_verify_spends, batched_pairing_check
from repro.ecash.params_io import ParamsError, export_params, import_params
from repro.ecash.wallet_io import WalletSnapshotError, restore_coins, snapshot_coins
from repro.ecash.spend import DECParams, SpendToken, create_spend, verify_spend
from repro.ecash.tree import CoinTree, NodeId, derive_key_chain, leaf_serials, node_key
from repro.ecash.wallet import InsufficientFunds, Wallet

__all__ = [
    "setup",
    "DECParams",
    "DECBank",
    "Coin",
    "DoubleSpendError",
    "DoubleSpendEvidence",
    "export_params",
    "import_params",
    "ParamsError",
    "snapshot_coins",
    "restore_coins",
    "WalletSnapshotError",
    "begin_withdrawal",
    "finish_withdrawal",
    "SpendToken",
    "create_spend",
    "verify_spend",
    "batch_verify_spends",
    "batched_pairing_check",
    "CoinTree",
    "NodeId",
    "derive_key_chain",
    "node_key",
    "leaf_serials",
    "Wallet",
    "InsufficientFunds",
]

"""Spender-side persistence: save and restore coins with their wallets.

A job owner holding withdrawn coins must survive a restart without
double-spending its own nodes (re-paying an already-spent node is
caught by the bank — after the payee was already given a dud).  This
module serializes the complete spend-side state — coin secrets, the
bank's CL signatures, and each wallet's spent-node set — through the
canonical codec with an integrity digest, mirroring the bank-side
:mod:`repro.core.ledger`.

The blob contains coin secrets: it is as sensitive as cash.  Protect it
like a wallet file (the integrity digest detects corruption, not
theft).
"""

from __future__ import annotations

from repro.crypto.hashing import sha256
from repro.ecash.dec import Coin
from repro.ecash.tree import CoinTree, NodeId
from repro.ecash.wallet import Wallet
from repro.net.codec import decode, encode

__all__ = ["WalletSnapshotError", "snapshot_coins", "restore_coins"]

_MAGIC = b"repro-wallet-snapshot-v1"


class WalletSnapshotError(Exception):
    """Wallet blob rejected (corruption, version)."""


def snapshot_coins(coins: list[tuple[Coin, Wallet]]) -> bytes:
    """Serialize a spender's coins and their allocation state."""
    state = {
        "coins": [
            {
                "secret": coin.secret,
                "signature": coin.signature,
                "level": coin.level,
                "spent": sorted(wallet.spent),
            }
            for coin, wallet in coins
        ],
    }
    body = encode(state)
    return _MAGIC + sha256(_MAGIC, body) + body


def restore_coins(blob: bytes) -> list[tuple[Coin, Wallet]]:
    """Reconstruct coins + wallets from a snapshot blob."""
    if not blob.startswith(_MAGIC):
        raise WalletSnapshotError("not a wallet snapshot (bad magic)")
    digest, body = blob[len(_MAGIC) : len(_MAGIC) + 32], blob[len(_MAGIC) + 32 :]
    if sha256(_MAGIC, body) != digest:
        raise WalletSnapshotError("wallet snapshot integrity digest mismatch")
    try:
        state = decode(body)
    except ValueError as exc:
        raise WalletSnapshotError(f"wallet snapshot undecodable: {exc}") from exc
    out: list[tuple[Coin, Wallet]] = []
    for entry in state["coins"]:
        coin = Coin(secret=entry["secret"], signature=entry["signature"],
                    level=entry["level"])
        wallet = Wallet(tree=CoinTree(entry["level"]), secret=entry["secret"])
        for node in entry["spent"]:
            if not isinstance(node, NodeId):
                raise WalletSnapshotError("corrupt spent-node entry")
            if not wallet.is_available(node):
                raise WalletSnapshotError("overlapping spent nodes in snapshot")
            wallet.spent.add(node)
        out.append((coin, wallet))
    return out

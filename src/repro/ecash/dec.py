"""Divisible E-cash scheme facade: setup, withdraw, spend, deposit.

Ties together the group tower, the bank's CL signatures, the coin tree
and the spend proofs into the four-operation interface PPMSdec uses:

* :func:`setup` — build public parameters (``Setup(DEC)`` in the paper;
  the Cunningham-chain search dominates when no precomputed chain is
  used, which is exactly Fig. 2's subject).
* Withdrawal — a blind interactive protocol: the client commits to a
  fresh coin secret (:func:`begin_withdrawal`), the bank issues a blind
  CL signature (:meth:`DECBank.issue`), the client verifies and builds
  a wallet (:func:`finish_withdrawal`).  The bank learns the account
  that withdrew but *not* the coin secret, so later deposits are
  unlinkable to the withdrawal.
* Spending — :func:`repro.ecash.spend.create_spend` on wallet-allocated
  nodes (see :class:`~repro.ecash.wallet.Wallet`).
* Deposit — :meth:`DECBank.deposit` verifies the token, expands the
  leaf serials under the spent node and rejects any conflict
  (same node, ancestor or descendant) as a double spend.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.crypto.cl_sig import (
    BlindIssuanceRequest,
    CLKeyPair,
    CLPublicKey,
    CLSignature,
    cl_blind_issue,
    cl_blind_request,
    cl_blind_unwrap,
    cl_keygen,
)
from repro.crypto.groups import build_tower
from repro.crypto.pairing import default_backend
from repro.ecash.spend import DECParams, SpendToken, verify_spend
from repro.ecash.tree import CoinTree, leaf_serials
from repro.ecash.wallet import Wallet

__all__ = [
    "setup",
    "DECBank",
    "Coin",
    "DoubleSpendError",
    "begin_withdrawal",
    "finish_withdrawal",
]


@dataclass(frozen=True)
class DoubleSpendEvidence:
    """What the bank can prove about a detected double spend.

    ``prior`` identifies the deposit that already covered the colliding
    leaf serial (account, node level, node index); ``offending_node``
    is the node of the rejected token.  Because leaf serials are
    deterministic in the coin secret, the pair of records *is* the
    evidence — anyone holding both tokens can recompute the collision.
    """

    serial: int
    prior: tuple
    offending_node: tuple


class DoubleSpendError(Exception):
    """A deposit conflicts with an earlier one (shared leaf serial).

    Carries :class:`DoubleSpendEvidence` in ``evidence`` so the MA can
    attribute and document the conflict.
    """

    def __init__(self, message: str, evidence: "DoubleSpendEvidence | None" = None):
        super().__init__(message)
        self.evidence = evidence


def setup(
    level: int,
    rng: random.Random,
    *,
    use_known_chain: bool = True,
    chain_bits: int = 16,
    security_bits: int = 80,
    real_pairing: bool = True,
    edge_rounds: int = 24,
) -> DECParams:
    """``Setup(DEC)``: group tower + pairing backend for tree level *level*.

    With ``use_known_chain=False`` the Cunningham chain is searched
    online at *chain_bits* bits — the expensive path whose cost explodes
    with *level* (Fig. 2).  *security_bits* sizes the pairing subgroup;
    it is automatically raised above the storey-0 order so coin secrets
    are valid scalars in both groups.
    """
    tower = build_tower(level, rng, use_known_chain=use_known_chain, chain_bits=chain_bits)
    needed_bits = tower.group(0).q.bit_length() + 1
    backend = default_backend(rng, security_bits=max(security_bits, needed_bits), real=real_pairing)
    return DECParams(tower=tower, backend=backend, tree_level=level, edge_rounds=edge_rounds)


@dataclass(frozen=True)
class Coin:
    """A withdrawn divisible coin: the secret and the bank's signature."""

    secret: int
    signature: CLSignature
    level: int

    def wallet(self) -> Wallet:
        """Fresh spend-side bookkeeping for this coin."""
        return Wallet(tree=CoinTree(self.level), secret=self.secret)


def begin_withdrawal(
    params: DECParams, rng: random.Random
) -> tuple[int, BlindIssuanceRequest]:
    """Client move 1: sample a coin secret and build the blind request.

    The secret must be a valid exponent in both the pairing group and
    tower storey 0 (enforced by the bound).
    """
    secret = rng.randrange(1, params.secret_bound())
    request, _ = cl_blind_request(params.backend, secret, rng)
    return secret, request


def finish_withdrawal(
    params: DECParams, bank_pk: CLPublicKey, secret: int, signature: CLSignature
) -> Coin:
    """Client move 2: verify the blindly issued signature, mint the coin."""
    cl_blind_unwrap(params.backend, bank_pk, secret, signature)
    return Coin(secret=secret, signature=signature, level=params.tree_level)


@dataclass
class DECBank:
    """The bank half of the scheme (run by the MA).

    Tracks per-account balances and the set of deposited leaf serials
    for double-spend detection.
    """

    params: DECParams
    keypair: CLKeyPair
    rng: random.Random
    accounts: dict[str, int] = field(default_factory=dict)
    _seen_serials: dict[int, tuple] = field(default_factory=dict)
    withdrawals: list[str] = field(default_factory=list)
    deposit_seq: int = 0

    @classmethod
    def create(cls, params: DECParams, rng: random.Random) -> "DECBank":
        return cls(params=params, keypair=cl_keygen(params.backend, rng), rng=rng)

    @property
    def public_key(self) -> CLPublicKey:
        return self.keypair.public

    # -- accounts ----------------------------------------------------------
    def open_account(self, aid: str, initial_balance: int = 0) -> None:
        if aid in self.accounts:
            raise ValueError(f"account {aid!r} already exists")
        self.accounts[aid] = initial_balance

    def balance(self, aid: str) -> int:
        return self.accounts[aid]

    # -- withdraw ----------------------------------------------------------
    def issue(self, aid: str, request: BlindIssuanceRequest) -> CLSignature:
        """Blind-issue a coin of value ``2^L`` and debit the account.

        The bank records *who* withdrew (needed for balance integrity)
        but learns nothing about the coin secret.
        """
        value = 1 << self.params.tree_level
        if self.accounts.get(aid, 0) < value:
            raise ValueError(f"account {aid!r} cannot cover a coin of value {value}")
        signature = cl_blind_issue(self.params.backend, self.keypair, request, self.rng)
        self.accounts[aid] -= value
        self.withdrawals.append(aid)
        return signature

    # -- deposit ------------------------------------------------------------
    def deposit(self, aid: str, token: SpendToken, *, context: bytes = b"") -> int:
        """Verify and credit a spend token; detect double spends.

        Returns the credited amount.  Raises :class:`ValueError` for an
        invalid token and :class:`DoubleSpendError` for a conflict.  On
        conflict nothing is credited and no serials are recorded.
        """
        if aid not in self.accounts:
            raise ValueError(f"unknown account {aid!r}")
        if not verify_spend(self.params, self.public_key, token, context=context):
            raise ValueError("invalid spend token")
        serials = leaf_serials(
            self.params.tower, token.node, token.node_key, self.params.tree_level
        )
        for serial in serials:
            if serial in self._seen_serials:
                raise DoubleSpendError(
                    f"leaf serial already deposited (prior: {self._seen_serials[serial]})",
                    evidence=DoubleSpendEvidence(
                        serial=serial,
                        prior=self._seen_serials[serial][:3],
                        offending_node=(aid, token.node.level, token.node.index),
                    ),
                )
        # the sequence number disambiguates deposits of the same node
        # position from different coins (records must be unique per deposit)
        record = (aid, token.node.level, token.node.index, self.deposit_seq)
        self.deposit_seq += 1
        for serial in serials:
            self._seen_serials[serial] = record
        amount = token.denomination(self.params.tree_level)
        self.accounts[aid] += amount
        return amount

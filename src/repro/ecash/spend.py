"""Creating and verifying divisible e-cash spend tokens.

A *spend token* transfers the denomination of one tree node.  It must
convince any verifier (the receiving SP first, the bank at deposit
time) of three things while revealing nothing linkable to the
withdrawal:

1. **Certified coin** — the spender holds a bank CL signature on some
   coin secret *s*.  The token carries the signature *randomized* by a
   fresh exponent (CL signatures are perfectly re-randomizable), plus a
   cross-group equality proof that the *same* s certified by the bank
   opens the Pedersen commitment ``C_s`` in tower storey 0.
2. **Correct derivation** — the revealed node key is the end of the
   tower derivation chain starting at that committed *s*, shown by one
   committed-double-log proof per path edge plus a revealed-child proof
   for the final edge.  Intermediate keys stay hidden inside fresh
   Pedersen commitments, so two spends of different nodes of the same
   coin share no linkable value.
3. **Serial disclosure** — the node key itself is public, so the bank
   can expand the leaf serials below it and catch any conflicting spend
   (:func:`repro.ecash.tree.leaf_serials`).

The proof count is ``node.level + O(1)`` ZKPs, matching the paper's
Table I cost of ``(8 + i)`` ZKPs for a depth-*i* node.
"""

from __future__ import annotations

import pickle
import random
from dataclasses import dataclass

from repro.crypto import fastexp
from repro.crypto.batchverify import LinearCheck
from repro.crypto.cl_sig import CLPublicKey, CLSignature
from repro.crypto.groups import GroupTower
from repro.crypto.hashing import Transcript
from repro.crypto.zkp.committed_double_log import (
    CommittedEdgeProof,
    RevealedEdgeProof,
    collect_edge,
    collect_revealed_edge,
    prove_edge,
    prove_revealed_edge,
    verify_edge,
    verify_revealed_edge,
)
from repro.crypto.zkp.equality import (
    EqualityProof,
    collect_equality,
    prove_equality,
    verify_equality_deferred,
)
from repro.ecash.tree import (
    GEN_COMMIT_G,
    GEN_COMMIT_H,
    GEN_LEFT,
    GEN_RIGHT,
    NodeId,
    derive_key_chain,
)

__all__ = [
    "DECParams",
    "SpendToken",
    "DeferredGTCheck",
    "CollectedSpend",
    "create_spend",
    "verify_spend",
    "verify_spend_deferred",
    "verify_spend_collect",
    "warm_verification_tables",
    "export_verification_tables",
    "adopt_verification_tables",
]


@dataclass(frozen=True)
class DECParams:
    """Public parameters of the divisible e-cash instance.

    Attributes
    ----------
    tower:
        The Cunningham-chain group tower (storeys ``0 .. tree_level``).
    backend:
        The bilinear-pairing backend carrying the bank's CL signatures.
    tree_level:
        ``L``; coins have value ``2^L``.
    edge_rounds:
        Cut-and-choose rounds per hidden path edge (soundness
        ``2^-edge_rounds`` per edge).
    """

    tower: GroupTower
    backend: object
    tree_level: int
    edge_rounds: int = 24

    def __post_init__(self) -> None:
        if self.tree_level > self.tower.depth:
            raise ValueError("tower too shallow for the requested tree level")
        if self.tower.group(0).q >= self.backend.order:
            raise ValueError(
                "pairing order must exceed the storey-0 order so the coin "
                "secret is a valid scalar in both groups"
            )

    def secret_bound(self) -> int:
        """Exclusive upper bound for coin secrets."""
        return self.tower.group(0).q

    def commit_bases(self, storey: int) -> tuple[int, int]:
        gens = self.tower.extra_generators[storey]
        return gens[GEN_COMMIT_G], gens[GEN_COMMIT_H]

    def edge_generator(self, storey: int, bit: int) -> int:
        gens = self.tower.extra_generators[storey]
        return gens[GEN_LEFT if bit == 0 else GEN_RIGHT]


@dataclass(frozen=True)
class SpendToken:
    """A transferable, verifiable, unlinkable node spend."""

    node: NodeId
    node_key: int
    sig_a: object
    sig_b: object
    sig_c: object
    commitment_s: int
    key_commitments: tuple[int, ...]
    equality: EqualityProof
    edges: tuple[CommittedEdgeProof, ...]
    final_edge: RevealedEdgeProof

    def denomination(self, tree_level: int) -> int:
        return self.node.value(tree_level)

    def encoded_size(self, params: DECParams) -> int:
        """Wire-size estimate in bytes (Table II accounting).

        Group elements are costed at their storey's modulus size;
        pairing elements at the curve's field size.
        """
        tower = params.tower
        elem = lambda storey: (tower.group(storey).p.bit_length() + 7) // 8
        scal = lambda storey: (tower.group(storey).q.bit_length() + 7) // 8
        pair_bytes = 2 * ((getattr(params.backend, "order").bit_length() + 7) // 8 + 2)
        size = 8  # node id
        size += elem(min(self.node.level, tower.depth))  # node key
        size += 3 * pair_bytes  # randomized CL signature
        size += elem(0)  # C_s
        size += sum(elem(t + 1) for t in range(len(self.key_commitments)))
        size += self.equality.encoded_size(elem(0), scal(0))
        for t, edge in enumerate(self.edges):
            size += edge.encoded_size(elem(t), scal(t))
        size += self.final_edge.encoded_size(elem(self.node.level), scal(self.node.level))
        return size


def create_spend(
    params: DECParams,
    bank_pk: CLPublicKey,
    secret: int,
    signature: CLSignature,
    node: NodeId,
    rng: random.Random,
    *,
    context: bytes = b"",
) -> SpendToken:
    """Build a spend token for *node* from a certified coin secret.

    *context* is absorbed into the Fiat–Shamir transcript; protocols use
    it to bind a token to a session/payee so tokens cannot be replayed
    in a different context.
    """
    backend = params.backend
    if node.level > params.tree_level:
        raise ValueError("node deeper than the coin tree")
    if not 0 < secret < params.secret_bound():
        raise ValueError("coin secret out of range")

    keys = derive_key_chain(params.tower, secret, node)
    node_key_value = keys[-1]
    depth = node.level

    # 1. randomize the CL signature (perfect unlinkability to withdrawal)
    rho = backend.random_scalar(rng)
    sig_a = backend.exp(signature.a, rho)
    sig_b = backend.exp(signature.b, rho)
    sig_c = backend.exp(signature.c, rho)

    # 2. Pedersen commitments: C_s in storey 0, C_t for hidden keys κ_t
    #    (commit bases are tower-fixed → comb-cached exponentiations)
    grp0 = params.tower.group(0)
    g0, h0 = params.commit_bases(0)
    r_s = grp0.random_exponent(rng)
    commitment_s = grp0.mul(grp0.exp_fixed(g0, secret), grp0.exp_fixed(h0, r_s))

    key_commitments: list[int] = []
    key_randomizers: list[int] = []
    for t in range(depth):  # κ_t committed in storey t+1
        grp = params.tower.group(t + 1)
        g, h = params.commit_bases(t + 1)
        r = grp.random_exponent(rng)
        key_randomizers.append(r)
        key_commitments.append(grp.mul(grp.exp_fixed(g, keys[t]), grp.exp_fixed(h, r)))

    transcript = _base_transcript(params, bank_pk, node, node_key_value, sig_a, sig_b, sig_c,
                                  commitment_s, key_commitments, context)

    # 3. equality proof: the CL-certified scalar equals the committed s.
    #    V = e(g, c~) * e(X, a~)^-1  must equal  e(X, b~)^s
    base_gt = backend.pair(bank_pk.X, sig_b)
    statement_gt = backend.gt_mul(
        backend.pair(backend.g, sig_c),
        backend.gt_exp(backend.pair(bank_pk.X, sig_a), backend.order - 1),
    )
    equality = prove_equality(
        grp0, g0, h0, commitment_s,
        exp_b=lambda k: backend.gt_exp(base_gt, k),
        encode_b=lambda el: _gt_encode(backend, el),
        statement_b=statement_gt,
        witness=secret,
        randomizer=r_s,
        witness_bits=params.secret_bound().bit_length(),
        rng=rng,
        transcript=transcript,
    )

    # 4. path proofs
    bits = node.path_bits()
    edges: list[CommittedEdgeProof] = []
    if depth >= 1:
        # base edge: s (C_s, storey 0) -> κ_0 (C_0, storey 1)
        g1, h1 = params.commit_bases(1)
        edges.append(
            prove_edge(
                grp0, g0, h0, commitment_s,
                params.edge_generator(0, 0),
                params.tower.group(1), g1, h1, key_commitments[0],
                secret, r_s, key_randomizers[0],
                rng, transcript, rounds=params.edge_rounds,
            )
        )
        # hidden edges κ_{t-1} -> κ_t for t = 1 .. depth-1
        for t in range(1, depth):
            pg = params.tower.group(t)
            pgg, pgh = params.commit_bases(t)
            cg = params.tower.group(t + 1)
            cgg, cgh = params.commit_bases(t + 1)
            edges.append(
                prove_edge(
                    pg, pgg, pgh, key_commitments[t - 1],
                    params.edge_generator(t, bits[t - 1]),
                    cg, cgg, cgh, key_commitments[t],
                    keys[t - 1], key_randomizers[t - 1], key_randomizers[t],
                    rng, transcript, rounds=params.edge_rounds,
                )
            )
        # final revealed edge: κ_{d-1} (C_{d-1}, storey d) -> public κ_d
        pg = params.tower.group(depth)
        pgg, pgh = params.commit_bases(depth)
        final_edge = prove_revealed_edge(
            pg, pgg, pgh, key_commitments[depth - 1],
            params.edge_generator(depth, bits[depth - 1]),
            node_key_value, keys[depth - 1], key_randomizers[depth - 1],
            rng, transcript,
        )
    else:
        # spending the root: single revealed edge from C_s
        final_edge = prove_revealed_edge(
            grp0, g0, h0, commitment_s,
            params.edge_generator(0, 0),
            node_key_value, secret, r_s,
            rng, transcript,
        )

    return SpendToken(
        node=node,
        node_key=node_key_value,
        sig_a=sig_a,
        sig_b=sig_b,
        sig_c=sig_c,
        commitment_s=commitment_s,
        key_commitments=tuple(key_commitments),
        equality=equality,
        edges=tuple(edges),
        final_edge=final_edge,
    )


@dataclass(frozen=True)
class DeferredGTCheck:
    """The one target-group equation of a token left unchecked.

    :func:`verify_spend_deferred` validates everything about a token
    *except* the equality proof's group-B equation
    ``e(X, b~)^z == R_B * V^e`` — the only per-token check whose cost is
    a pairing but whose structure is linear, so *n* of them batch into
    one pairing plus multi-exponentiations
    (:func:`repro.ecash.batch.batched_equality_check`).  ``check``
    closes the deferral individually, making ``verify_spend_deferred``
    + ``check`` exactly equivalent to :func:`verify_spend`.
    """

    sig_b: object  # the pairing point of the base B = e(X, b~)
    statement_gt: object  # V, already computed for the transcript
    commitment_b: object  # R_B, decoded; subgroup membership checked at build
    challenge: int  # e, recomputed from the transcript
    response: int  # z, the integer response

    def check(self, params: DECParams, bank_pk: CLPublicKey) -> bool:
        """The deferred equation, checked alone: ``B^z == R_B * V^e``."""
        backend = params.backend
        lhs = backend.gt_exp(backend.pair(bank_pk.X, self.sig_b), self.response)
        rhs = backend.gt_mul(
            self.commitment_b, backend.gt_exp(self.statement_gt, self.challenge)
        )
        return backend.gt_eq(lhs, rhs)


def verify_spend(
    params: DECParams,
    bank_pk: CLPublicKey,
    token: SpendToken,
    *,
    context: bytes = b"",
    skip_cl_pairing_check: bool = False,
) -> bool:
    """Verify every component of a spend token.

    ``skip_cl_pairing_check`` omits the ``e(a~, Y) == e(g, b~)``
    equation; **only** pass it when that equation was already certified
    for this token by :func:`repro.ecash.batch.batched_pairing_check`.
    """
    deferred = verify_spend_deferred(
        params, bank_pk, token, context=context,
        skip_cl_pairing_check=skip_cl_pairing_check,
    )
    return deferred is not None and deferred.check(params, bank_pk)


def verify_spend_deferred(
    params: DECParams,
    bank_pk: CLPublicKey,
    token: SpendToken,
    *,
    context: bytes = b"",
    skip_cl_pairing_check: bool = False,
) -> DeferredGTCheck | None:
    """Verify a token except its one batchable target-group equation.

    Returns ``None`` when any performed check fails, otherwise the
    :class:`DeferredGTCheck` the caller must still discharge (directly
    via :meth:`DeferredGTCheck.check`, or batched across tokens).  The
    two statement pairings it computes are unavoidable: the Fiat–Shamir
    transcript absorbs the encoded statement ``V``, so the verifier
    must materialize it per token to recompute the challenge.
    """
    backend = params.backend
    node = token.node
    if node.level > params.tree_level:
        return None
    if len(token.key_commitments) != node.level:
        return None

    # CL signature well-formedness on the randomized triple:
    # e(a~, Y) == e(g, b~); a~ must not be the identity
    if backend.element_encode(token.sig_a) == backend.element_encode(backend.identity()):
        return None
    if not skip_cl_pairing_check and not backend.gt_eq(
        backend.pair(token.sig_a, bank_pk.Y), backend.pair(backend.g, token.sig_b)
    ):
        return None

    transcript = _base_transcript(params, bank_pk, node, token.node_key, token.sig_a,
                                  token.sig_b, token.sig_c, token.commitment_s,
                                  list(token.key_commitments), context)

    grp0 = params.tower.group(0)
    g0, h0 = params.commit_bases(0)
    statement_gt = backend.gt_mul(
        backend.pair(backend.g, token.sig_c),
        backend.gt_exp(backend.pair(bank_pk.X, token.sig_a), backend.order - 1),
    )
    challenge = verify_equality_deferred(
        grp0, g0, h0, token.commitment_s,
        encode_b=lambda el: _gt_encode(backend, el),
        statement_b=statement_gt,
        proof=token.equality,
        transcript=transcript,
    )
    if challenge is None:
        return None
    # R_B is adversarial and will join a batched G_T product; subgroup
    # membership is required for RLC soundness (see _decode_gt_commitment)
    commitment_b = _decode_gt_commitment(backend, token.equality.commitment_b)
    if commitment_b is None:
        return None

    bits = node.path_bits()
    depth = node.level
    if depth >= 1:
        if len(token.edges) != depth:
            return None
        g1, h1 = params.commit_bases(1)
        if not verify_edge(
            grp0, g0, h0, token.commitment_s,
            params.edge_generator(0, 0),
            params.tower.group(1), g1, h1, token.key_commitments[0],
            token.edges[0], transcript,
        ):
            return None
        for t in range(1, depth):
            pg = params.tower.group(t)
            pgg, pgh = params.commit_bases(t)
            cg = params.tower.group(t + 1)
            cgg, cgh = params.commit_bases(t + 1)
            if not verify_edge(
                pg, pgg, pgh, token.key_commitments[t - 1],
                params.edge_generator(t, bits[t - 1]),
                cg, cgg, cgh, token.key_commitments[t],
                token.edges[t], transcript,
            ):
                return None
        pg = params.tower.group(depth)
        pgg, pgh = params.commit_bases(depth)
        if not verify_revealed_edge(
            pg, pgg, pgh, token.key_commitments[depth - 1],
            params.edge_generator(depth, bits[depth - 1]),
            token.node_key, token.final_edge, transcript,
        ):
            return None
    else:
        if token.edges:
            return None
        if not verify_revealed_edge(
            grp0, g0, h0, token.commitment_s,
            params.edge_generator(0, 0),
            token.node_key, token.final_edge, transcript,
        ):
            return None
    return DeferredGTCheck(
        sig_b=token.sig_b,
        statement_gt=statement_gt,
        commitment_b=commitment_b,
        challenge=challenge,
        response=token.equality.z,
    )


@dataclass(frozen=True)
class CollectedSpend:
    """A token's verification, reduced to data instead of decisions.

    Produced by :func:`verify_spend_collect`: every eager (structural,
    membership, challenge) check already passed; what remains is the
    list of deferred sigma equations (``checks``) plus the two pairing
    equations — the CL well-formedness check, **not** performed here,
    and the equality proof's target-group equation (``deferred``).  A
    batch verifier combines many tokens' remainders into a handful of
    multi-exponentiations and one shared pairing product
    (:func:`repro.ecash.batch.batch_verify_spends`).
    """

    token: SpendToken
    checks: tuple[LinearCheck, ...]
    deferred: DeferredGTCheck


def verify_spend_collect(
    params: DECParams,
    bank_pk: CLPublicKey,
    token: SpendToken,
    *,
    context: bytes = b"",
) -> CollectedSpend | None:
    """Collect a token's verification equations instead of evaluating them.

    Mirrors :func:`verify_spend_deferred` — same transcript traffic,
    same eager structural/membership checks, so the Fiat–Shamir
    challenges (and therefore the equations) are identical — but every
    sigma-protocol equation is returned as a
    :class:`~repro.crypto.batchverify.LinearCheck` rather than checked.
    The CL pairing equation ``e(a~, Y) == e(g, b~)`` is **never**
    evaluated here (only the non-identity screen on ``a~`` runs); the
    caller owes it, batched or alone, alongside ``deferred``.

    Returns ``None`` when any eager check fails — such a token is
    rejected exactly as the sequential verifier rejects it.
    """
    backend = params.backend
    node = token.node
    if node.level > params.tree_level:
        return None
    if len(token.key_commitments) != node.level:
        return None
    if backend.element_encode(token.sig_a) == backend.element_encode(backend.identity()):
        return None

    transcript = _base_transcript(params, bank_pk, node, token.node_key, token.sig_a,
                                  token.sig_b, token.sig_c, token.commitment_s,
                                  list(token.key_commitments), context)

    grp0 = params.tower.group(0)
    g0, h0 = params.commit_bases(0)
    statement_gt = backend.gt_mul(
        backend.pair(backend.g, token.sig_c),
        backend.gt_exp(backend.pair(bank_pk.X, token.sig_a), backend.order - 1),
    )
    collected_eq = collect_equality(
        grp0, g0, h0, token.commitment_s,
        encode_b=lambda el: _gt_encode(backend, el),
        statement_b=statement_gt,
        proof=token.equality,
        transcript=transcript,
    )
    if collected_eq is None:
        return None
    challenge, equality_check = collected_eq
    # same subgroup gate as verify_spend_deferred: R_B enters the
    # batched pairing product, so membership is a soundness precondition
    commitment_b = _decode_gt_commitment(backend, token.equality.commitment_b)
    if commitment_b is None:
        return None
    checks: list[LinearCheck] = [equality_check]

    bits = node.path_bits()
    depth = node.level
    if depth >= 1:
        if len(token.edges) != depth:
            return None
        g1, h1 = params.commit_bases(1)
        edge_checks = collect_edge(
            grp0, g0, h0, token.commitment_s,
            params.edge_generator(0, 0),
            params.tower.group(1), g1, h1, token.key_commitments[0],
            token.edges[0], transcript,
        )
        if edge_checks is None:
            return None
        checks.extend(edge_checks)
        for t in range(1, depth):
            pg = params.tower.group(t)
            pgg, pgh = params.commit_bases(t)
            cg = params.tower.group(t + 1)
            cgg, cgh = params.commit_bases(t + 1)
            edge_checks = collect_edge(
                pg, pgg, pgh, token.key_commitments[t - 1],
                params.edge_generator(t, bits[t - 1]),
                cg, cgg, cgh, token.key_commitments[t],
                token.edges[t], transcript,
            )
            if edge_checks is None:
                return None
            checks.extend(edge_checks)
        pg = params.tower.group(depth)
        pgg, pgh = params.commit_bases(depth)
        final_checks = collect_revealed_edge(
            pg, pgg, pgh, token.key_commitments[depth - 1],
            params.edge_generator(depth, bits[depth - 1]),
            token.node_key, token.final_edge, transcript,
        )
        if final_checks is None:
            return None
        checks.extend(final_checks)
    else:
        if token.edges:
            return None
        final_checks = collect_revealed_edge(
            grp0, g0, h0, token.commitment_s,
            params.edge_generator(0, 0),
            token.node_key, token.final_edge, transcript,
        )
        if final_checks is None:
            return None
        checks.extend(final_checks)

    return CollectedSpend(
        token=token,
        checks=tuple(checks),
        deferred=DeferredGTCheck(
            sig_b=token.sig_b,
            statement_gt=statement_gt,
            commitment_b=commitment_b,
            challenge=challenge,
            response=token.equality.z,
        ),
    )


def warm_verification_tables(params: DECParams, bank_pk: CLPublicKey | None = None) -> None:
    """Pre-build every fixed-base table the spend/verify hot path hits.

    Covers the pairing slots of :func:`verify_spend_deferred` and
    :func:`~repro.crypto.cl_sig.cl_verify` (``g``, and with *bank_pk*
    also ``X`` and ``Y`` — together one side of every pairing the
    deposit path computes), plus the tower commit/edge generators the
    sigma-protocol verifiers exponentiate.  Idempotent and cheap
    relative to one deposit; a long-lived verifier (the bank service)
    calls this once at startup so steady-state flushes never pay
    table-build cost.  No-op while fast-exp is globally disabled.
    """
    backend = params.backend
    warm_pair = getattr(backend, "warm_pair", None)
    if warm_pair is not None:
        fixed_points = [backend.g]
        if bank_pk is not None:
            fixed_points += [bank_pk.X, bank_pk.Y]
        warm_pair(*fixed_points)
    warm_exp = getattr(backend, "warm_exp_fixed", None)
    if warm_exp is not None:
        warm_exp(backend.g)
    tower = params.tower
    for storey in range(params.tree_level + 1):
        grp = tower.group(storey)
        g, h = params.commit_bases(storey)
        gens = tower.extra_generators[storey]
        grp.warm_fixed(grp.g, g, h, gens[GEN_LEFT], gens[GEN_RIGHT])


def export_verification_tables(
    params: DECParams, bank_pk: CLPublicKey | None = None
) -> bytes:
    """Serialize every verification precomputation into one blob.

    Warms the tables first (:func:`warm_verification_tables`), then
    packs the global integer comb cache plus the pairing backend's
    Miller/fixed-base tables (when the backend supports export) into a
    picklable payload.  A pooled worker — or a recovering service —
    adopts the blob with :func:`adopt_verification_tables` instead of
    re-deriving every table from scratch, which is the dominant cost of
    a cold worker spawn.  Transport (shared memory, mmap files, digest
    checking) is :mod:`repro.crypto.tablestore`'s job; this layer only
    defines the payload.
    """
    warm_verification_tables(params, bank_pk)
    backend = params.backend
    state: dict = {"version": 1, "int": fastexp.export_int_tables(), "backend": None}
    export = getattr(backend, "export_tables", None)
    if export is not None:
        state["backend"] = export()
    return pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)


def adopt_verification_tables(params: DECParams, payload: bytes) -> int:
    """Install a blob from :func:`export_verification_tables`; returns the
    number of tables adopted (0 while fast-exp is globally disabled).

    Raises ``ValueError`` on an unrecognized payload version — callers
    (pooled workers) catch and fall back to a local
    :func:`warm_verification_tables` build, so a corrupt or stale blob
    degrades to the cold path rather than failing verification.
    """
    state = pickle.loads(payload)
    if not isinstance(state, dict) or state.get("version") != 1:
        raise ValueError("unrecognized verification-table payload")
    count = fastexp.install_int_tables(state.get("int") or [])
    backend_state = state.get("backend")
    install = getattr(params.backend, "install_tables", None)
    if backend_state is not None and install is not None:
        count += install(backend_state)
    return count


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _gt_encode(backend, element) -> tuple:
    """Encode a target-group element as an int tuple for transcripts."""
    if hasattr(element, "a") and hasattr(element, "b"):  # Fp2
        return (element.a, element.b)
    return (int(element),)


def _gt_decode(backend, encoded: tuple):
    """Invert :func:`_gt_encode` for the given backend."""
    one = backend.gt_one()
    if hasattr(one, "a"):
        from repro.crypto.pairing.field import Fp2

        return Fp2(encoded[0], encoded[1], one.p)
    return encoded[0]


def _gt_contains(backend, element) -> bool:
    """Membership of *element* in the prime-order G_T subgroup."""
    native = getattr(backend, "gt_contains", None)
    if native is not None:
        return bool(native(element))
    # generic fallback: backends may reduce gt_exp exponents mod the
    # group order (making element^order vacuous), so probe with
    # order-1 and multiply the element back in — 0 fails (0·0 ≠ 1).
    probe = backend.gt_mul(backend.gt_exp(element, backend.order - 1), element)
    return backend.gt_eq(probe, backend.gt_one())


def _decode_gt_commitment(backend, encoded):
    """Decode a proof's target-group commitment ``R_B``; ``None`` when it
    is malformed or lies outside the prime-order subgroup.

    ``R_B`` is the one *adversarial* G_T value the batched deposit paths
    feed into a random-linear-combination product
    (:mod:`repro.ecash.batch`); RLC soundness needs every base inside
    the order-*r* subgroup — F_{p²}^* (and Z_p^*) carry cofactor
    components whose small-order elements would escape the combined
    check with probability up to 1/2 per small prime factor.  The
    sequential equation rejects such values unconditionally (``B^z``
    stays in the subgroup, the right side would not), so gating here
    changes no verdict while restoring the batched paths' documented
    soundness bound.
    """
    if not isinstance(encoded, tuple):
        return None
    if len(encoded) != len(_gt_encode(backend, backend.gt_one())):
        return None
    if not all(isinstance(v, int) for v in encoded):
        return None
    element = _gt_decode(backend, encoded)
    if not _gt_contains(backend, element):
        return None
    return element


def _base_transcript(
    params: DECParams,
    bank_pk: CLPublicKey,
    node: NodeId,
    node_key_value: int,
    sig_a, sig_b, sig_c,
    commitment_s: int,
    key_commitments: list[int],
    context: bytes,
) -> Transcript:
    backend = params.backend
    t = Transcript(b"dec-spend")
    t.absorb(context)
    t.absorb_ints(params.tree_level, node.level, node.index, node_key_value)
    for el in (bank_pk.X, bank_pk.Y, sig_a, sig_b, sig_c):
        for v in backend.element_encode(el):
            t.absorb_int(int(v))
    t.absorb_ints(commitment_s, *key_commitments)
    return t

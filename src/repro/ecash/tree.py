"""The binary coin tree of the Divisible E-cash scheme.

A coin of value ``2^L`` is a binary tree of ``L + 1`` levels (paper
Section III-C1).  The node ``N_{i,j}`` at level *i* (root: ``i = 0``)
carries denomination ``2^(L-i)``; spending a node spends its entire
subtree, so two nodes conflict exactly when one is an ancestor of (or
equal to) the other.

Node *keys* realize the tree cryptographically through the group tower:

    κ(root)          = γ_root ^ s              (in storey 0)
    κ(child_b of v)  = γ_{level, b} ^ κ(v)     (in storey `level`)

where *s* is the coin secret and the γ's are the per-storey edge
generators.  The Cunningham-chain tower guarantees each key is a valid
exponent one storey up, and the hardness of (double) discrete logs makes
keys one-way: a node key reveals its *descendants* (derivation is
public) but neither its ancestors nor its siblings.

The descendant property is what the bank's double-spend detection uses:
a deposited node key expands to the serial numbers of all leaves below
it (:func:`leaf_serials`), and any two conflicting spends collide in at
least one leaf serial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.crypto.groups import GroupTower

__all__ = [
    "NodeId",
    "CoinTree",
    "derive_key_chain",
    "node_key",
    "leaf_serials",
    "GEN_LEFT",
    "GEN_RIGHT",
    "GEN_COMMIT_G",
    "GEN_COMMIT_H",
]

# roles of the per-storey extra generators (see build_tower(generators_per_level=4))
GEN_LEFT = 0      # edge generator for a left child (and the root derivation)
GEN_RIGHT = 1     # edge generator for a right child
GEN_COMMIT_G = 2  # Pedersen commitment base g
GEN_COMMIT_H = 3  # Pedersen commitment base h


@dataclass(frozen=True, order=True)
class NodeId:
    """A tree position: *level* (0 = root) and *index* within the level."""

    level: int
    index: int

    def __post_init__(self) -> None:
        if self.level < 0:
            raise ValueError("level must be >= 0")
        if not 0 <= self.index < (1 << self.level):
            raise ValueError(f"index {self.index} out of range for level {self.level}")

    # -- structure ----------------------------------------------------------
    def value(self, tree_level: int) -> int:
        """Denomination of this node in a level-*tree_level* tree."""
        if self.level > tree_level:
            raise ValueError("node deeper than the tree")
        return 1 << (tree_level - self.level)

    @property
    def parent(self) -> "NodeId":
        if self.level == 0:
            raise ValueError("the root has no parent")
        return NodeId(self.level - 1, self.index >> 1)

    def child(self, bit: int) -> "NodeId":
        if bit not in (0, 1):
            raise ValueError("child bit must be 0 or 1")
        return NodeId(self.level + 1, (self.index << 1) | bit)

    def path_bits(self) -> tuple[int, ...]:
        """Branch choices from the root down to this node (MSB first)."""
        return tuple((self.index >> (self.level - 1 - k)) & 1 for k in range(self.level))

    def ancestors(self) -> Iterator["NodeId"]:
        """Proper ancestors, root last."""
        node = self
        while node.level > 0:
            node = node.parent
            yield node

    def is_ancestor_of(self, other: "NodeId") -> bool:
        """Proper-or-equal ancestry test."""
        if other.level < self.level:
            return False
        return (other.index >> (other.level - self.level)) == self.index

    def conflicts_with(self, other: "NodeId") -> bool:
        """Whether spending both nodes would double-spend."""
        return self.is_ancestor_of(other) or other.is_ancestor_of(self)

    def leaf_span(self, tree_level: int) -> range:
        """Indices of the level-*tree_level* leaves below this node."""
        if self.level > tree_level:
            raise ValueError("node deeper than the tree")
        width = 1 << (tree_level - self.level)
        return range(self.index * width, (self.index + 1) * width)


@dataclass(frozen=True)
class CoinTree:
    """Static structure of a level-*L* coin tree (no keys, no state)."""

    level: int

    def __post_init__(self) -> None:
        if self.level < 0:
            raise ValueError("tree level must be >= 0")

    @property
    def total_value(self) -> int:
        return 1 << self.level

    @property
    def root(self) -> NodeId:
        return NodeId(0, 0)

    def nodes_at(self, level: int) -> Iterator[NodeId]:
        if not 0 <= level <= self.level:
            raise ValueError("level out of range")
        for index in range(1 << level):
            yield NodeId(level, index)

    def all_nodes(self) -> Iterator[NodeId]:
        for level in range(self.level + 1):
            yield from self.nodes_at(level)

    def node_for_denomination(self, denomination: int, index: int = 0) -> NodeId:
        """The *index*-th node carrying the given power-of-two denomination."""
        if denomination <= 0 or denomination & (denomination - 1):
            raise ValueError("denomination must be a positive power of two")
        if denomination > self.total_value:
            raise ValueError("denomination exceeds the coin value")
        level = self.level - denomination.bit_length() + 1
        return NodeId(level, index)


# ---------------------------------------------------------------------------
# key derivation
# ---------------------------------------------------------------------------

def _edge_generator(tower: GroupTower, storey: int, bit: int) -> int:
    gens = tower.extra_generators[storey]
    if len(gens) <= GEN_COMMIT_H:
        raise ValueError("tower built with too few generators per level (need 4)")
    return gens[GEN_LEFT if bit == 0 else GEN_RIGHT]


def derive_key_chain(tower: GroupTower, secret: int, node: NodeId) -> list[int]:
    """Keys ``κ_0 .. κ_{node.level}`` along the root→node path.

    ``κ_0`` is the root key; the last entry is *node*'s own key.  Each
    κ_t is an element of tower storey *t* and hence a valid exponent in
    storey ``t + 1``.
    """
    if node.level > tower.depth:
        raise ValueError("node deeper than the tower supports")
    grp0 = tower.group(0)
    if not 0 < secret < grp0.q:
        raise ValueError("coin secret out of the storey-0 exponent range")
    # edge generators are tower-fixed → comb-cached exponentiations
    keys = [grp0.exp_fixed(_edge_generator(tower, 0, 0), secret)]
    for t, bit in enumerate(node.path_bits(), start=1):
        grp = tower.group(t)
        keys.append(grp.exp_fixed(_edge_generator(tower, t, bit), keys[-1]))
    return keys


def node_key(tower: GroupTower, secret: int, node: NodeId) -> int:
    """The key of a single node (last element of the derivation chain)."""
    return derive_key_chain(tower, secret, node)[-1]


def leaf_serials(tower: GroupTower, node: NodeId, key: int, tree_level: int) -> list[int]:
    """Serial numbers of every leaf under *node*, derived from its *key*.

    Derivation downwards is public (only generators are needed), which
    is exactly what lets the bank detect ancestor/descendant double
    spends: conflicting nodes share at least one leaf, and leaf keys are
    deterministic, so the expansions collide.
    """
    if node.level > tree_level:
        raise ValueError("node deeper than the tree")
    if tree_level > tower.depth:
        raise ValueError("tree deeper than the tower supports")
    frontier = [(node, key)]
    for level in range(node.level + 1, tree_level + 1):
        grp = tower.group(level)
        frontier = [
            (n.child(bit), grp.exp_fixed(_edge_generator(tower, level, bit), k))
            for (n, k) in frontier
            for bit in (0, 1)
        ]
    return [k for (_, k) in frontier]

"""Publishing and loading DEC public parameters.

The MA runs ``Setup(DEC)`` once and "publish[es] its public key as well
as the public parameters of the DEC to all market residents" (paper
Section IV-A1).  Publication needs a wire format: this module
serializes a :class:`~repro.ecash.spend.DECParams` (group tower,
pairing backend, sizes) plus the bank's CL public key into one signed-
length blob through the canonical codec, and reconstructs a functional
parameter set on the resident side.

Both pairing backends round-trip: the Tate backend by its curve
parameters (the generator point pins the exact subgroup), the toy
backend by its target Schnorr group.
"""

from __future__ import annotations

from repro.crypto.cl_sig import CLPublicKey
from repro.crypto.cunningham import CunninghamChain
from repro.crypto.groups import GroupTower, SchnorrGroup
from repro.crypto.hashing import sha256
from repro.crypto.pairing import CurveParams, Point, TatePairing, ToyPairing
from repro.ecash.spend import DECParams

from repro.net.codec import decode, encode

__all__ = ["ParamsError", "export_params", "import_params"]

_MAGIC = b"repro-dec-params-v1"


class ParamsError(Exception):
    """Parameter blob rejected (corruption, version, inconsistency)."""


def _export_backend(backend) -> dict:
    if isinstance(backend, TatePairing):
        g = backend.params.generator
        return {
            "kind": "tate",
            "p": backend.params.p,
            "r": backend.params.r,
            "cofactor": backend.params.cofactor,
            "gx": g.x.a,
            "gy": g.y.a,
        }
    if isinstance(backend, ToyPairing):
        t = backend.target
        return {"kind": "toy", "p": t.p, "q": t.q, "g": t.g}
    raise ParamsError(f"unknown backend type {type(backend)!r}")


def _import_backend(data: dict):
    if data["kind"] == "tate":
        generator = Point.from_base(data["gx"], data["gy"], data["p"])
        params = CurveParams(
            p=data["p"], r=data["r"], cofactor=data["cofactor"], generator=generator
        )
        if not generator.multiply(params.r).is_infinity:
            raise ParamsError("published generator does not have the claimed order")
        return TatePairing(params)
    if data["kind"] == "toy":
        return ToyPairing(SchnorrGroup(p=data["p"], q=data["q"], g=data["g"]))
    raise ParamsError(f"unknown backend kind {data['kind']!r}")


def export_params(params: DECParams, bank_pk: CLPublicKey | None = None) -> bytes:
    """Serialize public parameters (optionally with the bank key)."""
    backend = params.backend
    state = {
        "tree_level": params.tree_level,
        "edge_rounds": params.edge_rounds,
        "chain_start": params.tower.chain.start,
        "chain_length": params.tower.chain.length,
        "levels": [
            {"p": grp.p, "q": grp.q, "g": grp.g} for grp in params.tower.levels
        ],
        "generators": [list(gens) for gens in params.tower.extra_generators],
        "backend": _export_backend(backend),
        "bank_pk": (
            None
            if bank_pk is None
            else [list(map(int, backend.element_encode(bank_pk.X))),
                  list(map(int, backend.element_encode(bank_pk.Y)))]
        ),
    }
    body = encode(state)
    return _MAGIC + sha256(_MAGIC, body) + body


def import_params(blob: bytes) -> tuple[DECParams, CLPublicKey | None]:
    """Reconstruct parameters (and the bank key, when published).

    Every structural invariant is revalidated — a malicious MA cannot
    ship a tower whose storeys do not chain, a generator of the wrong
    order, or a pairing subgroup too small for the coin secrets.
    """
    if not blob.startswith(_MAGIC):
        raise ParamsError("not a parameter blob (bad magic)")
    digest, body = blob[len(_MAGIC) : len(_MAGIC) + 32], blob[len(_MAGIC) + 32 :]
    if sha256(_MAGIC, body) != digest:
        raise ParamsError("parameter blob integrity digest mismatch")
    try:
        state = decode(body)
    except ValueError as exc:
        raise ParamsError(f"parameter blob undecodable: {exc}") from exc

    try:
        levels = tuple(
            SchnorrGroup(p=lvl["p"], q=lvl["q"], g=lvl["g"]) for lvl in state["levels"]
        )
    except ValueError as exc:
        raise ParamsError(f"invalid tower storey: {exc}") from exc
    tower = GroupTower(
        chain=CunninghamChain(state["chain_start"], state["chain_length"]),
        levels=levels,
        extra_generators=tuple(tuple(g) for g in state["generators"]),
    )
    if not tower.verify():
        raise ParamsError("tower storeys do not form a Cunningham chain")
    for storey, gens in enumerate(tower.extra_generators):
        grp = tower.group(storey)
        if not all(grp.contains(g) and g != 1 for g in gens):
            raise ParamsError(f"storey {storey} generator outside the subgroup")

    backend = _import_backend(state["backend"])
    try:
        params = DECParams(
            tower=tower,
            backend=backend,
            tree_level=state["tree_level"],
            edge_rounds=state["edge_rounds"],
        )
    except ValueError as exc:
        raise ParamsError(f"inconsistent parameters: {exc}") from exc

    bank_pk = None
    if state["bank_pk"] is not None:
        x_enc, y_enc = state["bank_pk"]
        bank_pk = CLPublicKey(
            X=_decode_element(backend, x_enc), Y=_decode_element(backend, y_enc)
        )
    return params, bank_pk


def _decode_element(backend, encoded: list[int]):
    if isinstance(backend, ToyPairing):
        return encoded[0]
    # Tate: (x.a, x.b, y.a, y.b, is_infinity)
    from repro.crypto.pairing.field import Fp2

    xa, xb, ya, yb, inf = encoded
    p = backend.params.p
    if inf:
        return Point.infinity(p)
    point = Point(Fp2(xa, xb, p), Fp2(ya, yb, p), p)
    if not point.on_curve():
        raise ParamsError("published bank key is not on the curve")
    return point

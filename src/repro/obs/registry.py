"""Typed metric instruments with Prometheus-text and JSON export.

A :class:`MetricsRegistry` is the one place the service's counters
live: fastexp cache hits, batcher occupancy, admission sheds, journal
LSNs, recovery replay counts.  Three instrument types, deliberately no
more:

* :class:`Counter` — monotone totals (``..._total`` by convention);
* :class:`Gauge` — last-written level (queue depth, newest LSN);
* :class:`Histogram` — distributions over **fixed log-scale buckets**.
  The bucket ladder is part of the metric's identity: every shard,
  process and incarnation observing into the same ladder makes
  snapshots *mergeable* by plain element-wise addition — no rebinning,
  no information loss beyond the ladder itself.

Instruments are get-or-create by ``(name, labels)``; label values pass
the :class:`~repro.obs.redact.RedactionPolicy` gate at creation, so a
label can never smuggle an account id into a scrape.  Recording is
guarded by the registry's ``enabled`` flag — one attribute check per
``inc``/``set``/``observe``, no allocation — mirroring the
``REPRO_FASTEXP`` toggle discipline.

Cross-process aggregation goes through :meth:`MetricsRegistry.snapshot`
(a codec-friendly plain dict) and :meth:`MetricsRegistry.merge`:
counters and histogram buckets add, gauges take the incoming value
(per-shard gauges should carry a ``shard`` label instead of relying on
merge order).  Export formats are the Prometheus text exposition
format and the same snapshot as JSON.
"""

from __future__ import annotations

import json
import math
from typing import Iterable

from repro.obs.redact import DEFAULT_POLICY, RedactionPolicy

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
]

#: Log-scale latency ladder in seconds: powers of two from ~1 µs to 16 s.
LATENCY_BUCKETS: tuple[float, ...] = tuple(2.0 ** e for e in range(-20, 5))

#: Log-scale count/size ladder: powers of two from 1 to 64 Ki.
SIZE_BUCKETS: tuple[float, ...] = tuple(float(2 ** e) for e in range(0, 17))


class _Instrument:
    """Common identity: name, scrubbed labels, help text."""

    __slots__ = ("name", "labels", "help", "_registry")

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str,
                 labels: dict, help: str) -> None:
        self._registry = registry
        self.name = name
        self.labels = labels
        self.help = help

    @property
    def enabled(self) -> bool:
        return self._registry.enabled


class Counter(_Instrument):
    """Monotonically increasing total."""

    __slots__ = ("value",)

    kind = "counter"

    def __init__(self, registry, name, labels, help) -> None:
        super().__init__(registry, name, labels, help)
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        if not self._registry.enabled:
            return
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n


class Gauge(_Instrument):
    """Last-written level."""

    __slots__ = ("value",)

    kind = "gauge"

    def __init__(self, registry, name, labels, help) -> None:
        super().__init__(registry, name, labels, help)
        self.value = 0

    def set(self, value: int | float) -> None:
        if not self._registry.enabled:
            return
        self.value = value

    def inc(self, n: int | float = 1) -> None:
        if not self._registry.enabled:
            return
        self.value += n

    def dec(self, n: int | float = 1) -> None:
        self.inc(-n)


class Histogram(_Instrument):
    """Distribution over a fixed bucket ladder (upper bounds, + inf)."""

    __slots__ = ("buckets", "counts", "sum", "count")

    kind = "histogram"

    def __init__(self, registry, name, labels, help,
                 buckets: Iterable[float]) -> None:
        super().__init__(registry, name, labels, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("bucket bounds must be non-empty and ascending")
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot = +inf overflow
        self.sum = 0.0
        self.count = 0

    def observe(self, value: int | float) -> None:
        if not self._registry.enabled:
            return
        # linear scan beats bisect here: the ladder is short and hot
        # observations (latencies, batch sizes) land in the low buckets
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.sum += value
        self.count += 1

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the q-quantile observation.

        A ladder-resolution estimate (exact values are not kept); the
        overflow bucket reports ``inf``.  Raises on an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            raise ValueError("no observations recorded")
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= rank:
                return self.buckets[i] if i < len(self.buckets) else math.inf
        return math.inf  # pragma: no cover - unreachable


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def _format_labels(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{k}="{_escape(str(v))}"' for k, v in sorted(merged.items())
    )
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class MetricsRegistry:
    """Get-or-create instrument store with merge and export."""

    def __init__(self, *, enabled: bool = True,
                 policy: RedactionPolicy | None = None) -> None:
        self.enabled = enabled
        self.policy = policy if policy is not None else DEFAULT_POLICY
        self._instruments: dict[tuple[str, tuple], _Instrument] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    # -- construction ------------------------------------------------------
    def _get(self, cls, name: str, help: str, labels: dict, **extra):
        if not name or not name.replace("_", "").replace(":", "").isalnum():
            raise ValueError(f"invalid metric name {name!r}")
        scrubbed = self.policy.scrub(labels)
        key = (name, _label_key(scrubbed))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(self, name, scrubbed, help, **extra)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise ValueError(
                f"metric {name!r} already registered as {instrument.kind}"
            )
        return instrument

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] = LATENCY_BUCKETS,
                  **labels) -> Histogram:
        return self._get(Histogram, name, help, labels, buckets=tuple(buckets))

    def instruments(self) -> list[_Instrument]:
        return [self._instruments[k] for k in sorted(self._instruments)]

    def clear(self) -> None:
        self._instruments.clear()

    # -- merge (cross-shard / cross-process aggregation) -------------------
    def snapshot(self) -> dict:
        """Plain-data copy of every instrument (JSON/codec friendly)."""
        out: dict = {"counters": [], "gauges": [], "histograms": []}
        for instrument in self.instruments():
            entry: dict = {
                "name": instrument.name,
                "labels": dict(instrument.labels),
                "help": instrument.help,
            }
            if isinstance(instrument, Histogram):
                entry.update(
                    buckets=list(instrument.buckets),
                    counts=list(instrument.counts),
                    sum=instrument.sum,
                    count=instrument.count,
                )
                out["histograms"].append(entry)
            elif isinstance(instrument, Counter):
                entry["value"] = instrument.value
                out["counters"].append(entry)
            else:
                entry["value"] = instrument.value
                out["gauges"].append(entry)
        return out

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's snapshot into this one.

        Counters and histogram buckets add; gauges take the snapshot's
        value.  Histogram ladders must match exactly — mergeability is
        the reason the ladders are fixed.
        """
        was_enabled = self.enabled
        self.enabled = True  # merging is an offline aggregation step
        try:
            for entry in snapshot.get("counters", ()):
                self.counter(entry["name"], entry.get("help", ""),
                             **entry["labels"]).value += entry["value"]
            for entry in snapshot.get("gauges", ()):
                self.gauge(entry["name"], entry.get("help", ""),
                           **entry["labels"]).value = entry["value"]
            for entry in snapshot.get("histograms", ()):
                hist = self.histogram(
                    entry["name"], entry.get("help", ""),
                    buckets=entry["buckets"], **entry["labels"],
                )
                if list(hist.buckets) != list(entry["buckets"]):
                    raise ValueError(
                        f"histogram {entry['name']!r}: bucket ladders differ"
                    )
                for i, n in enumerate(entry["counts"]):
                    hist.counts[i] += n
                hist.sum += entry["sum"]
                hist.count += entry["count"]
        finally:
            self.enabled = was_enabled

    # -- export ------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(self.snapshot(), sort_keys=True, indent=1) + "\n"

    def to_prometheus(self) -> str:
        """The text exposition format scrapers ingest."""
        lines: list[str] = []
        seen_headers: set[str] = set()
        for instrument in self.instruments():
            if instrument.name not in seen_headers:
                seen_headers.add(instrument.name)
                if instrument.help:
                    lines.append(f"# HELP {instrument.name} {instrument.help}")
                lines.append(f"# TYPE {instrument.name} {instrument.kind}")
            labels = instrument.labels
            if isinstance(instrument, Histogram):
                cumulative = 0
                for bound, n in zip(instrument.buckets, instrument.counts):
                    cumulative += n
                    lines.append(
                        f"{instrument.name}_bucket"
                        f"{_format_labels(labels, {'le': _finite(bound)})}"
                        f" {cumulative}"
                    )
                lines.append(
                    f"{instrument.name}_bucket"
                    f"{_format_labels(labels, {'le': '+Inf'})}"
                    f" {instrument.count}"
                )
                lines.append(
                    f"{instrument.name}_sum{_format_labels(labels)}"
                    f" {_num(instrument.sum)}"
                )
                lines.append(
                    f"{instrument.name}_count{_format_labels(labels)}"
                    f" {instrument.count}"
                )
            else:
                lines.append(
                    f"{instrument.name}{_format_labels(labels)}"
                    f" {_num(instrument.value)}"
                )
        return "\n".join(lines) + ("\n" if lines else "")


def _finite(bound: float) -> str:
    return repr(bound) if bound != int(bound) else str(int(bound))


def _num(value: int | float) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)

"""The privacy gate every exported label and attribute passes through.

Telemetry is the one channel that deliberately leaves the trust
boundary of the market: traces land in an operator's Perfetto tab,
metrics in a scrape endpoint.  The paper's anonymity guarantees
(unlinkable withdrawals, blinded coins, pseudonymous accounts) are
worthless if the serving layer's *instrumentation* re-publishes the
very values the cryptography hides — a serial number in a span
attribute links two deposits as surely as a broken blind signature.

The policy here is therefore **allowlist, not blocklist**: an
attribute key must be on :data:`SAFE_KEYS` for its value to be
exported verbatim, and even then only scalar values of bounded size
pass.  Everything else is either

* **dropped** (keys on :data:`DROP_KEYS` — values so sensitive even a
  digest leaks cardinality an attacker could use, e.g. raw spend
  tokens), or
* **hashed** — replaced by ``#`` + 12 hex chars of
  ``sha256(salt || canonical-bytes)``.  The salt is drawn fresh per
  process (:func:`configure` pins it for tests), so digests are
  useless for offline dictionary attacks against low-entropy inputs
  like account ids, yet stay stable *within* a run — an operator can
  still correlate "the same (hashed) sender" across spans.

Trace ids are derived the same way (:func:`trace_id`): request ids
may embed account ids (``sp0:auto:17``), so the id that crosses into
telemetry is always the digest, never the rid itself.

This module is pure stdlib — no ``repro`` imports — so every layer
can use it without cycles (enforced by ``tools/lint_imports.py``).
"""

from __future__ import annotations

import hashlib
import os

__all__ = [
    "SAFE_KEYS",
    "DROP_KEYS",
    "RedactionPolicy",
    "DEFAULT_POLICY",
    "configure",
    "hash_value",
    "trace_id",
]

#: Attribute keys whose (scalar) values are safe to export verbatim:
#: structural facts about the service — sizes, counts, positions,
#: statuses — that hold for any workload and identify no participant.
SAFE_KEYS: frozenset[str] = frozenset(
    {
        "kind",       # request kind: deposit / withdraw / ...
        "op",         # journal operation name
        "status",     # reply status: OK / BUSY / ERROR / REJECTED
        "reason",     # admission shed reason: rate / queue
        "phase",      # pipeline phase label
        "batch",      # jobs in a batch
        "deposits",   # deposit jobs in a flush
        "withdraws",  # withdraw jobs in a flush
        "chunks",     # pool chunks in a flush
        "n",          # generic count
        "count",
        "size",
        "bytes",
        "lsn",        # journal log sequence number
        "seq",        # service sequence number (dense, service-local)
        "depth",      # queue depth
        "shard",      # shard index
        "shards",
        "level",      # tree level (public protocol parameter)
        "flushes",
        "redone",
        "replayed",
        "recovery",
        "cache",      # fastexp cache name
        "dedup",
        "admitted",
        "worker",     # dense verify-pool worker index (never a pid)
        "workers",    # verify-pool size
        "fallback",   # pool dispatch degraded to inline
        "attached",   # fastexp tables adopted from a shared blob
        "node",       # cluster node id (operator-chosen: n0, n1, ...)

    }
)

#: Keys whose values never appear in telemetry in any form — not even
#: hashed.  A digest still reveals *when the same value recurs*, and
#: for these (raw coin/token material) recurrence is itself the
#: double-spend-shaped signal only the bank may see.
DROP_KEYS: frozenset[str] = frozenset(
    {"token", "coin", "signature", "request", "payload", "body", "blinded",
     "secret", "key", "node_key", "wallet"}
)

#: Longest string allowed through for a safe key; anything longer is
#: hashed even when the key is safe (a "status" carrying a blob is not
#: a status).
_MAX_SAFE_STR = 64

_SALT: bytes = os.urandom(16)


def configure(*, salt: bytes | None = None) -> bytes:
    """Pin the per-process digest salt; returns the previous salt.

    Production never calls this — a random salt is the point.  Tests
    pin it to make digests reproducible inside one assertion block.
    """
    global _SALT
    previous = _SALT
    if salt is not None:
        if not salt:
            raise ValueError("salt must be non-empty")
        _SALT = bytes(salt)
    return previous


def _canonical_bytes(value: object) -> bytes:
    if isinstance(value, bytes):
        return b"b:" + value
    if isinstance(value, str):
        return b"s:" + value.encode("utf-8", "surrogatepass")
    if isinstance(value, bool):
        return b"B:1" if value else b"B:0"
    if isinstance(value, int):
        return b"i:" + str(value).encode()
    if isinstance(value, float):
        return b"f:" + repr(value).encode()
    return b"r:" + repr(value).encode("utf-8", "backslashreplace")


def hash_value(value: object) -> str:
    """Salted 48-bit digest tag for an unsafe value: ``#9f2c01ab34de``."""
    digest = hashlib.sha256(_SALT + _canonical_bytes(value)).hexdigest()
    return "#" + digest[:12]


def trace_id(rid: str) -> str:
    """The telemetry-side identity of a request id.

    Deterministic in the rid (and the process salt), so every layer
    that sees the rid — accept, batcher, shard apply, journal, reply —
    derives the *same* trace id without any shared mutable context;
    that derivation is the propagation mechanism.  The rid itself
    (which may embed an account id) never leaves the process.
    """
    digest = hashlib.sha256(_SALT + b"t:" + rid.encode("utf-8", "surrogatepass"))
    return "t" + digest.hexdigest()[:16]


class RedactionPolicy:
    """Allowlist scrubber applied to every span attribute and metric label.

    ``scrub`` maps an attribute dict to its exportable form:

    * key on *drop_keys* → removed entirely;
    * key on *safe_keys* and value a bounded scalar → exported as-is
      (non-string scalars are stringified by the exporters, not here);
    * anything else → value replaced by :func:`hash_value`'s digest
      tag.  Containers are hashed whole — telemetry never walks into a
      payload.
    """

    def __init__(
        self,
        *,
        safe_keys: frozenset[str] | set[str] = SAFE_KEYS,
        drop_keys: frozenset[str] | set[str] = DROP_KEYS,
    ) -> None:
        self.safe_keys = frozenset(safe_keys)
        self.drop_keys = frozenset(drop_keys)

    def value(self, key: str, value: object):
        """The exportable form of one attribute, or ``None`` to drop."""
        if key in self.drop_keys:
            return None
        if key in self.safe_keys:
            if isinstance(value, bool) or isinstance(value, (int, float)):
                return value
            if isinstance(value, str) and len(value) <= _MAX_SAFE_STR:
                return value
        return hash_value(value)

    def scrub(self, attrs: dict) -> dict:
        """Exportable copy of *attrs* (drops, passes, hashes per key)."""
        out: dict = {}
        for key, value in attrs.items():
            scrubbed = self.value(str(key), value)
            if scrubbed is not None:
                out[str(key)] = scrubbed
        return out


#: The policy used by the default tracer and registry.
DEFAULT_POLICY = RedactionPolicy()

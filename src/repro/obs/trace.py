"""Explicit-clock spans with one trace id per request lifecycle.

A :class:`Tracer` answers the operator question the latency report
cannot: *which phase* of one request was slow — admission, waiting for
a batch, the pairing math, the journal append, or the reply?  Design
constraints, in order:

* **near-zero cost when off.**  ``span()`` on a disabled tracer is one
  attribute check returning a shared no-op singleton — no allocation,
  no clock read, no string work.  The hot verify loop runs the same
  bytecode it ran before this module existed, guarded the same way
  ``REPRO_FASTEXP`` guards the comb tables.
* **explicit clock.**  The tracer reads time only through the callable
  it was built with, so service code under the fault harness's
  simulated clocks traces identically to wall-clock runs, and tests
  assert on exact timestamps.
* **bounded memory.**  Finished spans land in a ring buffer
  (``capacity`` newest records); a service traced for hours degrades
  to "the recent window", never to OOM.
* **privacy.**  Every attribute passes the
  :class:`~repro.obs.redact.RedactionPolicy` gate *at record time* —
  a secret that never enters the buffer can never be exported.

Trace context is a stack: a span opened while another is active
inherits its trace id and becomes its child, which is how one
``submit`` span accumulates ``admission`` and ``journal_append``
children without any plumbing at the call sites.  Phases that run
outside the request's call stack (the batcher verifying many requests
in one flush) attach themselves with an explicit ``trace=`` id or via
:meth:`Tracer.emit`.

Export is the Chrome trace-event JSON the ``chrome://tracing`` and
Perfetto UIs load directly: a JSON array, one complete-event object
per line (line-oriented for grepping, valid JSON as a whole).  Each
trace id gets its own ``tid`` lane plus a thread-name metadata record,
so one request reads top-to-bottom as a timeline.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.obs.redact import DEFAULT_POLICY, RedactionPolicy

__all__ = ["SpanRecord", "Span", "Tracer", "NOOP_SPAN"]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span, already scrubbed, as stored in the ring."""

    trace: str
    span_id: int
    parent: int | None
    name: str
    start: float
    end: float
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class _NoopSpan:
    """The shared do-nothing span handed out while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set(self, **attrs) -> None:
        return None


#: Singleton returned by every ``span()`` call on a disabled tracer;
#: the overhead smoke test asserts on its identity.
NOOP_SPAN = _NoopSpan()


class Span:
    """An open span; close it (``with`` or :meth:`finish`) to record it."""

    __slots__ = ("_tracer", "name", "trace", "span_id", "parent", "start",
                 "_attrs", "_open")

    def __init__(self, tracer: "Tracer", name: str, trace: str,
                 span_id: int, parent: int | None, start: float,
                 attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.trace = trace
        self.span_id = span_id
        self.parent = parent
        self.start = start
        self._attrs = attrs
        self._open = True

    def set(self, **attrs) -> None:
        """Attach attributes discovered mid-span (scrubbed on finish)."""
        self._attrs.update(attrs)

    def finish(self, *, end: float | None = None) -> None:
        if not self._open:
            return
        self._open = False
        self._tracer._finish(self, end)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> None:
        self.finish()


class Tracer:
    """Span recorder with a context stack and a bounded ring buffer."""

    def __init__(
        self,
        *,
        enabled: bool = True,
        clock: Callable[[], float] = time.perf_counter,
        capacity: int = 4096,
        policy: RedactionPolicy | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.enabled = enabled
        self.clock = clock
        self.capacity = capacity
        self.policy = policy if policy is not None else DEFAULT_POLICY
        self._ring: deque[SpanRecord] = deque(maxlen=capacity)
        self._stack: list[Span] = []
        self._next_span = 0
        self._next_trace = 0
        self.dropped = 0  # records pushed out of the ring

    def __len__(self) -> int:
        return len(self._ring)

    # -- recording ---------------------------------------------------------
    def span(self, name: str, *, trace: str | None = None, **attrs):
        """Open a span; returns :data:`NOOP_SPAN` while disabled.

        With ``trace=None`` the span joins the innermost active span's
        trace (and becomes its child); with no active span it starts a
        fresh background trace.  An explicit ``trace=`` attaches the
        span to that trace without parenting across traces.
        """
        if not self.enabled:
            return NOOP_SPAN
        current = self._stack[-1] if self._stack else None
        if trace is None:
            if current is not None:
                trace = current.trace
            else:
                trace = f"bg{self._next_trace}"
                self._next_trace += 1
        parent = (
            current.span_id
            if current is not None and current.trace == trace
            else None
        )
        span = Span(self, name, trace, self._next_span, parent,
                    self.clock(), attrs)
        self._next_span += 1
        self._stack.append(span)
        return span

    def emit(self, name: str, *, trace: str, start: float, end: float,
             **attrs) -> None:
        """Record one already-timed span (the explicit-clock path).

        Used where the work happened outside the caller's stack — e.g.
        the batcher attributing one flush's wall time to every request
        verified in it.
        """
        if not self.enabled:
            return
        self._record(SpanRecord(
            trace=trace, span_id=self._next_span, parent=None, name=name,
            start=start, end=end, attrs=self.policy.scrub(attrs),
        ))
        self._next_span += 1

    def current_trace(self) -> str | None:
        """Trace id of the innermost active span, if any."""
        return self._stack[-1].trace if self._stack else None

    def _finish(self, span: Span, end: float | None) -> None:
        # tolerate out-of-order closes (an inner span leaked by an
        # exception): pop down to — and including — this span
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        self._record(SpanRecord(
            trace=span.trace, span_id=span.span_id, parent=span.parent,
            name=span.name, start=span.start,
            end=self.clock() if end is None else end,
            attrs=self.policy.scrub(span._attrs),
        ))

    def _record(self, record: SpanRecord) -> None:
        if len(self._ring) == self._ring.maxlen:
            self.dropped += 1
        self._ring.append(record)

    # -- reading -----------------------------------------------------------
    def records(self) -> list[SpanRecord]:
        """Finished spans, oldest first (newest ``capacity`` kept)."""
        return list(self._ring)

    def clear(self) -> None:
        self._ring.clear()
        self.dropped = 0

    # -- export ------------------------------------------------------------
    def export_events(self) -> list[dict]:
        """Chrome trace-event dicts: one lane (tid) per trace id."""
        records = sorted(self._ring, key=lambda r: (r.start, r.span_id))
        base = records[0].start if records else 0.0
        lanes: dict[str, int] = {}
        events: list[dict] = []
        for record in records:
            tid = lanes.get(record.trace)
            if tid is None:
                tid = lanes[record.trace] = len(lanes) + 1
                events.append({
                    "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                    "ts": 0, "args": {"name": record.trace},
                })
            args = dict(record.attrs)
            args["trace"] = record.trace
            if record.parent is not None:
                args["parent"] = record.parent
            events.append({
                "name": record.name,
                "cat": "repro",
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "ts": round((record.start - base) * 1e6, 3),
                "dur": round(record.duration * 1e6, 3),
                "id": record.span_id,
                "args": args,
            })
        return events

    def export_jsonl(self) -> str:
        """The events as a JSON array with one event per line.

        The whole string is valid JSON (``chrome://tracing`` / Perfetto
        load it as-is) and each event sits alone on its line, so shell
        tooling — including the planted-secret grep test — works
        line-by-line.
        """
        events = self.export_events()
        if not events:
            return "[]\n"
        lines = [json.dumps(event, sort_keys=True) for event in events]
        return "[\n" + ",\n".join(lines) + "\n]\n"

    def dump(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.export_jsonl())

"""repro.obs — zero-dependency tracing and metrics for the market.

The observability layer the serving stack reports into:

* :mod:`repro.obs.trace` — explicit-clock spans, one trace id per
  request, ring-buffered, exported as Chrome/Perfetto trace JSON;
* :mod:`repro.obs.registry` — typed ``Counter``/``Gauge``/``Histogram``
  instruments with fixed log-scale buckets, mergeable snapshots, and
  Prometheus-text/JSON exporters;
* :mod:`repro.obs.redact` — the allowlist privacy gate every exported
  attribute and label passes through (serials, account ids, coin
  values and blinded material are hashed or dropped, never published).

A :class:`Telemetry` pairs one tracer with one registry; the serving
layer threads a single ``Telemetry`` through service → bank → batcher
→ admission → journal so one trace id follows a request end to end
and all counters land in one scrape.

**Toggles.**  The module-default telemetry starts from the
environment: ``REPRO_TRACE=1`` enables tracing, ``REPRO_METRICS=1``
enables metrics (both default **off**; the disabled paths cost one
attribute check per event — the same guard discipline as
``REPRO_FASTEXP``).  :func:`configure` flips the defaults at runtime;
tests build private ``Telemetry.enabled()`` stacks instead of touching
the global one.

Layering: this package imports nothing from the rest of ``repro``
(enforced by ``tools/lint_imports.py``) — in particular it may not
import ``service``; the service imports *it*.

See ``docs/observability.md`` for the span/metric inventory and
``docs/runbook.md`` for how an operator reads the exports.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.obs.redact import (
    DEFAULT_POLICY,
    DROP_KEYS,
    SAFE_KEYS,
    RedactionPolicy,
    hash_value,
    trace_id,
)
from repro.obs.registry import (
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import NOOP_SPAN, Span, SpanRecord, Tracer

__all__ = [
    "Telemetry",
    "Tracer",
    "Span",
    "SpanRecord",
    "NOOP_SPAN",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "RedactionPolicy",
    "DEFAULT_POLICY",
    "SAFE_KEYS",
    "DROP_KEYS",
    "hash_value",
    "trace_id",
    "get_default",
    "configure",
]


def _env_flag(name: str) -> bool:
    return os.environ.get(name, "0").strip().lower() in ("1", "true", "yes", "on")


@dataclass
class Telemetry:
    """One tracer + one registry: the unit the service stack shares."""

    tracer: Tracer
    registry: MetricsRegistry

    @property
    def tracing(self) -> bool:
        return self.tracer.enabled

    @property
    def metrics(self) -> bool:
        return self.registry.enabled

    @classmethod
    def enabled(cls, *, capacity: int = 4096,
                policy: RedactionPolicy | None = None,
                clock=None) -> "Telemetry":
        """A fully-on private stack (what tests and the demo build)."""
        kwargs = {"enabled": True, "capacity": capacity}
        if policy is not None:
            kwargs["policy"] = policy
        if clock is not None:
            kwargs["clock"] = clock
        return cls(
            tracer=Tracer(**kwargs),
            registry=MetricsRegistry(enabled=True, policy=policy),
        )

    @classmethod
    def disabled(cls) -> "Telemetry":
        """A fully-off private stack (isolates a test from the default)."""
        return cls(tracer=Tracer(enabled=False),
                   registry=MetricsRegistry(enabled=False))

    def export(self) -> dict:
        """All exports in one dict: trace JSONL, metrics JSON + text."""
        return {
            "trace": self.tracer.export_jsonl(),
            "metrics": self.registry.snapshot(),
            "prometheus": self.registry.to_prometheus(),
        }

    def dump(self, directory) -> dict[str, str]:
        """Write ``trace.json`` / ``metrics.json`` / ``metrics.prom``.

        Returns the path of each file written.  The directory is
        created if missing.
        """
        os.makedirs(directory, exist_ok=True)
        paths = {
            "trace": os.path.join(directory, "trace.json"),
            "metrics": os.path.join(directory, "metrics.json"),
            "prometheus": os.path.join(directory, "metrics.prom"),
        }
        self.tracer.dump(paths["trace"])
        with open(paths["metrics"], "w", encoding="utf-8") as fh:
            fh.write(self.registry.to_json())
        with open(paths["prometheus"], "w", encoding="utf-8") as fh:
            fh.write(self.registry.to_prometheus())
        return paths


#: The process-default telemetry; off unless the environment says
#: otherwise, so an uninstrumented run pays one attribute check per
#: would-be event and allocates nothing.
_DEFAULT = Telemetry(
    tracer=Tracer(enabled=_env_flag("REPRO_TRACE")),
    registry=MetricsRegistry(enabled=_env_flag("REPRO_METRICS")),
)


def get_default() -> Telemetry:
    """The telemetry components fall back to when given none."""
    return _DEFAULT


def configure(*, trace: bool | None = None,
              metrics: bool | None = None) -> dict[str, bool]:
    """Flip the default telemetry's toggles; returns the prior state.

    Both flags are read per event, so flipping affects components that
    were already built against the default stack.
    """
    previous = {"trace": _DEFAULT.tracer.enabled,
                "metrics": _DEFAULT.registry.enabled}
    if trace is not None:
        _DEFAULT.tracer.enabled = trace
    if metrics is not None:
        _DEFAULT.registry.enabled = metrics
    return previous

"""Credit circulation: SP-to-SP service trading and redemption.

Paper Section III-A: "The currency ... can be used to buy sensing
services from other SPs, or converted to real-world rewards or even
money."  Two pieces realize that sentence:

* :func:`trade_sensing_service` — an earner turns around and *buys*
  sensing work from another participant: it simply plays the JO role of
  Algorithm 1 with its existing account.  Because PPMSdec's withdrawal
  is blind and jobs are registered under fresh pseudonyms, the buyer's
  history as a worker stays unlinkable to its activity as a buyer.
* :class:`RedemptionDesk` — converts virtual credits into real-world
  reward vouchers.  Redemption (like deposit and withdrawal) is an
  authenticated operation on the account — the identity-revealing
  endpoints of the system are exactly the bank's books, as the paper's
  model prescribes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.ppms_dec import JobOwnerDec, PPMSdecSession, SensingParticipantDec
from repro.crypto.hashing import sha256

__all__ = ["RedemptionVoucher", "RedemptionDesk", "trade_sensing_service"]


@dataclass(frozen=True)
class RedemptionVoucher:
    """A signed-ish receipt for credits converted to real-world rewards.

    The voucher id commits to account, amount and a bank nonce; the
    real-world fulfilment side (gift card, bank transfer, ...) is out of
    the simulation's scope.
    """

    voucher_id: bytes
    aid: str
    amount: int


@dataclass
class RedemptionDesk:
    """The MA's credit-out window."""

    bank: object  # DECBank; duck-typed so PPMSpbs ledgers could plug in too
    rng: random.Random
    issued: list[RedemptionVoucher] = field(default_factory=list)

    def redeem(self, aid: str, amount: int) -> RedemptionVoucher:
        """Convert *amount* credits from *aid* into a voucher.

        Raises :class:`ValueError` on insufficient balance; the debit
        and the voucher issue are atomic.
        """
        if amount < 1:
            raise ValueError("redemption amount must be positive")
        balance = self.bank.accounts.get(aid)
        if balance is None:
            raise ValueError(f"unknown account {aid!r}")
        if balance < amount:
            raise ValueError(f"account {aid!r} holds {balance} < {amount}")
        nonce = self.rng.getrandbits(128).to_bytes(16, "big")
        voucher = RedemptionVoucher(
            voucher_id=sha256(b"redemption", aid.encode(), amount.to_bytes(8, "big"), nonce)[:16],
            aid=aid,
            amount=amount,
        )
        self.bank.accounts[aid] = balance - amount
        self.issued.append(voucher)
        return voucher


def trade_sensing_service(
    session: PPMSdecSession,
    buyer_aid: str,
    seller: SensingParticipantDec,
    *,
    payment: int,
    description: str = "peer sensing service",
    data_payload: bytes = b"peer-sensing-data",
) -> JobOwnerDec:
    """An earned-credits holder buys sensing work from another SP.

    The buyer's account must already exist at the session's bank (it
    typically earned its balance as a worker).  A fresh
    :class:`~repro.core.ppms_dec.JobOwnerDec` persona is created over
    that account and a complete Algorithm-1 round runs against
    *seller*.  Returns the buyer persona (whose wallets may retain
    change from the withdrawal).
    """
    coin_value = 1 << session.params.tree_level
    if buyer_aid not in session.ma.bank.accounts:
        raise ValueError(f"buyer account {buyer_aid!r} not found")
    if session.ma.bank.balance(buyer_aid) < coin_value:
        # withdrawals are whole coins of 2^L; the change comes back below
        raise ValueError(
            f"buyer needs at least one whole coin ({coin_value}) on account "
            f"to withdraw; change is re-deposited after the trade"
        )
    buyer = JobOwnerDec(
        buyer_aid,
        session.params,
        session.rng,
        rsa_bits=session.rsa_bits,
        break_algorithm=session.break_algorithm,
    )
    session.run_job(
        buyer,
        [seller],
        description=description,
        payment=payment,
        data_payload=data_payload,
    )
    # return the unspent part of the withdrawal, so the net account
    # movement is exactly the service price
    buyer.deposit_change(session.ma, session.transport, session.counter)
    return buyer

"""Persistence and audit for the PPMSpbs bank.

The unitary-market bank (:class:`~repro.core.ppms_pbs.VirtualBankPbs`)
carries different books than the DEC bank: balances keyed by real-key
fingerprints, the spent-serial set (per-JO freshness), and the
transaction log the mechanism deliberately exposes.  Same persistence
contract as :mod:`repro.core.ledger`: codec body + integrity digest,
books-only restore, and a findings-style audit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ppms_pbs import VirtualBankPbs
from repro.crypto.hashing import sha256
from repro.net.codec import decode, encode

__all__ = [
    "PbsSnapshotError",
    "snapshot_pbs_bank",
    "restore_pbs_bank",
    "audit_pbs_bank",
    "PbsAuditReport",
]

_MAGIC = b"repro-pbs-bank-snapshot-v1"


class PbsSnapshotError(Exception):
    """Snapshot blob rejected (corruption, version)."""


def snapshot_pbs_bank(bank: VirtualBankPbs) -> bytes:
    """Serialize the PBS bank's books to bytes."""
    state = {
        "accounts": {aid.hex(): bal for aid, bal in bank.accounts.items()},
        "bound_keys": {aid.hex(): list(key) for aid, key in bank.bound_keys.items()},
        "spent_serials": sorted(
            [jo.hex(), serial] for (jo, serial) in bank.spent_serials
        ),
        "transactions": [[payer.hex(), payee.hex()] for payer, payee in bank.transaction_log],
    }
    body = encode(state)
    return _MAGIC + sha256(_MAGIC, body) + body


def restore_pbs_bank(bank: VirtualBankPbs, blob: bytes) -> None:
    """Load a snapshot into *bank*, replacing its books."""
    if not blob.startswith(_MAGIC):
        raise PbsSnapshotError("not a PBS bank snapshot (bad magic)")
    digest, body = blob[len(_MAGIC) : len(_MAGIC) + 32], blob[len(_MAGIC) + 32 :]
    if sha256(_MAGIC, body) != digest:
        raise PbsSnapshotError("snapshot integrity digest mismatch")
    try:
        state = decode(body)
    except ValueError as exc:
        raise PbsSnapshotError(f"snapshot body undecodable: {exc}") from exc
    bank.accounts.clear()
    bank.accounts.update({bytes.fromhex(a): b for a, b in state["accounts"].items()})
    bank.bound_keys.clear()
    bank.bound_keys.update(
        {bytes.fromhex(a): tuple(k) for a, k in state["bound_keys"].items()}
    )
    bank.spent_serials.clear()
    bank.spent_serials.update(
        (bytes.fromhex(jo), serial) for jo, serial in state["spent_serials"]
    )
    bank.transaction_log[:] = [
        (bytes.fromhex(payer), bytes.fromhex(payee))
        for payer, payee in state["transactions"]
    ]


@dataclass(frozen=True)
class PbsAuditReport:
    """Outcome of a PBS-bank book audit."""

    findings: tuple[str, ...]

    @property
    def clean(self) -> bool:
        return not self.findings


def audit_pbs_bank(bank: VirtualBankPbs) -> PbsAuditReport:
    """Consistency-check the PBS bank's books.

    Checks: no negative balances, every account has a bound key, every
    transaction-log party is a known account, and the number of
    transactions matches the number of spent serials (every unitary
    transfer consumed exactly one serial).
    """
    findings: list[str] = []
    for aid, balance in bank.accounts.items():
        if balance < 0:
            findings.append(f"negative balance on account {aid.hex()}")
        if aid not in bank.bound_keys:
            findings.append(f"account {aid.hex()} has no bound key")
    for payer, payee in bank.transaction_log:
        for party in (payer, payee):
            if party not in bank.accounts:
                findings.append(f"transaction references unknown account {party.hex()}")
    if len(bank.transaction_log) != len(bank.spent_serials):
        findings.append(
            f"{len(bank.transaction_log)} transactions vs "
            f"{len(bank.spent_serials)} spent serials (must match 1:1)"
        )
    return PbsAuditReport(findings=tuple(findings))

"""Cash-break algorithms (paper Section IV-C, Algorithms 2 and 3).

Breaking the payment *w* into smaller coins is PPMSdec's defence
against the *denomination attack*: if the MA sees a deposit stream
whose sum uniquely matches a published job's payment, it can link the
depositing SP to that job.  Breaking w into k coins makes the received
payment compatible with any of the ``Σ C(k, i)`` subset sums, and as an
SP accumulates coins from several jobs the possible sums cover all of
``[1, 2^L]``.

Three strategies (all return a list of ``L + 2`` slot denominations —
zeros are fake-coin slots, so message length is value-independent):

* :func:`unitary_break` — ``w`` coins of value 1 (the maximally private
  but expensive scheme of Section IV-A4); slot count ``2^L``.
* :func:`pcba` — Privacy-aware Cash Break (Alg. 2): follow the binary
  representation of *w* directly.
* :func:`epcba` — Enhanced PCBA (Alg. 3): pick whichever of
  ``B(w)`` and ``B(w-1) + 1`` yields *more* coins (more, smaller
  denominations ⇒ more subset sums ⇒ stronger privacy).

:func:`coverage` quantifies the privacy effect: the set of payment
values a given coin multiset is compatible with.
"""

from __future__ import annotations


__all__ = [
    "binary_digits",
    "BREAK_FN_BY_NAME",
    "unitary_break",
    "pcba",
    "epcba",
    "coverage",
    "subset_sums",
    "validate_break",
]


def binary_digits(value: int, width: int) -> list[int]:
    """``B(value)`` — the *width*-bit binary representation.

    Index *i* (0-based here; the paper is 1-based) holds the i-th
    least-significant bit.
    """
    if value < 0:
        raise ValueError("value must be non-negative")
    if value >= (1 << width):
        raise ValueError(f"{value} does not fit in {width} bits")
    return [(value >> i) & 1 for i in range(width)]


def _check_amount(w: int, level: int) -> None:
    if not 1 <= w <= (1 << level):
        raise ValueError(f"payment must be in [1, 2^{level}]")


def unitary_break(w: int, level: int) -> list[int]:
    """Break *w* into ``w`` unitary coins, padded to ``2^level`` slots."""
    _check_amount(w, level)
    return [1] * w + [0] * ((1 << level) - w)


def pcba(w: int, level: int) -> list[int]:
    """Privacy-aware Cash Break (Algorithm 2).

    Returns ``L + 2`` denominations ``w_i = 2^(i-1) * B(w)[i]`` (last
    slot always 0 to match EPCBA's output shape, so the two algorithms
    are wire-compatible).
    """
    _check_amount(w, level)
    bits = binary_digits(w, level + 1)
    return [(1 << i) * bits[i] for i in range(level + 1)] + [0]


def epcba(w: int, level: int) -> list[int]:
    """Enhanced Privacy-aware Cash Break (Algorithm 3).

    Compares the popcount of ``w`` and ``w - 1``; when ``w - 1`` has at
    least as many set bits, break ``w - 1`` binary-wise and add one
    extra unitary coin — yielding more (hence smaller) coins and more
    possible subset sums.
    """
    _check_amount(w, level)
    a = bin(w).count("1")
    a_prime = bin(w - 1).count("1")
    if a <= a_prime:
        bits = binary_digits(w - 1, level + 1)
        return [(1 << i) * bits[i] for i in range(level + 1)] + [1]
    bits = binary_digits(w, level + 1)
    return [(1 << i) * bits[i] for i in range(level + 1)] + [0]


def validate_break(denominations: list[int], w: int, level: int) -> bool:
    """Invariant check: slots sum to *w*, each slot is 0 or a power of 2
    no larger than ``2^level``."""
    if sum(denominations) != w:
        return False
    for d in denominations:
        if d == 0:
            continue
        if d & (d - 1) or d > (1 << level):
            return False
    return True


#: name -> break function, shared by the protocol layer and the attack sims
BREAK_FN_BY_NAME = {
    "unitary": unitary_break,
    "pcba": pcba,
    "epcba": epcba,
}


def subset_sums(denominations: list[int]) -> set[int]:
    """All nonzero sums of sub-multisets of the (nonzero) coins.

    Incremental set accumulation — O(#coins × #distinct sums), not the
    2^k of naive enumeration, so unitary breaks of large payments stay
    cheap.
    """
    sums: set[int] = set()
    for d in denominations:
        if d > 0:
            sums |= {d} | {s + d for s in sums}
    return sums


def coverage(denominations: list[int]) -> set[int]:
    """Payment values this coin multiset is *compatible* with.

    From the MA's viewpoint, a deposit stream carrying these coins
    could have originated from any job whose payment equals one of
    these subset sums — the paper's measure of how much the break
    blunts the denomination attack.
    """
    return subset_sums(denominations)

"""Shared market substrate: job profiles, bulletin board, data reports.

A mobile-sensing market (paper Section III-A) consolidates many sensing
jobs in one place.  The MA publishes registered jobs on a bulletin
board all residents can read; SPs pick jobs, submit sensing data, and
get paid.  This module holds the mechanism-independent pieces; the two
mechanisms (:mod:`~repro.core.ppms_dec`, :mod:`~repro.core.ppms_pbs`)
build their message flows on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["JobProfile", "BulletinBoard", "DataReport", "new_job_id"]

_job_counter = 0


def new_job_id() -> str:
    """Fresh market-unique job identifier (module-global counter)."""
    global _job_counter
    _job_counter += 1
    return f"job-{_job_counter:06d}"


@dataclass(frozen=True)
class JobProfile:
    """A published sensing job.

    ``owner_pseudonym`` is the job owner's *ephemeral* identity (an RSA
    public key fingerprint in both mechanisms — never the real account
    identity).  ``payment`` is per-SP; unitary-payment markets
    (PPMSpbs) fix it to 1.
    """

    job_id: str
    description: str
    payment: int
    owner_pseudonym: bytes

    def __post_init__(self) -> None:
        if self.payment < 1:
            raise ValueError("payment must be at least 1")
        if not self.owner_pseudonym:
            raise ValueError("job must carry an owner pseudonym")


@dataclass
class BulletinBoard:
    """The MA's public bulletin board (append-only)."""

    entries: list[JobProfile] = field(default_factory=list)

    def publish(self, profile: JobProfile) -> None:
        if any(e.job_id == profile.job_id for e in self.entries):
            raise ValueError(f"job {profile.job_id!r} already published")
        self.entries.append(profile)

    def lookup(self, job_id: str) -> JobProfile:
        for entry in self.entries:
            if entry.job_id == job_id:
                return entry
        raise KeyError(job_id)

    def jobs(self) -> list[JobProfile]:
        """All published jobs, oldest first (what every resident sees)."""
        return list(self.entries)


@dataclass(frozen=True)
class DataReport:
    """Sensing data submitted under a pseudonym.

    The payload is opaque bytes; :mod:`repro.workloads` generates
    realistic payloads (noise maps, health telemetry, transit traces).
    """

    job_id: str
    submitter_pseudonym: bytes
    payload: bytes

    def __post_init__(self) -> None:
        if not self.payload:
            raise ValueError("empty data report")

"""Bank-state persistence: snapshot, restore, audit.

A market administrator restarts; its books must survive.  The bank's
security-critical state is exactly three structures — account balances,
the withdrawal ledger, and the deposited-serial store (losing the
serial store would reopen every double-spend) — so snapshots serialize
precisely those through the canonical codec, with an integrity digest
over the encoding.

:func:`audit_bank` additionally checks the books *make sense*: no
negative balances, conservation between issued value and
(deposits + outstanding float), and serial-store/record consistency.
It returns findings rather than raising, so operators can inspect a
restored snapshot before going live.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import sha256
from repro.ecash.dec import DECBank
from repro.net.codec import decode, encode

__all__ = ["SnapshotError", "snapshot_bank", "restore_bank", "audit_bank", "AuditReport"]

_MAGIC = b"repro-bank-snapshot-v1"


class SnapshotError(Exception):
    """Snapshot blob rejected (corruption, version, digest mismatch)."""


def snapshot_bank(bank: DECBank) -> bytes:
    """Serialize the bank's security-critical state to bytes."""
    state = {
        "accounts": dict(bank.accounts),
        "withdrawals": list(bank.withdrawals),
        "serials": [
            # serial -> (aid, node level, node index, deposit seq)
            [serial, record[0], record[1], record[2], record[3]]
            for serial, record in sorted(bank._seen_serials.items())
        ],
        "deposit_seq": bank.deposit_seq,
        "tree_level": bank.params.tree_level,
    }
    body = encode(state)
    return _MAGIC + sha256(_MAGIC, body) + body


def restore_bank(bank: DECBank, blob: bytes) -> None:
    """Load a snapshot into *bank* (parameters/keys must already match).

    The bank's cryptographic identity (CL keypair, DEC parameters) is
    not part of the snapshot — restoring onto a bank with a different
    key would silently orphan all outstanding coins, so callers manage
    keys separately and this function only restores the books.
    """
    if not blob.startswith(_MAGIC):
        raise SnapshotError("not a bank snapshot (bad magic)")
    digest, body = blob[len(_MAGIC) : len(_MAGIC) + 32], blob[len(_MAGIC) + 32 :]
    if sha256(_MAGIC, body) != digest:
        raise SnapshotError("snapshot integrity digest mismatch")
    try:
        state = decode(body)
    except ValueError as exc:
        raise SnapshotError(f"snapshot body undecodable: {exc}") from exc
    if state.get("tree_level") != bank.params.tree_level:
        raise SnapshotError(
            f"snapshot tree level {state.get('tree_level')} does not match "
            f"bank parameters (level {bank.params.tree_level})"
        )
    bank.accounts.clear()
    bank.accounts.update(state["accounts"])
    bank.withdrawals[:] = list(state["withdrawals"])
    bank._seen_serials.clear()
    for serial, aid, level, index, seq in state["serials"]:
        bank._seen_serials[serial] = (aid, level, index, seq)
    bank.deposit_seq = state.get("deposit_seq", len(state["serials"]))


@dataclass(frozen=True)
class AuditReport:
    """Outcome of a bank-book audit."""

    findings: tuple[str, ...]

    @property
    def clean(self) -> bool:
        return not self.findings


def audit_bank(bank: DECBank, *, outstanding_float: int | None = None,
               allow_foreign_value: bool = False) -> AuditReport:
    """Consistency-check the bank's books.

    *outstanding_float* is the total coin value known to still live in
    wallets outside the bank; when provided, exact conservation is
    checked (issued value == deposited value + float).

    *allow_foreign_value* skips the "deposited exceeds issued" check:
    on one slice of a cluster, coins withdrawn elsewhere legitimately
    arrive as deposits, so that inequality only holds globally — the
    cluster sweep re-checks it across all slices.
    """
    findings: list[str] = []
    coin_value = 1 << bank.params.tree_level

    for aid, balance in bank.accounts.items():
        if balance < 0:
            findings.append(f"negative balance on account {aid!r}: {balance}")

    for aid in bank.withdrawals:
        if aid not in bank.accounts:
            findings.append(f"withdrawal recorded for unknown account {aid!r}")

    deposited_value = 0
    per_record_serials: dict[tuple, int] = {}
    for serial, record in bank._seen_serials.items():
        aid, level, index, _seq = record
        if aid not in bank.accounts:
            findings.append(f"deposited serial credited to unknown account {aid!r}")
        per_record_serials[record] = per_record_serials.get(record, 0) + 1
    for (aid, level, index, _seq), count in per_record_serials.items():
        expected = 1 << (bank.params.tree_level - level)
        if count != expected:
            findings.append(
                f"deposit record ({aid!r}, node L{level}#{index}) covers "
                f"{count} serials, expected {expected}"
            )
        deposited_value += 1 << (bank.params.tree_level - level)

    issued_value = coin_value * len(bank.withdrawals)
    if deposited_value > issued_value and not allow_foreign_value:
        findings.append(
            f"deposited value {deposited_value} exceeds issued value {issued_value}"
        )
    if outstanding_float is not None:
        if issued_value != deposited_value + outstanding_float:
            findings.append(
                f"conservation violated: issued {issued_value} != deposited "
                f"{deposited_value} + float {outstanding_float}"
            )
    return AuditReport(findings=tuple(findings))

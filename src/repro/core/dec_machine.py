"""PPMSdec as message-driven state machines (Algorithm 1 on the engine).

The heavyweight mechanism in production shape: parties that react only
to envelopes, with the full step order of Algorithm 1 —

    1. JO -> MA   job-registration {jd, w, rpk}
    2. JO -> MA   withdraw-request {request}         (blind)
       MA -> JO   withdraw-response {signature}
    3. SP -> MA   labor-registration {job, rpk}
       MA -> JO   labor-forward {job, rpk}
    4. JO -> MA   payment-submission {pseudonym, ciphertext}
    5. SP -> MA   data-submission {pseudonym, job, data}
       MA -> SP   payment-delivery {ciphertext}
    6. SP -> MA   payment-confirm {pseudonym}
       MA -> JO   data-delivery {job, data}
    7. SP -> MA   deposit {aid, coin}                (per coin)

State machines enforce the order: an SP rejects a payment before it
registered, the MA refuses deposits of malformed coins, the JO refuses
labor registrations for jobs it never published.  All coins are
cash-broken and fake-padded exactly as in the session implementation.
"""

from __future__ import annotations

import random
from enum import Enum, auto
from typing import Any

from repro.core.cashbreak import BREAK_FN_BY_NAME
from repro.core.engine import Outbound, Party, ProtocolError, Router
from repro.core.market import BulletinBoard, JobProfile, new_job_id
from repro.crypto import rsa
from repro.ecash.dec import (
    Coin,
    DECBank,
    DoubleSpendError,
    begin_withdrawal,
    finish_withdrawal,
)
from repro.ecash.fake import pad_payment
from repro.ecash.spend import DECParams, SpendToken, create_spend, verify_spend
from repro.ecash.wallet import InsufficientFunds, Wallet
from repro.net.codec import decode, encode

__all__ = ["MADecMachine", "JODecMachine", "SPDecMachine", "run_dec_machine_market"]

MA = "MA"
_SP_PREFIX = "dsp:"


def sp_party_name(pseudonym: bytes) -> str:
    return _SP_PREFIX + pseudonym.hex()


class SPDecState(Enum):
    INIT = auto()
    REGISTERED = auto()
    DATA_SENT = auto()
    PAID = auto()


class MADecMachine(Party):
    """MA for the message-driven PPMSdec market."""

    def __init__(self, params: DECParams, rng: random.Random) -> None:
        super().__init__(MA)
        self.params = params
        self.rng = rng
        self.bank = DECBank.create(params, rng)
        self.board = BulletinBoard()
        self.jo_for_job: dict[str, str] = {}
        self.account_of: dict[str, str] = {}  # party name -> bank account id
        self._pending_payments: dict[bytes, bytes] = {}
        self._held_reports: dict[bytes, dict] = {}
        self.clock = 0.0

    def register_resident(self, party_name: str, aid: str, funds: int) -> None:
        """Authenticated account opening (driver-level, like enrolment)."""
        self.bank.open_account(aid, funds)
        self.account_of[party_name] = aid

    def handle(self, sender: str, kind: str, payload: Any) -> list[Outbound]:
        if kind == "job-registration":
            profile = JobProfile(
                job_id=new_job_id(),
                description=payload["jd"],
                payment=payload["w"],
                owner_pseudonym=bytes(payload["rpk_fingerprint"]),
            )
            self.board.publish(profile)
            self.jo_for_job[profile.job_id] = sender
            return [Outbound(sender, "job-published", {"job": profile.job_id})]
        if kind == "withdraw-request":
            aid = self.account_of.get(sender)
            if aid is None:
                raise ProtocolError("withdrawal from unenrolled resident")
            try:
                signature = self.bank.issue(aid, payload["request"])
            except ValueError as exc:
                raise ProtocolError(str(exc)) from exc
            return [Outbound(sender, "withdraw-response", {"signature": signature})]
        if kind == "labor-registration":
            jo = self.jo_for_job.get(payload["job"])
            if jo is None:
                raise ProtocolError(f"labor registration for unknown job {payload['job']!r}")
            return [Outbound(jo, "labor-forward",
                             {"job": payload["job"], "rpk": payload["rpk"]})]
        if kind == "payment-submission":
            self._pending_payments[bytes(payload["pseudonym"])] = payload["ciphertext"]
            return self._maybe_deliver(bytes(payload["pseudonym"]))
        if kind == "data-submission":
            pseud = bytes(payload["pseudonym"])
            self._held_reports[pseud] = {"job": payload["job"], "data": payload["data"]}
            return self._maybe_deliver(pseud)
        if kind == "payment-confirm":
            pseud = bytes(payload["pseudonym"])
            report = self._held_reports.pop(pseud, None)
            if report is None:
                raise ProtocolError("confirmation without a held report")
            jo = self.jo_for_job.get(report["job"])
            if jo is None:  # pragma: no cover - board and report kept in sync
                raise ProtocolError("report for unknown job")
            return [Outbound(jo, "data-delivery", report)]
        if kind == "deposit":
            aid = self.account_of.get(sender)
            if aid is None or aid != payload["aid"]:
                raise ProtocolError("deposit with mismatched account identity")
            token = payload["coin"]
            if not isinstance(token, SpendToken):
                raise ProtocolError("malformed coin in deposit")
            self.clock += 1.0
            try:
                self.bank.deposit(aid, token)
            except DoubleSpendError as exc:
                raise ProtocolError(f"double spend: {exc}") from exc
            except ValueError as exc:
                raise ProtocolError(f"invalid coin: {exc}") from exc
            return []
        raise ProtocolError(f"MA cannot handle message kind {kind!r}")

    def _maybe_deliver(self, pseud: bytes) -> list[Outbound]:
        if pseud in self._pending_payments and pseud in self._held_reports:
            ciphertext = self._pending_payments.pop(pseud)
            return [Outbound(sp_party_name(pseud), "payment-delivery",
                             {"ciphertext": ciphertext})]
        return []


class JODecMachine(Party):
    """A job owner for the message-driven market."""

    def __init__(
        self,
        name: str,
        params: DECParams,
        rng: random.Random,
        *,
        description: str,
        payment: int,
        rsa_bits: int = 512,
        break_algorithm: str = "pcba",
    ) -> None:
        super().__init__(name)
        self.params = params
        self.rng = rng
        self.payment = payment
        self.description = description
        self.break_algorithm = break_algorithm
        self.job_key = rsa.generate_keypair(rsa_bits, rng)
        self.job_id: str | None = None
        self.coins: list[tuple[Coin, Wallet]] = []
        self._pending_secrets: list[int] = []
        self._bank_pk = None
        self.received_reports: list[dict] = []
        self._deferred_labor: list[tuple[int, int]] = []

    def attach_bank_key(self, bank_pk) -> None:
        self._bank_pk = bank_pk

    def start(self) -> list[Outbound]:
        return [
            Outbound(MA, "job-registration", {
                "jd": self.description, "w": self.payment,
                "rpk_fingerprint": self.job_key.public.fingerprint(),
            }),
            self._new_withdrawal(),
        ]

    def _new_withdrawal(self) -> Outbound:
        secret, request = begin_withdrawal(self.params, self.rng)
        self._pending_secrets.append(secret)
        return Outbound(MA, "withdraw-request", {"request": request})

    def handle(self, sender: str, kind: str, payload: Any) -> list[Outbound]:
        if kind == "job-published":
            self.job_id = payload["job"]
            return []
        if kind == "withdraw-response":
            if not self._pending_secrets:
                raise ProtocolError("unexpected withdrawal response")
            secret = self._pending_secrets.pop(0)  # MA answers FIFO
            coin = finish_withdrawal(self.params, self._bank_pk, secret,
                                     payload["signature"])
            self.coins.append((coin, coin.wallet()))
            # serve any labor registrations that waited for funds
            out = []
            deferred, self._deferred_labor = self._deferred_labor, []
            for rpk in deferred:
                out.extend(self._serve_labor(rpk))
            return out
        if kind == "labor-forward":
            return self._serve_labor(tuple(payload["rpk"]))
        if kind == "data-delivery":
            self.received_reports.append(payload)
            return []
        raise ProtocolError(f"JO cannot handle message kind {kind!r}")

    def _serve_labor(self, rpk: tuple[int, int]) -> list[Outbound]:
        """Pay the registered worker, withdrawing another coin if needed."""
        try:
            return [self._build_payment(rpk)]
        except InsufficientFunds:
            self._deferred_labor.append(rpk)
            return [self._new_withdrawal()]

    def _build_payment(self, rpk: tuple[int, int]) -> Outbound:
        sp_pub = rsa.RSAPublicKey(*rpk)
        denominations = BREAK_FN_BY_NAME[self.break_algorithm](
            self.payment, self.params.tree_level
        )
        blobs = []
        reserved_nodes = []
        for denom in denominations:
            if denom == 0:
                continue
            for coin, wallet in self.coins:
                try:
                    node = wallet.allocate(denom)
                except InsufficientFunds:
                    continue
                reserved_nodes.append(node)
                token = create_spend(
                    self.params, self._bank_pk, coin.secret, coin.signature, node, self.rng
                )
                blobs.append(encode(token))
                break
            else:
                for _, wallet in self.coins:
                    for node in reserved_nodes:
                        wallet.release(node)
                raise InsufficientFunds(f"JO cannot fund denomination {denom}")
        padded = pad_payment(blobs, slots=len(denominations), rng=self.rng)
        sig = rsa.sign(self.job_key, sp_pub.fingerprint())
        ciphertext = rsa.encrypt(sp_pub, encode({"coins": padded, "sig": sig}), self.rng)
        return Outbound(MA, "payment-submission",
                        {"pseudonym": sp_pub.fingerprint(), "ciphertext": ciphertext})


class SPDecMachine(Party):
    """A sensing participant for the message-driven market."""

    def __init__(
        self,
        params: DECParams,
        rng: random.Random,
        *,
        aid: str,
        job_id: str,
        jo_pseudonym_key: rsa.RSAPublicKey,
        expected_payment: int,
        bank_pk,
        data_payload: bytes = b"sensed",
        rsa_bits: int = 512,
    ) -> None:
        self.params = params
        self.rng = rng
        self.aid = aid
        self.job_id = job_id
        self.jo_pseudonym_key = jo_pseudonym_key
        self.expected_payment = expected_payment
        self.bank_pk = bank_pk
        self.data_payload = data_payload
        self.labor_key = rsa.generate_keypair(rsa_bits, rng)
        super().__init__(sp_party_name(self.pseudonym))
        self.state = SPDecState.INIT
        self.received_value = 0

    @property
    def pseudonym(self) -> bytes:
        return self.labor_key.public.fingerprint()

    def start(self) -> list[Outbound]:
        self.state = SPDecState.REGISTERED
        out = [Outbound(MA, "labor-registration", {
            "job": self.job_id,
            "rpk": (self.labor_key.public.n, self.labor_key.public.e),
        })]
        out.append(Outbound(MA, "data-submission", {
            "pseudonym": self.pseudonym, "job": self.job_id, "data": self.data_payload,
        }))
        self.state = SPDecState.DATA_SENT
        return out

    def handle(self, sender: str, kind: str, payload: Any) -> list[Outbound]:
        if kind == "payment-delivery":
            if self.state is not SPDecState.DATA_SENT:
                raise ProtocolError("payment delivered out of order")
            try:
                body = decode(rsa.decrypt(self.labor_key, payload["ciphertext"]))
            except ValueError as exc:
                raise ProtocolError(f"payment undecryptable: {exc}") from exc
            if not rsa.verify(self.jo_pseudonym_key, self.pseudonym, body["sig"]):
                raise ProtocolError("JO signature on payment invalid")
            tokens = []
            for blob in body["coins"]:
                try:
                    candidate = decode(blob)
                except ValueError:
                    continue
                if isinstance(candidate, SpendToken) and verify_spend(
                    self.params, self.bank_pk, candidate
                ):
                    tokens.append(candidate)
            value = sum(t.denomination(self.params.tree_level) for t in tokens)
            if value != self.expected_payment:
                raise ProtocolError(
                    f"payment value {value} != advertised {self.expected_payment}"
                )
            self.received_value = value
            self.state = SPDecState.PAID
            out = [Outbound(MA, "payment-confirm", {"pseudonym": self.pseudonym})]
            out += [
                Outbound(MA, "deposit", {"aid": self.aid, "coin": token})
                for token in tokens
            ]
            return out
        raise ProtocolError(f"SP cannot handle message kind {kind!r}")


def run_dec_machine_market(
    params: DECParams,
    rng: random.Random,
    *,
    n_workers: int,
    payment: int,
    jo_funds: int | None = None,
    rsa_bits: int = 512,
    break_algorithm: str = "pcba",
) -> tuple[Router, MADecMachine, JODecMachine, list[SPDecMachine]]:
    """Wire and run one message-driven PPMSdec market to quiescence."""
    router = Router()
    ma = MADecMachine(params, rng)
    router.add(ma)

    coin_value = 1 << params.tree_level
    jo = JODecMachine("JO", params, rng, description="machine-market sensing job",
                      payment=payment, rsa_bits=rsa_bits,
                      break_algorithm=break_algorithm)
    jo.attach_bank_key(ma.bank.public_key)
    router.add(jo)
    ma.register_resident("JO", "jo-acct", jo_funds or coin_value * max(1, n_workers))

    # the JO registers its job and withdraws before workers arrive
    router.activate("JO")
    router.run()
    assert jo.job_id is not None

    sps = []
    for i in range(n_workers):
        sp = SPDecMachine(
            params, rng, aid=f"sp-acct-{i}", job_id=jo.job_id,
            jo_pseudonym_key=jo.job_key.public, expected_payment=payment,
            bank_pk=ma.bank.public_key, rsa_bits=rsa_bits,
        )
        router.add(sp)
        ma.register_resident(sp.name, sp.aid, 0)
        sps.append(sp)

    for sp in sps:
        router.activate(sp.name)
    router.run()
    return router, ma, jo, sps

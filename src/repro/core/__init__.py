"""The paper's primary contribution: the two market mechanisms.

* :mod:`~repro.core.ppms_dec` — PPMSdec, arbitrary payments, divisible
  e-cash + cash break (Section IV / Algorithm 1).
* :mod:`~repro.core.ppms_pbs` — PPMSpbs, unitary payments, partially
  blind signatures (Section V / Algorithm 4).
* :mod:`~repro.core.cashbreak` — unitary / PCBA / EPCBA break
  algorithms (Algorithms 2–3).
* :mod:`~repro.core.market` — shared substrate (bulletin board, job
  profiles, data reports).
"""

from repro.core.cashbreak import (
    BREAK_FN_BY_NAME,
    coverage,
    epcba,
    pcba,
    subset_sums,
    unitary_break,
    validate_break,
)
from repro.core.dec_machine import (
    JODecMachine,
    MADecMachine,
    SPDecMachine,
    run_dec_machine_market,
)
from repro.core.engine import Outbound, Party, ProtocolError, Router
from repro.core.ledger import AuditReport, audit_bank, restore_bank, snapshot_bank
from repro.core.pbs_ledger import (
    PbsAuditReport,
    audit_pbs_bank,
    restore_pbs_bank,
    snapshot_pbs_bank,
)
from repro.core.market import BulletinBoard, DataReport, JobProfile
from repro.core.optimal_break import improvement_over_epcba, optimal_break
from repro.core.pbs_machine import JOMachine, MAMachine, SPMachine, run_machine_market
from repro.core.trading import RedemptionDesk, RedemptionVoucher, trade_sensing_service
from repro.core.ppms_dec import (
    JobOwnerDec,
    MarketAdministratorDec,
    PaymentBundle,
    PPMSdecSession,
    SensingParticipantDec,
)
from repro.core.ppms_pbs import (
    CoinReceipt,
    JobOwnerPbs,
    MarketAdministratorPbs,
    PPMSpbsSession,
    SensingParticipantPbs,
    VirtualBankPbs,
)

__all__ = [
    "PPMSdecSession",
    "JobOwnerDec",
    "SensingParticipantDec",
    "MarketAdministratorDec",
    "PaymentBundle",
    "PPMSpbsSession",
    "JobOwnerPbs",
    "SensingParticipantPbs",
    "MarketAdministratorPbs",
    "VirtualBankPbs",
    "CoinReceipt",
    "BulletinBoard",
    "JobProfile",
    "DataReport",
    "Router",
    "Party",
    "Outbound",
    "ProtocolError",
    "MAMachine",
    "JOMachine",
    "SPMachine",
    "run_machine_market",
    "MADecMachine",
    "JODecMachine",
    "SPDecMachine",
    "run_dec_machine_market",
    "snapshot_bank",
    "restore_bank",
    "audit_bank",
    "AuditReport",
    "snapshot_pbs_bank",
    "restore_pbs_bank",
    "audit_pbs_bank",
    "PbsAuditReport",
    "RedemptionDesk",
    "RedemptionVoucher",
    "trade_sensing_service",
    "optimal_break",
    "improvement_over_epcba",
    "BREAK_FN_BY_NAME",
    "unitary_break",
    "pcba",
    "epcba",
    "coverage",
    "subset_sums",
    "validate_break",
]

"""PPMSdec — the privacy-preserving market mechanism for arbitrary
payments (paper Section IV, Algorithm 1).

Party roles:

* :class:`MarketAdministratorDec` — the MA: bulletin board, message
  relay, and the virtual bank (a :class:`~repro.ecash.dec.DECBank`).
* :class:`JobOwnerDec` — registers jobs under an ephemeral RSA
  pseudonym, withdraws a divisible coin of value ``2^L`` blindly,
  breaks the payment (unitary / PCBA / EPCBA), and pays SPs with
  encrypted bundles of spend tokens padded by fake coins.
* :class:`SensingParticipantDec` — registers labor under an ephemeral
  RSA pseudonym, submits data, receives/verifies the encrypted payment,
  and deposits the coins one by one after random delays.

Every message goes through the shared :class:`~repro.net.Transport`
(bytes metered for Table II) and every cryptographic operation is
tallied in an :class:`~repro.metrics.OpCounter` (Table I).  The
``clock`` is logical time used only for the randomized deposit delays
the paper prescribes ("SP waits for a random period of time between two
consecutive deposits").
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.cashbreak import BREAK_FN_BY_NAME
from repro.core.market import BulletinBoard, DataReport, JobProfile, new_job_id
from repro.crypto import rsa
from repro.ecash.dec import Coin, DECBank, begin_withdrawal, finish_withdrawal
from repro.ecash.fake import pad_payment
from repro.ecash.spend import DECParams, SpendToken, create_spend, verify_spend
from repro.ecash.wallet import InsufficientFunds, Wallet
from repro.metrics.opcount import OpCounter
from repro.net.codec import decode, encode
from repro.net.transport import Transport

__all__ = [
    "BREAK_ALGORITHMS",
    "DepositEvent",
    "PaymentBundle",
    "MarketAdministratorDec",
    "JobOwnerDec",
    "SensingParticipantDec",
    "PPMSdecSession",
]

BREAK_ALGORITHMS = BREAK_FN_BY_NAME

# party labels used for op counting and traffic metering
JO, SP, MA = "JO", "SP", "MA"


@dataclass(frozen=True)
class DepositEvent:
    """One e-coin deposit as the bank's ledger records it."""

    time: float
    aid: str
    amount: int
    node_level: int


@dataclass
class PaymentBundle:
    """SP-side result of decrypting and checking a payment."""

    tokens: list[SpendToken]
    fake_count: int
    signature_valid: bool

    def total_value(self, tree_level: int) -> int:
        return sum(t.denomination(tree_level) for t in self.tokens)


class MarketAdministratorDec:
    """The MA: bulletin board + relay + virtual bank."""

    def __init__(
        self,
        params: DECParams,
        rng: random.Random,
        transport: Transport,
        counter: OpCounter,
    ) -> None:
        self.params = params
        self.rng = rng
        self.transport = transport
        self.counter = counter
        self.bank = DECBank.create(params, rng)
        self.board = BulletinBoard()
        # pseudonym fingerprint -> pending encrypted payment
        self._pending_payments: dict[bytes, bytes] = {}
        # pseudonym fingerprint -> data report (held until SP confirms)
        self._held_reports: dict[bytes, DataReport] = {}
        self.deposit_events: list[DepositEvent] = []
        self.clock = 0.0

    # -- registration ------------------------------------------------------
    def publish_job(self, description: str, payment: int, owner_pseudonym: bytes) -> JobProfile:
        profile = JobProfile(
            job_id=new_job_id(),
            description=description,
            payment=payment,
            owner_pseudonym=owner_pseudonym,
        )
        self.board.publish(profile)
        return profile

    # -- bank relay -----------------------------------------------------------
    def handle_withdrawal(self, aid: str, request) -> object:
        """Blind-issue a coin (1 CL signature = 1 Enc, 1 PoK verify = 1 Dec)."""
        self.counter.record(MA, "Dec")  # verify the request's PoK
        signature = self.bank.issue(aid, request)
        self.counter.record(MA, "Enc")  # the blind CL signature itself
        return signature

    # -- payment relay ----------------------------------------------------------
    def accept_payment(self, sp_pseudonym: bytes, ciphertext: bytes) -> None:
        self._pending_payments[sp_pseudonym] = ciphertext

    def accept_data(self, report: DataReport) -> bytes | None:
        """Store a report; release the payment if one is waiting."""
        self._held_reports[report.submitter_pseudonym] = report
        return self._pending_payments.get(report.submitter_pseudonym)

    def payment_for(self, sp_pseudonym: bytes) -> bytes | None:
        if sp_pseudonym in self._held_reports:
            return self._pending_payments.get(sp_pseudonym)
        return None

    def release_data(self, sp_pseudonym: bytes) -> DataReport:
        """Forward the held report to the JO once the SP confirms payment."""
        return self._held_reports.pop(sp_pseudonym)

    # -- deposits ------------------------------------------------------------
    def handle_deposit(self, aid: str, token: SpendToken, at_time: float) -> int:
        """Verify + credit a deposit (verification tallied as Dec ops)."""
        self.counter.record(MA, "Dec", 1 + len(token.edges) + 1)  # equality + edges + final
        self.counter.record(MA, "H", 1)  # serial expansion bookkeeping
        amount = self.bank.deposit(aid, token)
        self.clock = max(self.clock, at_time)
        self.deposit_events.append(
            DepositEvent(time=at_time, aid=aid, amount=amount, node_level=token.node.level)
        )
        return amount


class JobOwnerDec:
    """A job owner in the PPMSdec market."""

    def __init__(
        self,
        aid: str,
        params: DECParams,
        rng: random.Random,
        *,
        rsa_bits: int = 1024,
        break_algorithm: str = "epcba",
    ) -> None:
        if break_algorithm not in BREAK_ALGORITHMS:
            raise ValueError(f"unknown break algorithm {break_algorithm!r}")
        self.aid = aid
        self.params = params
        self.rng = rng
        self.rsa_bits = rsa_bits
        self.break_algorithm = break_algorithm
        self.job_key: rsa.RSAPrivateKey | None = None
        self.coins: list[tuple[Coin, Wallet]] = []
        self._bank_pk = None

    # -- step 2: job registration -------------------------------------------
    def make_job_identity(self, counter: OpCounter) -> rsa.RSAPublicKey:
        """Fresh ephemeral RSA pseudonym ``rpk_jo`` for this job."""
        self.job_key = rsa.generate_keypair(self.rsa_bits, self.rng)
        counter.record(JO, "H")  # pseudonym fingerprint derivation
        return self.job_key.public

    # -- step 3: money withdrawal ---------------------------------------------
    def withdraw(self, ma: MarketAdministratorDec, transport: Transport, counter: OpCounter) -> None:
        secret, request = begin_withdrawal(self.params, self.rng)
        counter.record(JO, "ZKP")  # PoK inside the blind request
        request = transport.send(JO, MA, "withdraw-request", request)
        signature = ma.handle_withdrawal(self.aid, request)
        signature = transport.send(MA, JO, "withdraw-response", signature)
        counter.record(JO, "Dec")  # verify the blindly issued signature
        self._bank_pk = ma.bank.public_key
        coin = finish_withdrawal(self.params, self._bank_pk, secret, signature)
        self.coins.append((coin, coin.wallet()))

    def spendable_balance(self) -> int:
        """Total value still allocatable across all withdrawn coins."""
        return sum(wallet.balance for (_, wallet) in self.coins)

    def deposit_change(
        self, ma: MarketAdministratorDec, transport: Transport, counter: OpCounter
    ) -> int:
        """Return unspent coin value to the JO's own account.

        Greedily allocates the largest still-available node of every
        withdrawn coin and deposits it like any other spend.  Change
        deposits are exactly as unlinkable as worker deposits, so doing
        this leaks nothing beyond the account's balance change.
        Returns the total value deposited.
        """
        total = 0
        for coin, wallet in self.coins:
            while wallet.balance > 0:
                denom = 1 << (wallet.balance.bit_length() - 1)
                node = None
                while denom >= 1:
                    try:
                        node = wallet.allocate(denom)
                        break
                    except InsufficientFunds:
                        denom //= 2
                if node is None:  # pragma: no cover - some node always fits
                    break
                token = create_spend(
                    self.params, self._bank_pk, coin.secret, coin.signature, node, self.rng
                )
                counter.record(JO, "ZKP", 1 + len(token.edges) + 1)
                sent = transport.send(JO, MA, "deposit", {"aid": self.aid, "coin": token})
                total += ma.handle_deposit(self.aid, sent["coin"], ma.clock + 1.0)
        return total

    def _allocate(self, denominations: list[int]) -> list[tuple[Coin, "object"]]:
        """Reserve nodes for a break plan, possibly spanning coins.

        Atomic: on failure every reservation is rolled back and
        :class:`~repro.ecash.wallet.InsufficientFunds` propagates.
        """
        reserved: list[tuple[Wallet, object]] = []
        picked: list[tuple[Coin, object]] = []
        try:
            for denom in denominations:
                if denom == 0:
                    continue
                for coin, wallet in self.coins:
                    try:
                        node = wallet.allocate(denom)
                    except InsufficientFunds:
                        continue
                    reserved.append((wallet, node))
                    picked.append((coin, node))
                    break
                else:
                    raise InsufficientFunds(f"no coin can serve denomination {denom}")
        except InsufficientFunds:
            for wallet, node in reserved:
                wallet.release(node)
            raise
        return picked

    # -- step 4+6: cash break and payment submission -----------------------------
    def build_payment(
        self, sp_pubkey: rsa.RSAPublicKey, payment: int, counter: OpCounter
    ) -> bytes:
        """Break the payment, mint spend tokens, pad, sign, encrypt."""
        if not self.coins or self.job_key is None:
            raise RuntimeError("withdraw() and make_job_identity() must run first")
        level = self.params.tree_level
        denominations = BREAK_ALGORITHMS[self.break_algorithm](payment, level)
        allocations = self._allocate(denominations)
        blobs: list[bytes] = []
        for coin, node in allocations:
            token = create_spend(
                self.params, self._bank_pk, coin.secret, coin.signature, node, self.rng
            )
            counter.record(JO, "ZKP", 1 + len(token.edges) + 1)  # equality + edges + final
            blobs.append(encode(token))

        sig = rsa.sign(self.job_key, sp_pubkey.fingerprint())
        counter.record(JO, "Enc")  # RSA signature on the payee pseudonym
        counter.record(JO, "H")

        padded = pad_payment(blobs, slots=len(denominations), rng=self.rng)
        payload = encode({"coins": padded, "sig": sig})
        ciphertext = rsa.encrypt(sp_pubkey, payload, self.rng)
        counter.record(JO, "Enc")  # RSA_ENC of the designated-receiver payment
        return ciphertext


class SensingParticipantDec:
    """A sensing participant in the PPMSdec market."""

    def __init__(self, aid: str, params: DECParams, rng: random.Random, *, rsa_bits: int = 1024) -> None:
        self.aid = aid
        self.params = params
        self.rng = rng
        self.rsa_bits = rsa_bits
        self.labor_key: rsa.RSAPrivateKey | None = None
        self.collected: list[SpendToken] = []

    # -- step 5: labor registration --------------------------------------------
    def make_labor_identity(self, counter: OpCounter) -> rsa.RSAPublicKey:
        self.labor_key = rsa.generate_keypair(self.rsa_bits, self.rng)
        counter.record(SP, "H")  # pseudonym fingerprint derivation
        return self.labor_key.public

    # -- data -----------------------------------------------------------------
    def make_report(self, job_id: str, payload: bytes) -> DataReport:
        assert self.labor_key is not None, "register labor first"
        return DataReport(
            job_id=job_id,
            submitter_pseudonym=self.labor_key.public.fingerprint(),
            payload=payload,
        )

    # -- step 8: money deposit (verification half) ---------------------------------
    def open_payment(
        self,
        ciphertext: bytes,
        jo_pubkey: rsa.RSAPublicKey,
        bank_pk,
        counter: OpCounter,
    ) -> PaymentBundle:
        """Decrypt, weed out fakes, verify coins and the JO signature."""
        assert self.labor_key is not None
        plaintext = rsa.decrypt(self.labor_key, ciphertext)
        counter.record(SP, "Dec")
        payload = decode(plaintext)
        sig_ok = rsa.verify(jo_pubkey, self.labor_key.public.fingerprint(), payload["sig"])
        counter.record(SP, "Dec")  # signature verification
        tokens: list[SpendToken] = []
        fakes = 0
        for blob in payload["coins"]:
            try:
                candidate = decode(blob)
            except (ValueError, TypeError):
                fakes += 1
                continue
            if not isinstance(candidate, SpendToken):
                fakes += 1
                continue
            counter.record(SP, "Dec")  # coin (ZK bundle) verification
            if verify_spend(self.params, bank_pk, candidate):
                tokens.append(candidate)
            else:
                fakes += 1
        bundle = PaymentBundle(tokens=tokens, fake_count=fakes, signature_valid=sig_ok)
        if sig_ok:
            self.collected.extend(tokens)
        return bundle

    def deposit_schedule(self, start_time: float) -> list[tuple[float, SpendToken]]:
        """Random-delay deposit times: one coin at a time, spaced apart."""
        t = start_time + self.rng.uniform(0.5, 5.0)
        plan = []
        for token in self.collected:
            plan.append((t, token))
            t += self.rng.uniform(0.5, 5.0)
        return plan


class PPMSdecSession:
    """End-to-end Algorithm 1 orchestration for one job and its SPs.

    Construct once per market instance; :meth:`run_job` executes the
    full message flow for one JO and any number of SPs and returns the
    per-SP payment bundles.  All traffic/ops are metered on the shared
    transport/counter.
    """

    def __init__(
        self,
        params: DECParams,
        rng: random.Random,
        *,
        rsa_bits: int = 1024,
        break_algorithm: str = "epcba",
    ) -> None:
        self.params = params
        self.rng = rng
        self.rsa_bits = rsa_bits
        self.break_algorithm = break_algorithm
        self.transport = Transport()
        self.counter = OpCounter()
        self.ma = MarketAdministratorDec(params, rng, self.transport, self.counter)

    def new_job_owner(self, aid: str, funds: int) -> JobOwnerDec:
        self.ma.bank.open_account(aid, funds)
        return JobOwnerDec(
            aid, self.params, self.rng, rsa_bits=self.rsa_bits, break_algorithm=self.break_algorithm
        )

    def new_participant(self, aid: str) -> SensingParticipantDec:
        self.ma.bank.open_account(aid, 0)
        return SensingParticipantDec(aid, self.params, self.rng, rsa_bits=self.rsa_bits)

    def run_job(
        self,
        jo: JobOwnerDec,
        sps: list[SensingParticipantDec],
        *,
        description: str = "sensing job",
        payment: int = 1,
        data_payload: bytes = b"sensing-data",
        deposit: bool = True,
    ) -> list[PaymentBundle]:
        """Execute Algorithm 1 once for *jo* and each SP in *sps*."""
        transport, counter, ma = self.transport, self.counter, self.ma

        # 1. job registration: JO -> MA -> bulletin board
        rpk_jo = jo.make_job_identity(counter)
        job_msg = transport.send(JO, MA, "job-registration",
                                 {"jd": description, "w": payment, "rpk": (rpk_jo.n, rpk_jo.e)})
        profile = ma.publish_job(job_msg["jd"], job_msg["w"], rpk_jo.fingerprint())

        # 2. money withdrawal (blind): JO <-> MA
        jo.withdraw(ma, transport, counter)

        bundles: list[PaymentBundle] = []
        for sp in sps:
            # 3. labor registration: SP -> MA -> JO
            rpk_sp = sp.make_labor_identity(counter)
            transport.send(SP, MA, "labor-registration", (rpk_sp.n, rpk_sp.e))
            transport.send(MA, JO, "labor-forward", (rpk_sp.n, rpk_sp.e))

            # 4+6. payment submission: JO -> MA (encrypted, designated receiver)
            # withdraw additional coins on demand until the payment fits
            while True:
                try:
                    ciphertext = jo.build_payment(rpk_sp, payment, counter)
                    break
                except InsufficientFunds:
                    jo.withdraw(ma, transport, counter)
            transport.send(JO, MA, "payment-submission",
                           {"ciphertext": ciphertext, "rpk": (rpk_sp.n, rpk_sp.e)})
            ma.accept_payment(rpk_sp.fingerprint(), ciphertext)

            # 7. data submission: SP -> MA
            report = sp.make_report(profile.job_id, data_payload)
            transport.send(SP, MA, "data-submission",
                           {"job": report.job_id, "data": report.payload,
                            "pseudonym": report.submitter_pseudonym})
            ma.accept_data(report)

            # payment delivery: MA -> SP
            delivered = ma.payment_for(rpk_sp.fingerprint())
            assert delivered is not None
            delivered = transport.send(MA, SP, "payment-delivery", delivered)

            # 8. money deposit, part 1: open + verify, confirm, data release
            bundle = sp.open_payment(delivered, rpk_jo, ma.bank.public_key, counter)
            bundles.append(bundle)
            if bundle.signature_valid and bundle.total_value(self.params.tree_level) == payment:
                transport.send(SP, MA, "payment-confirm", True)
                released = ma.release_data(rpk_sp.fingerprint())
                transport.send(MA, JO, "data-delivery",
                               {"job": released.job_id, "data": released.payload})

            # 8. money deposit, part 2: coins one by one with random delays
            if deposit:
                for at_time, token in sp.deposit_schedule(ma.clock):
                    token = transport.send(SP, MA, "deposit", {"aid": sp.aid, "coin": token})["coin"]
                    ma.handle_deposit(sp.aid, token, at_time)
                sp.collected.clear()
        return bundles

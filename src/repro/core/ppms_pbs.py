"""PPMSpbs — the light-weight mechanism for unitary-payment markets
(paper Section V, Algorithm 4).

The digital coin is a single RSA *partially blind signature* by the
job owner: blind in the SP's real public key (so the JO never learns
whom it paid — transaction-linkage privacy against the JO), with the
job serial number as the embedded common information (so the MA can
check freshness at deposit time and block double deposits).

By design the MA *does* learn which JO and SP transacted at deposit
time — the paper deliberately trades this away ("removing the
transaction privacy against the bank is actually required in many
practical systems to thwart money laundering").  Job-linkage privacy
survives because the job was published under an ephemeral pseudonym
and all payments are unitary, so a deposit cannot be matched to a job.

Message flow (Algorithm 4), all via the MA:

1.  JO → MA:  job profile ``(jd, rpk_jo)``; MA publishes.
2.  SP → MA → JO:  ``RSA_ENC_rpkjo(rpk_sp, serial)`` (labor reg.)
3.  JO → MA → SP:  ``RSA_ENC_rpksp(rpk_JO, sig)`` — the JO discloses
    its *real* bank key to the SP, signed under the job pseudonym.
4.  SP → MA → JO:  blinded representative of ``(rpk_SP, serial)``;
    JO signs blindly and returns it through the MA.
5.  SP submits data; MA releases the blinded signature; SP unblinds
    and verifies the coin.
6.  SP → MA:  ``(sig, rpk_SP, rpk_JO, serial)`` — deposit; the MA
    verifies, checks serial freshness, and moves one credit from the
    JO's to the SP's account.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.market import BulletinBoard, DataReport, JobProfile, new_job_id
from repro.crypto import rsa
from repro.crypto.partial_blind import (
    PartialBlindRequester,
    PartialBlindSignature,
    PartialBlindSigner,
    verify_partial_blind,
)
from repro.metrics.opcount import OpCounter
from repro.net.codec import decode, encode
from repro.net.transport import Transport

__all__ = [
    "VirtualBankPbs",
    "MarketAdministratorPbs",
    "JobOwnerPbs",
    "SensingParticipantPbs",
    "PPMSpbsSession",
    "CoinReceipt",
]

JO, SP, MA = "JO", "SP", "MA"


@dataclass(frozen=True)
class CoinReceipt:
    """SP-side record of a verified unitary coin, ready to deposit."""

    signature: PartialBlindSignature
    jo_account_key: tuple[int, int]  # (n, e) of the JO's real key
    serial: bytes


@dataclass
class VirtualBankPbs:
    """Account ledger keyed by the residents' *real* RSA public keys.

    The bank knows real identities (accounts require authentic identity
    information, Section III-A); the fingerprint of the bound RSA key
    doubles as the account id.
    """

    accounts: dict[bytes, int] = field(default_factory=dict)
    bound_keys: dict[bytes, tuple[int, int]] = field(default_factory=dict)
    spent_serials: set[tuple[bytes, bytes]] = field(default_factory=set)
    transaction_log: list[tuple[bytes, bytes]] = field(default_factory=list)

    def open_account(self, pubkey: rsa.RSAPublicKey, initial_balance: int = 0) -> bytes:
        aid = pubkey.fingerprint()
        if aid in self.accounts:
            raise ValueError("account already exists for this key")
        self.accounts[aid] = initial_balance
        self.bound_keys[aid] = (pubkey.n, pubkey.e)
        return aid

    def balance(self, aid: bytes) -> int:
        return self.accounts[aid]

    def transfer_unit(self, payer: bytes, payee: bytes) -> None:
        if self.accounts.get(payer, 0) < 1:
            raise ValueError("payer cannot cover a unitary payment")
        if payee not in self.accounts:
            raise ValueError("unknown payee account")
        self.accounts[payer] -= 1
        self.accounts[payee] += 1
        self.transaction_log.append((payer, payee))


class MarketAdministratorPbs:
    """MA for the unitary-payment market."""

    def __init__(self, rng: random.Random, transport: Transport, counter: OpCounter) -> None:
        self.rng = rng
        self.transport = transport
        self.counter = counter
        self.bank = VirtualBankPbs()
        self.board = BulletinBoard()
        # pseudonym fingerprint -> pending blinded signature (payment)
        self._pending_payments: dict[bytes, tuple[int, int]] = {}
        self._held_reports: dict[bytes, DataReport] = {}

    def publish_job(self, description: str, owner_pseudonym: bytes) -> JobProfile:
        profile = JobProfile(
            job_id=new_job_id(),
            description=description,
            payment=1,  # unitary market
            owner_pseudonym=owner_pseudonym,
        )
        self.board.publish(profile)
        return profile

    def accept_payment(self, sp_pseudonym: bytes, blinded_sig: int, counter_value: int) -> None:
        self._pending_payments[sp_pseudonym] = (blinded_sig, counter_value)

    def accept_data(self, report: DataReport) -> None:
        self._held_reports[report.submitter_pseudonym] = report

    def payment_for(self, sp_pseudonym: bytes) -> tuple[int, int] | None:
        if sp_pseudonym in self._held_reports:
            return self._pending_payments.get(sp_pseudonym)
        return None

    def release_data(self, sp_pseudonym: bytes) -> DataReport:
        return self._held_reports.pop(sp_pseudonym)

    def handle_deposit(
        self,
        signature: PartialBlindSignature,
        sp_key: tuple[int, int],
        jo_key: tuple[int, int],
    ) -> None:
        """Verify the coin, check serial freshness, move one credit.

        Raises :class:`ValueError` on a bad signature or a replayed
        serial (double deposit).
        """
        jo_pub = rsa.RSAPublicKey(*jo_key)
        sp_pub = rsa.RSAPublicKey(*sp_key)
        self.counter.record(MA, "H")  # recompute the signed representative
        if not verify_partial_blind(jo_pub, sp_pub.fingerprint(), signature):
            raise ValueError("invalid partially blind signature at deposit")
        self.counter.record(MA, "Dec")  # the verification itself
        freshness_key = (jo_pub.fingerprint(), signature.common_info)
        self.counter.record(MA, "H")  # serial freshness lookup
        if freshness_key in self.bank.spent_serials:
            raise ValueError("serial already deposited (double deposit)")
        self.bank.spent_serials.add(freshness_key)
        self.bank.transfer_unit(jo_pub.fingerprint(), sp_pub.fingerprint())


class JobOwnerPbs:
    """A job owner in the unitary market.

    Holds a *real* account RSA key (bound at the bank) and a fresh
    ephemeral job key per published job.
    """

    def __init__(self, rng: random.Random, *, rsa_bits: int = 1024) -> None:
        self.rng = rng
        self.rsa_bits = rsa_bits
        self.account_key = rsa.generate_keypair(rsa_bits, rng)
        self.job_key: rsa.RSAPrivateKey | None = None
        self._signer = PartialBlindSigner(self.account_key)

    @property
    def account_pub(self) -> rsa.RSAPublicKey:
        return self.account_key.public

    def make_job_identity(self, counter: OpCounter) -> rsa.RSAPublicKey:
        self.job_key = rsa.generate_keypair(self.rsa_bits, self.rng)
        counter.record(JO, "H")
        return self.job_key.public

    def answer_labor_registration(self, ciphertext: bytes, counter: OpCounter) -> bytes:
        """Decrypt the SP's (pseudonym, serial), sign them, reply encrypted."""
        assert self.job_key is not None, "register a job first"
        plaintext = rsa.decrypt(self.job_key, ciphertext)
        counter.record(JO, "Dec")
        payload = decode(plaintext)
        sp_pse = rsa.RSAPublicKey(*payload["rpk"])
        serial = payload["serial"]
        sig = rsa.sign(self.job_key, encode({"rpk": payload["rpk"], "serial": serial}))
        counter.record(JO, "Enc")  # the RSA signature
        counter.record(JO, "H")
        answer = encode(
            {"jo_account": (self.account_pub.n, self.account_pub.e), "sig": sig}
        )
        reply = rsa.encrypt(sp_pse, answer, self.rng)
        counter.record(JO, "Enc")  # RSA_ENC of the answer
        return reply

    def sign_payment(self, blinded: int, serial: bytes, counter: OpCounter) -> tuple[int, int]:
        """Blind-sign the payment coin for the agreed *serial*."""
        result = self._signer.sign_blinded(blinded, serial)
        counter.record(JO, "Enc")  # the partially blind signature
        return result


class SensingParticipantPbs:
    """A sensing participant in the unitary market."""

    def __init__(self, rng: random.Random, *, rsa_bits: int = 1024) -> None:
        self.rng = rng
        self.rsa_bits = rsa_bits
        self.account_key = rsa.generate_keypair(rsa_bits, rng)
        self.labor_key: rsa.RSAPrivateKey | None = None
        self.serial: bytes | None = None
        self._jo_account: tuple[int, int] | None = None
        self._requester: PartialBlindRequester | None = None
        self.receipts: list[CoinReceipt] = []

    @property
    def account_pub(self) -> rsa.RSAPublicKey:
        return self.account_key.public

    def make_labor_request(self, jo_pseudonym_key: rsa.RSAPublicKey, counter: OpCounter) -> bytes:
        """Fresh pseudonym + serial, encrypted to the job pseudonym key."""
        self.labor_key = rsa.generate_keypair(self.rsa_bits, self.rng)
        self.serial = bytes(self.rng.getrandbits(8) for _ in range(16))
        counter.record(SP, "H")  # serial/pseudonym derivation
        payload = encode(
            {"rpk": (self.labor_key.public.n, self.labor_key.public.e), "serial": self.serial}
        )
        ciphertext = rsa.encrypt(jo_pseudonym_key, payload, self.rng)
        counter.record(SP, "Enc")
        return ciphertext

    def open_labor_answer(
        self, ciphertext: bytes, jo_pseudonym_key: rsa.RSAPublicKey, counter: OpCounter
    ) -> bool:
        """Decrypt the JO's answer, verify its signature, learn rpk_JO."""
        assert self.labor_key is not None and self.serial is not None
        plaintext = rsa.decrypt(self.labor_key, ciphertext)
        counter.record(SP, "Dec")
        payload = decode(plaintext)
        message = encode(
            {"rpk": (self.labor_key.public.n, self.labor_key.public.e), "serial": self.serial}
        )
        counter.record(SP, "H")
        if not rsa.verify(jo_pseudonym_key, message, payload["sig"]):
            return False
        counter.record(SP, "Dec")  # signature verification
        self._jo_account = tuple(payload["jo_account"])
        return True

    def make_blinded_payment_request(self, counter: OpCounter) -> int:
        """Blind the *real* account key under the agreed serial."""
        assert self._jo_account is not None and self.serial is not None
        jo_pub = rsa.RSAPublicKey(*self._jo_account)
        self._requester = PartialBlindRequester(jo_pub, self.rng)
        counter.record(SP, "H")  # the blinded representative hash
        return self._requester.blind(self.account_pub.fingerprint(), self.serial)

    def make_report(self, job_id: str, payload: bytes) -> DataReport:
        assert self.labor_key is not None
        return DataReport(
            job_id=job_id,
            submitter_pseudonym=self.labor_key.public.fingerprint(),
            payload=payload,
        )

    def finalize_coin(self, blinded_sig: int, counter_value: int, op_counter: OpCounter) -> CoinReceipt:
        """Unblind and verify the coin (raises on signer misbehaviour)."""
        assert self._requester is not None and self._jo_account is not None
        signature = self._requester.unblind(blinded_sig, counter_value)
        op_counter.record(SP, "Dec")  # verification inside unblind()
        receipt = CoinReceipt(
            signature=signature, jo_account_key=self._jo_account, serial=self.serial
        )
        self.receipts.append(receipt)
        return receipt


class PPMSpbsSession:
    """End-to-end Algorithm 4 orchestration."""

    def __init__(self, rng: random.Random, *, rsa_bits: int = 1024) -> None:
        self.rng = rng
        self.rsa_bits = rsa_bits
        self.transport = Transport()
        self.counter = OpCounter()
        self.ma = MarketAdministratorPbs(rng, self.transport, self.counter)

    def new_job_owner(self, funds: int) -> JobOwnerPbs:
        jo = JobOwnerPbs(self.rng, rsa_bits=self.rsa_bits)
        self.ma.bank.open_account(jo.account_pub, funds)
        return jo

    def new_participant(self) -> SensingParticipantPbs:
        sp = SensingParticipantPbs(self.rng, rsa_bits=self.rsa_bits)
        self.ma.bank.open_account(sp.account_pub, 0)
        return sp

    def run_job(
        self,
        jo: JobOwnerPbs,
        sps: list[SensingParticipantPbs],
        *,
        description: str = "unitary sensing job",
        data_payload: bytes = b"sensing-data",
        deposit: bool = True,
    ) -> list[CoinReceipt]:
        """Execute Algorithm 4 once for *jo* and each SP in *sps*."""
        transport, counter, ma = self.transport, self.counter, self.ma

        # 1. job registration under an ephemeral pseudonym
        rpk_jo = jo.make_job_identity(counter)
        transport.send(JO, MA, "job-registration",
                       {"jd": description, "rpk": (rpk_jo.n, rpk_jo.e)})
        profile = ma.publish_job(description, rpk_jo.fingerprint())

        receipts: list[CoinReceipt] = []
        for sp in sps:
            # 2. labor registration: SP -> MA -> JO (encrypted to rpk_jo)
            c1 = sp.make_labor_request(rpk_jo, counter)
            c1 = transport.send(SP, MA, "labor-registration", c1)
            c1 = transport.send(MA, JO, "labor-forward", c1)

            # 3. JO answers with its real account key, signed
            c2 = jo.answer_labor_registration(c1, counter)
            c2 = transport.send(JO, MA, "labor-answer", c2)
            c2 = transport.send(MA, SP, "labor-answer-forward", c2)
            if not sp.open_labor_answer(c2, rpk_jo, counter):
                raise RuntimeError("SP aborts: JO signature failed (Section V step 3)")

            # 4. payment submission: SP blinds, JO signs, MA holds
            blinded = sp.make_blinded_payment_request(counter)
            blinded = transport.send(SP, MA, "blinded-payment", blinded)
            blinded = transport.send(MA, JO, "blinded-payment-forward", blinded)
            blind_sig, ctr = jo.sign_payment(blinded, sp.serial, counter)
            msg = transport.send(JO, MA, "payment-submission",
                                 {"pbs": blind_sig, "ctr": ctr,
                                  "rpk": (sp.labor_key.public.n, sp.labor_key.public.e)})
            ma.accept_payment(sp.labor_key.public.fingerprint(), msg["pbs"], msg["ctr"])

            # 5. data submission and payment delivery
            report = sp.make_report(profile.job_id, data_payload)
            transport.send(SP, MA, "data-submission",
                           {"job": report.job_id, "data": report.payload,
                            "pseudonym": report.submitter_pseudonym})
            ma.accept_data(report)
            pending = ma.payment_for(sp.labor_key.public.fingerprint())
            assert pending is not None
            pending = transport.send(MA, SP, "payment-delivery",
                                     {"pbs": pending[0], "ctr": pending[1]})

            receipt = sp.finalize_coin(pending["pbs"], pending["ctr"], counter)
            receipts.append(receipt)

            # SP confirms; MA forwards the data to the JO
            transport.send(SP, MA, "payment-confirm", True)
            released = ma.release_data(sp.labor_key.public.fingerprint())
            transport.send(MA, JO, "data-delivery",
                           {"job": released.job_id, "data": released.payload})

            # 6. money deposit (after a random wait, simulated logically)
            if deposit:
                dep = transport.send(SP, MA, "deposit", {
                    "sig": receipt.signature,
                    "sp_key": (sp.account_pub.n, sp.account_pub.e),
                    "jo_key": list(receipt.jo_account_key),
                })
                ma.handle_deposit(dep["sig"], tuple(dep["sp_key"]), tuple(dep["jo_key"]))
        return receipts

"""Optimal cash break — an extension beyond PCBA/EPCBA.

The paper's Algorithm 3 (EPCBA) is a heuristic: between ``B(w)`` and
``B(w-1)+1`` it picks whichever has more coins.  The actual objective
it chases is *denomination coverage* — the number of payment values a
deposit multiset is compatible with — under the wire constraint of at
most ``L + 2`` coin slots.  This module computes the true optimum by
exhaustive search over power-of-two partitions:

    maximize   |subset_sums(coins)|
    subject to coins are powers of two, Σ coins = w, #coins ≤ max_coins

Any such multiset is allocatable from one fresh coin tree (binary-carry
argument), so the optimum is always realizable.  The search is
exponential in principle but tiny in practice for the tree levels the
mechanism uses (≤ ~2^10 with ≤ 12 coins); results are memoized.

``optimal_break`` plugs into the same ``(w, level) → slots`` interface
as the paper's algorithms and registers itself as ``"optimal"`` in
:data:`repro.core.cashbreak.BREAK_FN_BY_NAME`, so the attack
experiments can sweep it directly.  Empirically it beats EPCBA's
coverage on 52 of the 64 payment values at L=6 — roughly *doubling*
the mean coverage (32.2 vs 16.1) — and never loses; see
``tests/core/test_optimal_break.py``.  The price is an exponential
(though memoized and small-L-practical) search, which is presumably
why the paper settled for the O(1) heuristic.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.cashbreak import BREAK_FN_BY_NAME, coverage, epcba

__all__ = ["optimal_break", "optimal_coverage", "improvement_over_epcba"]


def _partitions(w: int, max_part: int, max_coins: int):
    """Yield power-of-two partitions of *w* (descending parts)."""
    if w == 0:
        yield ()
        return
    if max_coins == 0:
        return
    part = 1 << (min(w, max_part).bit_length() - 1)
    while part >= 1:
        for rest in _partitions(w - part, part, max_coins - 1):
            yield (part,) + rest
        part >>= 1


@lru_cache(maxsize=4096)
def _best_partition(w: int, max_coins: int) -> tuple[int, ...]:
    """The coverage-maximizing partition (ties: fewer coins, then lexic)."""
    best: tuple[int, ...] | None = None
    best_score = (-1, 0)
    for partition in _partitions(w, w, max_coins):
        score = (len(coverage(list(partition))), -len(partition))
        if score > best_score:
            best_score = score
            best = partition
    assert best is not None  # w >= 1 always has the unitary-ish partition
    return best


def optimal_break(w: int, level: int) -> list[int]:
    """Coverage-optimal break of *w* under the ``L + 2`` slot budget.

    Wire-compatible with PCBA/EPCBA: returns exactly ``level + 2``
    slots, zero-padded.
    """
    if not 1 <= w <= (1 << level):
        raise ValueError(f"payment must be in [1, 2^{level}]")
    max_coins = level + 2
    parts = _best_partition(w, max_coins)
    slots = list(parts) + [0] * (level + 2 - len(parts))
    return slots


def optimal_coverage(w: int, level: int) -> int:
    """Coverage size achieved by the optimal break."""
    return len(coverage(optimal_break(w, level)))


def improvement_over_epcba(level: int) -> dict[int, tuple[int, int]]:
    """Per-payment (EPCBA coverage, optimal coverage) across all values.

    The ablation behind the module docstring's claim; used by tests and
    the bench suite.
    """
    out = {}
    for w in range(1, (1 << level) + 1):
        out[w] = (len(coverage(epcba(w, level))), optimal_coverage(w, level))
    return out


# register alongside the paper's strategies so experiments can sweep it
BREAK_FN_BY_NAME.setdefault("optimal", optimal_break)

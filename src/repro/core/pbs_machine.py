"""PPMSpbs as message-driven state machines (Algorithm 4 on the engine).

Each party from Section V becomes a :class:`~repro.core.engine.Party`
whose behaviour is *entirely* reactions to envelopes — the shape a
deployed client/daemon has.  Per-SP conversations are keyed by the SP's
ephemeral pseudonym fingerprint, and every handler validates the
session state before acting, rejecting out-of-order or replayed
messages with :class:`~repro.core.engine.ProtocolError`.

Message kinds (all via the MA, as the system model requires):

    SP  -> MA: labor-registration {job, blob}
    MA  -> JO: labor-forward      {pseudonym, blob}
    JO  -> MA: labor-answer       {pseudonym, blob}
    MA  -> SP: labor-answer-fwd   {blob}
    SP  -> MA: blinded-payment    {pseudonym, blinded}
    MA  -> JO: blinded-forward    {pseudonym, blinded}
    JO  -> MA: payment-submission {pseudonym, pbs, ctr}
    SP  -> MA: data-submission    {pseudonym, job, data}
    MA  -> SP: payment-delivery   {pbs, ctr}
    SP  -> MA: payment-confirm    {pseudonym}
    MA  -> JO: data-delivery      {job, data}
    SP  -> MA: deposit            {sig..., sp_key, jo_key}

The driver (:func:`run_machine_market`) wires one JO, any number of
SPs and the MA together and runs the router to quiescence.
"""

from __future__ import annotations

import random
from enum import Enum, auto
from typing import Any

from repro.core.engine import Outbound, Party, ProtocolError, Router
from repro.core.market import BulletinBoard, JobProfile, new_job_id
from repro.core.ppms_pbs import VirtualBankPbs
from repro.crypto import rsa
from repro.crypto.partial_blind import (
    PartialBlindRequester,
    PartialBlindSignature,
    PartialBlindSigner,
    verify_partial_blind,
)
from repro.net.codec import decode, encode

__all__ = ["MAMachine", "JOMachine", "SPMachine", "run_machine_market"]

MA = "MA"


class SPState(Enum):
    INIT = auto()
    REGISTERED = auto()
    KEY_KNOWN = auto()
    BLINDED = auto()
    DATA_SENT = auto()
    PAID = auto()
    DEPOSITED = auto()


class MAMachine(Party):
    """The market administrator: relay + bulletin board + bank."""

    def __init__(self, rng: random.Random) -> None:
        super().__init__(MA)
        self.rng = rng
        self.bank = VirtualBankPbs()
        self.board = BulletinBoard()
        self.jo_for_job: dict[str, str] = {}
        self._pending_payments: dict[bytes, tuple[int, int]] = {}
        self._have_data: dict[bytes, dict] = {}
        self._confirmed: set[bytes] = set()

    # -- registration hooks (driver-level, authenticated operations) -------
    def open_account(self, pubkey: rsa.RSAPublicKey, funds: int) -> bytes:
        return self.bank.open_account(pubkey, funds)

    def publish_job(self, description: str, owner_party: str, pseudonym: bytes) -> JobProfile:
        profile = JobProfile(job_id=new_job_id(), description=description,
                             payment=1, owner_pseudonym=pseudonym)
        self.board.publish(profile)
        self.jo_for_job[profile.job_id] = owner_party
        return profile

    # -- message handling ------------------------------------------------------
    def handle(self, sender: str, kind: str, payload: Any) -> list[Outbound]:
        if kind == "labor-registration":
            jo = self.jo_for_job.get(payload["job"])
            if jo is None:
                raise ProtocolError(f"labor registration for unknown job {payload['job']!r}")
            return [Outbound(jo, "labor-forward",
                             {"pseudonym": payload["pseudonym"], "blob": payload["blob"]})]
        if kind == "labor-answer":
            return [Outbound(sender_sp(payload["pseudonym"]), "labor-answer-fwd",
                             {"blob": payload["blob"]})]
        if kind == "blinded-payment":
            jo = self.jo_for_job.get(payload["job"])
            if jo is None:
                raise ProtocolError("blinded payment for unknown job")
            return [Outbound(jo, "blinded-forward",
                             {"pseudonym": payload["pseudonym"],
                              "blinded": payload["blinded"]})]
        if kind == "payment-submission":
            pseud = payload["pseudonym"]
            self._pending_payments[pseud] = (payload["pbs"], payload["ctr"])
            return self._maybe_deliver(pseud)
        if kind == "data-submission":
            pseud = payload["pseudonym"]
            self._have_data[pseud] = {"job": payload["job"], "data": payload["data"]}
            return self._maybe_deliver(pseud)
        if kind == "payment-confirm":
            pseud = payload["pseudonym"]
            if pseud in self._confirmed:
                raise ProtocolError("duplicate payment confirmation")
            report = self._have_data.get(pseud)
            if report is None:
                raise ProtocolError("confirmation before data submission")
            self._confirmed.add(pseud)
            jo = self.jo_for_job[report["job"]]
            return [Outbound(jo, "data-delivery", report)]
        if kind == "deposit":
            jo_pub = rsa.RSAPublicKey(*payload["jo_key"])
            sp_pub = rsa.RSAPublicKey(*payload["sp_key"])
            signature = PartialBlindSignature(
                value=payload["sig"], counter=payload["ctr"],
                common_info=payload["serial"],
            )
            if not verify_partial_blind(jo_pub, sp_pub.fingerprint(), signature):
                raise ProtocolError("invalid coin at deposit")
            freshness = (jo_pub.fingerprint(), signature.common_info)
            if freshness in self.bank.spent_serials:
                raise ProtocolError("double deposit (serial replay)")
            self.bank.spent_serials.add(freshness)
            self.bank.transfer_unit(jo_pub.fingerprint(), sp_pub.fingerprint())
            return []
        raise ProtocolError(f"MA cannot handle message kind {kind!r}")

    def _maybe_deliver(self, pseud: bytes) -> list[Outbound]:
        if pseud in self._pending_payments and pseud in self._have_data:
            pbs, ctr = self._pending_payments.pop(pseud)
            return [Outbound(sender_sp(pseud), "payment-delivery",
                             {"pbs": pbs, "ctr": ctr})]
        return []


class JOMachine(Party):
    """A job owner: answers labor registrations and blind-signs coins."""

    def __init__(self, name: str, rng: random.Random, *, rsa_bits: int = 512) -> None:
        super().__init__(name)
        self.rng = rng
        self.account_key = rsa.generate_keypair(rsa_bits, rng)
        self.job_key = rsa.generate_keypair(rsa_bits, rng)
        self._signer = PartialBlindSigner(self.account_key)
        self._serial_for: dict[bytes, bytes] = {}
        self.received_reports: list[dict] = []

    @property
    def account_pub(self) -> rsa.RSAPublicKey:
        return self.account_key.public

    @property
    def job_pub(self) -> rsa.RSAPublicKey:
        return self.job_key.public

    def handle(self, sender: str, kind: str, payload: Any) -> list[Outbound]:
        if kind == "labor-forward":
            try:
                request = decode(rsa.decrypt(self.job_key, payload["blob"]))
            except ValueError as exc:
                raise ProtocolError(f"undecryptable labor registration: {exc}") from exc
            pseud_key = rsa.RSAPublicKey(*request["rpk"])
            self._serial_for[payload["pseudonym"]] = request["serial"]
            sig = rsa.sign(self.job_key, encode({"rpk": request["rpk"],
                                                 "serial": request["serial"]}))
            answer = rsa.encrypt(
                pseud_key,
                encode({"jo_account": (self.account_pub.n, self.account_pub.e),
                        "sig": sig}),
                self.rng,
            )
            return [Outbound(MA, "labor-answer",
                             {"pseudonym": payload["pseudonym"], "blob": answer})]
        if kind == "blinded-forward":
            serial = self._serial_for.get(payload["pseudonym"])
            if serial is None:
                raise ProtocolError("blinded payment before labor registration")
            pbs, ctr = self._signer.sign_blinded(payload["blinded"], serial)
            return [Outbound(MA, "payment-submission",
                             {"pseudonym": payload["pseudonym"], "pbs": pbs, "ctr": ctr})]
        if kind == "data-delivery":
            self.received_reports.append(payload)
            return []
        raise ProtocolError(f"JO cannot handle message kind {kind!r}")


class SPMachine(Party):
    """A sensing participant: drives its own state machine."""

    def __init__(
        self,
        name: str,
        rng: random.Random,
        *,
        job: JobProfile,
        jo_pseudonym_key: rsa.RSAPublicKey,
        data_payload: bytes = b"sensed",
        rsa_bits: int = 512,
    ) -> None:
        super().__init__(name)
        self.rng = rng
        self.job = job
        self.jo_pseudonym_key = jo_pseudonym_key
        self.data_payload = data_payload
        self.account_key = rsa.generate_keypair(rsa_bits, rng)
        self.labor_key = rsa.generate_keypair(rsa_bits, rng)
        self.serial = bytes(rng.getrandbits(8) for _ in range(16))
        self.state = SPState.INIT
        self._jo_account: tuple[int, int] | None = None
        self._requester: PartialBlindRequester | None = None
        self.coin: PartialBlindSignature | None = None

    @property
    def account_pub(self) -> rsa.RSAPublicKey:
        return self.account_key.public

    @property
    def pseudonym(self) -> bytes:
        return self.labor_key.public.fingerprint()

    def start(self) -> list[Outbound]:
        blob = rsa.encrypt(
            self.jo_pseudonym_key,
            encode({"rpk": (self.labor_key.public.n, self.labor_key.public.e),
                    "serial": self.serial}),
            self.rng,
        )
        self.state = SPState.REGISTERED
        return [Outbound(MA, "labor-registration",
                         {"job": self.job.job_id, "pseudonym": self.pseudonym,
                          "blob": blob})]

    def handle(self, sender: str, kind: str, payload: Any) -> list[Outbound]:
        if kind == "labor-answer-fwd":
            if self.state is not SPState.REGISTERED:
                raise ProtocolError("labor answer out of order")
            answer = decode(rsa.decrypt(self.labor_key, payload["blob"]))
            expected = encode({"rpk": (self.labor_key.public.n, self.labor_key.public.e),
                               "serial": self.serial})
            if not rsa.verify(self.jo_pseudonym_key, expected, answer["sig"]):
                raise ProtocolError("JO signature on labor answer failed — aborting")
            self._jo_account = tuple(answer["jo_account"])
            self.state = SPState.KEY_KNOWN
            jo_pub = rsa.RSAPublicKey(*self._jo_account)
            self._requester = PartialBlindRequester(jo_pub, self.rng)
            blinded = self._requester.blind(self.account_pub.fingerprint(), self.serial)
            self.state = SPState.BLINDED
            out = [Outbound(MA, "blinded-payment",
                            {"job": self.job.job_id, "pseudonym": self.pseudonym,
                             "blinded": blinded})]
            # submit the data alongside; the MA holds the payment until both exist
            out.append(Outbound(MA, "data-submission",
                                {"pseudonym": self.pseudonym, "job": self.job.job_id,
                                 "data": self.data_payload}))
            self.state = SPState.DATA_SENT
            return out
        if kind == "payment-delivery":
            if self.state is not SPState.DATA_SENT:
                raise ProtocolError("payment delivered out of order")
            assert self._requester is not None and self._jo_account is not None
            try:
                self.coin = self._requester.unblind(payload["pbs"], payload["ctr"])
            except ValueError as exc:
                raise ProtocolError(f"coin failed verification: {exc}") from exc
            self.state = SPState.PAID
            return [
                Outbound(MA, "payment-confirm", {"pseudonym": self.pseudonym}),
                Outbound(MA, "deposit", {
                    "sig": self.coin.value,
                    "ctr": self.coin.counter,
                    "serial": self.coin.common_info,
                    "sp_key": (self.account_pub.n, self.account_pub.e),
                    "jo_key": list(self._jo_account),
                }),
            ]
        raise ProtocolError(f"SP cannot handle message kind {kind!r}")


_SP_PARTY_PREFIX = "sp:"


def sender_sp(pseudonym: bytes) -> str:
    """Party name for the SP owning a pseudonym (router addressing)."""
    return _SP_PARTY_PREFIX + pseudonym.hex()


def run_machine_market(
    rng: random.Random,
    *,
    n_workers: int,
    jo_funds: int,
    rsa_bits: int = 512,
    data_payload: bytes = b"sensed",
) -> tuple[Router, MAMachine, JOMachine, list[SPMachine]]:
    """Wire up and run one message-driven PPMSpbs market to quiescence."""
    router = Router()
    ma = MAMachine(rng)
    router.add(ma)

    jo = JOMachine("JO", rng, rsa_bits=rsa_bits)
    router.add(jo)
    ma.open_account(jo.account_pub, jo_funds)
    profile = ma.publish_job("machine-market job", jo.name, jo.job_pub.fingerprint())

    sps = []
    for _ in range(n_workers):
        sp = SPMachine("pending", rng, job=profile, jo_pseudonym_key=jo.job_pub,
                       data_payload=data_payload, rsa_bits=rsa_bits)
        sp.name = sender_sp(sp.pseudonym)  # address by pseudonym
        router.add(sp)
        ma.open_account(sp.account_pub, 0)
        sps.append(sp)

    for sp in sps:
        router.activate(sp.name)
    router.run()
    return router, ma, jo, sps

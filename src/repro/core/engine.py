"""Message-driven protocol engine.

The ``PPMS*Session`` classes orchestrate the paper's algorithms
imperatively — convenient for tests and benches, but not how deployed
parties run.  This engine provides the production shape: every party is
a :class:`Party` that *only* reacts to delivered messages, and a
:class:`Router` moves envelopes between parties through the accounted
:class:`~repro.net.transport.Transport` until the system is quiescent.

Rules the router enforces:

* parties never touch each other's objects — everything crosses the
  codec (so any state smuggling fails loudly);
* delivery order is FIFO per router (deterministic);
* a handler raising :class:`ProtocolError` poisons only that delivery;
  the error is recorded and the rest of the system keeps running —
  exactly how a real MA must treat a malformed client message.

:mod:`repro.core.pbs_machine` implements PPMSpbs on this engine.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.net.transport import Transport

__all__ = ["Outbound", "Party", "ProtocolError", "Router", "DeliveryFailure"]


class ProtocolError(Exception):
    """A party rejected a message (malformed, out of order, forged)."""


@dataclass(frozen=True)
class Outbound:
    """A message a handler wants sent."""

    receiver: str
    kind: str
    payload: Any


@dataclass(frozen=True)
class DeliveryFailure:
    """Record of a delivery whose handler raised :class:`ProtocolError`."""

    sender: str
    receiver: str
    kind: str
    error: str


class Party(ABC):
    """A protocol participant addressed by ``name``."""

    def __init__(self, name: str) -> None:
        self.name = name

    def start(self) -> list[Outbound]:
        """Messages to emit when the party is activated (default: none)."""
        return []

    @abstractmethod
    def handle(self, sender: str, kind: str, payload: Any) -> list[Outbound]:
        """React to a delivered message; return follow-up messages."""


class Router:
    """Delivers messages FIFO until no party has anything left to say."""

    def __init__(
        self,
        transport: Transport | None = None,
        *,
        shuffle_rng: "random.Random | None" = None,
    ) -> None:
        """With *shuffle_rng* the router delivers queued messages in a
        random order instead of FIFO — the async-network model.  State
        machines must converge to the same outcome either way (the MA
        holds payments until both sides exist precisely so reordering
        is harmless); the test suite checks that."""
        self.transport = transport or Transport()
        self.parties: dict[str, Party] = {}
        self.failures: list[DeliveryFailure] = []
        self._queue: deque[tuple[str, Outbound]] = deque()
        self._shuffle_rng = shuffle_rng

    def add(self, party: Party) -> None:
        if party.name in self.parties:
            raise ValueError(f"party {party.name!r} already registered")
        self.parties[party.name] = party

    def activate(self, name: str) -> None:
        """Run a party's :meth:`Party.start` and enqueue its messages."""
        for out in self.parties[name].start():
            self._queue.append((name, out))

    def post(self, sender: str, out: Outbound) -> None:
        """Inject a message from outside (e.g. a driver or an attacker)."""
        self._queue.append((sender, out))

    def run(self, *, max_deliveries: int = 100_000) -> int:
        """Deliver until quiescent; returns the number of deliveries."""
        delivered = 0
        while self._queue:
            if delivered >= max_deliveries:
                raise RuntimeError(f"delivery budget exhausted ({max_deliveries})")
            if self._shuffle_rng is not None and len(self._queue) > 1:
                self._queue.rotate(-self._shuffle_rng.randrange(len(self._queue)))
            sender, out = self._queue.popleft()
            receiver = self.parties.get(out.receiver)
            if receiver is None:
                raise KeyError(f"message for unknown party {out.receiver!r}")
            payload = self.transport.send(sender, out.receiver, out.kind, out.payload)
            try:
                replies = receiver.handle(sender, out.kind, payload)
            except ProtocolError as exc:
                self.failures.append(
                    DeliveryFailure(sender=sender, receiver=out.receiver,
                                    kind=out.kind, error=str(exc))
                )
                replies = []
            for reply in replies:
                self._queue.append((out.receiver, reply))
            delivered += 1
        return delivered

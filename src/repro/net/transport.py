"""Simulated point-to-point transport with byte accounting.

All market traffic flows resident ↔ MA (paper Section III-A).  The
transport serializes every payload with the canonical codec, charges
the byte count to the :class:`~repro.metrics.traffic.TrafficMeter`, and
delivers the *decoded copy* — so protocols cannot accidentally share
mutable state through "the network", and anything unencodable fails
loudly at the send site.

An optional observer callback sees every envelope (sender, receiver,
kind, wire bytes); the attack simulations use it to model a network
eavesdropper or a curious MA tapping its own switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.metrics.traffic import TrafficMeter
from repro.net.codec import decode, encode

__all__ = ["Envelope", "Transport"]


@dataclass(frozen=True)
class Envelope:
    """One delivered message."""

    sender: str
    receiver: str
    kind: str
    payload: Any
    wire_bytes: int
    seq: int


@dataclass
class Transport:
    """The simulated network fabric.

    Attributes
    ----------
    meter:
        Byte accounting per party (Table II source of truth).
    log:
        Every envelope ever delivered, in order.
    observers:
        Callbacks invoked on each delivery (eavesdroppers, debuggers).
    """

    meter: TrafficMeter = field(default_factory=TrafficMeter)
    log: list[Envelope] = field(default_factory=list)
    observers: list[Callable[[Envelope], None]] = field(default_factory=list)
    _seq: int = 0

    def send(self, sender: str, receiver: str, kind: str, payload: Any) -> Any:
        """Deliver *payload* and return the received (decoded) copy."""
        wire = encode(payload)
        self.meter.record(sender, receiver, len(wire))
        delivered = decode(wire)
        envelope = Envelope(
            sender=sender,
            receiver=receiver,
            kind=kind,
            payload=delivered,
            wire_bytes=len(wire),
            seq=self._seq,
        )
        self._seq += 1
        self.log.append(envelope)
        for observer in self.observers:
            observer(envelope)
        return delivered

    def add_observer(self, observer: Callable[[Envelope], None]) -> None:
        self.observers.append(observer)

    def messages_between(self, a: str, b: str) -> list[Envelope]:
        """All envelopes exchanged (either direction) between two parties."""
        return [
            e
            for e in self.log
            if (e.sender == a and e.receiver == b) or (e.sender == b and e.receiver == a)
        ]

    def reset(self) -> None:
        self.meter.reset()
        self.log.clear()
        self._seq = 0

"""Canonical binary codec for protocol messages.

The market protocols need real byte strings for two reasons:

* **Padding** — PPMSdec's fake coins ``E(0)`` must be length-
  indistinguishable from real coins inside the encrypted payment, so
  real coins must have a well-defined wire encoding to match.
* **Accounting** — Table II of the paper reports communication traffic
  in bytes; measuring serialized messages is the honest way to
  reproduce it.

The codec covers a small type universe — ``None``, ``bool``, ``int``
(arbitrary precision, signed), ``float`` (IEEE-754 binary64), ``bytes``,
``str``, sequences, string-keyed dicts — plus any *registered dataclass* (encoded as its tag and
its fields in declaration order).  Encoding is canonical: equal values
produce identical bytes, so encodings are safe to hash into
transcripts.

Use :func:`register` (or the :func:`codec_dataclass` decorator) once
per dataclass; :func:`encode` / :func:`decode` round-trip any value
built from the universe.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Any

__all__ = ["encode", "decode", "register", "codec_dataclass", "encoded_size"]

_TAG_NONE = b"\x00"
_TAG_FALSE = b"\x01"
_TAG_TRUE = b"\x02"
_TAG_INT_POS = b"\x03"
_TAG_INT_NEG = b"\x04"
_TAG_BYTES = b"\x05"
_TAG_STR = b"\x06"
_TAG_LIST = b"\x07"
_TAG_TUPLE = b"\x08"
_TAG_DICT = b"\x09"
_TAG_OBJ = b"\x0a"
_TAG_FLOAT = b"\x0b"

_registry_by_name: dict[str, type] = {}
_registry_by_type: dict[type, str] = {}


def register(cls: type, name: str | None = None) -> type:
    """Register a dataclass for codec support (idempotent)."""
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"{cls!r} is not a dataclass")
    tag = name or f"{cls.__module__}.{cls.__qualname__}"
    existing = _registry_by_name.get(tag)
    if existing is not None and existing is not cls:
        raise ValueError(f"codec tag {tag!r} already registered for {existing!r}")
    _registry_by_name[tag] = cls
    _registry_by_type[cls] = tag
    return cls


def codec_dataclass(cls: type) -> type:
    """Decorator form of :func:`register`."""
    return register(cls)


def _write_len(out: bytearray, n: int) -> None:
    # varint-style: 7 bits per byte, MSB = continuation
    if n < 0:
        raise ValueError("length must be non-negative")
    while True:
        byte = n & 0x7F
        n >>= 7
        if n:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _read_len(data: bytes, pos: int) -> tuple[int, int]:
    n = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise ValueError("truncated length")
        byte = data[pos]
        pos += 1
        n |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return n, pos
        shift += 7


def _encode_into(out: bytearray, value: Any) -> None:
    if value is None:
        out += _TAG_NONE
    elif value is True:
        out += _TAG_TRUE
    elif value is False:
        out += _TAG_FALSE
    elif isinstance(value, int):
        mag = value if value >= 0 else -value
        raw = mag.to_bytes((mag.bit_length() + 7) // 8 or 1, "big")
        out += _TAG_INT_POS if value >= 0 else _TAG_INT_NEG
        _write_len(out, len(raw))
        out += raw
    elif isinstance(value, float):
        out += _TAG_FLOAT
        out += struct.pack(">d", value)
    elif isinstance(value, bytes):
        out += _TAG_BYTES
        _write_len(out, len(value))
        out += value
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += _TAG_STR
        _write_len(out, len(raw))
        out += raw
    elif isinstance(value, (list, tuple)):
        out += _TAG_LIST if isinstance(value, list) else _TAG_TUPLE
        _write_len(out, len(value))
        for item in value:
            _encode_into(out, item)
    elif isinstance(value, dict):
        out += _TAG_DICT
        keys = sorted(value)  # canonical ordering
        _write_len(out, len(keys))
        for key in keys:
            if not isinstance(key, str):
                raise TypeError("codec dicts must have str keys")
            _encode_into(out, key)
            _encode_into(out, value[key])
    elif type(value) in _registry_by_type:
        tag = _registry_by_type[type(value)].encode("utf-8")
        out += _TAG_OBJ
        _write_len(out, len(tag))
        out += tag
        fields = dataclasses.fields(value)
        _write_len(out, len(fields))
        for f in fields:
            _encode_into(out, getattr(value, f.name))
    else:
        raise TypeError(f"cannot encode value of type {type(value)!r}")


def encode(value: Any) -> bytes:
    """Canonically serialize *value* to bytes."""
    out = bytearray()
    _encode_into(out, value)
    return bytes(out)


def encoded_size(value: Any) -> int:
    """Byte length of the canonical encoding (Table II's unit)."""
    return len(encode(value))


def _decode_from(data: bytes, pos: int) -> tuple[Any, int]:
    if pos >= len(data):
        raise ValueError("truncated value")
    tag = data[pos : pos + 1]
    pos += 1
    if tag == _TAG_NONE:
        return None, pos
    if tag == _TAG_TRUE:
        return True, pos
    if tag == _TAG_FALSE:
        return False, pos
    if tag in (_TAG_INT_POS, _TAG_INT_NEG):
        n, pos = _read_len(data, pos)
        raw = data[pos : pos + n]
        if len(raw) != n:
            raise ValueError("truncated int")
        value = int.from_bytes(raw, "big")
        return (value if tag == _TAG_INT_POS else -value), pos + n
    if tag == _TAG_FLOAT:
        if pos + 8 > len(data):
            raise ValueError("truncated float")
        return struct.unpack(">d", data[pos : pos + 8])[0], pos + 8
    if tag == _TAG_BYTES:
        n, pos = _read_len(data, pos)
        raw = data[pos : pos + n]
        if len(raw) != n:
            raise ValueError("truncated bytes")
        return bytes(raw), pos + n
    if tag == _TAG_STR:
        n, pos = _read_len(data, pos)
        raw = data[pos : pos + n]
        if len(raw) != n:
            raise ValueError("truncated str")
        return raw.decode("utf-8"), pos + n
    if tag in (_TAG_LIST, _TAG_TUPLE):
        n, pos = _read_len(data, pos)
        items = []
        for _ in range(n):
            item, pos = _decode_from(data, pos)
            items.append(item)
        return (items if tag == _TAG_LIST else tuple(items)), pos
    if tag == _TAG_DICT:
        n, pos = _read_len(data, pos)
        result: dict[str, Any] = {}
        for _ in range(n):
            key, pos = _decode_from(data, pos)
            if not isinstance(key, str):
                raise ValueError("codec dict key must decode to str")
            val, pos = _decode_from(data, pos)
            result[key] = val
        return result, pos
    if tag == _TAG_OBJ:
        n, pos = _read_len(data, pos)
        name = data[pos : pos + n].decode("utf-8")
        pos += n
        cls = _registry_by_name.get(name)
        if cls is None:
            raise ValueError(f"unknown codec tag {name!r}")
        nfields, pos = _read_len(data, pos)
        fields = dataclasses.fields(cls)
        if nfields != len(fields):
            raise ValueError(f"field count mismatch for {name!r}")
        kwargs = {}
        for f in fields:
            val, pos = _decode_from(data, pos)
            kwargs[f.name] = val
        try:
            return cls(**kwargs), pos
        except ValueError:
            raise
        except Exception as exc:  # constructor validation on hostile input
            raise ValueError(f"invalid field values for {name!r}: {exc}") from exc
    raise ValueError(f"unknown tag byte {tag!r}")


def decode(data: bytes) -> Any:
    """Invert :func:`encode`; rejects trailing garbage."""
    value, pos = _decode_from(data, 0)
    if pos != len(data):
        raise ValueError("trailing bytes after value")
    return value

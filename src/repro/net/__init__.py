"""Simulated network: canonical codec, accounted transport, mix network.

Importing this package registers all wire-crossing dataclasses with the
codec (see :mod:`~repro.net.registry`).
"""

from repro.net import registry as _registry  # noqa: F401  (side-effect import)
from repro.net.codec import decode, encode, encoded_size, register
from repro.net.mix import MixNetwork, MixObservation
from repro.net.transport import Envelope, Transport
from repro.net.wire import (
    MAX_FRAME,
    FrameDecoder,
    WireError,
    decode_frame,
    encode_frame,
    read_frame,
    write_frame,
)

__all__ = [
    "encode",
    "decode",
    "encoded_size",
    "register",
    "Transport",
    "Envelope",
    "MixNetwork",
    "MixObservation",
    "WireError",
    "FrameDecoder",
    "MAX_FRAME",
    "encode_frame",
    "decode_frame",
    "read_frame",
    "write_frame",
]

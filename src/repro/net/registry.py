"""Codec registrations for every dataclass that crosses the wire.

Importing this module (done by ``repro.net``'s ``__init__``) makes all
protocol payload types encodable.  Registration lives here — not in the
defining modules — so the crypto/e-cash layers stay free of any
dependency on the network layer.
"""

from __future__ import annotations

from repro.crypto.cl_sig import BlindIssuanceRequest, CLSignature
from repro.crypto.pairing.curve import Point
from repro.crypto.pairing.field import Fp2
from repro.crypto.partial_blind import PartialBlindSignature
from repro.crypto.zkp.committed_double_log import CommittedEdgeProof, RevealedEdgeProof
from repro.crypto.zkp.double_log import DoubleLogProof
from repro.crypto.zkp.equality import EqualityProof
from repro.crypto.zkp.or_proof import OrProof
from repro.crypto.zkp.representation import RepresentationProof
from repro.crypto.zkp.schnorr import SchnorrProof
from repro.ecash.spend import SpendToken
from repro.ecash.tree import NodeId
from repro.net.codec import register

_WIRE_TYPES = (
    Fp2,
    Point,
    CLSignature,
    BlindIssuanceRequest,
    PartialBlindSignature,
    SchnorrProof,
    RepresentationProof,
    DoubleLogProof,
    OrProof,
    EqualityProof,
    CommittedEdgeProof,
    RevealedEdgeProof,
    NodeId,
    SpendToken,
)


def register_wire_types() -> None:
    """Idempotently register every wire-crossing dataclass."""
    for cls in _WIRE_TYPES:
        register(cls)


register_wire_types()

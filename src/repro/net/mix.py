"""Mix-network model for network-level anonymity.

The paper's trust model *assumes* "the communications between each
JO/SP and the MA are anonymized on the networking level using IP/MAC
recycling and/or Mix Networks" (Section III-B1).  This module provides
that substrate for the simulation so the assumption is exercised, not
hand-waved: messages are collected into a batch, the batch is shuffled,
and only then delivered — destroying the arrival-order and timing
correlations a network observer could otherwise use.

:class:`MixNetwork` wraps a :class:`~repro.net.transport.Transport`.
Senders enqueue under a *circuit id* (an opaque pseudonymous return
handle); the flush delivers everything in shuffled order.  The
``observer_view`` records what a network-level adversary sees: batch
sizes and message lengths only.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.net.codec import encode
from repro.net.transport import Transport

__all__ = ["MixNetwork", "MixObservation"]


@dataclass(frozen=True)
class MixObservation:
    """What an eavesdropper learns per flushed batch."""

    batch_size: int
    message_lengths: tuple[int, ...]


@dataclass
class MixNetwork:
    """A single-hop mix cascade in front of the MA."""

    transport: Transport
    rng: random.Random
    pending: list[tuple[str, str, str, Any]] = field(default_factory=list)
    observations: list[MixObservation] = field(default_factory=list)

    def enqueue(self, sender: str, receiver: str, kind: str, payload: Any) -> None:
        """Queue a message for the next batch."""
        self.pending.append((sender, receiver, kind, payload))

    def flush(self) -> list[Any]:
        """Shuffle and deliver the batch; returns delivered payload copies.

        The eavesdropper observation is recorded *before* delivery, and
        message lengths are reported in the (sorted) multiset form an
        observer of the shuffled batch would see.
        """
        batch = list(self.pending)
        self.pending.clear()
        self.rng.shuffle(batch)
        lengths = tuple(sorted(len(encode(payload)) for (_, _, _, payload) in batch))
        self.observations.append(MixObservation(batch_size=len(batch), message_lengths=lengths))
        return [
            self.transport.send(sender, receiver, kind, payload)
            for (sender, receiver, kind, payload) in batch
        ]

"""Length-prefixed wire framing for the canonical codec.

The simulated :class:`~repro.net.transport.Transport` hands decoded
copies around inside one process; a real network peer needs *frames* —
a way to find message boundaries in a byte stream and to reject a
damaged message before any of it is acted on.  This module frames the
existing canonical codec over any byte stream (the socket front-end in
:mod:`repro.service.frontend` is the first consumer):

``frame := MAGIC(4) | length u32 | crc32 u32 | payload``

* **MAGIC** (``b"RPW1"``) pins protocol + version; a peer speaking
  anything else fails on the first four bytes instead of misparsing.
* **length** is the payload byte count, capped at :data:`MAX_FRAME` —
  an oversized (or corrupted-to-oversized) prefix is rejected *before*
  any buffering, so a hostile 2 GiB announcement costs nothing.
* **crc32** covers the payload.  The codec alone cannot detect every
  single-byte corruption (flipping a digit inside an int yields a
  different valid int); the checksum makes any bit damage a loud
  :class:`WireError`, never a silently different value.  It is an
  integrity check against *accidents* only — authenticity is the
  protocol layer's job (signatures, proofs), not the framing's.

Decoding is incremental and torn-tolerant: :class:`FrameDecoder`
buffers partial frames across ``feed()`` calls and only yields whole,
checksum-verified, codec-decoded values.  A frame is therefore applied
completely or not at all — there is no partial-apply window.

Two read paths share the format.  The blocking helpers
(:func:`read_frame` / :func:`write_frame`) serve thread-per-connection
peers; :func:`read_frame_async` / :func:`write_frame_async` are the
same contract over :mod:`asyncio` streams for the event-loop front
door (:mod:`repro.service.aio`).  :meth:`FrameDecoder.raw_frames`
exposes complete frames *undecoded* — header plus payload bytes — so
an overloaded server can answer ``BUSY`` from the header alone without
spending decode (or even CRC) work on a payload it is about to shed.
"""

from __future__ import annotations

import asyncio
import struct
import zlib
from typing import Any, Iterator

from repro.net.codec import decode, encode

__all__ = [
    "WireError",
    "MAGIC",
    "HEADER_SIZE",
    "MAX_FRAME",
    "encode_frame",
    "decode_frame",
    "parse_header",
    "decode_payload",
    "FrameDecoder",
    "read_frame",
    "write_frame",
    "read_frame_async",
    "write_frame_async",
]

MAGIC = b"RPW1"
_HEADER = struct.Struct(">4sII")  # magic, payload length, payload crc32
HEADER_SIZE = _HEADER.size

#: Hard cap on one frame's payload.  Generous for this protocol (the
#: largest message is a spend token, a few KiB); small enough that a
#: corrupted length prefix can never make a peer buffer gigabytes.
MAX_FRAME = 1 << 24  # 16 MiB


class WireError(ValueError):
    """A frame violated the wire format (bad magic/length/checksum/codec)."""


def encode_frame(value: Any) -> bytes:
    """One complete frame for *value* (canonical codec + header)."""
    payload = encode(value)
    if len(payload) > MAX_FRAME:
        raise WireError(f"payload of {len(payload)} bytes exceeds MAX_FRAME")
    return _HEADER.pack(MAGIC, len(payload), zlib.crc32(payload)) + payload


def parse_header(header: bytes) -> tuple[int, int]:
    """Validate one frame header; returns ``(payload_length, crc32)``.

    The whole pre-parse admission story rests on this being safe to run
    on hostile input: magic and length are checked before any payload
    byte is buffered or decoded.
    """
    magic, length, crc = _HEADER.unpack(header)
    if magic != MAGIC:
        raise WireError(f"bad frame magic {magic!r}")
    if length > MAX_FRAME:
        raise WireError(f"frame length {length} exceeds MAX_FRAME ({MAX_FRAME})")
    return length, crc


_parse_header = parse_header  # legacy private name


def decode_payload(payload: bytes, crc: int) -> Any:
    if zlib.crc32(payload) != crc:
        raise WireError("frame checksum mismatch")
    try:
        return decode(payload)
    except WireError:
        raise
    except ValueError as exc:
        raise WireError(f"frame payload does not decode: {exc}") from exc


_decode_payload = decode_payload  # legacy private name


def decode_frame(data: bytes) -> tuple[Any, int]:
    """Decode one *complete* frame at the head of *data*.

    Returns ``(value, bytes_consumed)``.  Raises :class:`WireError` on
    any violation, including a frame that claims more bytes than *data*
    holds — the strict form used when the whole message is already in
    hand (tests, files).  For streams, use :class:`FrameDecoder`.
    """
    if len(data) < HEADER_SIZE:
        raise WireError("truncated frame header")
    length, crc = _parse_header(data[:HEADER_SIZE])
    end = HEADER_SIZE + length
    if len(data) < end:
        raise WireError(
            f"truncated frame: header promises {length} payload bytes, "
            f"{len(data) - HEADER_SIZE} present"
        )
    return _decode_payload(data[HEADER_SIZE:end], crc), end


class FrameDecoder:
    """Incremental frame parser for a byte stream.

    ``feed()`` bytes as they arrive (in any fragmentation); iterate
    :meth:`frames` for every value completed so far.  Partial frames
    stay buffered; format violations raise :class:`WireError` as early
    as the header allows and poison the decoder (a byte stream is
    unsynchronized after damage — the connection must be dropped).
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self._poisoned: WireError | None = None

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buf)

    def feed(self, data: bytes) -> None:
        if self._poisoned is not None:
            raise self._poisoned
        self._buf += data

    def raw_frames(self) -> Iterator[tuple[int, int, bytes]]:
        """Yield ``(length, crc, payload)`` for every complete frame.

        The undecoded sibling of :meth:`frames`: the header is
        validated (magic, length cap) but the payload is handed back
        as raw bytes — neither CRC-checked nor codec-decoded.  This is
        the pre-parse admission hook: an overloaded front door consumes
        the frame (staying synchronized on the stream) and sheds it for
        the cost of a 12-byte header parse.  Callers that do want the
        value pass the tuple to :func:`decode_payload`.
        """
        if self._poisoned is not None:
            raise self._poisoned
        while True:
            if len(self._buf) < HEADER_SIZE:
                return
            try:
                length, crc = parse_header(bytes(self._buf[:HEADER_SIZE]))
            except WireError as exc:
                self._poisoned = exc
                raise
            end = HEADER_SIZE + length
            if len(self._buf) < end:
                return
            payload = bytes(self._buf[HEADER_SIZE:end])
            del self._buf[:end]
            yield length, crc, payload

    def frames(self) -> Iterator[Any]:
        """Yield every complete value buffered; keep the torn tail."""
        for _length, crc, payload in self.raw_frames():
            try:
                value = decode_payload(payload, crc)
            except WireError as exc:
                self._poisoned = exc
                raise
            yield value


def write_frame(sock, value: Any) -> int:
    """Frame *value* onto a socket; returns the bytes sent."""
    frame = encode_frame(value)
    sock.sendall(frame)
    return len(frame)


def _recv_exact(sock, n: int) -> bytes | None:
    """Exactly *n* bytes from *sock*; ``None`` on clean EOF at a frame
    boundary; :class:`WireError` on EOF mid-frame."""
    chunks = bytearray()
    while len(chunks) < n:
        chunk = sock.recv(n - len(chunks))
        if not chunk:
            if not chunks:
                return None
            raise WireError(
                f"connection closed mid-frame ({len(chunks)}/{n} bytes)"
            )
        chunks += chunk
    return bytes(chunks)


def read_frame(sock) -> Any:
    """Read one complete frame from a socket.

    Returns the decoded value, or ``None`` on a clean EOF *between*
    frames.  EOF inside a frame — the mid-frame disconnect case — is a
    :class:`WireError`, never a hang or a partially-applied message.
    """
    header = _recv_exact(sock, HEADER_SIZE)
    if header is None:
        return None
    length, crc = parse_header(header)
    payload = _recv_exact(sock, length) if length else b""
    if payload is None:
        raise WireError("connection closed before frame payload")
    return decode_payload(payload, crc)


async def read_frame_async(reader: "asyncio.StreamReader") -> Any:
    """One complete frame from an asyncio stream.

    The event-loop twin of :func:`read_frame`, with the identical
    contract: the decoded value, ``None`` on a clean EOF *between*
    frames, and a :class:`WireError` on EOF inside a frame or any
    format violation — never a hang, never a partial apply.
    """
    try:
        header = await reader.readexactly(HEADER_SIZE)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise WireError(
            f"connection closed mid-frame "
            f"({len(exc.partial)}/{HEADER_SIZE} bytes)"
        ) from exc
    length, crc = parse_header(header)
    if length:
        try:
            payload = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise WireError("connection closed before frame payload") from exc
    else:
        payload = b""
    return decode_payload(payload, crc)


async def write_frame_async(writer: "asyncio.StreamWriter", value: Any) -> int:
    """Frame *value* onto an asyncio stream; returns the bytes sent.

    ``drain()`` is awaited, so a slow peer exerts backpressure on the
    writing coroutine instead of growing an unbounded transport buffer.
    """
    frame = encode_frame(value)
    writer.write(frame)
    await writer.drain()
    return len(frame)

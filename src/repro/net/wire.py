"""Length-prefixed wire framing for the canonical codec.

The simulated :class:`~repro.net.transport.Transport` hands decoded
copies around inside one process; a real network peer needs *frames* —
a way to find message boundaries in a byte stream and to reject a
damaged message before any of it is acted on.  This module frames the
existing canonical codec over any byte stream (the socket front-end in
:mod:`repro.service.frontend` is the first consumer):

``frame := MAGIC(4) | length u32 | crc32 u32 | payload``

* **MAGIC** (``b"RPW1"``) pins protocol + version; a peer speaking
  anything else fails on the first four bytes instead of misparsing.
* **length** is the payload byte count, capped at :data:`MAX_FRAME` —
  an oversized (or corrupted-to-oversized) prefix is rejected *before*
  any buffering, so a hostile 2 GiB announcement costs nothing.
* **crc32** covers the payload.  The codec alone cannot detect every
  single-byte corruption (flipping a digit inside an int yields a
  different valid int); the checksum makes any bit damage a loud
  :class:`WireError`, never a silently different value.  It is an
  integrity check against *accidents* only — authenticity is the
  protocol layer's job (signatures, proofs), not the framing's.

Decoding is incremental and torn-tolerant: :class:`FrameDecoder`
buffers partial frames across ``feed()`` calls and only yields whole,
checksum-verified, codec-decoded values.  A frame is therefore applied
completely or not at all — there is no partial-apply window.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Iterator

from repro.net.codec import decode, encode

__all__ = [
    "WireError",
    "MAGIC",
    "HEADER_SIZE",
    "MAX_FRAME",
    "encode_frame",
    "decode_frame",
    "FrameDecoder",
    "read_frame",
    "write_frame",
]

MAGIC = b"RPW1"
_HEADER = struct.Struct(">4sII")  # magic, payload length, payload crc32
HEADER_SIZE = _HEADER.size

#: Hard cap on one frame's payload.  Generous for this protocol (the
#: largest message is a spend token, a few KiB); small enough that a
#: corrupted length prefix can never make a peer buffer gigabytes.
MAX_FRAME = 1 << 24  # 16 MiB


class WireError(ValueError):
    """A frame violated the wire format (bad magic/length/checksum/codec)."""


def encode_frame(value: Any) -> bytes:
    """One complete frame for *value* (canonical codec + header)."""
    payload = encode(value)
    if len(payload) > MAX_FRAME:
        raise WireError(f"payload of {len(payload)} bytes exceeds MAX_FRAME")
    return _HEADER.pack(MAGIC, len(payload), zlib.crc32(payload)) + payload


def _parse_header(header: bytes) -> tuple[int, int]:
    magic, length, crc = _HEADER.unpack(header)
    if magic != MAGIC:
        raise WireError(f"bad frame magic {magic!r}")
    if length > MAX_FRAME:
        raise WireError(f"frame length {length} exceeds MAX_FRAME ({MAX_FRAME})")
    return length, crc


def _decode_payload(payload: bytes, crc: int) -> Any:
    if zlib.crc32(payload) != crc:
        raise WireError("frame checksum mismatch")
    try:
        return decode(payload)
    except WireError:
        raise
    except ValueError as exc:
        raise WireError(f"frame payload does not decode: {exc}") from exc


def decode_frame(data: bytes) -> tuple[Any, int]:
    """Decode one *complete* frame at the head of *data*.

    Returns ``(value, bytes_consumed)``.  Raises :class:`WireError` on
    any violation, including a frame that claims more bytes than *data*
    holds — the strict form used when the whole message is already in
    hand (tests, files).  For streams, use :class:`FrameDecoder`.
    """
    if len(data) < HEADER_SIZE:
        raise WireError("truncated frame header")
    length, crc = _parse_header(data[:HEADER_SIZE])
    end = HEADER_SIZE + length
    if len(data) < end:
        raise WireError(
            f"truncated frame: header promises {length} payload bytes, "
            f"{len(data) - HEADER_SIZE} present"
        )
    return _decode_payload(data[HEADER_SIZE:end], crc), end


class FrameDecoder:
    """Incremental frame parser for a byte stream.

    ``feed()`` bytes as they arrive (in any fragmentation); iterate
    :meth:`frames` for every value completed so far.  Partial frames
    stay buffered; format violations raise :class:`WireError` as early
    as the header allows and poison the decoder (a byte stream is
    unsynchronized after damage — the connection must be dropped).
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self._poisoned: WireError | None = None

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buf)

    def feed(self, data: bytes) -> None:
        if self._poisoned is not None:
            raise self._poisoned
        self._buf += data

    def frames(self) -> Iterator[Any]:
        """Yield every complete value buffered; keep the torn tail."""
        if self._poisoned is not None:
            raise self._poisoned
        while True:
            if len(self._buf) < HEADER_SIZE:
                return
            try:
                length, crc = _parse_header(bytes(self._buf[:HEADER_SIZE]))
                end = HEADER_SIZE + length
                if len(self._buf) < end:
                    return
                value = _decode_payload(bytes(self._buf[HEADER_SIZE:end]), crc)
            except WireError as exc:
                self._poisoned = exc
                raise
            del self._buf[:end]
            yield value


def write_frame(sock, value: Any) -> int:
    """Frame *value* onto a socket; returns the bytes sent."""
    frame = encode_frame(value)
    sock.sendall(frame)
    return len(frame)


def _recv_exact(sock, n: int) -> bytes | None:
    """Exactly *n* bytes from *sock*; ``None`` on clean EOF at a frame
    boundary; :class:`WireError` on EOF mid-frame."""
    chunks = bytearray()
    while len(chunks) < n:
        chunk = sock.recv(n - len(chunks))
        if not chunk:
            if not chunks:
                return None
            raise WireError(
                f"connection closed mid-frame ({len(chunks)}/{n} bytes)"
            )
        chunks += chunk
    return bytes(chunks)


def read_frame(sock) -> Any:
    """Read one complete frame from a socket.

    Returns the decoded value, or ``None`` on a clean EOF *between*
    frames.  EOF inside a frame — the mid-frame disconnect case — is a
    :class:`WireError`, never a hang or a partially-applied message.
    """
    header = _recv_exact(sock, HEADER_SIZE)
    if header is None:
        return None
    length, crc = _parse_header(header)
    payload = _recv_exact(sock, length) if length else b""
    if payload is None:
        raise WireError("connection closed before frame payload")
    return _decode_payload(payload, crc)

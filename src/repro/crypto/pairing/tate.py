"""Tate pairing via Miller's algorithm.

We compute the *reduced modified Tate pairing*

    ê(P, Q) = f_{r,P}(ψ(Q)) ^ ((p² - 1) / r)   ∈ μ_r ⊂ F_{p²}*

for ``P, Q`` in the order-*r* subgroup of ``E(F_p)``, where ψ is the
distortion map of :meth:`~repro.crypto.pairing.curve.Point.distort`.
Because ψ(Q) is linearly independent of P, the map is non-degenerate
even at ``Q = P`` — giving a *symmetric* pairing ``G × G → G_T`` as the
Camenisch–Lysyanskaya signature scheme assumes.

The Miller loop keeps both line and vertical-line denominators: with
``p ≡ 3 (mod 4)`` none of them can vanish at ψ(Q) (the x-coordinate of
ψ(Q) is ``-x_Q ∈ F_p`` and no F_p-rational point shares it because
``-1`` is a non-residue; the evaluated line has a nonzero imaginary
part whenever ``y_Q ≠ 0``, guaranteed for odd *r*).  See the module
tests for the bilinearity/non-degeneracy checks.
"""

from __future__ import annotations

from repro.crypto.pairing.curve import CurveParams, Point
from repro.crypto.pairing.field import Fp2

__all__ = ["miller_loop", "multi_operate", "tate_pairing", "TatePairing"]


def _line_eval(t: Point, u: Point, s: Point) -> Fp2:
    """Evaluate at *s* the line through *t* and *u* (chord/tangent/vertical).

    Returns the value ``l_{T,U}(S)`` used by Miller's algorithm.  When
    the line is vertical the value is ``x_S - x_T``.
    """
    p = t.p
    if t.is_infinity or u.is_infinity:
        # line through infinity and V is the vertical at V
        v = u if t.is_infinity else t
        return s.x - v.x
    if t.x == u.x:
        if t.y == -u.y:
            # vertical line x = x_T
            return s.x - t.x
        # tangent: λ = (3x² + 1) / 2y
        num = (t.x * t.x).scalar_mul(3) + Fp2.one(p)
        lam = num / t.y.scalar_mul(2)
    else:
        lam = (u.y - t.y) / (u.x - t.x)
    # l(S) = y_S - y_T - λ (x_S - x_T)
    return s.y - t.y - lam * (s.x - t.x)


def miller_loop(P: Point, S: Point, r: int) -> Fp2:
    """Compute ``f_{r,P}(S)`` with the standard double-and-add Miller loop."""
    if P.is_infinity or S.is_infinity:
        raise ValueError("Miller loop inputs must be finite points")
    p = P.p
    f = Fp2.one(p)
    T = P
    # iterate over bits of r from the second-most-significant down
    for bit in bin(r)[3:]:
        two_t = T + T
        num = _line_eval(T, T, S)
        den = _line_eval(two_t, -two_t, S)  # vertical at 2T
        f = f * f * num / den
        T = two_t
        if bit == "1":
            t_plus_p = T + P
            num = _line_eval(T, P, S)
            den = _line_eval(t_plus_p, -t_plus_p, S)  # vertical at T+P
            f = f * num / den
            T = t_plus_p
    if not T.is_infinity and T != P.multiply(r):  # pragma: no cover - invariant
        raise AssertionError("Miller loop did not land on rP")
    return f


def multi_operate(identity, op, elements, scalars, *, window: int = 4):
    """Interleaved windowed multi-exponentiation (Straus's trick).

    Computes ``Π elements[i] ^ scalars[i]`` for any group given as an
    ``(identity, op)`` pair, sharing one doubling chain across all
    elements: ``max_bits`` doublings total instead of ``max_bits`` per
    element.  With the default 4-bit window each element additionally
    pays 14 table operations plus one lookup-multiply per window —
    roughly a third of the group operations of independent
    square-and-multiply for the 32–64-bit scalars the batch verifier
    uses.  Scalars must be non-negative (reduce mod the group order
    first); zero scalars are skipped.
    """
    pairs = [(el, s) for el, s in zip(elements, scalars) if s > 0]
    if not pairs:
        return identity
    table_size = 1 << window
    tables = []
    for el, _ in pairs:
        table = [identity, el]
        for _ in range(table_size - 2):
            table.append(op(table[-1], el))
        tables.append(table)
    max_bits = max(s.bit_length() for _, s in pairs)
    n_windows = (max_bits + window - 1) // window
    mask = table_size - 1
    acc = identity
    for w in range(n_windows - 1, -1, -1):
        if w != n_windows - 1:
            for _ in range(window):
                acc = op(acc, acc)
        shift = w * window
        for (_, s), table in zip(pairs, tables):
            digit = (s >> shift) & mask
            if digit:
                acc = op(acc, table[digit])
    return acc


def tate_pairing(params: CurveParams, P: Point, Q: Point) -> Fp2:
    """The reduced modified Tate pairing ``ê(P, Q)``.

    Both inputs must lie in the order-*r* subgroup of ``E(F_p)``.  The
    result is in the order-*r* subgroup of ``F_{p²}*`` (``1`` exactly
    when either input is the identity).
    """
    p, r = params.p, params.r
    if P.is_infinity or Q.is_infinity:
        return Fp2.one(p)
    f = miller_loop(P, Q.distort(), r)
    # final exponentiation: (p^2 - 1) / r = (p - 1) * (p + 1) / r
    # x^(p-1) = conj(x) / x  (Frobenius is conjugation in F_p[i])
    f = f.conjugate() / f
    return f.pow((p + 1) // r)


class TatePairing:
    """Bilinear-group backend over the supersingular Tate pairing.

    Exposes the interface consumed by :mod:`repro.crypto.cl_sig`:
    source-group elements are :class:`Point`, target-group elements are
    :class:`Fp2`, scalars live in ``Z_r``.
    """

    name = "tate"

    def __init__(self, params: CurveParams) -> None:
        self.params = params
        self.order = params.r
        self.g = params.generator
        self._gt_gen: Fp2 | None = None

    # -- source group -------------------------------------------------------
    def exp(self, base: Point, scalar: int) -> Point:
        return base.multiply(scalar % self.order)

    def mul(self, a: Point, b: Point) -> Point:
        return a + b

    def identity(self) -> Point:
        return Point.infinity(self.params.p)

    def multi_exp(self, bases, scalars) -> Point:
        """``Π bases[i]^{scalars[i]}`` via a shared-window Straus chain.

        Point additions here cost a modular inversion each, so cutting
        the group-operation count directly cuts the batch verifier's
        per-token overhead (see :mod:`repro.ecash.batch`).
        """
        reduced = [s % self.order for s in scalars]
        return multi_operate(self.identity(), lambda a, b: a + b, bases, reduced)

    def random_scalar(self, rng) -> int:
        return rng.randrange(1, self.order)

    def random_element(self, rng) -> Point:
        return self.exp(self.g, self.random_scalar(rng))

    def element_encode(self, a: Point) -> tuple:
        return a.encode()

    # -- pairing / target group ----------------------------------------------
    def pair(self, a: Point, b: Point) -> Fp2:
        return tate_pairing(self.params, a, b)

    def gt_mul(self, a: Fp2, b: Fp2) -> Fp2:
        return a * b

    def gt_exp(self, a: Fp2, scalar: int) -> Fp2:
        return a.pow(scalar % self.order)

    def gt_eq(self, a: Fp2, b: Fp2) -> bool:
        return a == b

    def gt_one(self) -> Fp2:
        return Fp2.one(self.params.p)

    def gt_multi_exp(self, bases, scalars) -> Fp2:
        """``Π bases[i]^{scalars[i]}`` in G_T via the shared Straus chain."""
        reduced = [s % self.order for s in scalars]
        return multi_operate(self.gt_one(), lambda a, b: a * b, bases, reduced)

    def gt_generator(self) -> Fp2:
        """ê(g, g) — cached; non-degeneracy makes it a G_T generator."""
        if self._gt_gen is None:
            self._gt_gen = self.pair(self.g, self.g)
        return self._gt_gen

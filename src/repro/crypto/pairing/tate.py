"""Tate pairing via Miller's algorithm.

We compute the *reduced modified Tate pairing*

    ê(P, Q) = f_{r,P}(ψ(Q)) ^ ((p² - 1) / r)   ∈ μ_r ⊂ F_{p²}*

for ``P, Q`` in the order-*r* subgroup of ``E(F_p)``, where ψ is the
distortion map of :meth:`~repro.crypto.pairing.curve.Point.distort`.
Because ψ(Q) is linearly independent of P, the map is non-degenerate
even at ``Q = P`` — giving a *symmetric* pairing ``G × G → G_T`` as the
Camenisch–Lysyanskaya signature scheme assumes.

The Miller loop keeps both line and vertical-line denominators: with
``p ≡ 3 (mod 4)`` none of them can vanish at ψ(Q) (the x-coordinate of
ψ(Q) is ``-x_Q ∈ F_p`` and no F_p-rational point shares it because
``-1`` is a non-residue; the evaluated line has a nonzero imaginary
part whenever ``y_Q ≠ 0``, guaranteed for odd *r*).  See the module
tests for the bilinearity/non-degeneracy checks.
"""

from __future__ import annotations

from repro.crypto import fastexp
from repro.crypto.pairing.curve import CurveParams, Point
from repro.crypto.pairing.field import Fp2

__all__ = [
    "miller_loop",
    "multi_operate",
    "tate_pairing",
    "final_exponentiation",
    "MillerTable",
    "PairingBatch",
    "TatePairing",
    "clear_shared_tables",
]


def _line_eval(t: Point, u: Point, s: Point) -> Fp2:
    """Evaluate at *s* the line through *t* and *u* (chord/tangent/vertical).

    Returns the value ``l_{T,U}(S)`` used by Miller's algorithm.  When
    the line is vertical the value is ``x_S - x_T``.
    """
    p = t.p
    if t.is_infinity or u.is_infinity:
        # line through infinity and V is the vertical at V
        v = u if t.is_infinity else t
        return s.x - v.x
    if t.x == u.x:
        if t.y == -u.y:
            # vertical line x = x_T
            return s.x - t.x
        # tangent: λ = (3x² + 1) / 2y
        num = (t.x * t.x).scalar_mul(3) + Fp2.one(p)
        lam = num / t.y.scalar_mul(2)
    else:
        lam = (u.y - t.y) / (u.x - t.x)
    # l(S) = y_S - y_T - λ (x_S - x_T)
    return s.y - t.y - lam * (s.x - t.x)


def miller_loop(P: Point, S: Point, r: int) -> Fp2:
    """Compute ``f_{r,P}(S)`` with the standard double-and-add Miller loop."""
    if P.is_infinity or S.is_infinity:
        raise ValueError("Miller loop inputs must be finite points")
    p = P.p
    f = Fp2.one(p)
    T = P
    # iterate over bits of r from the second-most-significant down
    for bit in bin(r)[3:]:
        two_t = T + T
        num = _line_eval(T, T, S)
        den = _line_eval(two_t, -two_t, S)  # vertical at 2T
        f = f * f * num / den
        T = two_t
        if bit == "1":
            t_plus_p = T + P
            num = _line_eval(T, P, S)
            den = _line_eval(t_plus_p, -t_plus_p, S)  # vertical at T+P
            f = f * num / den
            T = t_plus_p
    if not T.is_infinity and T != P.multiply(r):  # pragma: no cover - invariant
        raise AssertionError("Miller loop did not land on rP")
    return f


def multi_operate(identity, op, elements, scalars, *, window: int = 4):
    """Interleaved windowed multi-exponentiation (Straus's trick).

    Computes ``Π elements[i] ^ scalars[i]`` for any group given as an
    ``(identity, op)`` pair, sharing one doubling chain across all
    elements: ``max_bits`` doublings total instead of ``max_bits`` per
    element.  With the default 4-bit window each element additionally
    pays 14 table operations plus one lookup-multiply per window —
    roughly a third of the group operations of independent
    square-and-multiply for the 32–64-bit scalars the batch verifier
    uses.  Scalars must be non-negative (reduce mod the group order
    first); zero scalars are skipped.
    """
    pairs = [(el, s) for el, s in zip(elements, scalars) if s > 0]
    if not pairs:
        return identity
    table_size = 1 << window
    tables = []
    for el, _ in pairs:
        table = [identity, el]
        for _ in range(table_size - 2):
            table.append(op(table[-1], el))
        tables.append(table)
    max_bits = max(s.bit_length() for _, s in pairs)
    n_windows = (max_bits + window - 1) // window
    mask = table_size - 1
    acc = identity
    for w in range(n_windows - 1, -1, -1):
        if w != n_windows - 1:
            for _ in range(window):
                acc = op(acc, acc)
        shift = w * window
        for (_, s), table in zip(pairs, tables):
            digit = (s >> shift) & mask
            if digit:
                acc = op(acc, table[digit])
    return acc


def final_exponentiation(params: CurveParams, f: Fp2) -> Fp2:
    """Map a raw Miller value into μ_r: ``f ^ ((p² - 1) / r)``.

    This is a *multiplicative homomorphism* ``F_{p²}* → μ_r`` — the
    fact the batched pairing check rests on: a product of raw Miller
    values needs only ONE final exponentiation, and
    ``finalexp(Π raw_i^{k_i}) = Π ê_i^{k_i}``.
    """
    f = f.conjugate() / f  # x^(p-1) = conj(x)/x (Frobenius is conjugation)
    return f.pow((params.p + 1) // params.r)


def _line_desc(t: Point, u: Point):
    """The line through *t* and *u* as an evaluable descriptor.

    Mirrors the branch structure of :func:`_line_eval` exactly:
    ``("v", x0)`` is the vertical ``x = x0`` (evaluating to
    ``s.x - x0``), ``("l", lam, tx, ty)`` the chord/tangent through
    ``(tx, ty)`` with slope ``lam`` (evaluating to
    ``s.y - ty - lam*(s.x - tx)``).  Field arithmetic is exact, so
    evaluating a descriptor reproduces :func:`_line_eval` bit for bit.
    """
    p = t.p
    if t.is_infinity or u.is_infinity:
        v = u if t.is_infinity else t
        return ("v", v.x)
    if t.x == u.x:
        if t.y == -u.y:
            return ("v", t.x)
        num = (t.x * t.x).scalar_mul(3) + Fp2.one(p)
        lam = num / t.y.scalar_mul(2)
    else:
        lam = (u.y - t.y) / (u.x - t.x)
    return ("l", lam, t.x, t.y)


def _flat_desc(desc: tuple) -> tuple[int, ...]:
    """A descriptor as a flat int 7-tuple for the inline evaluation loop.

    ``(1, x0a, x0b, 0, 0, 0, 0)`` is the vertical ``x = x0``;
    ``(0, la, lb, txa, txb, tya, tyb)`` the chord/tangent.  Plain ints
    keep the hot loop free of :class:`Fp2` allocations (one object and
    three method calls per field multiply otherwise) and make the
    tables picklable as pure data for the shared-memory transport.
    """
    if desc[0] == "v":
        x0 = desc[1]
        return (1, x0.a, x0.b, 0, 0, 0, 0)
    _, lam, tx, ty = desc
    return (0, lam.a, lam.b, tx.a, tx.b, ty.a, ty.b)


def _desc_from_flat(flat: tuple[int, ...], p: int):
    """Inverse of :func:`_flat_desc` (exact roundtrip)."""
    if flat[0]:
        return ("v", Fp2(flat[1], flat[2], p))
    return (
        "l",
        Fp2(flat[1], flat[2], p),
        Fp2(flat[3], flat[4], p),
        Fp2(flat[5], flat[6], p),
    )


class MillerTable:
    """Precomputed Miller loop for a *fixed* first pairing argument.

    The double-and-add walk of ``f_{r,P}`` depends only on ``P`` and
    ``r``: every chord/tangent slope and every vertical can be computed
    once and stored as line descriptors.  :meth:`pair` then evaluates
    ``ê(P, Q)`` for any ``Q`` with two field multiplies per stored line
    and a *single* inversion at the end (numerator and denominator are
    accumulated separately), instead of re-deriving each line — with
    its own inversion — per pairing.  Results are bit-identical to
    :func:`tate_pairing`; the build costs about one pairing.
    """

    __slots__ = ("params", "point", "_steps", "_flat", "_final_exp")

    def __init__(self, params: CurveParams, P: Point) -> None:
        if P.is_infinity:
            raise ValueError("cannot precompute the Miller loop at infinity")
        self.params = params
        self.point = P
        r = params.r
        steps: list[tuple[bool, tuple, tuple]] = []
        T = P
        for bit in bin(r)[3:]:
            two_t = T + T
            steps.append((True, _line_desc(T, T), _line_desc(two_t, -two_t)))
            T = two_t
            if bit == "1":
                t_plus_p = T + P
                steps.append((False, _line_desc(T, P), _line_desc(t_plus_p, -t_plus_p)))
                T = t_plus_p
        self._steps = steps
        self._flat = [
            (is_double, _flat_desc(nd), _flat_desc(dd))
            for is_double, nd, dd in steps
        ]
        self._final_exp = (params.p + 1) // r

    @property
    def n_steps(self) -> int:
        return len(self._steps)

    @staticmethod
    def _eval(desc: tuple, s: Point) -> Fp2:
        if desc[0] == "v":
            return s.x - desc[1]
        _, lam, tx, ty = desc
        return s.y - ty - lam * (s.x - tx)

    def raw(self, Q: Point) -> Fp2:
        """The *pre-final-exponentiation* Miller value ``f_{r,point}(ψ(Q))``.

        The loop runs on flat int coefficient pairs with the F_{p²}
        multiplication written out — ``(a,b)·(c,d) = (ac − bd, ad + bc)``
        mod p, exactly :meth:`Fp2.__mul__` — so the result is
        bit-identical to accumulating :class:`Fp2` objects while paying
        none of their allocation cost.  Numerator and denominator are
        tracked separately; the single inversion happens here, once.
        """
        p = self.params.p
        if Q.is_infinity:
            return Fp2.one(p)
        s = Q.distort()
        sxa, sxb = s.x.a, s.x.b
        sya, syb = s.y.a, s.y.b
        fna, fnb = 1, 0
        fda, fdb = 1, 0
        for is_double, nd, dd in self._flat:
            if is_double:
                fna, fnb = (fna * fna - fnb * fnb) % p, (2 * fna * fnb) % p
                fda, fdb = (fda * fda - fdb * fdb) % p, (2 * fda * fdb) % p
            if nd[0]:
                va = sxa - nd[1]
                vb = sxb - nd[2]
            else:
                dxa = sxa - nd[3]
                dxb = sxb - nd[4]
                va = sya - nd[5] - (nd[1] * dxa - nd[2] * dxb)
                vb = syb - nd[6] - (nd[1] * dxb + nd[2] * dxa)
            fna, fnb = (fna * va - fnb * vb) % p, (fna * vb + fnb * va) % p
            if dd[0]:
                va = sxa - dd[1]
                vb = sxb - dd[2]
            else:
                dxa = sxa - dd[3]
                dxb = sxb - dd[4]
                va = sya - dd[5] - (dd[1] * dxa - dd[2] * dxb)
                vb = syb - dd[6] - (dd[1] * dxb + dd[2] * dxa)
            fda, fdb = (fda * va - fdb * vb) % p, (fda * vb + fdb * va) % p
        return Fp2(fna, fnb, p) / Fp2(fda, fdb, p)

    def pair(self, Q: Point) -> Fp2:
        """``ê(point, Q)`` — bit-identical to :func:`tate_pairing`."""
        if Q.is_infinity:
            return Fp2.one(self.params.p)
        f = self.raw(Q)
        f = f.conjugate() / f
        return f.pow(self._final_exp)

    # -- serialization (shared-memory table transport) --------------------
    def to_state(self) -> dict:
        """Plain-int snapshot (the flat steps ARE the payload)."""
        return {
            "point": self.point.encode(),
            "steps": [
                (1 if is_double else 0, nd, dd)
                for is_double, nd, dd in self._flat
            ],
        }

    @classmethod
    def from_state(cls, params: CurveParams, state: dict) -> "MillerTable":
        table = cls.__new__(cls)
        table.params = params
        p = params.p
        xa, xb, ya, yb, inf = state["point"]
        if inf:
            raise ValueError("Miller table state at infinity")
        table.point = Point(Fp2(xa, xb, p), Fp2(ya, yb, p), p)
        flat: list[tuple] = []
        steps: list[tuple] = []
        for is_double, nd, dd in state["steps"]:
            nd = tuple(int(x) for x in nd)
            dd = tuple(int(x) for x in dd)
            if len(nd) != 7 or len(dd) != 7:
                raise ValueError("malformed Miller step")
            flat.append((bool(is_double), nd, dd))
            steps.append((bool(is_double), _desc_from_flat(nd, p), _desc_from_flat(dd, p)))
        table._flat = flat
        table._steps = steps
        table._final_exp = (params.p + 1) // params.r
        return table


def tate_pairing(params: CurveParams, P: Point, Q: Point) -> Fp2:
    """The reduced modified Tate pairing ``ê(P, Q)``.

    Both inputs must lie in the order-*r* subgroup of ``E(F_p)``.  The
    result is in the order-*r* subgroup of ``F_{p²}*`` (``1`` exactly
    when either input is the identity).
    """
    p, r = params.p, params.r
    if P.is_infinity or Q.is_infinity:
        return Fp2.one(p)
    f = miller_loop(P, Q.distort(), r)
    # final exponentiation: (p^2 - 1) / r = (p - 1) * (p + 1) / r
    # x^(p-1) = conj(x) / x  (Frobenius is conjugation in F_p[i])
    f = f.conjugate() / f
    return f.pow((p + 1) // r)


class PairingBatch:
    """Amortized check of ``Π ê(P_i, Q_i)^{k_i} · Π t_j^{m_j} == 1``.

    Three amortizations stack (see ``docs/performance.md``):

    * exponents fold into the *source* group first — by bilinearity
      ``Π ê(F, Q_i)^{k_i} = ê(F, Σ k_i·Q_i)``, so terms sharing a fixed
      first argument ``F`` (the generator, the bank's ``X``/``Y``)
      collapse to one point multi-exp plus ONE Miller loop;
    * Miller loops produce *raw* (pre-final-exponentiation) values that
      are multiplied in F_{p²} and pushed through a single shared
      :func:`final_exponentiation` — the dominant ``pow`` of a pairing
      is paid once per flush instead of once per pairing;
    * loose G_T factors (deferred commitments, statement powers) join
      via one Straus chain.

    Exponents are reduced mod *r* on entry (sound: both ``ê`` and the
    G_T elements live in order-*r* groups); zero-reduced terms drop
    out, which is why the batch coefficients upstream are drawn from
    ``[1, min(2^128, r))`` — never 0 mod r.
    """

    def __init__(self, backend: "TatePairing") -> None:
        self._backend = backend
        # fixed-argument key -> (fixed point, moving points, scalars)
        self._pairs: dict[tuple, tuple[Point, list[Point], list[int]]] = {}
        # (fixed key, moving key) -> slot in the entry's parallel lists;
        # repeated pairs merge by summing scalars (exact:
        # ê(F,Q)^a · ê(F,Q)^b = ê(F,Q)^{a+b}), so a batch over recycled
        # tokens pays one Miller evaluation per *distinct* point.
        self._slots: dict[tuple, int] = {}
        self._gt: list[Fp2] = []
        self._gt_scalars: list[int] = []

    def add_pair(self, fixed: Point, moving: Point, exponent: int = 1) -> None:
        """Multiply ``ê(fixed, moving)^exponent`` into the product."""
        order = self._backend.order
        k = exponent % order
        if k == 0 or fixed.is_infinity or moving.is_infinity:
            return  # ê(·, ∞) = 1 contributes nothing
        fixed_key = fixed.encode()
        entry = self._pairs.get(fixed_key)
        if entry is None:
            entry = (fixed, [], [])
            self._pairs[fixed_key] = entry
        slot_key = (fixed_key, moving.encode())
        slot = self._slots.get(slot_key)
        if slot is None:
            self._slots[slot_key] = len(entry[1])
            entry[1].append(moving)
            entry[2].append(k)
        else:
            entry[2][slot] = (entry[2][slot] + k) % order

    def add_gt(self, element: Fp2, exponent: int = 1) -> None:
        """Multiply ``element^exponent`` (a G_T value) into the product."""
        k = exponent % self._backend.order
        if k:
            self._gt.append(element)
            self._gt_scalars.append(k)

    def check(self) -> bool:
        """Whether the accumulated product is the G_T identity."""
        backend = self._backend
        p = backend.params.p
        raw_product: Fp2 | None = None
        for fixed, moving, scalars in self._pairs.values():
            table = (
                backend._pair_tables.get(fixed.encode(), fixed)
                if fastexp.enabled()
                else None
            )
            if table is not None:
                # a promoted Miller table makes per-point raw replays
                # cheap, and folding the scalars over the raw values in
                # F_{p²} (multiplications) beats folding them over the
                # curve (one inversion per point addition).  finalexp is
                # a homomorphism, so finalexp(Π raw_i^{k_i}) equals
                # finalexp(raw of the source-folded point) — the verdict
                # is identical either way.
                raw = multi_operate(
                    Fp2.one(p),
                    lambda a, b: a * b,
                    [table.raw(Q) for Q in moving],
                    scalars,
                )
            else:
                acc = backend.multi_exp(moving, scalars)
                if acc.is_infinity:
                    continue
                raw = backend._raw_pair(fixed, acc)
            raw_product = raw if raw_product is None else raw_product * raw
        value = (
            Fp2.one(p)
            if raw_product is None
            else final_exponentiation(backend.params, raw_product)
        )
        if self._gt:
            value = value * multi_operate(
                Fp2.one(p), lambda a, b: a * b, self._gt, self._gt_scalars
            )
        return value == Fp2.one(p)


#: curve identity -> exported table state; consulted by
#: ``TatePairing.__setstate__`` so the backends unpickled per worker
#: *chunk* inherit the tables the worker adopted (or warmed) at spawn
#: instead of rebuilding from nothing every chunk.
_SHARED_TABLES: dict[tuple, dict] = {}


def _table_key(params: CurveParams) -> tuple:
    return (params.p, params.r, params.generator.encode())


def clear_shared_tables() -> None:
    """Drop the process-level table registry (test isolation)."""
    _SHARED_TABLES.clear()


class TatePairing:
    """Bilinear-group backend over the supersingular Tate pairing.

    Exposes the interface consumed by :mod:`repro.crypto.cl_sig`:
    source-group elements are :class:`Point`, target-group elements are
    :class:`Fp2`, scalars live in ``Z_r``.
    """

    name = "tate"

    def __init__(self, params: CurveParams) -> None:
        self.params = params
        self.order = params.r
        self.g = params.generator
        self._gt_gen: Fp2 | None = None
        self._init_caches()

    def _init_caches(self) -> None:
        """Per-backend table caches (lazy payloads, tiny when unused)."""
        self._pair_tables = fastexp.PromotionCache(
            "tate.pair",
            lambda point: MillerTable(self.params, point),
            max_entries=8,
            promote_after=2,
        )
        self._point_tables = fastexp.PromotionCache(
            "tate.exp",
            lambda point: fastexp.GenericFixedBaseTable(
                self.identity(),
                lambda a, b: a + b,
                point,
                self.order.bit_length(),
                teeth=6,
                splits=2,
            ),
            max_entries=8,
            promote_after=3,
        )

    # table caches hold closures and are rebuilt cheaply — keep them out
    # of pickles (DECParams ships this backend to worker processes)
    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_pair_tables", None)
        state.pop("_point_tables", None)
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._init_caches()
        shared = _SHARED_TABLES.get(_table_key(self.params))
        if shared is not None and fastexp.enabled():
            try:
                self.install_tables(shared, register=False)
            except Exception:
                # a stale or corrupt registry entry must never break
                # unpickling — the caches just start cold, as before
                pass

    # -- source group -------------------------------------------------------
    def exp(self, base: Point, scalar: int) -> Point:
        return base.multiply(scalar % self.order)

    def exp_fixed(self, base: Point, scalar: int) -> Point:
        """:meth:`exp` through a per-base comb table (same result).

        Curve additions are Python-level (one inversion each), so the
        comb's op-count reduction pays at any curve size — no modulus
        gate here, only the promotion threshold.
        """
        s = scalar % self.order
        if not fastexp.enabled() or base.is_infinity:
            return base.multiply(s)
        table = self._point_tables.get(base.encode(), base)
        if table is None:
            return base.multiply(s)
        return table.exp(s)

    def warm_exp_fixed(self, *bases: Point) -> None:
        """Eagerly build comb tables for known-hot *bases*."""
        if not fastexp.enabled():
            return
        for base in bases:
            if not base.is_infinity:
                self._point_tables.force(base.encode(), base)

    def mul(self, a: Point, b: Point) -> Point:
        return a + b

    def identity(self) -> Point:
        return Point.infinity(self.params.p)

    def multi_exp(self, bases, scalars) -> Point:
        """``Π bases[i]^{scalars[i]}`` via a shared-window Straus chain.

        Point additions here cost a modular inversion each, so cutting
        the group-operation count directly cuts the batch verifier's
        per-token overhead (see :mod:`repro.ecash.batch`).
        """
        reduced = [s % self.order for s in scalars]
        return multi_operate(self.identity(), lambda a, b: a + b, bases, reduced)

    def random_scalar(self, rng) -> int:
        return rng.randrange(1, self.order)

    def random_element(self, rng) -> Point:
        return self.exp(self.g, self.random_scalar(rng))

    def element_encode(self, a: Point) -> tuple:
        return a.encode()

    # -- pairing / target group ----------------------------------------------
    def pair(self, a: Point, b: Point) -> Fp2:
        """``ê(a, b)``, served from a Miller table once either argument
        promotes.

        The fixed slots of spend verification — the generator ``g`` and
        the bank key components ``X``, ``Y`` — each appear in every
        deposit, so their tables build once and every later pairing
        skips the per-step line derivations.  The pairing is symmetric
        in this distorted construction (``ê(a,b) = ê(b,a)``, see the
        backend tests), so a table for *either* argument suffices.
        """
        if not fastexp.enabled():
            return tate_pairing(self.params, a, b)
        if a.is_infinity or b.is_infinity:
            return Fp2.one(self.params.p)
        table = self._pair_tables.get(a.encode(), a)
        if table is not None:
            return table.pair(b)
        table = self._pair_tables.get(b.encode(), b)
        if table is not None:
            return table.pair(a)
        return tate_pairing(self.params, a, b)

    def warm_pair(self, *points: Point) -> None:
        """Eagerly build Miller tables for known-fixed pairing arguments."""
        if not fastexp.enabled():
            return
        for point in points:
            if not point.is_infinity:
                self._pair_tables.force(point.encode(), point)

    def _raw_pair(self, a: Point, b: Point) -> Fp2:
        """Pre-final-exponentiation Miller value ``f_{r,a}(ψ(b))``.

        Only meaningful inside a product that is final-exponentiated as
        a whole (:class:`PairingBatch`) — the raw value is NOT the
        pairing and is not symmetric in its arguments.
        """
        if fastexp.enabled():
            table = self._pair_tables.get(a.encode(), a)
            if table is not None:
                return table.raw(b)
        return miller_loop(a, b.distort(), self.params.r)

    def pairing_batch(self) -> PairingBatch:
        """A fresh accumulator for one amortized product-of-pairings check."""
        return PairingBatch(self)

    # -- table sharing -------------------------------------------------------
    def _decode_point(self, encoded) -> Point:
        xa, xb, ya, yb, inf = encoded
        p = self.params.p
        if inf:
            return Point.infinity(p)
        return Point(Fp2(xa, xb, p), Fp2(ya, yb, p), p)

    def export_tables(self) -> dict:
        """Resident Miller + point-comb tables as plain picklable state."""
        return {
            "pair": [table.to_state() for _, table in self._pair_tables.snapshot()],
            "exp": [
                table.to_state(lambda pt: pt.encode())
                for _, table in self._point_tables.snapshot()
            ],
        }

    def install_tables(self, state: dict, *, register: bool = True) -> int:
        """Adopt exported tables; returns the count installed.

        With *register* (the default) the state is also parked in the
        process-level registry so backends unpickled later for the same
        curve (one per worker chunk) attach automatically.
        """
        if not fastexp.enabled():
            return 0
        installed = 0
        for table_state in state.get("pair", ()):
            table = MillerTable.from_state(self.params, table_state)
            self._pair_tables.install(table.point.encode(), table)
            installed += 1
        for table_state in state.get("exp", ()):
            table = fastexp.GenericFixedBaseTable.from_state(
                self.identity(), lambda a, b: a + b, self._decode_point, table_state
            )
            self._point_tables.install(table.base.encode(), table)
            installed += 1
        if register:
            _SHARED_TABLES[_table_key(self.params)] = state
        return installed

    def register_shared(self) -> None:
        """Park this backend's resident tables for same-curve unpickles."""
        _SHARED_TABLES[_table_key(self.params)] = self.export_tables()

    def gt_mul(self, a: Fp2, b: Fp2) -> Fp2:
        return a * b

    def gt_exp(self, a: Fp2, scalar: int) -> Fp2:
        return a.pow(scalar % self.order)

    def gt_eq(self, a: Fp2, b: Fp2) -> bool:
        return a == b

    def gt_contains(self, a: Fp2) -> bool:
        """Membership in ``μ_r``, the order-*r* pairing subgroup of F_{p²}^*.

        Adversarial G_T inputs (a proof's ``R_B``) must pass this gate
        before entering any random-linear-combination product:
        F_{p²}^* carries a cofactor ``(p²-1)/r`` component, and a
        small-order offset would survive the combined check with
        non-negligible probability (an order-2 factor escapes whenever
        its coefficient is even — probability 1/2).  Uses a raw field
        exponentiation: :meth:`gt_exp` reduces exponents mod *r*, which
        would make ``a^r`` vacuously the identity.
        """
        return not a.is_zero() and a.pow(self.order) == Fp2.one(self.params.p)

    def gt_one(self) -> Fp2:
        return Fp2.one(self.params.p)

    def gt_multi_exp(self, bases, scalars) -> Fp2:
        """``Π bases[i]^{scalars[i]}`` in G_T via the shared Straus chain."""
        reduced = [s % self.order for s in scalars]
        return multi_operate(self.gt_one(), lambda a, b: a * b, bases, reduced)

    def gt_generator(self) -> Fp2:
        """ê(g, g) — cached; non-degeneracy makes it a G_T generator."""
        if self._gt_gen is None:
            self._gt_gen = self.pair(self.g, self.g)
        return self._gt_gen

"""The paper's "easy to find" bilinear map backend.

Section VI-B of the paper notes that instead of a cryptographic pairing
"it's also acceptable if anyone wants to map the multiplicative group
into an additive group, in this case, a bilinear map is very easy to
find, and the correctness of signature will still hold."  This module
is that construction: the source group is ``(Z_r, +)`` written through
the same interface as the Tate backend, and

    e(a, b) = g_T ^ (a * b mod r)

with ``g_T`` a fixed generator of a multiplicative target group.  The
map is bilinear and non-degenerate, so every CL-signature identity
holds — but discrete logs in the source group are trivial, so it offers
**no security**.  It exists (a) to mirror the paper's own shortcut, (b)
as a fast backend for protocol-level tests and benches where pairing
cost would drown the signal, and (c) as an oracle for differential
testing of the Tate backend.
"""

from __future__ import annotations

import random

from repro.crypto.groups import SchnorrGroup

__all__ = ["ToyPairing", "ToyPairingBatch"]


class ToyPairingBatch:
    """Amortized ``Π e(a_i, b_i)^{k_i} · Π t_j^{m_j} == 1`` for the toy map.

    ``e(a, b)^k = g_T^{a·b·k}``, so the whole product-of-pairings side
    collapses to ONE scalar accumulation mod *r* and a single
    fixed-base exponentiation — the toy-backend analogue of the Tate
    backend's shared final exponentiation (same :class:`PairingBatch`
    interface, consumed blindly by :mod:`repro.ecash.batch`).
    """

    def __init__(self, backend: "ToyPairing") -> None:
        self._backend = backend
        self._scalar = 0
        self._gt: list[int] = []
        self._gt_scalars: list[int] = []

    def add_pair(self, fixed: int, moving: int, exponent: int = 1) -> None:
        self._scalar = (self._scalar + fixed * moving * exponent) % self._backend.order

    def add_gt(self, element: int, exponent: int = 1) -> None:
        k = exponent % self._backend.order
        if k:
            self._gt.append(element)
            self._gt_scalars.append(k)

    def check(self) -> bool:
        target = self._backend.target
        value = target.power_fixed(self._scalar)
        if self._gt:
            value = target.mul(value, target.multi_exp(self._gt, self._gt_scalars))
        return value == 1 % target.p


class ToyPairing:
    """Structurally correct, intentionally insecure bilinear group.

    Source-group elements are ints mod *r* (exponents in disguise);
    target-group elements are elements of a Schnorr group of order *r*.
    """

    name = "toy"

    def __init__(self, target: SchnorrGroup) -> None:
        self.target = target
        self.order = target.q
        self.g = 1  # the additive generator of Z_r

    @classmethod
    def generate(cls, bits: int, rng: random.Random) -> "ToyPairing":
        """Build a toy backend whose target group has *bits*-bit modulus."""
        return cls(SchnorrGroup.generate(bits, rng))

    # -- source group -------------------------------------------------------
    def exp(self, base: int, scalar: int) -> int:
        return (base * scalar) % self.order

    def exp_fixed(self, base: int, scalar: int) -> int:
        # source-group exps are a single multiply; nothing to precompute
        return (base * scalar) % self.order

    def mul(self, a: int, b: int) -> int:
        return (a + b) % self.order

    def identity(self) -> int:
        return 0

    def multi_exp(self, bases, scalars) -> int:
        acc = 0
        for base, scalar in zip(bases, scalars):
            acc = (acc + base * scalar) % self.order
        return acc

    def random_scalar(self, rng: random.Random) -> int:
        return rng.randrange(1, self.order)

    def random_element(self, rng: random.Random) -> int:
        return rng.randrange(1, self.order)

    def element_encode(self, a: int) -> tuple:
        return (a,)

    def warm_exp_fixed(self, *bases: int) -> None:
        # API parity with the Tate backend; no tables to build here
        return None

    # -- pairing / target group ----------------------------------------------
    def pair(self, a: int, b: int) -> int:
        # g_T is fixed for the backend's lifetime — the comb cache turns
        # every pairing into table lookups once the modulus clears the gate
        return self.target.power_fixed((a * b) % self.order)

    def warm_pair(self, *points: int) -> None:
        """Warm the target-group generator table (the only fixed base)."""
        self.target.warm_fixed(self.target.g)

    def pairing_batch(self) -> ToyPairingBatch:
        """A fresh accumulator for one amortized product-of-pairings check."""
        return ToyPairingBatch(self)

    def gt_mul(self, a: int, b: int) -> int:
        return self.target.mul(a, b)

    def gt_exp(self, a: int, scalar: int) -> int:
        return self.target.exp(a, scalar)

    def gt_eq(self, a: int, b: int) -> bool:
        return a == b

    def gt_contains(self, a: int) -> bool:
        """Membership in the order-*q* target subgroup of Z_p^*.

        Same contract as the Tate backend's ``μ_r`` test: adversarial
        G_T values must land in the prime-order subgroup before they may
        join a random-linear-combination product (Z_p^* has a cofactor
        component whose small-order elements would escape the combined
        check).  Congruent-but-unreduced ints are accepted — every other
        target-group operation reduces mod p, so they behave identically
        to their reduced form in both sequential and batched checks.
        """
        return isinstance(a, int) and self.target.contains(a % self.target.p)

    def gt_one(self) -> int:
        return 1

    def gt_multi_exp(self, bases, scalars) -> int:
        return self.target.multi_exp(bases, scalars)

    def gt_generator(self) -> int:
        return self.target.power(1)

"""Supersingular elliptic curve ``y^2 = x^3 + x`` over F_p, p ≡ 3 (mod 4).

For such *p* the curve is supersingular with exactly ``p + 1`` points,
and the *distortion map* ``ψ(x, y) = (-x, i*y)`` sends F_p-rational
points to points defined over ``F_{p^2}`` that are linearly independent
of them — which is what makes the symmetric Tate pairing
``ê(P, Q) = e(P, ψ(Q))`` non-degenerate (see
:mod:`repro.crypto.pairing.tate`).

Points carry their coordinates as :class:`~repro.crypto.pairing.field.Fp2`
elements even when F_p-rational, so the group law is written once.  The
point at infinity is the singleton :data:`Point.INFINITY` sentinel per
curve (``is_infinity`` flag).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.ntheory import is_probable_prime, random_prime, sqrt_mod_prime
from repro.crypto.pairing.field import Fp2

__all__ = ["CurveParams", "Point", "generate_curve"]


@dataclass(frozen=True)
class CurveParams:
    """Parameters of the pairing group.

    Attributes
    ----------
    p:
        Field characteristic, ``p ≡ 3 (mod 4)``.
    r:
        Prime order of the pairing subgroup.
    cofactor:
        ``(p + 1) // r``.
    generator:
        A point of exact order *r* in ``E(F_p)``.
    """

    p: int
    r: int
    cofactor: int
    generator: "Point"

    def __post_init__(self) -> None:
        if self.p % 4 != 3:
            raise ValueError("p must be ≡ 3 (mod 4) for the supersingular curve")
        if (self.p + 1) != self.r * self.cofactor:
            raise ValueError("r * cofactor must equal p + 1 (the curve order)")


@dataclass(frozen=True)
class Point:
    """A point on ``y^2 = x^3 + x`` with F_{p^2} coordinates."""

    x: Fp2
    y: Fp2
    p: int
    is_infinity: bool = False

    # -- constructors -----------------------------------------------------
    @classmethod
    def infinity(cls, p: int) -> "Point":
        zero = Fp2.zero(p)
        return cls(zero, zero, p, is_infinity=True)

    @classmethod
    def from_base(cls, x: int, y: int, p: int) -> "Point":
        """Build an F_p-rational point from int coordinates (validated)."""
        pt = cls(Fp2.from_base(x, p), Fp2.from_base(y, p), p)
        if not pt.on_curve():
            raise ValueError(f"({x}, {y}) is not on y^2 = x^3 + x over F_{p}")
        return pt

    # -- predicates ----------------------------------------------------------
    def on_curve(self) -> bool:
        if self.is_infinity:
            return True
        lhs = self.y * self.y
        rhs = self.x * self.x * self.x + self.x
        return lhs == rhs

    def is_base_field(self) -> bool:
        """Whether both coordinates lie in F_p."""
        return self.is_infinity or (self.x.b == 0 and self.y.b == 0)

    # -- group law -----------------------------------------------------------
    def __neg__(self) -> "Point":
        if self.is_infinity:
            return self
        return Point(self.x, -self.y, self.p)

    def __add__(self, other: "Point") -> "Point":
        if self.p != other.p:
            raise ValueError("curve mismatch")
        if self.is_infinity:
            return other
        if other.is_infinity:
            return self
        if self.x == other.x:
            if self.y == -other.y:
                return Point.infinity(self.p)
            # doubling: λ = (3x^2 + 1) / 2y   (curve a-coefficient is 1)
            num = self.x * self.x
            num = num.scalar_mul(3) + Fp2.one(self.p)
            lam = num / self.y.scalar_mul(2)
        else:
            lam = (other.y - self.y) / (other.x - self.x)
        x3 = lam * lam - self.x - other.x
        y3 = lam * (self.x - x3) - self.y
        return Point(x3, y3, self.p)

    def __sub__(self, other: "Point") -> "Point":
        return self + (-other)

    def multiply(self, k: int) -> "Point":
        """Scalar multiplication by square-and-add (k may be negative)."""
        if k < 0:
            return (-self).multiply(-k)
        result = Point.infinity(self.p)
        addend = self
        while k:
            if k & 1:
                result = result + addend
            addend = addend + addend
            k >>= 1
        return result

    def distort(self) -> "Point":
        """Distortion map ``ψ(x, y) = (-x, i*y)``.

        Maps an F_p-rational point to one over F_{p^2}; the image is on
        the curve because ``(-x)^3 + (-x) = -(x^3 + x) = -y^2 = (i y)^2``.
        """
        if self.is_infinity:
            return self
        ix_y = Fp2(-self.y.b, self.y.a, self.p)  # i * y
        return Point(-self.x, ix_y, self.p)

    def encode(self) -> tuple[int, int, int, int, bool]:
        """Canonical hashable encoding (for transcripts and dict keys)."""
        return (self.x.a, self.x.b, self.y.a, self.y.b, self.is_infinity)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_infinity:
            return "Point(infinity)"
        return f"Point({self.x!r}, {self.y!r})"


def _random_base_point(p: int, rng: random.Random) -> Point:
    """Uniform-ish F_p-rational point: sample x until x^3+x is a square."""
    while True:
        x = rng.randrange(1, p)
        rhs = (x * x * x + x) % p
        if rhs == 0:
            continue
        if pow(rhs, (p - 1) // 2, p) != 1:
            continue
        y = sqrt_mod_prime(rhs, p)
        if rng.getrandbits(1):
            y = p - y
        return Point.from_base(x, y, p)


def generate_curve(r_bits: int, rng: random.Random, *, max_cofactor: int = 1 << 24) -> CurveParams:
    """Generate pairing parameters with an *r_bits*-bit subgroup order.

    Picks a random odd prime *r* and searches even cofactors *c* until
    ``p = c*r - 1`` is a prime ≡ 3 (mod 4); then clears the cofactor off
    random points until one of exact order *r* appears.
    """
    if r_bits < 4:
        raise ValueError("subgroup order too small")
    while True:
        r = random_prime(r_bits, rng)
        if r == 2:
            continue
        c = 4
        while c < max_cofactor:
            p = c * r - 1
            if p % 4 == 3 and is_probable_prime(p):
                # find a point of exact order r
                for _ in range(64):
                    pt = _random_base_point(p, rng).multiply(c)
                    if not pt.is_infinity:
                        if not pt.multiply(r).is_infinity:
                            raise AssertionError("cofactor clearing failed (order bug)")
                        return CurveParams(p=p, r=r, cofactor=c, generator=pt)
            c += 4  # keep p ≡ 3 (mod 4): c*r - 1 with c ≡ 0 (mod 4), r odd
        # no cofactor worked for this r — resample r

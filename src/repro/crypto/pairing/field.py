"""Quadratic extension field arithmetic for the pairing substrate.

The Tate pairing on our supersingular curve takes values in
``F_{p^2} = F_p[i] / (i^2 + 1)``, which is a field exactly when
``p ≡ 3 (mod 4)`` (then ``-1`` is a non-residue).  Elements are
represented as ``a + b*i`` with ``a, b ∈ F_p``.

:class:`Fp2` instances are immutable value objects; all arithmetic
returns new elements.  Base-field elements are plain ints reduced
mod *p* — keeping them unboxed is a deliberate performance choice
(Miller's loop does thousands of base-field multiplies).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.ntheory import modinv

__all__ = ["Fp2"]


@dataclass(frozen=True)
class Fp2:
    """An element ``a + b*i`` of ``F_p[i]/(i^2+1)``."""

    a: int
    b: int
    p: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "a", self.a % self.p)
        object.__setattr__(self, "b", self.b % self.p)

    # -- constructors -----------------------------------------------------
    @classmethod
    def one(cls, p: int) -> "Fp2":
        return cls(1, 0, p)

    @classmethod
    def zero(cls, p: int) -> "Fp2":
        return cls(0, 0, p)

    @classmethod
    def from_base(cls, a: int, p: int) -> "Fp2":
        """Embed a base-field element as ``a + 0*i``."""
        return cls(a, 0, p)

    # -- predicates --------------------------------------------------------
    def is_zero(self) -> bool:
        return self.a == 0 and self.b == 0

    def is_one(self) -> bool:
        return self.a == 1 and self.b == 0

    # -- arithmetic ----------------------------------------------------------
    def _check(self, other: "Fp2") -> None:
        if self.p != other.p:
            raise ValueError("field mismatch")

    def __add__(self, other: "Fp2") -> "Fp2":
        self._check(other)
        return Fp2(self.a + other.a, self.b + other.b, self.p)

    def __sub__(self, other: "Fp2") -> "Fp2":
        self._check(other)
        return Fp2(self.a - other.a, self.b - other.b, self.p)

    def __neg__(self) -> "Fp2":
        return Fp2(-self.a, -self.b, self.p)

    def __mul__(self, other: "Fp2") -> "Fp2":
        self._check(other)
        # (a + bi)(c + di) = (ac - bd) + (ad + bc) i   since i^2 = -1
        a, b, c, d, p = self.a, self.b, other.a, other.b, self.p
        return Fp2(a * c - b * d, a * d + b * c, p)

    def scalar_mul(self, k: int) -> "Fp2":
        """Multiply by a base-field scalar."""
        return Fp2(self.a * k, self.b * k, self.p)

    def conjugate(self) -> "Fp2":
        """``a - b*i`` — also the Frobenius ``x -> x^p`` in this field."""
        return Fp2(self.a, -self.b, self.p)

    def norm(self) -> int:
        """Field norm ``a^2 + b^2`` into F_p."""
        return (self.a * self.a + self.b * self.b) % self.p

    def inverse(self) -> "Fp2":
        """Multiplicative inverse via the norm map."""
        if self.is_zero():
            raise ZeroDivisionError("inverse of zero in F_p^2")
        n_inv = modinv(self.norm(), self.p)
        return Fp2(self.a * n_inv, -self.b * n_inv, self.p)

    def __truediv__(self, other: "Fp2") -> "Fp2":
        return self * other.inverse()

    def pow(self, exponent: int) -> "Fp2":
        """Square-and-multiply exponentiation (negative exponents allowed)."""
        if exponent < 0:
            return self.inverse().pow(-exponent)
        result = Fp2.one(self.p)
        base = self
        e = exponent
        while e:
            if e & 1:
                result = result * base
            base = base * base
            e >>= 1
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Fp2({self.a} + {self.b}i mod {self.p})"

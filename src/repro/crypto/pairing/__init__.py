"""Bilinear pairing backends.

Two interchangeable backends implement the bilinear-group interface the
CL-signature layer consumes:

* :class:`~repro.crypto.pairing.tate.TatePairing` — a real reduced Tate
  pairing on the supersingular curve ``y² = x³ + x`` (Miller's
  algorithm over :class:`~repro.crypto.pairing.field.Fp2`).
* :class:`~repro.crypto.pairing.toy.ToyPairing` — the trivial
  multiplicative→additive map the paper itself suggests; fast and
  structurally correct but with no hardness.

Use :func:`default_backend` unless a test or bench needs a specific one.
"""

from __future__ import annotations

import random

from repro.crypto.pairing.curve import CurveParams, Point, generate_curve
from repro.crypto.pairing.field import Fp2
from repro.crypto.pairing.tate import TatePairing, miller_loop, tate_pairing
from repro.crypto.pairing.toy import ToyPairing

__all__ = [
    "CurveParams",
    "Point",
    "Fp2",
    "TatePairing",
    "ToyPairing",
    "miller_loop",
    "tate_pairing",
    "generate_curve",
    "default_backend",
]


def default_backend(rng: random.Random, *, security_bits: int = 64, real: bool = True):
    """Construct a pairing backend.

    *security_bits* sizes the subgroup order.  With ``real=True`` a Tate
    backend is generated; otherwise the toy backend (the paper's own
    shortcut) with a matching-order target group.
    """
    if real:
        return TatePairing(generate_curve(security_bits, rng))
    return ToyPairing.generate(max(security_bits * 2, 32), rng)

"""Chaum RSA blind signature (paper ref [26]).

The signer holds an RSA key; the requester blinds a message hash with a
random factor ``r^e``, obtains a signature on the blinded value, and
unblinds by dividing out ``r``.  The signer learns nothing about which
message it signed — the property the paper relies on to "obstruct MA's
sight" when the withdrawn coin later reappears at deposit time.

Flow::

    signer  = BlindSigner(sk)
    client  = BlindClient(signer.public_key, rng)
    blinded = client.blind(message)
    bsig    = signer.sign_blinded(blinded)
    sig     = client.unblind(bsig)
    assert verify_blind_signature(signer.public_key, message, sig)
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.hashing import hash_to_range
from repro.crypto.ntheory import modinv
from repro.crypto.rsa import RSAPrivateKey, RSAPublicKey

__all__ = [
    "BlindSigner",
    "BlindClient",
    "verify_blind_signature",
    "message_representative",
]


def message_representative(message: bytes, n: int) -> int:
    """Full-domain hash of *message* into ``Z_n^*`` for blind signing."""
    return 2 + hash_to_range(n - 2, b"chaum-blind-fdh", message)


@dataclass(frozen=True)
class BlindSigner:
    """The signing party (the bank/MA in the paper)."""

    sk: RSAPrivateKey

    @property
    def public_key(self) -> RSAPublicKey:
        return self.sk.public

    def sign_blinded(self, blinded: int) -> int:
        """Sign a blinded representative.  The signer cannot tell what
        message hides inside — it applies the raw RSA private op."""
        if not 0 < blinded < self.sk.n:
            raise ValueError("blinded value out of range")
        return self.sk.raw_sign(blinded)


class BlindClient:
    """The requesting party; stateful across blind/unblind."""

    def __init__(self, pk: RSAPublicKey, rng: random.Random) -> None:
        self._pk = pk
        self._rng = rng
        self._blinding: int | None = None

    def blind(self, message: bytes) -> int:
        """Produce the blinded representative ``H(m) * r^e mod n``."""
        n, e = self._pk.n, self._pk.e
        while True:
            r = self._rng.randrange(2, n - 1)
            try:
                modinv(r, n)
            except ValueError:  # astronomically unlikely: shares a factor
                continue
            break
        self._blinding = r
        return (message_representative(message, n) * pow(r, e, n)) % n

    def unblind(self, blinded_signature: int) -> int:
        """Remove the blinding factor: ``s' * r^{-1} mod n``."""
        if self._blinding is None:
            raise RuntimeError("blind() must be called before unblind()")
        n = self._pk.n
        sig = (blinded_signature * modinv(self._blinding, n)) % n
        self._blinding = None
        return sig


def verify_blind_signature(pk: RSAPublicKey, message: bytes, signature: int) -> bool:
    """Check ``sig^e == H(m) mod n``."""
    if not 0 < signature < pk.n:
        return False
    return pk.raw_verify(signature) == message_representative(message, pk.n)

"""Number-theoretic substrate: primality, prime generation, modular tools.

Everything the higher layers need is implemented here from scratch:

* Miller–Rabin probabilistic primality testing (with a deterministic
  small-base fast path for 64-bit inputs),
* random prime / safe-prime / Sophie-Germain-prime generation,
* modular inverse, CRT recombination, Jacobi symbol, Tonelli–Shanks
  square roots,
* small utilities (``is_probable_prime``, trial division tables).

The module is pure Python on arbitrary-precision ints.  Functions accept
an explicit ``random.Random`` where randomness is needed so callers stay
reproducible (see :func:`repro._util.make_rng`).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro._util import rand_int_bits

__all__ = [
    "SMALL_PRIMES",
    "is_probable_prime",
    "miller_rabin",
    "next_prime",
    "random_prime",
    "random_safe_prime",
    "random_sophie_germain_prime",
    "modinv",
    "crt",
    "jacobi",
    "sqrt_mod_prime",
    "is_quadratic_residue",
    "primes_up_to",
]


def _sieve(limit: int) -> list[int]:
    """Simple sieve of Eratosthenes returning all primes ``<= limit``."""
    if limit < 2:
        return []
    flags = bytearray([1]) * (limit + 1)
    flags[0] = flags[1] = 0
    p = 2
    while p * p <= limit:
        if flags[p]:
            flags[p * p :: p] = bytearray(len(flags[p * p :: p]))
        p += 1
    return [i for i, f in enumerate(flags) if f]


#: Primes below 2000, used for trial division before Miller-Rabin.
SMALL_PRIMES: tuple[int, ...] = tuple(_sieve(2000))

# Deterministic Miller-Rabin witness sets (Jaeschke / Sorenson-Webster).
_DETERMINISTIC_BASES_64 = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def primes_up_to(limit: int) -> list[int]:
    """All primes ``<= limit`` (fresh list; sieve recomputed each call)."""
    return _sieve(limit)


def miller_rabin(n: int, bases: Sequence[int]) -> bool:
    """Run Miller–Rabin on *n* with the given witness *bases*.

    Returns ``False`` as soon as any base proves compositeness, ``True``
    if every base passes (i.e. *n* is probably prime).
    """
    if n < 2:
        return False
    # write n-1 = d * 2^s with d odd
    d = n - 1
    s = 0
    while d % 2 == 0:
        d //= 2
        s += 1
    for a in bases:
        a %= n
        if a in (0, 1, n - 1):
            continue
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(s - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def is_probable_prime(n: int, rounds: int = 24, rng: random.Random | None = None) -> bool:
    """Probabilistic primality test.

    Trial-divides by :data:`SMALL_PRIMES`, then runs Miller–Rabin.  For
    ``n < 2**64`` the deterministic witness set is used, making the
    answer exact; above that, *rounds* random bases give an error
    probability ``<= 4**-rounds``.
    """
    if n < 2:
        return False
    for p in SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    if n < (1 << 64):
        return miller_rabin(n, _DETERMINISTIC_BASES_64)
    rng = rng or random
    bases = [rng.randrange(2, n - 1) for _ in range(rounds)]
    return miller_rabin(n, bases)


def next_prime(n: int) -> int:
    """Smallest prime strictly greater than *n*."""
    candidate = max(n + 1, 2)
    if candidate > 2 and candidate % 2 == 0:
        candidate += 1
    while not is_probable_prime(candidate):
        candidate += 1 if candidate == 2 else 2
    return candidate


def random_prime(bits: int, rng: random.Random, *, congruence: tuple[int, int] | None = None) -> int:
    """Random prime with exactly *bits* bits.

    When *congruence* ``(r, m)`` is given, the prime additionally
    satisfies ``p % m == r`` (e.g. ``(3, 4)`` for Tonelli-free square
    roots, used by the pairing substrate).
    """
    if bits < 2:
        raise ValueError("need at least 2 bits for a prime")
    while True:
        candidate = rand_int_bits(rng, bits) | 1
        if congruence is not None:
            r, m = congruence
            candidate += (r - candidate) % m
            if candidate.bit_length() != bits or candidate < 2:
                continue
        if is_probable_prime(candidate, rng=rng):
            return candidate


def random_safe_prime(bits: int, rng: random.Random) -> int:
    """Random safe prime ``p = 2q + 1`` (*q* prime) with *bits* bits.

    Used for Schnorr-style groups where the subgroup of order *q* has
    prime order.  This is a rejection-sampling loop; for the bit sizes
    used in tests (≤ 256) it completes quickly.
    """
    if bits < 3:
        raise ValueError("need at least 3 bits for a safe prime")
    while True:
        q = random_prime(bits - 1, rng)
        p = 2 * q + 1
        if p.bit_length() == bits and is_probable_prime(p, rng=rng):
            return p


def random_sophie_germain_prime(bits: int, rng: random.Random) -> int:
    """Random Sophie Germain prime *q* (i.e. ``2q + 1`` is also prime)."""
    while True:
        q = random_prime(bits, rng)
        if is_probable_prime(2 * q + 1, rng=rng):
            return q


def modinv(a: int, m: int) -> int:
    """Modular inverse of *a* modulo *m*.

    Raises :class:`ValueError` when ``gcd(a, m) != 1``.  Uses Python's
    built-in extended-gcd path (``pow(a, -1, m)``).
    """
    try:
        return pow(a, -1, m)
    except ValueError as exc:  # non-invertible
        raise ValueError(f"{a} is not invertible modulo {m}") from exc


def crt(residues: Sequence[int], moduli: Sequence[int]) -> int:
    """Chinese-remainder recombination for pairwise-coprime *moduli*.

    Returns the unique ``x`` in ``[0, prod(moduli))`` with
    ``x % moduli[i] == residues[i]`` for all *i*.
    """
    if len(residues) != len(moduli):
        raise ValueError("residues and moduli must have equal length")
    if not moduli:
        raise ValueError("need at least one congruence")
    x, m = residues[0] % moduli[0], moduli[0]
    for r, n in zip(residues[1:], moduli[1:]):
        # solve x + m*t ≡ r (mod n)
        t = ((r - x) * modinv(m, n)) % n
        x += m * t
        m *= n
    return x % m


def jacobi(a: int, n: int) -> int:
    """Jacobi symbol ``(a/n)`` for odd positive *n*."""
    if n <= 0 or n % 2 == 0:
        raise ValueError("n must be a positive odd integer")
    a %= n
    result = 1
    while a != 0:
        while a % 2 == 0:
            a //= 2
            if n % 8 in (3, 5):
                result = -result
        a, n = n, a
        if a % 4 == 3 and n % 4 == 3:
            result = -result
        a %= n
    return result if n == 1 else 0


def is_quadratic_residue(a: int, p: int) -> bool:
    """Whether *a* is a nonzero quadratic residue modulo prime *p*."""
    a %= p
    if a == 0:
        return False
    return pow(a, (p - 1) // 2, p) == 1


def sqrt_mod_prime(a: int, p: int) -> int:
    """A square root of *a* modulo odd prime *p* (Tonelli–Shanks).

    Raises :class:`ValueError` when *a* is a non-residue.  For
    ``p % 4 == 3`` the direct exponentiation shortcut is used.
    """
    a %= p
    if a == 0:
        return 0
    if p == 2:
        return a
    if not is_quadratic_residue(a, p):
        raise ValueError(f"{a} is not a quadratic residue mod {p}")
    if p % 4 == 3:
        return pow(a, (p + 1) // 4, p)
    # Tonelli–Shanks general case
    q = p - 1
    s = 0
    while q % 2 == 0:
        q //= 2
        s += 1
    # find a non-residue z deterministically
    z = 2
    while is_quadratic_residue(z, p):
        z += 1
    m = s
    c = pow(z, q, p)
    t = pow(a, q, p)
    r = pow(a, (q + 1) // 2, p)
    while t != 1:
        # find least i with t^(2^i) == 1
        i = 0
        t2 = t
        while t2 != 1:
            t2 = (t2 * t2) % p
            i += 1
            if i == m:
                raise ValueError("square root failure (non-residue slipped through)")
        b = pow(c, 1 << (m - i - 1), p)
        m = i
        c = (b * b) % p
        t = (t * c) % p
        r = (r * b) % p
    return r

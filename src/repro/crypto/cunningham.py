"""Cunningham chains of the first kind.

The Divisible E-cash group tower used by PPMSdec (Section III-C / VI-A
of the paper) needs a chain of primes ``o_1, o_2, ..., o_k`` with

    o_{i+1} = 2 * o_i + 1,

i.e. a *Cunningham chain of the first kind*.  Each prime in the chain is
the order of one cyclic group in the tower, so a tree of level ``L``
requires a chain of length ``L + 1``.

Long first-kind chains are genuinely rare — the paper observes that the
setup time "is especially high when the level reaches 7 ... for
computing the prime chain", and that length-17 was the record at the
time.  This module reproduces that cost profile: :func:`find_chain`
performs the same randomized search (sample a candidate start, extend as
far as the chain predicate holds) whose expected time grows sharply with
the requested length.

For experiment repeatability there is also a small table of precomputed
chains (:data:`KNOWN_CHAINS`) so protocol-level tests don't have to pay
the search cost on every run — mirroring the paper's decision to
"separate PPMSdec's setup stage from online executing".
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro._util import rand_int_bits
from repro.crypto.ntheory import is_probable_prime

__all__ = [
    "CunninghamChain",
    "is_first_kind_chain",
    "extend_chain",
    "find_chain",
    "find_chain_with_stats",
    "known_chain",
    "KNOWN_CHAINS",
]


@dataclass(frozen=True)
class CunninghamChain:
    """A first-kind Cunningham chain ``p, 2p+1, 4p+3, ...``.

    Attributes
    ----------
    start:
        The smallest prime of the chain.
    length:
        Number of primes in the chain.
    """

    start: int
    length: int

    def primes(self) -> list[int]:
        """Materialize the chain as a list of primes, smallest first."""
        out = [self.start]
        for _ in range(self.length - 1):
            out.append(2 * out[-1] + 1)
        return out

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError("chain length must be >= 1")
        if self.start < 2:
            raise ValueError("chain must start at a prime >= 2")

    def verify(self) -> bool:
        """Check every element of the chain is prime."""
        return all(is_probable_prime(p) for p in self.primes())


def is_first_kind_chain(start: int, length: int) -> bool:
    """Whether ``start, 2*start+1, ...`` is a first-kind chain of *length*."""
    p = start
    for _ in range(length):
        if not is_probable_prime(p):
            return False
        p = 2 * p + 1
    return True


def extend_chain(start: int) -> int:
    """Length of the maximal first-kind chain beginning at *start*.

    Returns 0 when *start* itself is composite.
    """
    length = 0
    p = start
    while is_probable_prime(p):
        length += 1
        p = 2 * p + 1
    return length


def find_chain(length: int, bits: int, rng: random.Random) -> CunninghamChain:
    """Randomized search for a first-kind chain of the given *length*.

    Candidate starts of *bits* bits are sampled uniformly; each is
    extended while the chain predicate holds.  The expected number of
    samples grows roughly like ``(ln 2^bits)^length / c`` which is what
    makes Fig. 2's setup curve explode at high tree levels.
    """
    chain, _ = find_chain_with_stats(length, bits, rng)
    return chain


def find_chain_with_stats(
    length: int, bits: int, rng: random.Random
) -> tuple[CunninghamChain, int]:
    """Like :func:`find_chain` but also returns the number of candidates tried.

    The candidate count is the quantity the Fig. 2 benchmark records as a
    machine-independent proxy for search effort.

    *bits* is a **minimum**: an exact-bit-length window can be entirely
    devoid of long-chain starts (e.g. no length-5 chain starts with a
    12-bit prime at all), so once a window has been sampled roughly
    eight times over, the search widens by one bit and continues.  This
    keeps the search total and reproduces the real phenomenon that
    longer chains force larger primes — the very cost Fig. 2 plots.
    """
    if length < 1:
        raise ValueError("chain length must be >= 1")
    if bits < 3:
        raise ValueError("need at least 3 bits")
    attempts = 0
    window_bits = bits
    window_budget = 8 << bits  # ~8x oversampling before conceding the window
    while True:
        attempts += 1
        if window_budget <= 0:
            window_bits += 1
            window_budget = 8 << window_bits
        window_budget -= 1
        # Chains of length >= 2 (other than the 2,5,11,... family) must
        # start at p ≡ 5 (mod 6): force the residue to skip hopeless
        # candidates, exactly as practical chain hunters do.
        candidate = rand_int_bits(rng, window_bits) | 1
        if length >= 2 and candidate % 6 != 5:
            candidate += (5 - candidate % 6) % 6
            if candidate % 2 == 0:
                candidate += 3
        if candidate.bit_length() != window_bits:
            continue
        if is_first_kind_chain(candidate, length):
            return CunninghamChain(candidate, length), attempts


#: Precomputed first-kind chains used to skip the online search,
#: mirroring the paper's offline setup stage.  Keys are chain lengths;
#: each value starts a verified chain (2, 5, 11, 23, 47 is the classic
#: length-5 chain; 89 starts the famous length-6 chain).
KNOWN_CHAINS: dict[int, int] = {
    1: 13,
    2: 5,          # 5, 11
    3: 41,         # 41, 83, 167
    4: 509,        # 509, 1019, 2039, 4079
    5: 2,          # 2, 5, 11, 23, 47
    6: 89,         # 89, 179, 359, 719, 1439, 2879
    7: 1122659,    # classic length-7 chain
    8: 19099919,
    9: 85864769,
    10: 26089808579,
    11: 665043081119,
    12: 554688278429,
    13: 4090932431513069,
    14: 95405042230542329,
}


def known_chain(length: int) -> CunninghamChain:
    """Return a verified precomputed chain of the requested *length*.

    Short chains are carved out of the *tail* of the longest tabulated
    chain: if ``c_0, ..., c_{k-1}`` is a first-kind chain, then
    ``c_j, ..., c_{k-1}`` is one of length ``k - j``.  Tail elements are
    much larger than the smallest dedicated chain of the same length
    (``c_j = 2^j c_0 + 2^j - 1``), which keeps the coin-secret space of
    the e-cash tower cryptographically meaningful even for shallow
    trees.  Raises :class:`KeyError` when no tabulated chain is long
    enough; callers should then fall back to :func:`find_chain`.
    """
    if length < 1:
        raise KeyError(length)
    best = max((k for k in KNOWN_CHAINS if k >= length), default=None)
    if best is None:
        raise KeyError(length)
    skip = best - length
    start = (KNOWN_CHAINS[best] << skip) + (1 << skip) - 1
    chain = CunninghamChain(start, length)
    if not chain.verify():  # defensive: table corruption would be fatal
        raise AssertionError(f"tabulated chain of length {length} failed verification")
    return chain

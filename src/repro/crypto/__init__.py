"""Cryptographic substrates, all implemented from scratch.

Subpackages and modules:

* :mod:`~repro.crypto.ntheory` — primality, prime generation, modular tools
* :mod:`~repro.crypto.cunningham` — first-kind Cunningham chains (DEC setup)
* :mod:`~repro.crypto.groups` — Schnorr groups and the DEC group tower
* :mod:`~repro.crypto.hashing` — SHA-256 helpers, Fiat–Shamir transcript
* :mod:`~repro.crypto.rsa` — RSA keygen / hybrid encryption / signatures
* :mod:`~repro.crypto.blind` — Chaum blind signature
* :mod:`~repro.crypto.partial_blind` — RSA partially blind signature
* :mod:`~repro.crypto.pairing` — Tate pairing + toy bilinear backends
* :mod:`~repro.crypto.cl_sig` — Camenisch–Lysyanskaya signatures
* :mod:`~repro.crypto.zkp` — Schnorr / representation / double-log / OR proofs

The only off-the-shelf primitive in the whole stack is SHA-256 from the
standard library's :mod:`hashlib`.
"""

"""Schnorr proofs of knowledge of a discrete logarithm (paper ref [34]).

Two flavours share the same sigma-protocol skeleton, made
non-interactive by Fiat–Shamir:

* :func:`prove_dlog` / :func:`verify_dlog` — over a
  :class:`~repro.crypto.groups.SchnorrGroup` (elements are ints);
* :func:`prove_dlog_generic` / :func:`verify_dlog_generic` — over any
  bilinear backend (used by the CL blind-issuance flow, where elements
  may be curve points).

Statement: "I know *x* with ``Y = base^x``."  Transcript binding is the
caller's job: pass a :class:`~repro.crypto.hashing.Transcript` that has
already absorbed the context (group, statement, session identifiers) so
proofs cannot be replayed across contexts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.batchverify import LinearCheck, linear_check
from repro.crypto.groups import SchnorrGroup
from repro.crypto.hashing import Transcript

__all__ = [
    "SchnorrProof",
    "prove_dlog",
    "verify_dlog",
    "collect_dlog",
    "prove_dlog_generic",
    "verify_dlog_generic",
]


@dataclass(frozen=True)
class SchnorrProof:
    """Non-interactive Schnorr proof ``(commitment, response)``.

    The challenge is recomputed from the transcript at verify time.
    ``commitment`` is a group element (int or backend element);
    ``response`` is a scalar.
    """

    commitment: object
    response: int

    def encoded_size(self, element_bytes: int, scalar_bytes: int) -> int:
        """Wire size estimate used by the Table II accounting."""
        return element_bytes + scalar_bytes


# ---------------------------------------------------------------------------
# SchnorrGroup (int element) flavour
# ---------------------------------------------------------------------------

def prove_dlog(
    group: SchnorrGroup,
    base: int,
    statement: int,
    witness: int,
    rng: random.Random,
    transcript: Transcript,
) -> SchnorrProof:
    """Prove knowledge of ``witness`` with ``statement = base^witness``."""
    if group.exp(base, witness) != statement:
        raise ValueError("witness does not satisfy the statement")
    k = group.random_exponent(rng)
    commitment = group.exp(base, k)
    transcript.absorb_ints(base, statement, commitment)
    e = transcript.challenge(group.q)
    response = (k + e * witness) % group.q
    return SchnorrProof(commitment=commitment, response=response)


def verify_dlog(
    group: SchnorrGroup,
    base: int,
    statement: int,
    proof: SchnorrProof,
    transcript: Transcript,
) -> bool:
    """Verify a :func:`prove_dlog` proof against the same transcript."""
    commitment = proof.commitment
    if not isinstance(commitment, int) or not group.contains(commitment):
        return False
    if not group.contains(statement % group.p):
        return False
    transcript.absorb_ints(base, statement, commitment)
    e = transcript.challenge(group.q)
    # the base recurs across every proof over this group — comb cache;
    # the statement is proof-specific, so plain exp
    lhs = group.exp_fixed(base, proof.response)
    rhs = group.mul(commitment, group.exp(statement, e))
    return lhs == rhs


def collect_dlog(
    group: SchnorrGroup,
    base: int,
    statement: int,
    proof: SchnorrProof,
    transcript: Transcript,
) -> list[LinearCheck] | None:
    """:func:`verify_dlog` with the final equation *deferred*.

    Runs the structural and membership checks and the Fiat–Shamir
    derivation eagerly (absorbing exactly what :func:`verify_dlog`
    absorbs); the Schnorr equation comes back as a
    :class:`~repro.crypto.batchverify.LinearCheck` —
    ``base^s · R^{-1} · Y^{-e} == 1`` — for random-linear-combination
    batching.  ``None`` means an eager check already failed.  Because
    every base of the deferred equation is membership-checked (here or
    by construction), the RLC soundness argument applies, and
    ``all(c.holds())`` over the result equals the sequential verdict.
    """
    commitment = proof.commitment
    if not isinstance(commitment, int) or not group.contains(commitment):
        return None
    if not group.contains(statement % group.p):
        return None
    transcript.absorb_ints(base, statement, commitment)
    e = transcript.challenge(group.q)
    return [
        linear_check(
            group.p,
            group.q,
            [(base, proof.response), (commitment, -1), (statement, -e)],
        )
    ]


# ---------------------------------------------------------------------------
# generic bilinear-backend flavour
# ---------------------------------------------------------------------------

def _absorb_element(transcript: Transcript, backend, element) -> None:
    for v in backend.element_encode(element):
        transcript.absorb_int(int(v))


def prove_dlog_generic(
    backend,
    base,
    statement,
    witness: int,
    rng: random.Random,
    transcript: Transcript,
) -> SchnorrProof:
    """Schnorr PoK over an arbitrary prime-order backend group."""
    k = backend.random_scalar(rng)
    commitment = backend.exp(base, k)
    _absorb_element(transcript, backend, commitment)
    e = transcript.challenge(backend.order)
    response = (k + e * witness) % backend.order
    return SchnorrProof(commitment=commitment, response=response)


def verify_dlog_generic(
    backend,
    base,
    statement,
    proof: SchnorrProof,
    transcript: Transcript,
) -> bool:
    """Verify a generic-backend Schnorr proof."""
    _absorb_element(transcript, backend, proof.commitment)
    e = transcript.challenge(backend.order)
    exp_fixed = getattr(backend, "exp_fixed", backend.exp)
    lhs = exp_fixed(base, proof.response)
    rhs = backend.mul(proof.commitment, backend.exp(statement, e))
    return backend.element_encode(lhs) == backend.element_encode(rhs)

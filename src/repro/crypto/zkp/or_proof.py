"""OR-composition of Schnorr statements (CDS proofs, paper refs [37][38]).

Statement: "I know the discrete log of *at least one* of
``Y_1, ..., Y_n`` to the base *g*" — without revealing which.  The
divisible e-cash spend step uses this shape to show a revealed node key
is consistent with one of the tree positions without identifying it.

Standard Cramer–Damgård–Schoenmakers construction: the prover simulates
every branch it has no witness for (random challenge + response, derive
the commitment backwards), commits honestly on the known branch, and
splits the Fiat–Shamir challenge so all branch challenges sum to it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.crypto.batchverify import LinearCheck, linear_check
from repro.crypto.groups import SchnorrGroup
from repro.crypto.hashing import Transcript

__all__ = ["OrProof", "prove_or", "verify_or", "collect_or"]


@dataclass(frozen=True)
class OrProof:
    """An n-branch OR proof: per-branch (commitment, challenge, response).

    Branch challenges must sum (mod q) to the transcript challenge.
    """

    commitments: tuple[int, ...]
    challenges: tuple[int, ...]
    responses: tuple[int, ...]

    @property
    def branches(self) -> int:
        return len(self.commitments)

    def encoded_size(self, element_bytes: int, scalar_bytes: int) -> int:
        """Wire size estimate used by the Table II accounting."""
        return self.branches * (element_bytes + 2 * scalar_bytes)


def prove_or(
    group: SchnorrGroup,
    base: int,
    statements: Sequence[int],
    known_index: int,
    witness: int,
    rng: random.Random,
    transcript: Transcript,
) -> OrProof:
    """Prove knowledge of the DL of ``statements[known_index]``.

    The other branches are simulated; the verifier cannot tell which
    branch was real (witness indistinguishability).
    """
    n = len(statements)
    if not 0 <= known_index < n:
        raise IndexError("known_index out of range")
    if group.exp(base, witness) != statements[known_index] % group.p:
        raise ValueError("witness does not satisfy the claimed statement")

    commitments = [0] * n
    challenges = [0] * n
    responses = [0] * n

    # simulate all branches except the known one
    for i in range(n):
        if i == known_index:
            continue
        challenges[i] = rng.randrange(group.q)
        responses[i] = rng.randrange(group.q)
        # R_i = base^{s_i} * Y_i^{-e_i}
        commitments[i] = group.mul(
            group.exp(base, responses[i]),
            group.inv(group.exp(statements[i], challenges[i])),
        )

    # honest commitment on the known branch
    k = group.random_exponent(rng)
    commitments[known_index] = group.exp(base, k)

    transcript.absorb_ints(base, *statements, *commitments)
    total = transcript.challenge(group.q)
    challenges[known_index] = (total - sum(challenges)) % group.q
    responses[known_index] = (k + challenges[known_index] * witness) % group.q

    return OrProof(
        commitments=tuple(commitments),
        challenges=tuple(challenges),
        responses=tuple(responses),
    )


def verify_or(
    group: SchnorrGroup,
    base: int,
    statements: Sequence[int],
    proof: OrProof,
    transcript: Transcript,
) -> bool:
    """Verify an OR proof: challenge split + per-branch Schnorr equation."""
    n = len(statements)
    if proof.branches != n or len(proof.challenges) != n or len(proof.responses) != n:
        return False
    if n == 0:
        return False
    if not all(group.contains(c) for c in proof.commitments):
        return False
    # statements appear as bases of the batched branch equations — they
    # must be subgroup members for RLC soundness (honest ones are)
    if not all(group.contains(y % group.p) for y in statements):
        return False
    transcript.absorb_ints(base, *statements, *proof.commitments)
    total = transcript.challenge(group.q)
    if sum(proof.challenges) % group.q != total:
        return False
    # the shared base is fixed across branches (and across proofs over
    # this group) — comb cache; statements are per-proof
    for y, r_commit, e, s in zip(statements, proof.commitments, proof.challenges, proof.responses):
        lhs = group.exp_fixed(base, s)
        rhs = group.mul(r_commit, group.exp(y, e))
        if lhs != rhs:
            return False
    return True


def collect_or(
    group: SchnorrGroup,
    base: int,
    statements: Sequence[int],
    proof: OrProof,
    transcript: Transcript,
) -> list[LinearCheck] | None:
    """:func:`verify_or` with the branch equations deferred.

    The challenge split (``Σ e_i ≡ total``), structural shape and all
    membership checks stay eager — they are cheap and gate the
    soundness of the deferred form; each branch contributes
    ``base^{s_i} · R_i^{-1} · Y_i^{-e_i} == 1``.
    """
    n = len(statements)
    if proof.branches != n or len(proof.challenges) != n or len(proof.responses) != n:
        return None
    if n == 0:
        return None
    if not all(group.contains(c) for c in proof.commitments):
        return None
    if not all(group.contains(y % group.p) for y in statements):
        return None
    transcript.absorb_ints(base, *statements, *proof.commitments)
    total = transcript.challenge(group.q)
    if sum(proof.challenges) % group.q != total:
        return None
    return [
        linear_check(group.p, group.q, [(base, s), (r_commit, -1), (y, -e)])
        for y, r_commit, e, s in zip(
            statements, proof.commitments, proof.challenges, proof.responses
        )
    ]

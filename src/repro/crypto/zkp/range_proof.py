"""Range proof by bit decomposition (composed from the paper's toolbox).

Section VI-C: "for some situations, we need to combine two or more of
them [the basic proofs] to achieve one new type of proof."  This module
is that composition for the relation every payment system eventually
needs: "the committed value lies in ``[0, 2^n)``".

Construction (classic bit-decomposition over Pedersen commitments):

* commit to each bit: ``C_i = g^{b_i} h^{r_i}``;
* per bit, a CDS OR-proof (:mod:`repro.crypto.zkp.or_proof`) that
  ``C_i`` opens to 0 **or** 1 — i.e. knowledge of ``r_i`` with
  ``C_i = h^{r_i}`` or ``C_i / g = h^{r_i}``;
* the weighted product ``Π C_i^{2^i}`` must equal the value commitment
  ``C`` — enforced with no extra proof by *constructing* the bit
  randomizers to sum to the value randomizer (the verifier recomputes
  the product).

Used by the market as an optional payment-bound check: a JO can prove
its advertised payment does not exceed the coin value without revealing
it.  It also serves as the test bed for OR-proof composition.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.batchverify import LinearCheck, linear_check
from repro.crypto.groups import SchnorrGroup
from repro.crypto.hashing import Transcript
from repro.crypto.zkp.or_proof import OrProof, collect_or, prove_or, verify_or

__all__ = [
    "RangeProof",
    "commit_value",
    "prove_range",
    "verify_range",
    "collect_range",
]


@dataclass(frozen=True)
class RangeProof:
    """Bit commitments plus one 0/1 OR-proof per bit."""

    bit_commitments: tuple[int, ...]
    bit_proofs: tuple[OrProof, ...]

    @property
    def bits(self) -> int:
        return len(self.bit_commitments)

    def encoded_size(self, element_bytes: int, scalar_bytes: int) -> int:
        """Wire size estimate used by the Table II accounting."""
        return sum(
            element_bytes + p.encoded_size(element_bytes, scalar_bytes)
            for p in self.bit_proofs
        )


def commit_value(
    group: SchnorrGroup, g: int, h: int, value: int, rng: random.Random
) -> tuple[int, int]:
    """Pedersen commitment ``C = g^value h^r``; returns ``(C, r)``."""
    r = group.random_exponent(rng)
    return group.mul(group.exp_fixed(g, value), group.exp_fixed(h, r)), r


def prove_range(
    group: SchnorrGroup,
    g: int,
    h: int,
    commitment: int,
    value: int,
    randomizer: int,
    bits: int,
    rng: random.Random,
    transcript: Transcript,
) -> RangeProof:
    """Prove the value inside *commitment* lies in ``[0, 2^bits)``."""
    if not 0 <= value < (1 << bits):
        raise ValueError("value outside the claimed range")
    if group.mul(group.exp(g, value), group.exp(h, randomizer)) != commitment % group.p:
        raise ValueError("commitment does not open to the value")

    # bit randomizers that recombine: Σ 2^i r_i ≡ randomizer (mod q)
    bit_rands = [group.random_exponent(rng) for _ in range(bits)]
    weighted = sum((1 << i) * r for i, r in enumerate(bit_rands[:-1]))
    top_weight = 1 << (bits - 1)
    bit_rands[-1] = (
        (randomizer - weighted) * pow(top_weight, -1, group.q)
    ) % group.q

    bit_values = [(value >> i) & 1 for i in range(bits)]
    commitments = tuple(
        group.mul(group.exp(g, b), group.exp(h, r))
        for b, r in zip(bit_values, bit_rands)
    )
    transcript.absorb_ints(g, h, commitment, *commitments)

    proofs = []
    for b, r, c in zip(bit_values, bit_rands, commitments):
        # statement list for the OR: [C = h^r  (bit 0),  C/g = h^r  (bit 1)]
        statements = [c, group.mul(c, group.inv(g))]
        proofs.append(
            prove_or(group, h, statements, known_index=b, witness=r,
                     rng=rng, transcript=transcript)
        )
    return RangeProof(bit_commitments=commitments, bit_proofs=tuple(proofs))


def verify_range(
    group: SchnorrGroup,
    g: int,
    h: int,
    commitment: int,
    proof: RangeProof,
    transcript: Transcript,
) -> bool:
    """Verify a :func:`prove_range` proof."""
    # structural: exactly one OR proof per bit commitment (proof.bits is
    # derived from the commitment tuple, so this pins both lengths)
    if proof.bits == 0 or len(proof.bit_proofs) != len(proof.bit_commitments):
        return False
    if not all(group.contains(c) for c in proof.bit_commitments):
        return False
    # the value commitment is a base of the batched recombination
    # equation — membership required for RLC soundness (honest ones are)
    if not group.contains(commitment % group.p):
        return False

    # recombination: Π C_i^{2^i} == C — one shared Straus chain instead
    # of i squarings per bit commitment
    recombined = group.multi_exp(
        proof.bit_commitments, [1 << i for i in range(proof.bits)]
    )
    if recombined != commitment % group.p:
        return False

    transcript.absorb_ints(g, h, commitment, *proof.bit_commitments)
    for c, or_proof in zip(proof.bit_commitments, proof.bit_proofs):
        statements = [c, group.mul(c, group.inv(g))]
        if not verify_or(group, h, statements, or_proof, transcript):
            return False
    return True


def collect_range(
    group: SchnorrGroup,
    g: int,
    h: int,
    commitment: int,
    proof: RangeProof,
    transcript: Transcript,
) -> list[LinearCheck] | None:
    """:func:`verify_range` with every equation deferred.

    Structural and membership checks (and each OR proof's challenge
    split) run eagerly; the deferred list holds the recombination
    ``Π C_i^{2^i} · C^{-1} == 1`` followed by every bit's OR branch
    equations.  Transcript traffic matches :func:`verify_range`
    exactly, so challenges — and therefore decisions — agree.
    """
    if proof.bits == 0 or len(proof.bit_proofs) != len(proof.bit_commitments):
        return None
    if not all(group.contains(c) for c in proof.bit_commitments):
        return None
    if not group.contains(commitment % group.p):
        return None

    terms = [(c, 1 << i) for i, c in enumerate(proof.bit_commitments)]
    terms.append((commitment, -1))
    checks = [linear_check(group.p, group.q, terms)]

    transcript.absorb_ints(g, h, commitment, *proof.bit_commitments)
    for c, or_proof in zip(proof.bit_commitments, proof.bit_proofs):
        statements = [c, group.mul(c, group.inv(g))]
        branch_checks = collect_or(group, h, statements, or_proof, transcript)
        if branch_checks is None:
            return None
        checks.extend(branch_checks)
    return checks

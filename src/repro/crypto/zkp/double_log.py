"""Stadler proof of knowledge of a double discrete logarithm (ref [36]).

Statement: "I know *x* with ``y = g^(h^x)``" where

* the *outer* group ``<g>`` has prime order ``q_out``,
* the *inner* group ``<h>`` lives inside ``Z*_{q_out}`` (its elements
  are valid exponents for *g*) and has prime order ``q_in``.

This is exactly the relation between adjacent storeys of the Divisible
E-cash group tower — the coin secret at level *i* is the double log of
the node key at level *i+1* — and is why the tower orders must form a
Cunningham chain.

The protocol is cut-and-choose with soundness error ``2^-rounds``:
per round the prover commits ``t_j = g^(h^{w_j})``; on challenge bit 0
it opens ``w_j``, on bit 1 it opens ``w_j - x`` and the verifier checks
against *y* instead of *g*.  Fiat–Shamir derives all bits from one
transcript challenge.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.groups import SchnorrGroup
from repro.crypto.hashing import Transcript

__all__ = ["DoubleLogProof", "prove_double_log", "verify_double_log"]

DEFAULT_ROUNDS = 32


@dataclass(frozen=True)
class DoubleLogProof:
    """Cut-and-choose double-discrete-log proof."""

    commitments: tuple[int, ...]
    responses: tuple[int, ...]

    @property
    def rounds(self) -> int:
        return len(self.commitments)

    def encoded_size(self, element_bytes: int, scalar_bytes: int) -> int:
        """Wire size estimate used by the Table II accounting."""
        return self.rounds * (element_bytes + scalar_bytes)


def _inner_exp(outer: SchnorrGroup, h: int, e: int) -> int:
    """``h^e`` computed in ``Z*_{q_out}`` (the inner group's home)."""
    return pow(h, e, outer.q)


def prove_double_log(
    outer: SchnorrGroup,
    h: int,
    q_in: int,
    statement: int,
    witness: int,
    rng: random.Random,
    transcript: Transcript,
    *,
    rounds: int = DEFAULT_ROUNDS,
) -> DoubleLogProof:
    """Prove knowledge of *witness* with ``statement = g^(h^witness)``.

    ``q_in`` is the (prime) order of *h* in ``Z*_{q_out}``.
    """
    if rounds < 1:
        raise ValueError("need at least one round")
    if outer.power(_inner_exp(outer, h, witness)) != statement:
        raise ValueError("witness does not satisfy the statement")

    nonces = [rng.randrange(q_in) for _ in range(rounds)]
    commitments = tuple(outer.power(_inner_exp(outer, h, w)) for w in nonces)
    transcript.absorb_ints(outer.g, h, statement, *commitments)
    bits = transcript.challenge(1 << rounds)
    responses = []
    for j, w in enumerate(nonces):
        if (bits >> j) & 1:
            responses.append((w - witness) % q_in)
        else:
            responses.append(w)
    return DoubleLogProof(commitments=commitments, responses=tuple(responses))


def verify_double_log(
    outer: SchnorrGroup,
    h: int,
    q_in: int,
    statement: int,
    proof: DoubleLogProof,
    transcript: Transcript,
) -> bool:
    """Verify a :func:`prove_double_log` proof."""
    if len(proof.responses) != len(proof.commitments):
        return False
    if not proof.commitments:
        return False
    if not all(outer.contains(t) for t in proof.commitments):
        return False
    if not outer.contains(statement % outer.p):
        return False
    transcript.absorb_ints(outer.g, h, statement, *proof.commitments)
    bits = transcript.challenge(1 << proof.rounds)
    for j, (t, r) in enumerate(zip(proof.commitments, proof.responses)):
        if not 0 <= r < q_in:
            return False
        inner = _inner_exp(outer, h, r)
        if (bits >> j) & 1:
            # t must equal y^(h^r) = g^(h^x * h^(w-x))
            if outer.exp(statement, inner) != t:
                return False
        else:
            if outer.power(inner) != t:
                return False
    return True

"""Zero-knowledge proof toolbox (all Fiat–Shamir non-interactive).

* :mod:`~repro.crypto.zkp.schnorr` — PoK of a discrete logarithm,
* :mod:`~repro.crypto.zkp.representation` — PoK of a representation,
* :mod:`~repro.crypto.zkp.double_log` — Stadler double-discrete-log
  (cut-and-choose),
* :mod:`~repro.crypto.zkp.or_proof` — CDS OR-composition.

These are precisely the four proof types Section VI-C of the paper
lists, combined as needed by the divisible e-cash spend protocol.
"""

from repro.crypto.zkp.double_log import DoubleLogProof, prove_double_log, verify_double_log
from repro.crypto.zkp.or_proof import OrProof, prove_or, verify_or
from repro.crypto.zkp.representation import (
    RepresentationProof,
    prove_representation,
    verify_representation,
)
from repro.crypto.zkp.schnorr import (
    SchnorrProof,
    prove_dlog,
    prove_dlog_generic,
    verify_dlog,
    verify_dlog_generic,
)

__all__ = [
    "SchnorrProof",
    "prove_dlog",
    "verify_dlog",
    "prove_dlog_generic",
    "verify_dlog_generic",
    "RepresentationProof",
    "prove_representation",
    "verify_representation",
    "DoubleLogProof",
    "prove_double_log",
    "verify_double_log",
    "OrProof",
    "prove_or",
    "verify_or",
]

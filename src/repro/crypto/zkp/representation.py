"""Proof of knowledge of a representation (paper ref [35]).

Statement: "I know exponents ``x_1 .. x_k`` with
``C = base_1^{x_1} * ... * base_k^{x_k}``" over a
:class:`~repro.crypto.groups.SchnorrGroup`.  This generalizes Schnorr
(``k = 1``) and is the proof the coin commitments in the divisible
e-cash scheme need (a coin commits to its serial secret *and* a
blinding exponent under two independent bases).

Sigma protocol: commit ``R = Π base_i^{k_i}``, challenge *e*, responses
``s_i = k_i + e x_i``; verification checks
``Π base_i^{s_i} == R * C^e``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.crypto.batchverify import LinearCheck, linear_check
from repro.crypto.groups import SchnorrGroup
from repro.crypto.hashing import Transcript

__all__ = [
    "RepresentationProof",
    "prove_representation",
    "verify_representation",
    "collect_representation",
]


@dataclass(frozen=True)
class RepresentationProof:
    """Non-interactive representation proof."""

    commitment: int
    responses: tuple[int, ...]

    def encoded_size(self, element_bytes: int, scalar_bytes: int) -> int:
        """Wire size estimate used by the Table II accounting."""
        return element_bytes + scalar_bytes * len(self.responses)


def prove_representation(
    group: SchnorrGroup,
    bases: Sequence[int],
    statement: int,
    witnesses: Sequence[int],
    rng: random.Random,
    transcript: Transcript,
) -> RepresentationProof:
    """Prove knowledge of a representation of *statement* in *bases*."""
    if len(bases) != len(witnesses):
        raise ValueError("bases and witnesses must align")
    if not bases:
        raise ValueError("need at least one base")
    check = 1
    for base, w in zip(bases, witnesses):
        check = group.mul(check, group.exp(base, w))
    if check != statement % group.p:
        raise ValueError("witnesses do not satisfy the statement")

    nonces = [group.random_exponent(rng) for _ in bases]
    commitment = 1
    for base, k in zip(bases, nonces):
        commitment = group.mul(commitment, group.exp(base, k))
    transcript.absorb_ints(*bases, statement, commitment)
    e = transcript.challenge(group.q)
    responses = tuple((k + e * w) % group.q for k, w in zip(nonces, witnesses))
    return RepresentationProof(commitment=commitment, responses=responses)


def verify_representation(
    group: SchnorrGroup,
    bases: Sequence[int],
    statement: int,
    proof: RepresentationProof,
    transcript: Transcript,
) -> bool:
    """Verify a :func:`prove_representation` proof."""
    if len(proof.responses) != len(bases):
        return False
    if not group.contains(proof.commitment):
        return False
    # the statement is a base of the batched form of the equation — it
    # must be a subgroup member for RLC soundness (honest ones are)
    if not group.contains(statement % group.p):
        return False
    transcript.absorb_ints(*bases, statement, proof.commitment)
    e = transcript.challenge(group.q)
    # bases are market-fixed (tower generators) — comb-cached exps;
    # the statement is per-proof, so plain exp
    lhs = 1
    for base, s in zip(bases, proof.responses):
        lhs = group.mul(lhs, group.exp_fixed(base, s))
    rhs = group.mul(proof.commitment, group.exp(statement, e))
    return lhs == rhs


def collect_representation(
    group: SchnorrGroup,
    bases: Sequence[int],
    statement: int,
    proof: RepresentationProof,
    transcript: Transcript,
) -> list[LinearCheck] | None:
    """:func:`verify_representation` with the equation deferred.

    Eager structural/membership checks and transcript traffic are
    identical; the equation returns as
    ``Π base_i^{s_i} · R^{-1} · C^{-e} == 1``.
    """
    if len(proof.responses) != len(bases):
        return None
    if not group.contains(proof.commitment):
        return None
    if not group.contains(statement % group.p):
        return None
    transcript.absorb_ints(*bases, statement, proof.commitment)
    e = transcript.challenge(group.q)
    terms = list(zip(bases, proof.responses))
    terms.append((proof.commitment, -1))
    terms.append((statement, -e))
    return [linear_check(group.p, group.q, terms)]

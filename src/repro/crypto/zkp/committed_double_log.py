"""Double-discrete-log proofs over *committed* values.

These are the path-correctness proofs of the divisible e-cash spend.
The coin-secret derivation chain is

    s  →  κ_0 = γ_0^s (mod p_0)  →  κ_1 = γ_1^{κ_0} (mod p_1)  →  ...

where γ_t lives in DEC tower storey *t* and the tower moduli satisfy
``p_t = q_{t+1}`` (guaranteed by the Cunningham-chain construction), so
each κ is simultaneously an element of its storey and an exponent of
the next.  A spend of the node at depth *d* must show, without
revealing the intermediate keys, that the publicly revealed node key is
the end of a chain starting at the CL-certified secret.

Two proof shapes:

* :func:`prove_edge` / :func:`verify_edge` — *hidden-child* edge:
  parent committed in storey *t* as ``C_par = g^par * h^r1``, child
  ``γ^par mod p_t`` committed in storey *t+1* as
  ``C_ch = g' ^ child * h' ^ r2``.  Cut-and-choose (Stadler-style),
  soundness ``2^-rounds``.
* :func:`prove_revealed_edge` / :func:`verify_revealed_edge` — final
  edge where the child (the spent node key) is public.  This collapses
  to a single-round equality-of-exponent sigma protocol.

Cut-and-choose round (hidden child), with ``w, v ∈ Z_q``, ``σ ∈ Z_q'``::

    u = g^w  h^v            (in storey t)
    τ = g'^(γ^w)  h'^σ      (in storey t+1)
    bit 0 → reveal (w, v, σ)            verifier recomputes u, τ
    bit 1 → reveal δ = w - par,  η = v - r1,  ε = σ - r2·γ^δ
            verifier checks  u == C_par · g^δ · h^η
                        and  τ == C_ch^(γ^δ) · h'^ε
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.crypto.batchverify import LinearCheck, linear_check
from repro.crypto.groups import SchnorrGroup
from repro.crypto.hashing import Transcript

__all__ = [
    "CommittedEdgeProof",
    "RevealedEdgeProof",
    "prove_edge",
    "verify_edge",
    "collect_edge",
    "prove_revealed_edge",
    "verify_revealed_edge",
    "collect_revealed_edge",
    "DEFAULT_ROUNDS",
]

DEFAULT_ROUNDS = 24


@dataclass(frozen=True)
class CommittedEdgeProof:
    """Cut-and-choose proof for a hidden-child derivation edge.

    Per round *j*: ``commitments_u[j]`` and ``commitments_t[j]`` are the
    round commitments; ``responses[j]`` is a 3-tuple — ``(w, v, σ)`` on
    a 0-bit, ``(δ, η, ε)`` on a 1-bit.
    """

    commitments_u: tuple[int, ...]
    commitments_t: tuple[int, ...]
    responses: tuple[tuple[int, int, int], ...]

    @property
    def rounds(self) -> int:
        return len(self.commitments_u)

    def encoded_size(self, element_bytes: int, scalar_bytes: int) -> int:
        """Wire size estimate used by the Table II accounting."""
        return self.rounds * (2 * element_bytes + 3 * scalar_bytes)


@dataclass(frozen=True)
class RevealedEdgeProof:
    """Single-round proof that a public child equals γ^(committed parent)."""

    commitment_k: int  # γ^a in the derivation storey
    commitment_c: int  # g^a h^b in the parent commitment storey
    z1: int
    z2: int

    def encoded_size(self, element_bytes: int, scalar_bytes: int) -> int:
        """Wire size estimate used by the Table II accounting."""
        return 2 * element_bytes + 2 * scalar_bytes


def _check_tower_link(parent_grp: SchnorrGroup, child_grp: SchnorrGroup) -> None:
    if child_grp.q != parent_grp.p:
        raise ValueError(
            "storey mismatch: child commitment group order must equal the "
            "parent storey modulus (Cunningham-chain tower link)"
        )


def prove_edge(
    parent_grp: SchnorrGroup,
    g: int,
    h: int,
    c_parent: int,
    gamma: int,
    child_grp: SchnorrGroup,
    g2: int,
    h2: int,
    c_child: int,
    parent: int,
    r_parent: int,
    r_child: int,
    rng: random.Random,
    transcript: Transcript,
    *,
    rounds: int = DEFAULT_ROUNDS,
) -> CommittedEdgeProof:
    """Prove ``c_child`` commits ``γ^parent`` where ``c_parent`` commits *parent*."""
    _check_tower_link(parent_grp, child_grp)
    if rounds < 1:
        raise ValueError("need at least one round")
    child = parent_grp.exp(gamma, parent)
    if parent_grp.mul(parent_grp.exp(g, parent), parent_grp.exp(h, r_parent)) != c_parent % parent_grp.p:
        raise ValueError("parent commitment does not open")
    if child_grp.mul(child_grp.exp(g2, child), child_grp.exp(h2, r_child)) != c_child % child_grp.p:
        raise ValueError("child commitment does not open")

    # g, h, γ, g2, h2 are tower-fixed and hit `rounds` times per proof —
    # the comb cache amortizes across rounds and across spends
    nonces = []
    us = []
    ts = []
    for _ in range(rounds):
        w = rng.randrange(parent_grp.q)
        v = rng.randrange(parent_grp.q)
        sigma = rng.randrange(child_grp.q)
        nonces.append((w, v, sigma))
        us.append(parent_grp.mul(parent_grp.exp_fixed(g, w), parent_grp.exp_fixed(h, v)))
        ts.append(
            child_grp.mul(
                child_grp.exp_fixed(g2, parent_grp.exp_fixed(gamma, w)),
                child_grp.exp_fixed(h2, sigma),
            )
        )

    transcript.absorb_ints(g, h, c_parent, gamma, g2, h2, c_child, *us, *ts)
    bits = transcript.challenge(1 << rounds)

    responses = []
    for j, (w, v, sigma) in enumerate(nonces):
        if (bits >> j) & 1:
            delta = (w - parent) % parent_grp.q
            eta = (v - r_parent) % parent_grp.q
            eps = (sigma - r_child * parent_grp.exp(gamma, delta)) % child_grp.q
            responses.append((delta, eta, eps))
        else:
            responses.append((w, v, sigma))
    return CommittedEdgeProof(
        commitments_u=tuple(us), commitments_t=tuple(ts), responses=tuple(responses)
    )


def verify_edge(
    parent_grp: SchnorrGroup,
    g: int,
    h: int,
    c_parent: int,
    gamma: int,
    child_grp: SchnorrGroup,
    g2: int,
    h2: int,
    c_child: int,
    proof: CommittedEdgeProof,
    transcript: Transcript,
) -> bool:
    """Verify a hidden-child edge proof."""
    _check_tower_link(parent_grp, child_grp)
    n = proof.rounds
    if n < 1 or len(proof.commitments_t) != n or len(proof.responses) != n:
        return False
    if not all(parent_grp.contains(u) for u in proof.commitments_u):
        return False
    if not all(child_grp.contains(t) for t in proof.commitments_t):
        return False
    # both statement commitments are bases of the batched round
    # equations — membership required for RLC soundness (honest ones are)
    if not parent_grp.contains(c_parent % parent_grp.p):
        return False
    if not child_grp.contains(c_child % child_grp.p):
        return False

    transcript.absorb_ints(
        g, h, c_parent, gamma, g2, h2, c_child, *proof.commitments_u, *proof.commitments_t
    )
    bits = transcript.challenge(1 << n)

    # per-round equations over the tower-fixed bases g, h, γ, g2, h2
    for j in range(n):
        u, t = proof.commitments_u[j], proof.commitments_t[j]
        a, b, c = proof.responses[j]
        if (bits >> j) & 1:
            delta, eta, eps = a, b, c
            gamma_delta = parent_grp.exp_fixed(gamma, delta)
            if parent_grp.mul(c_parent, parent_grp.mul(parent_grp.exp_fixed(g, delta), parent_grp.exp_fixed(h, eta))) != u:
                return False
            if child_grp.mul(child_grp.exp(c_child, gamma_delta), child_grp.exp_fixed(h2, eps)) != t:
                return False
        else:
            w, v, sigma = a, b, c
            if parent_grp.mul(parent_grp.exp_fixed(g, w), parent_grp.exp_fixed(h, v)) != u:
                return False
            expected = child_grp.mul(
                child_grp.exp_fixed(g2, parent_grp.exp_fixed(gamma, w)), child_grp.exp_fixed(h2, sigma)
            )
            if expected != t:
                return False
    return True


def collect_edge(
    parent_grp: SchnorrGroup,
    g: int,
    h: int,
    c_parent: int,
    gamma: int,
    child_grp: SchnorrGroup,
    g2: int,
    h2: int,
    c_child: int,
    proof: CommittedEdgeProof,
    transcript: Transcript,
) -> list[LinearCheck] | None:
    """:func:`verify_edge` with the per-round equations deferred.

    Eager: the tower-link and structural checks, every membership
    check, the transcript traffic and the challenge bits — plus the
    *inner* exponent ``γ^δ`` (resp. ``γ^w``) of each round, which is an
    exponent of the next storey and cannot be deferred.  Each round
    then contributes two :class:`LinearCheck`\\ s, one per storey (they
    live in different groups, so the batch verifier keeps them in
    separate multi-exps automatically).  This also collapses the ~5
    sequential exponentiations per round into batched terms over the
    tower-fixed bases ``g, h, γ, g2, h2`` — the single biggest
    amortization of the deposit path.
    """
    _check_tower_link(parent_grp, child_grp)
    n = proof.rounds
    if n < 1 or len(proof.commitments_t) != n or len(proof.responses) != n:
        return None
    if not all(parent_grp.contains(u) for u in proof.commitments_u):
        return None
    if not all(child_grp.contains(t) for t in proof.commitments_t):
        return None
    if not parent_grp.contains(c_parent % parent_grp.p):
        return None
    if not child_grp.contains(c_child % child_grp.p):
        return None

    transcript.absorb_ints(
        g, h, c_parent, gamma, g2, h2, c_child, *proof.commitments_u, *proof.commitments_t
    )
    bits = transcript.challenge(1 << n)

    checks: list[LinearCheck] = []
    pp, pq = parent_grp.p, parent_grp.q
    cp, cq = child_grp.p, child_grp.q
    for j in range(n):
        u, t = proof.commitments_u[j], proof.commitments_t[j]
        a, b, c = proof.responses[j]
        if (bits >> j) & 1:
            delta, eta, eps = a, b, c
            gamma_delta = parent_grp.exp_fixed(gamma, delta)
            # C_par · g^δ · h^η == u
            checks.append(linear_check(
                pp, pq, [(c_parent, 1), (g, delta), (h, eta), (u, -1)]
            ))
            # C_ch^(γ^δ) · h2^ε == τ
            checks.append(linear_check(
                cp, cq, [(c_child, gamma_delta), (h2, eps), (t, -1)]
            ))
        else:
            w, v, sigma = a, b, c
            gamma_w = parent_grp.exp_fixed(gamma, w)
            # g^w · h^v == u
            checks.append(linear_check(pp, pq, [(g, w), (h, v), (u, -1)]))
            # g2^(γ^w) · h2^σ == τ
            checks.append(linear_check(
                cp, cq, [(g2, gamma_w), (h2, sigma), (t, -1)]
            ))
    return checks


def prove_revealed_edge(
    parent_grp: SchnorrGroup,
    g: int,
    h: int,
    c_parent: int,
    gamma: int,
    child_public: int,
    parent: int,
    r_parent: int,
    rng: random.Random,
    transcript: Transcript,
) -> RevealedEdgeProof:
    """Prove the public *child* equals ``γ^parent`` for the committed parent.

    Standard two-statement Schnorr AND-proof sharing the witness.
    """
    if parent_grp.exp(gamma, parent) != child_public % parent_grp.p:
        raise ValueError("child does not match the derivation")
    if parent_grp.mul(parent_grp.exp(g, parent), parent_grp.exp(h, r_parent)) != c_parent % parent_grp.p:
        raise ValueError("parent commitment does not open")

    a = rng.randrange(parent_grp.q)
    b = rng.randrange(parent_grp.q)
    commitment_k = parent_grp.exp(gamma, a)
    commitment_c = parent_grp.mul(parent_grp.exp(g, a), parent_grp.exp(h, b))
    transcript.absorb_ints(g, h, c_parent, gamma, child_public, commitment_k, commitment_c)
    e = transcript.challenge(parent_grp.q)
    z1 = (a + e * parent) % parent_grp.q
    z2 = (b + e * r_parent) % parent_grp.q
    return RevealedEdgeProof(commitment_k=commitment_k, commitment_c=commitment_c, z1=z1, z2=z2)


def verify_revealed_edge(
    parent_grp: SchnorrGroup,
    g: int,
    h: int,
    c_parent: int,
    gamma: int,
    child_public: int,
    proof: RevealedEdgeProof,
    transcript: Transcript,
) -> bool:
    """Verify a revealed-child edge proof."""
    if not (parent_grp.contains(proof.commitment_k) and parent_grp.contains(proof.commitment_c)):
        return False
    # statement-side bases of the batched equations — membership
    # required for RLC soundness (honest ones are)
    if not parent_grp.contains(c_parent % parent_grp.p):
        return False
    if not parent_grp.contains(child_public % parent_grp.p):
        return False
    transcript.absorb_ints(
        g, h, c_parent, gamma, child_public, proof.commitment_k, proof.commitment_c
    )
    e = transcript.challenge(parent_grp.q)
    # γ^z1 == commitment_k * child^e   (γ, g, h tower-fixed → comb cache)
    if parent_grp.exp_fixed(gamma, proof.z1) != parent_grp.mul(
        proof.commitment_k, parent_grp.exp(child_public, e)
    ):
        return False
    # g^z1 h^z2 == commitment_c * C^e
    lhs = parent_grp.mul(parent_grp.exp_fixed(g, proof.z1), parent_grp.exp_fixed(h, proof.z2))
    rhs = parent_grp.mul(proof.commitment_c, parent_grp.exp(c_parent, e))
    return lhs == rhs


def collect_revealed_edge(
    parent_grp: SchnorrGroup,
    g: int,
    h: int,
    c_parent: int,
    gamma: int,
    child_public: int,
    proof: RevealedEdgeProof,
    transcript: Transcript,
) -> list[LinearCheck] | None:
    """:func:`verify_revealed_edge` with both equations deferred."""
    if not (parent_grp.contains(proof.commitment_k) and parent_grp.contains(proof.commitment_c)):
        return None
    if not parent_grp.contains(c_parent % parent_grp.p):
        return None
    if not parent_grp.contains(child_public % parent_grp.p):
        return None
    transcript.absorb_ints(
        g, h, c_parent, gamma, child_public, proof.commitment_k, proof.commitment_c
    )
    e = transcript.challenge(parent_grp.q)
    p, q = parent_grp.p, parent_grp.q
    return [
        # γ^z1 · commitment_k^{-1} · child^{-e} == 1
        linear_check(p, q, [(gamma, proof.z1), (proof.commitment_k, -1), (child_public, -e)]),
        # g^z1 · h^z2 · commitment_c^{-1} · C^{-e} == 1
        linear_check(p, q, [
            (g, proof.z1), (h, proof.z2), (proof.commitment_c, -1), (c_parent, -e),
        ]),
    ]

"""Equality of a witness across groups of different order.

The divisible e-cash spend must show that the scalar certified by the
bank's CL signature (a pairing-group exponent, order ``r_T``) equals the
coin secret committed inside the DEC group tower (order ``q_A``).  The
two orders are different primes, so naive shared-challenge Schnorr
responses cannot be reduced modulo a common order.

We use the classic *integer-response* technique (Camenisch–Michels
style): the nonce and the response live over the integers, never
reduced, and statistical blinding hides the witness.  Given bound
``witness < 2^b`` the proof convinces the verifier that the **same
integer** opens both statements:

* ``D = g^s * h^t``      in a Schnorr group (Pedersen commitment), and
* ``V = B^s``            in an arbitrary "exponentiation oracle" group
  (for us: the pairing target group G_T).

The second group is abstracted as a pair of callables so this module
stays independent of the pairing backend.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.crypto.batchverify import LinearCheck, linear_check
from repro.crypto.groups import SchnorrGroup
from repro.crypto.hashing import Transcript

__all__ = [
    "EqualityProof",
    "prove_equality",
    "verify_equality",
    "verify_equality_deferred",
    "collect_equality",
]

#: statistical blinding slack in bits
_STAT_BITS = 64
#: Fiat–Shamir challenge length in bits
_CHALLENGE_BITS = 128


@dataclass(frozen=True)
class EqualityProof:
    """Cross-group equality proof.

    ``commitment_a`` lives in the Schnorr group; ``commitment_b`` is the
    second group's element encoded by the caller-supplied encoder.
    ``z`` is the *integer* response for the shared witness; ``z_t`` the
    (mod q) response for the Pedersen randomizer.
    """

    commitment_a: int
    commitment_b: tuple
    z: int
    z_t: int
    witness_bits: int

    def encoded_size(self, element_bytes: int, scalar_bytes: int) -> int:
        """Wire size estimate used by the Table II accounting."""
        z_bytes = (self.witness_bits + _CHALLENGE_BITS + _STAT_BITS) // 8 + 2
        return 2 * element_bytes + z_bytes + scalar_bytes


def prove_equality(
    group_a: SchnorrGroup,
    g: int,
    h: int,
    commitment: int,
    exp_b: Callable[[int], object],
    encode_b: Callable[[object], tuple],
    statement_b: object,
    witness: int,
    randomizer: int,
    witness_bits: int,
    rng: random.Random,
    transcript: Transcript,
) -> EqualityProof:
    """Prove the same ``witness < 2^witness_bits`` opens both statements.

    ``commitment = g^witness * h^randomizer`` in *group_a* and
    ``statement_b = exp_b(witness)`` in the second group (``exp_b`` is
    exponentiation of that group's fixed base).
    """
    if not 0 <= witness < (1 << witness_bits):
        raise ValueError("witness exceeds the declared bit bound")
    if group_a.mul(group_a.exp(g, witness), group_a.exp(h, randomizer)) != commitment % group_a.p:
        raise ValueError("commitment does not open to the witness")

    nonce_bound = 1 << (witness_bits + _CHALLENGE_BITS + _STAT_BITS)
    k = rng.randrange(nonce_bound)
    k_t = group_a.random_exponent(rng)
    commitment_a = group_a.mul(group_a.exp(g, k), group_a.exp(h, k_t))
    commitment_b = encode_b(exp_b(k))

    transcript.absorb_ints(g, h, commitment, commitment_a)
    transcript.absorb_ints(*(int(v) for v in encode_b(statement_b)))
    transcript.absorb_ints(*(int(v) for v in commitment_b))
    e = transcript.challenge(1 << _CHALLENGE_BITS)

    z = k + e * witness  # over the integers — never reduced
    z_t = (k_t + e * randomizer) % group_a.q
    return EqualityProof(
        commitment_a=commitment_a,
        commitment_b=tuple(int(v) for v in commitment_b),
        z=z,
        z_t=z_t,
        witness_bits=witness_bits,
    )


def verify_equality_deferred(
    group_a: SchnorrGroup,
    g: int,
    h: int,
    commitment: int,
    encode_b: Callable[[object], tuple],
    statement_b: object,
    proof: EqualityProof,
    transcript: Transcript,
) -> int | None:
    """Everything except the group-B equation; returns the challenge.

    Performs the response range check, the group-A Schnorr equation and
    the Fiat–Shamir challenge derivation (absorbing exactly what
    :func:`verify_equality` absorbs).  The group-B equation
    ``B^z == R_B * V^e`` is *not* checked — the caller must either
    check it directly or hand it to a batch verifier (see
    :func:`repro.ecash.batch.batched_equality_check`).  Returns ``None``
    when any of the performed checks fails.

    This module has no group-B operations, so it cannot validate
    ``proof.commitment_b`` itself: a caller that *batches* the group-B
    equation must first membership-check the decoded ``R_B`` against
    the prime-order subgroup (a cofactor-order offset survives a
    random linear combination with probability up to 1/2 while the
    direct check rejects it) — the e-cash layer does this in
    ``_decode_gt_commitment`` before any deferral.
    """
    bound = 1 << (proof.witness_bits + 2 * _CHALLENGE_BITS + _STAT_BITS)
    if not 0 <= proof.z < bound:
        return None
    if not group_a.contains(proof.commitment_a):
        return None
    # the commitment D appears as a base of the deferred/batched form of
    # the group-A equation, so it too must be a subgroup member for the
    # RLC soundness argument (honest commitments always are)
    if not group_a.contains(commitment % group_a.p):
        return None

    transcript.absorb_ints(g, h, commitment, proof.commitment_a)
    transcript.absorb_ints(*(int(v) for v in encode_b(statement_b)))
    transcript.absorb_ints(*proof.commitment_b)
    e = transcript.challenge(1 << _CHALLENGE_BITS)

    # group A: g^z h^{z_t} == R_A * D^e  (g, h are market-fixed bases;
    # reducing the integer response mod q is sound inside the subgroup)
    lhs_a = group_a.mul(group_a.exp_fixed(g, proof.z), group_a.exp_fixed(h, proof.z_t))
    rhs_a = group_a.mul(proof.commitment_a, group_a.exp(commitment, e))
    if lhs_a != rhs_a:
        return None
    return e


def collect_equality(
    group_a: SchnorrGroup,
    g: int,
    h: int,
    commitment: int,
    encode_b: Callable[[object], tuple],
    statement_b: object,
    proof: EqualityProof,
    transcript: Transcript,
) -> tuple[int, LinearCheck] | None:
    """:func:`verify_equality_deferred` with the group-A equation deferred.

    Same eager checks and transcript traffic; returns ``(challenge,
    check)`` where the check is ``g^z · h^{z_t} · R_A^{-1} · D^{-e} == 1``
    (the integer response reduces mod q inside the subgroup — the same
    reduction ``group_a.exp`` performs).  The group-B equation remains
    the caller's, exactly as with the deferred verifier.
    """
    bound = 1 << (proof.witness_bits + 2 * _CHALLENGE_BITS + _STAT_BITS)
    if not 0 <= proof.z < bound:
        return None
    if not group_a.contains(proof.commitment_a):
        return None
    if not group_a.contains(commitment % group_a.p):
        return None

    transcript.absorb_ints(g, h, commitment, proof.commitment_a)
    transcript.absorb_ints(*(int(v) for v in encode_b(statement_b)))
    transcript.absorb_ints(*proof.commitment_b)
    e = transcript.challenge(1 << _CHALLENGE_BITS)

    check = linear_check(
        group_a.p,
        group_a.q,
        [
            (g, proof.z),
            (h, proof.z_t),
            (proof.commitment_a, -1),
            (commitment, -e),
        ],
    )
    return e, check


def verify_equality(
    group_a: SchnorrGroup,
    g: int,
    h: int,
    commitment: int,
    exp_b: Callable[[int], object],
    mul_b: Callable[[object, object], object],
    exp_el_b: Callable[[object, int], object],
    encode_b: Callable[[object], tuple],
    decode_b: Callable[[tuple], object],
    statement_b: object,
    proof: EqualityProof,
    transcript: Transcript,
) -> bool:
    """Verify an :class:`EqualityProof`.

    The second group is driven through callables: fixed-base exponent
    (``exp_b``), element multiply (``mul_b``), element exponent
    (``exp_el_b``) and the encoder/decoder pair.
    """
    e = verify_equality_deferred(
        group_a, g, h, commitment, encode_b, statement_b, proof, transcript
    )
    if e is None:
        return False

    # group B: B^z == R_B * V^e
    lhs_b = exp_b(proof.z)
    rhs_b = mul_b(decode_b(proof.commitment_b), exp_el_b(statement_b, e))
    return tuple(int(v) for v in encode_b(lhs_b)) == tuple(int(v) for v in encode_b(rhs_b))

"""RSA-based partially blind signature (paper ref [40], Chien–Jan–Tseng).

A *partially* blind signature lets the signer embed public, mutually
agreed information (here: the job serial number) into a signature while
remaining blind to the rest of the message (here: the SP's real public
key).  PPMSpbs uses one such signature as its entire "digital coin":

* blindness of the message part ⇒ the JO never learns which SP it paid,
* the embedded serial ⇒ the MA can check freshness at deposit time and
  reject double deposits,
* unforgeability ⇒ an SP cannot mint coins the JO never issued.

Construction (Abe–Fujisaki style, as in the RSA variant of ref [40]):
the common info *a* deterministically derives a per-info public
exponent ``e_a``; the signer — knowing ``φ(n)`` — computes the ``e_a``-th
root of the blinded representative.  The requester blinds with
``r^{e_a}`` and unblinds by dividing ``r``.  Verification needs only the
public key, the message, the common info, and a small counter that
records which derivation of ``e_a`` was invertible mod ``φ(n)``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.crypto.hashing import hash_to_int, hash_to_range
from repro.crypto.ntheory import miller_rabin, modinv
from repro.crypto.rsa import RSAPrivateKey, RSAPublicKey

#: fixed Miller–Rabin bases so both parties derive the same exponent
_DERIVE_BASES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53)

__all__ = [
    "PartialBlindSignature",
    "PartialBlindSigner",
    "PartialBlindRequester",
    "derive_exponent",
    "verify_partial_blind",
]

_EXPONENT_BITS = 128


def derive_exponent(common_info: bytes, counter: int) -> int:
    """Deterministic *prime* public exponent for the given *common_info*.

    A prime exponent shares a factor with ``φ(n)`` only if it divides
    φ(n) — negligible at 128 bits — so the two-move protocol virtually
    never needs the retry path.  The counter remains for the negligible
    failure case: the signer bumps it until the exponent is invertible
    and publishes the value used.

    The primality walk uses *fixed* Miller–Rabin bases so that signer
    and requester, running independently, derive the identical exponent.
    """
    raw = hash_to_int(b"pbs-exponent", common_info, counter.to_bytes(4, "big"))
    candidate = (raw % (1 << _EXPONENT_BITS)) | (1 << (_EXPONENT_BITS - 1)) | 1
    while not miller_rabin(candidate, _DERIVE_BASES):
        candidate += 2
    return candidate


@dataclass(frozen=True)
class PartialBlindSignature:
    """A signature binding (message, common_info) under the signer's key."""

    value: int
    counter: int
    common_info: bytes

    def encoded_size(self, pk: RSAPublicKey) -> int:
        """Wire size in bytes (signature block + counter + info)."""
        return pk.modulus_bytes + 4 + len(self.common_info)


def _representative(message: bytes, common_info: bytes, n: int) -> int:
    """FDH of the (message, info) pair into ``Z_n``."""
    return 2 + hash_to_range(n - 2, b"pbs-fdh", message, common_info)


class PartialBlindSigner:
    """The signing party (the job owner in PPMSpbs)."""

    def __init__(self, sk: RSAPrivateKey) -> None:
        self._sk = sk
        self._phi = (sk.p - 1) * (sk.q - 1)

    @property
    def public_key(self) -> RSAPublicKey:
        return self._sk.public

    def signing_exponent(self, common_info: bytes) -> tuple[int, int]:
        """Smallest counter whose derived exponent is invertible mod φ.

        Returns ``(counter, d_a)`` with ``d_a = e_a^{-1} mod φ(n)``.
        """
        counter = 0
        while True:
            e_a = derive_exponent(common_info, counter)
            if math.gcd(e_a, self._phi) == 1:
                return counter, modinv(e_a, self._phi)
            counter += 1

    def sign_blinded(self, blinded: int, common_info: bytes) -> tuple[int, int]:
        """Produce the blinded signature ``blinded^{d_a} mod n``.

        The signer sees only the blinded representative and the agreed
        *common_info*; nothing about the underlying message leaks.
        Returns ``(blinded_signature, counter)``.
        """
        if not 0 < blinded < self._sk.n:
            raise ValueError("blinded value out of range")
        counter, d_a = self.signing_exponent(common_info)
        return pow(blinded, d_a, self._sk.n), counter


class PartialBlindRequester:
    """The requesting party (the sensing participant in PPMSpbs)."""

    def __init__(self, pk: RSAPublicKey, rng: random.Random) -> None:
        self._pk = pk
        self._rng = rng
        self._state: tuple[int, bytes, bytes] | None = None  # (r, message, info)

    def blind(self, message: bytes, common_info: bytes) -> int:
        """Blind the (message, info) representative with ``r^{e_a}``.

        Note the requester does not yet know the signer's counter; it
        blinds under counter 0's exponent and re-blinds on the rare
        retry (see :meth:`unblind`).  In practice counter 0 virtually
        always works, so the protocol stays two-move.
        """
        return self.blind_with_counter(message, common_info, 0)

    def blind_with_counter(self, message: bytes, common_info: bytes, counter: int) -> int:
        """Blind under the exponent derived with an explicit *counter*.

        Used on the (negligibly rare) retry path when the signer reports
        that counter 0's exponent was not invertible mod ``φ(n)``.
        """
        n = self._pk.n
        e_a = derive_exponent(common_info, counter)
        while True:
            r = self._rng.randrange(2, n - 1)
            if math.gcd(r, n) == 1:
                break
        self._state = (r, message, common_info)
        return (_representative(message, common_info, n) * pow(r, e_a, n)) % n

    def unblind(self, blinded_signature: int, counter: int) -> PartialBlindSignature:
        """Remove the blinding factor and package the final signature.

        Raises :class:`ValueError` if the result does not verify —
        callers treat that as a cheating signer (or must restart with
        the signer's *counter*, see :meth:`blind`).
        """
        if self._state is None:
            raise RuntimeError("blind() must be called before unblind()")
        r, message, common_info = self._state
        self._state = None
        n = self._pk.n
        sig = PartialBlindSignature(
            value=(blinded_signature * modinv(r, n)) % n,
            counter=counter,
            common_info=common_info,
        )
        if not verify_partial_blind(self._pk, message, sig):
            raise ValueError("partially blind signature failed to verify after unblinding")
        return sig


def verify_partial_blind(pk: RSAPublicKey, message: bytes, sig: PartialBlindSignature) -> bool:
    """Check ``sig^[e_a] == H(message || info) mod n``."""
    if not 0 < sig.value < pk.n:
        return False
    e_a = derive_exponent(sig.common_info, sig.counter)
    return pow(sig.value, e_a, pk.n) == _representative(message, sig.common_info, pk.n)

"""Fixed-base precomputation tables and simultaneous multi-exponentiation.

Every spend/deposit verification in the market is dominated by modular
exponentiations whose bases are *fixed for the lifetime of the market*:
the tower generators ``g, h, γ`` of each storey, the bank's CL public
key, and the pairing-group generator.  This module turns that
repetition into speed with three primitives:

* :class:`FixedBaseTable` — a Lim–Lee *comb* over ``Z_p``: the exponent
  bits are read in ``teeth`` interleaved streams so one exponentiation
  costs ``ceil(bits/teeth/splits) - 1`` squarings plus roughly
  ``ceil(bits/teeth)`` table multiplies, against ``~1.5 * bits``
  multiplies for square-and-multiply.  At paper parameters (1024-bit
  modulus, 160-bit exponents) this is a 5–6× win once the table exists.
* :class:`GenericFixedBaseTable` — the same comb over any group given
  as an ``(identity, op)`` pair; used for fixed curve points, where
  every group operation is a Python-level affine addition.
* :func:`multi_exp` / :func:`multi_exp_generic` — Straus/Shamir
  simultaneous exponentiation for the ``g^s · y^e``-shaped products of
  sigma-protocol verification: one shared doubling chain across all
  bases instead of one per base.

Tables are cached in :class:`PromotionCache` instances — bounded LRU
maps that only *build* a table after a base has been seen
``promote_after`` times, so one-shot exponentiations never pay the
build cost.  All caches register themselves in a module registry;
:func:`stats` aggregates their hit/miss/build/eviction counters (also
surfaced through :func:`repro.metrics.opcount.fastexp_stats`).

Two global gates keep the fallback path exactly as fast as before:
:func:`configure` ``(enabled=False)`` (or environment
``REPRO_FASTEXP=0``) disables every table path, and
``min_modulus_bits`` keeps the *integer* comb away from small moduli
where CPython's C-level ``pow`` beats any Python-level loop.  With
tables on or off, results are bit-identical — the comb computes the
same group element ``pow`` does.

This module must stay dependency-free: it imports nothing from
``repro`` (enforced by ``tools/lint_imports.py``) so every layer —
crypto, e-cash, service — can use it without cycles.
"""

from __future__ import annotations

import os
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Sequence

__all__ = [
    "CacheStats",
    "FixedBaseTable",
    "GenericFixedBaseTable",
    "PromotionCache",
    "multi_exp",
    "multi_exp_generic",
    "exp_fixed",
    "warm_fixed_base",
    "configure",
    "enabled",
    "stats",
    "reset",
    "export_int_tables",
    "install_int_tables",
]


# ---------------------------------------------------------------------------
# counters
# ---------------------------------------------------------------------------

@dataclass
class CacheStats:
    """Counters for one table cache.

    ``hits`` — exponentiations served from a built table; ``misses`` —
    calls that fell back to the naive path because no table existed
    yet; ``builds`` — tables constructed (by promotion or warming);
    ``evictions`` — tables dropped by the LRU bound; ``bypasses`` —
    calls that skipped the cache entirely (disabled, or modulus below
    the integer gate); ``attached`` — tables adopted ready-built from
    a shared-memory blob (:meth:`PromotionCache.install`) rather than
    constructed locally.  ``builds`` counts only local constructions,
    so ``attached`` is exactly the work the sharing path saved.
    """

    hits: int = 0
    misses: int = 0
    builds: int = 0
    evictions: int = 0
    bypasses: int = 0
    attached: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "builds": self.builds,
            "evictions": self.evictions,
            "bypasses": self.bypasses,
            "attached": self.attached,
        }

    @property
    def hit_rate(self) -> float:
        """Fraction of non-bypassed lookups served from a table."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


# ---------------------------------------------------------------------------
# fixed-base comb tables
# ---------------------------------------------------------------------------

class FixedBaseTable:
    """Lim–Lee comb precomputation for ``base^e mod modulus``.

    The ``bits``-bit exponent is split into ``teeth`` blocks of
    ``a = ceil(bits/teeth)`` bits; bit *t* of every block forms one comb
    *column*, selecting the precomputed product
    ``Π_{i : column bit i set} base^(2^(a·i))``.  Each block is further
    cut into ``splits`` sub-blocks with their own (pre-shifted) table,
    which divides the squaring count by ``splits`` at the price of
    ``splits × 2^teeth`` stored elements.

    Exponents are reduced modulo *order* when given (sound for any
    element of the order-*order* subgroup); otherwise exponents that do
    not fit in ``bits`` fall back to :func:`pow`.
    """

    __slots__ = ("base", "modulus", "order", "bits", "teeth", "splits",
                 "_block", "_sub", "_tables")

    def __init__(
        self,
        base: int,
        modulus: int,
        *,
        bits: int | None = None,
        order: int | None = None,
        teeth: int = 8,
        splits: int = 4,
    ) -> None:
        if modulus < 3:
            raise ValueError("modulus too small")
        if teeth < 1 or splits < 1:
            raise ValueError("teeth and splits must be positive")
        if bits is None:
            if order is None:
                raise ValueError("need an exponent bit bound: pass bits or order")
            bits = order.bit_length()
        if bits < 1:
            raise ValueError("bits must be positive")
        self.base = base % modulus
        self.modulus = modulus
        self.order = order
        self.bits = bits
        self.teeth = teeth
        self.splits = splits
        a = -(-bits // teeth)          # comb block size
        b = -(-a // splits)            # sub-block size (squarings per exp)
        self._block = a
        self._sub = b

        # base powers g_i = base^(2^(a*i)) spanning the comb teeth
        m = modulus
        gi = []
        acc = self.base
        for i in range(teeth):
            gi.append(acc)
            if i < teeth - 1:
                for _ in range(a):
                    acc = acc * acc % m
        # T[0][k] = Π_{i in k} g_i  via the lowest-set-bit recurrence;
        # T[j] = T[j-1] shifted up by the sub-block width.
        size = 1 << teeth
        first = [1] * size
        for k in range(1, size):
            lsb = k & -k
            first[k] = first[k ^ lsb] * gi[lsb.bit_length() - 1] % m
        tables = [first]
        for _ in range(1, splits):
            prev = tables[-1]
            cur = [1] * size
            for k in range(1, size):
                x = prev[k]
                for _ in range(b):
                    x = x * x % m
                cur[k] = x
            tables.append(cur)
        self._tables = tables

    @property
    def table_size(self) -> int:
        """Number of stored group elements."""
        return self.splits * (1 << self.teeth)

    def exp(self, exponent: int) -> int:
        """``base^exponent mod modulus`` — identical to ``pow``."""
        e = exponent
        if self.order is not None:
            e %= self.order
        if e < 0 or e.bit_length() > self.bits:
            # out of the precomputed range: exact fallback
            return pow(self.base, e, self.modulus)
        m = self.modulus
        tables = self._tables
        a = self._block
        b = self._sub
        teeth = self.teeth
        acc = 1
        for t in range(b - 1, -1, -1):
            acc = acc * acc % m
            for j in range(self.splits - 1, -1, -1):
                pos = j * b + t
                if pos >= a:
                    # splits*sub overshoots the block; those columns are empty
                    continue
                k = 0
                bitpos = pos
                for i in range(teeth):
                    if (e >> bitpos) & 1:
                        k |= 1 << i
                    bitpos += a
                if k:
                    acc = acc * tables[j][k] % m
        return acc

    # -- serialization (shared-memory table transport) --------------------
    def to_state(self) -> dict[str, Any]:
        """Plain-data snapshot; :meth:`from_state` rebuilds without any
        exponentiation work (the point of shipping tables to workers)."""
        return {
            "base": self.base,
            "modulus": self.modulus,
            "order": self.order,
            "bits": self.bits,
            "teeth": self.teeth,
            "splits": self.splits,
            "tables": [list(t) for t in self._tables],
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "FixedBaseTable":
        table = cls.__new__(cls)
        table.base = int(state["base"])
        table.modulus = int(state["modulus"])
        order = state["order"]
        table.order = None if order is None else int(order)
        table.bits = int(state["bits"])
        table.teeth = int(state["teeth"])
        table.splits = int(state["splits"])
        if table.modulus < 3 or table.bits < 1 or table.teeth < 1 or table.splits < 1:
            raise ValueError("malformed fixed-base table state")
        table._block = -(-table.bits // table.teeth)
        table._sub = -(-table._block // table.splits)
        rows = [list(map(int, t)) for t in state["tables"]]
        size = 1 << table.teeth
        if len(rows) != table.splits or any(len(t) != size for t in rows):
            raise ValueError("fixed-base table state has wrong dimensions")
        table._tables = rows
        return table


class GenericFixedBaseTable:
    """The same comb over an arbitrary group given as ``(identity, op)``.

    Used for groups whose operation is itself Python-level work (curve
    points, extension-field elements) — there the comb's op-count
    reduction pays off at *any* size.  Exponents must already be
    reduced into ``[0, 2^bits)``.
    """

    __slots__ = ("identity", "op", "base", "bits", "teeth", "splits",
                 "_block", "_sub", "_tables")

    def __init__(
        self,
        identity: Any,
        op: Callable[[Any, Any], Any],
        base: Any,
        bits: int,
        *,
        teeth: int = 6,
        splits: int = 2,
    ) -> None:
        if bits < 1:
            raise ValueError("bits must be positive")
        if teeth < 1 or splits < 1:
            raise ValueError("teeth and splits must be positive")
        self.identity = identity
        self.op = op
        self.base = base
        self.bits = bits
        self.teeth = teeth
        self.splits = splits
        a = -(-bits // teeth)
        b = -(-a // splits)
        self._block = a
        self._sub = b

        gi = []
        acc = base
        for i in range(teeth):
            gi.append(acc)
            if i < teeth - 1:
                for _ in range(a):
                    acc = op(acc, acc)
        size = 1 << teeth
        first: list[Any] = [identity] * size
        for k in range(1, size):
            lsb = k & -k
            first[k] = op(first[k ^ lsb], gi[lsb.bit_length() - 1])
        tables = [first]
        for _ in range(1, splits):
            prev = tables[-1]
            cur: list[Any] = [identity] * size
            for k in range(1, size):
                x = prev[k]
                for _ in range(b):
                    x = op(x, x)
                cur[k] = x
            tables.append(cur)
        self._tables = tables

    @property
    def table_size(self) -> int:
        return self.splits * (1 << self.teeth)

    def exp(self, exponent: int) -> Any:
        if exponent < 0 or exponent.bit_length() > self.bits:
            raise ValueError("exponent outside the precomputed range")
        op = self.op
        tables = self._tables
        a = self._block
        b = self._sub
        acc = self.identity
        for t in range(b - 1, -1, -1):
            acc = op(acc, acc)
            for j in range(self.splits - 1, -1, -1):
                pos = j * b + t
                if pos >= a:
                    continue
                k = 0
                bitpos = pos
                for i in range(self.teeth):
                    if (exponent >> bitpos) & 1:
                        k |= 1 << i
                    bitpos += a
                if k:
                    acc = op(acc, tables[j][k])
        return acc

    # -- serialization (shared-memory table transport) --------------------
    def to_state(self, encode: Callable[[Any], Any]) -> dict[str, Any]:
        """Snapshot with elements mapped through *encode* (plain data)."""
        return {
            "base": encode(self.base),
            "bits": self.bits,
            "teeth": self.teeth,
            "splits": self.splits,
            "tables": [[encode(x) for x in t] for t in self._tables],
        }

    @classmethod
    def from_state(
        cls,
        identity: Any,
        op: Callable[[Any, Any], Any],
        decode: Callable[[Any], Any],
        state: dict[str, Any],
    ) -> "GenericFixedBaseTable":
        table = cls.__new__(cls)
        table.identity = identity
        table.op = op
        table.base = decode(state["base"])
        table.bits = int(state["bits"])
        table.teeth = int(state["teeth"])
        table.splits = int(state["splits"])
        if table.bits < 1 or table.teeth < 1 or table.splits < 1:
            raise ValueError("malformed generic table state")
        table._block = -(-table.bits // table.teeth)
        table._sub = -(-table._block // table.splits)
        rows = [[decode(x) for x in t] for t in state["tables"]]
        size = 1 << table.teeth
        if len(rows) != table.splits or any(len(t) != size for t in rows):
            raise ValueError("generic table state has wrong dimensions")
        table._tables = rows
        return table


# ---------------------------------------------------------------------------
# simultaneous multi-exponentiation (Straus/Shamir)
# ---------------------------------------------------------------------------

def multi_exp(
    bases: Sequence[int],
    exponents: Sequence[int],
    modulus: int,
    *,
    window: int = 4,
) -> int:
    """``Π bases[i]^exponents[i] mod modulus`` with one shared chain.

    All bases share a single doubling chain (``max_bits`` squarings
    total instead of per base), each paying only a small per-window
    table lookup-multiply — the Straus/Shamir trick for the ubiquitous
    ``g^s · y^e`` verification products.  Zero exponents are skipped;
    the empty product is ``1``.  Exponents are taken over the integers
    (reduce modulo the group order first when that is sound), must be
    non-negative, and ``bases``/``exponents`` must have equal length.
    """
    if len(bases) != len(exponents):
        raise ValueError("bases and exponents must have the same length")
    if modulus < 1:
        raise ValueError("modulus must be positive")
    if window < 1:
        raise ValueError("window must be positive")
    for e in exponents:
        if e < 0:
            raise ValueError("exponents must be non-negative")
    pairs = [(b % modulus, e) for b, e in zip(bases, exponents) if e > 0]
    if not pairs:
        return 1 % modulus
    m = modulus
    table_size = 1 << window
    tables = []
    for b, _ in pairs:
        table = [1, b]
        x = b
        for _ in range(table_size - 2):
            x = x * b % m
            table.append(x)
        tables.append(table)
    max_bits = max(e.bit_length() for _, e in pairs)
    n_windows = (max_bits + window - 1) // window
    mask = table_size - 1
    acc = 1
    for w in range(n_windows - 1, -1, -1):
        if w != n_windows - 1:
            for _ in range(window):
                acc = acc * acc % m
        shift = w * window
        for (_, e), table in zip(pairs, tables):
            digit = (e >> shift) & mask
            if digit:
                acc = acc * table[digit] % m
    return acc


def multi_exp_generic(
    identity: Any,
    op: Callable[[Any, Any], Any],
    elements: Sequence[Any],
    scalars: Sequence[int],
    *,
    window: int = 4,
) -> Any:
    """Straus multi-exponentiation over an ``(identity, op)`` group.

    Same contract as :func:`multi_exp` (strict lengths, non-negative
    scalars, zeros skipped) for element types that are not plain ints —
    the drop-in fallback the batch verifier uses when a backend has no
    fused ``multi_exp`` of its own.
    """
    if len(elements) != len(scalars):
        raise ValueError("elements and scalars must have the same length")
    if window < 1:
        raise ValueError("window must be positive")
    for s in scalars:
        if s < 0:
            raise ValueError("scalars must be non-negative")
    pairs = [(el, s) for el, s in zip(elements, scalars) if s > 0]
    if not pairs:
        return identity
    table_size = 1 << window
    tables = []
    for el, _ in pairs:
        table = [identity, el]
        for _ in range(table_size - 2):
            table.append(op(table[-1], el))
        tables.append(table)
    max_bits = max(s.bit_length() for _, s in pairs)
    n_windows = (max_bits + window - 1) // window
    mask = table_size - 1
    acc = identity
    for w in range(n_windows - 1, -1, -1):
        if w != n_windows - 1:
            for _ in range(window):
                acc = op(acc, acc)
        shift = w * window
        for (_, s), table in zip(pairs, tables):
            digit = (s >> shift) & mask
            if digit:
                acc = op(acc, table[digit])
    return acc


# ---------------------------------------------------------------------------
# promotion cache
# ---------------------------------------------------------------------------

#: registry of live caches, for aggregate stats (weak so throwaway
#: backends in tests don't accumulate).  Survives ``importlib.reload``
#: of this module — a reload (the env-knob tests do one) must not
#: orphan caches held by live backends, or ``reset()``/``stats()``
#: silently stop covering them.
_REGISTRY: list[weakref.ref] = globals().get("_REGISTRY", [])


class PromotionCache:
    """Bounded LRU of precomputed tables with usage promotion.

    A table is only *built* once its key has been requested more than
    ``promote_after`` times — before that :meth:`get` returns ``None``
    and the caller takes its naive path.  This keeps one-shot bases
    (per-proof commitments, throwaway test groups) from ever paying a
    build, while steady-state bases (market generators, bank keys)
    promote within a handful of calls.  :meth:`force` builds
    unconditionally — the warm-up path.
    """

    def __init__(
        self,
        name: str,
        builder: Callable[..., Any],
        *,
        max_entries: int = 32,
        promote_after: int = 4,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        if promote_after < 0:
            raise ValueError("promote_after cannot be negative")
        self.name = name
        self.max_entries = max_entries
        self.promote_after = promote_after
        self.stats = CacheStats()
        self._builder = builder
        self._entries: OrderedDict[Any, Any] = OrderedDict()
        self._pending: OrderedDict[Any, int] = OrderedDict()
        _REGISTRY.append(weakref.ref(self))

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Any, *build_args: Any) -> Any | None:
        """The table for *key*, or ``None`` while below the threshold."""
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry
        uses = self._pending.get(key, 0) + 1
        if uses <= self.promote_after:
            self.stats.misses += 1
            self._pending[key] = uses
            self._pending.move_to_end(key)
            # the pending map is bookkeeping, not payload — keep it small
            while len(self._pending) > 8 * self.max_entries:
                self._pending.popitem(last=False)
            return None
        return self.force(key, *build_args)

    def force(self, key: Any, *build_args: Any) -> Any:
        """Build (or fetch) the table for *key* unconditionally."""
        self._pending.pop(key, None)
        entry = self._entries.get(key)
        if entry is None:
            entry = self._builder(*build_args)
            self.stats.builds += 1
            self._entries[key] = entry
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1
        self._entries.move_to_end(key)
        return entry

    def install(self, key: Any, entry: Any) -> None:
        """Adopt an externally built table (the shared-memory attach path).

        Counted under ``attached``, not ``builds`` — the whole point of
        the counter split is that an operator can see whether workers
        rebuilt their tables or inherited them.
        """
        self._pending.pop(key, None)
        if key not in self._entries:
            self.stats.attached += 1
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def snapshot(self) -> list[tuple[Any, Any]]:
        """Resident ``(key, table)`` pairs in LRU order (export path)."""
        return list(self._entries.items())

    def clear(self) -> None:
        """Drop every table and pending count; reset the counters."""
        self._entries.clear()
        self._pending.clear()
        self.stats = CacheStats()


# ---------------------------------------------------------------------------
# module-level configuration and the shared integer cache
# ---------------------------------------------------------------------------

_CONFIG: dict[str, Any] = {
    # REPRO_FASTEXP=0 force-disables every table path (A/B runs, CI)
    "enabled": os.environ.get("REPRO_FASTEXP", "1").strip().lower()
    not in {"0", "off", "false", "no"},
    "promote_after": 4,
    "max_tables": 64,
    "teeth": 8,
    "splits": 4,
    # below this modulus size C-level pow beats a Python-level comb
    "min_modulus_bits": 192,
}


def _build_int_table(base: int, modulus: int, bits: int, order: int | None) -> FixedBaseTable:
    return FixedBaseTable(
        base,
        modulus,
        bits=bits,
        order=order,
        teeth=_CONFIG["teeth"],
        splits=_CONFIG["splits"],
    )


_INT_TABLES = PromotionCache(
    "fastexp.int",
    _build_int_table,
    max_entries=_CONFIG["max_tables"],
    promote_after=_CONFIG["promote_after"],
)


def enabled() -> bool:
    """Whether any table path may be taken (the global toggle)."""
    return _CONFIG["enabled"]


def promote_after() -> int:
    """The configured promotion threshold (read by backend caches)."""
    return _CONFIG["promote_after"]


def configure(
    *,
    enabled: bool | None = None,
    promote_after: int | None = None,
    max_tables: int | None = None,
    teeth: int | None = None,
    splits: int | None = None,
    min_modulus_bits: int | None = None,
) -> dict[str, Any]:
    """Update the global fast-exp policy; returns the *previous* config.

    The returned mapping can be passed back as ``configure(**prev)`` to
    restore — the pattern the toggle tests use.
    """
    previous = dict(_CONFIG)
    updates = {
        "enabled": enabled,
        "promote_after": promote_after,
        "max_tables": max_tables,
        "teeth": teeth,
        "splits": splits,
        "min_modulus_bits": min_modulus_bits,
    }
    for key, value in updates.items():
        if value is not None:
            _CONFIG[key] = value
    if promote_after is not None:
        _INT_TABLES.promote_after = promote_after
    if max_tables is not None:
        _INT_TABLES.max_entries = max_tables
    return previous


def exp_fixed(
    base: int,
    modulus: int,
    exponent: int,
    *,
    order: int | None = None,
    bits: int | None = None,
) -> int:
    """``pow(base, exponent, modulus)`` through the fixed-base cache.

    Semantics are identical to ``pow`` (with *order* given, the
    exponent is first reduced modulo it — sound for any element of
    that subgroup, and what :class:`~repro.crypto.groups.SchnorrGroup`
    does anyway).  The table path is taken only when globally enabled,
    the modulus clears ``min_modulus_bits``, and this base has been
    seen often enough to have been promoted.
    """
    if order is not None:
        exponent %= order
    if not _CONFIG["enabled"] or modulus.bit_length() < _CONFIG["min_modulus_bits"]:
        _INT_TABLES.stats.bypasses += 1
        return pow(base, exponent, modulus)
    if bits is None:
        bits = order.bit_length() if order is not None else max(exponent.bit_length(), 1)
    table = _INT_TABLES.get((modulus, base), base, modulus, bits, order)
    if table is None:
        return pow(base, exponent, modulus)
    return table.exp(exponent)


def warm_fixed_base(
    base: int,
    modulus: int,
    *,
    order: int | None = None,
    bits: int | None = None,
) -> bool:
    """Eagerly build the table for a known-hot base.

    Returns ``True`` when a table is (now) resident; honors the same
    global gates as :func:`exp_fixed`, so warming a base the cache
    would never use is a counted no-op.
    """
    if not _CONFIG["enabled"] or modulus.bit_length() < _CONFIG["min_modulus_bits"]:
        _INT_TABLES.stats.bypasses += 1
        return False
    if bits is None:
        if order is None:
            raise ValueError("need an exponent bit bound: pass bits or order")
        bits = order.bit_length()
    _INT_TABLES.force((modulus, base), base, modulus, bits, order)
    return True


def export_int_tables() -> list[dict[str, Any]]:
    """Snapshot every resident integer comb as plain state dicts.

    The export is what :func:`repro.ecash.spend.export_verification_tables`
    packs into the shared-memory blob; order is LRU (coldest first) so
    a size-bounded importer keeps the hottest tables.
    """
    return [table.to_state() for _, table in _INT_TABLES.snapshot()]


def install_int_tables(states: Sequence[dict[str, Any]]) -> int:
    """Adopt exported integer combs into the shared cache.

    Returns the number installed.  Honors the global gates the build
    path honors — with tables disabled the states are ignored, so an
    attach can never resurrect a configuration the operator turned off.
    """
    if not _CONFIG["enabled"]:
        return 0
    installed = 0
    for state in states:
        table = FixedBaseTable.from_state(state)
        if table.modulus.bit_length() < _CONFIG["min_modulus_bits"]:
            continue
        _INT_TABLES.install((table.modulus, table.base), table)
        installed += 1
    return installed


def stats() -> dict[str, dict[str, int]]:
    """Aggregate counters of every live cache, keyed by cache name.

    Caches sharing a name (e.g. one ``tate.pair`` cache per backend
    instance) are summed into one row.
    """
    out: dict[str, dict[str, int]] = {}
    live: list[weakref.ref] = []
    for ref in _REGISTRY:
        cache = ref()
        if cache is None:
            continue
        live.append(ref)
        row = out.setdefault(
            cache.name,
            {"hits": 0, "misses": 0, "builds": 0, "evictions": 0,
             "bypasses": 0, "attached": 0, "tables": 0},
        )
        for field_name, value in cache.stats.as_dict().items():
            row[field_name] += value
        row["tables"] += len(cache)
    _REGISTRY[:] = live
    return out


def reset() -> None:
    """Clear every live cache and zero all counters (test isolation)."""
    live: list[weakref.ref] = []
    for ref in _REGISTRY:
        cache = ref()
        if cache is None:
            continue
        live.append(ref)
        cache.clear()
    _REGISTRY[:] = live

"""Random-linear-combination batch verification with bisection fallback.

Every sigma-protocol verifier in :mod:`repro.crypto.zkp` ultimately
evaluates equations of one shape: a product of known group elements
raised to known exponents must equal the identity,

    ``b_1^{e_1} · b_2^{e_2} · ... · b_m^{e_m}  ==  1   (mod p)``,

with the exponents living in ``[0, q)`` for the subgroup order ``q``
(an element on the "wrong side" of the equality contributes its
inverse, i.e. exponent ``q - e``).  :class:`LinearCheck` is that shape
reified; the ``collect_*`` functions in the zkp modules produce them
instead of evaluating eagerly.

**Small-exponent RLC.**  Rather than evaluating k equations with k
multi-exponentiations, draw an independent random coefficient ``c_i``
per *equation* and test the single combined equation

    ``Π_i ( Π_j b_{ij}^{e_ij} )^{c_i}  ==  1``.

Terms sharing a base across equations merge (their exponents sum to
``Σ c_i · e_ij mod q``), so the combined test is ONE Straus multi-exp
over the distinct bases — and in a deposit batch the bases (``g``,
``h``, the per-storey generators, commitments shared across rounds)
repeat heavily, which is where the throughput comes from.

**Soundness.**  If any single equation does not hold, its left side is
some ``v ≠ 1`` in the order-``q`` subgroup; the combined product is
``v^{c_i} · (rest)`` and passes only when ``c_i`` hits the single root
of a non-trivial linear equation mod the subgroup order — probability
``1 / (bound - 1) ≤ 2^-127`` per coefficient, union-bounded over the
batch (see ``docs/performance.md``).  Two caveats make this argument
real rather than folklore:

* coefficients are drawn **per equation**, never shared between
  equations of one item — a shared coefficient would let two planted
  violations ``v`` and ``v^{-1}`` cancel deterministically;
* every base must lie in the order-``q`` subgroup.  ``Z_p^*`` has a
  cofactor-2 component, and an element outside the subgroup would
  enjoy 1/2 escape probability, so the collectors membership-check
  all statement inputs before deferring (mirrored in the sequential
  verifiers to keep decisions identical).

**Auditability.**  Coefficients come from :class:`CoefficientSource`
— a SHAKE-256 stream keyed by a domain tag, the batch seed, the
bisection path and the item index, with equation *i* reading the
stream's bytes ``[16i, 16i+16)`` — so any verdict can be re-derived
offline from the seed alone; there is no hidden RNG state.

**Bisection.**  A failed combined check proves "at least one bad item"
but not which.  :meth:`BatchVerifier.verify` splits the index range in
half and recurses, drawing *fresh* coefficients per sub-batch (the
path is part of the hash input), until singletons are reached —
singletons are evaluated **exactly**, with no random coefficients, so
the per-item accept/reject decision is bit-identical to sequential
verification.  Cost: a batch with ``d`` bad items spends at most
``2·d·log2(k)`` extra combined checks, and each level halves the
multi-exp width, so the worst case degrades to ~2× sequential rather
than k×.

This module is pure arithmetic: it may import only
:mod:`repro.crypto.fastexp` and :mod:`repro.crypto.hashing` (pinned by
``tools/lint_imports.py``) so every layer can lean on it cycle-free.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import repro.crypto.fastexp as fastexp

__all__ = [
    "COEFFICIENT_BITS",
    "LinearCheck",
    "linear_check",
    "CoefficientSource",
    "BatchVerifier",
    "verify_each",
]

#: Size of the random combining coefficients (capped by the subgroup
#: order for small test groups); the per-equation escape probability
#: is ``1 / (min(2^128, q) - 1)``.
COEFFICIENT_BITS = 128


def _int_bytes(value: int) -> bytes:
    """Canonical big-endian encoding (non-negative ints)."""
    if value < 0:
        raise ValueError("negative value")
    return value.to_bytes((value.bit_length() + 7) // 8 or 1, "big")


@dataclass(frozen=True)
class LinearCheck:
    """One deferred verification equation ``Π bases^exponents == 1 mod modulus``.

    Build via :func:`linear_check`, which canonicalises: bases reduced
    mod ``modulus``, exponents folded into ``[0, order)`` (negative
    exponents become ``order - e`` — valid because every base is a
    member of the order-``order`` subgroup), zero-exponent terms
    dropped.
    """

    modulus: int
    order: int
    bases: tuple[int, ...]
    exponents: tuple[int, ...]

    def holds(self) -> bool:
        """Exact (non-randomised) evaluation of the equation."""
        m = self.modulus
        acc = 1
        for base, exponent in zip(self.bases, self.exponents):
            acc = acc * pow(base, exponent, m) % m
        return acc == 1 % m


def linear_check(
    modulus: int, order: int, terms: Iterable[tuple[int, int]]
) -> LinearCheck:
    """Canonicalise ``(base, signed_exponent)`` terms into a :class:`LinearCheck`."""
    if modulus < 2 or order < 2:
        raise ValueError("modulus and order must be >= 2")
    bases: list[int] = []
    exponents: list[int] = []
    for base, exponent in terms:
        e = exponent % order
        if e:
            bases.append(base % modulus)
            exponents.append(e)
    return LinearCheck(modulus, order, tuple(bases), tuple(exponents))


class CoefficientSource:
    """Seeded, auditable stream of RLC coefficients.

    ``coefficient(order, index, equation, path)`` is a pure function of
    the constructor arguments and its own — re-deriving any batch
    verdict offline needs only the seed.  Values are uniform over
    ``[1, min(2^128, order))``: never 0 mod ``order`` (a zero
    coefficient would silently drop an equation from the combination —
    and unbalance the paired ``+c``/``-c`` terms of a pairing batch),
    and the +1 offset costs a bias of at most ``2^-128``.

    Derivation: one SHAKE-256 stream per ``(path, index)``, absorbing
    ``domain || len(seed) || seed || path``-dot-string ``|| index``;
    equation *i*'s coefficient reads bytes ``[16i, 16i+16)`` of the
    stream.  One hash absorb covers every equation of an item — a
    deposit token defers dozens — while keeping the offline-replay
    story: the stream position, not a per-equation hash, is the
    domain separation.
    """

    def __init__(self, seed: int | bytes, domain: bytes = b"repro.crypto.batchverify") -> None:
        self.domain = bytes(domain)
        self.seed = seed if isinstance(seed, bytes) else _int_bytes(int(seed))
        self._streams: dict[tuple, bytes] = {}

    def _stream(self, index: int, path: Sequence[int], need: int) -> bytes:
        key = (tuple(path), index)
        buffer = self._streams.get(key)
        if buffer is None or len(buffer) < need:
            shake = hashlib.shake_256()
            shake.update(self.domain)
            shake.update(len(self.seed).to_bytes(4, "big"))
            shake.update(self.seed)
            shake.update(".".join(str(step) for step in path).encode())
            shake.update(_int_bytes(index))
            buffer = shake.digest(max(need, 2 * len(buffer or b""), 512))
            self._streams[key] = buffer
        return buffer

    def coefficient(
        self,
        order: int,
        index: int,
        equation: int = 0,
        path: Sequence[int] = (),
    ) -> int:
        """The combining coefficient for equation *equation* of item *index*.

        *path* is the bisection path (tuple of 0/1 splits) so every
        sub-batch re-randomises independently of its parent's failure.
        """
        bound = min(1 << COEFFICIENT_BITS, order)
        if bound <= 2:
            return 1
        offset = 16 * equation
        block = self._stream(index, path, offset + 16)[offset : offset + 16]
        return 1 + int.from_bytes(block, "big") % (bound - 1)


class BatchVerifier:
    """Accumulates per-item :class:`LinearCheck` lists; verdicts via RLC.

    Usage::

        verifier = BatchVerifier(seed=rng.getrandbits(256))
        for key, token in enumerate(tokens):
            verifier.add(key, collect_checks(token))
        verdicts = verifier.verify()   # {key: bool}

    Decision contract: ``verdicts[key]`` equals
    ``all(c.holds() for c in checks)`` except with probability at most
    ``(k-1)·2^-127`` over the seed (each combined check the item
    participates in can mask it with probability ``≤ 2^-127``; honest
    items are never rejected).  Items with an empty check list accept.
    """

    def __init__(self, *, seed: int | bytes, domain: bytes = b"repro.crypto.batchverify") -> None:
        self._source = CoefficientSource(seed, domain)
        self._items: list[tuple[Any, tuple[LinearCheck, ...]]] = []

    def add(self, key: Any, checks: Sequence[LinearCheck]) -> None:
        self._items.append((key, tuple(checks)))

    def __len__(self) -> int:
        return len(self._items)

    # -- combination ------------------------------------------------------
    def _combined_holds(self, indices: Sequence[int], path: tuple[int, ...]) -> bool:
        """One randomised check over all equations of *indices*."""
        # (modulus, order) -> base -> accumulated exponent; checks from
        # different groups (e.g. the two storeys of an edge proof) can
        # never merge, so each group gets its own multi-exp.
        groups: dict[tuple[int, int], dict[int, int]] = {}
        for index in indices:
            _, checks = self._items[index]
            for eq, check in enumerate(checks):
                c = self._source.coefficient(check.order, index, eq, path)
                merged = groups.setdefault((check.modulus, check.order), {})
                for base, exponent in zip(check.bases, check.exponents):
                    merged[base] = merged.get(base, 0) + c * exponent
        for (modulus, order), merged in groups.items():
            bases: list[int] = []
            exponents: list[int] = []
            for base, accumulated in merged.items():
                e = accumulated % order
                if e:
                    bases.append(base)
                    exponents.append(e)
            if fastexp.multi_exp(bases, exponents, modulus) != 1 % modulus:
                return False
        return True

    def verify(self) -> dict[Any, bool]:
        """Verdict per key; failed combinations bisect down to singletons."""
        verdicts: dict[Any, bool] = {}
        if not self._items:
            return verdicts
        stack: list[tuple[tuple[int, ...], tuple[int, ...]]] = [
            ((), tuple(range(len(self._items))))
        ]
        while stack:
            path, indices = stack.pop()
            if len(indices) == 1:
                key, checks = self._items[indices[0]]
                verdicts[key] = all(check.holds() for check in checks)
                continue
            if self._combined_holds(indices, path):
                for index in indices:
                    verdicts[self._items[index][0]] = True
            else:
                mid = len(indices) // 2
                stack.append((path + (0,), indices[:mid]))
                stack.append((path + (1,), indices[mid:]))
        return verdicts


def verify_each(
    batches: Sequence[Sequence[LinearCheck]],
    *,
    seed: int | bytes,
    domain: bytes = b"repro.crypto.batchverify",
) -> list[bool]:
    """Positional convenience wrapper: one verdict per entry of *batches*."""
    verifier = BatchVerifier(seed=seed, domain=domain)
    for index, checks in enumerate(batches):
        verifier.add(index, checks)
    verdicts = verifier.verify()
    return [verdicts[index] for index in range(len(batches))]

"""RSA from scratch: keygen, padded encryption, signatures, hybrid envelope.

The market protocols use RSA in three ways (paper Sections IV–V):

* ``RSA_ENC`` / ``RSA_DEC`` — confidential delivery of payments and
  identities.  Protocol payloads (e.g. the PPMSdec payment containing up
  to ``2^L`` coins) far exceed one modulus block, so :func:`encrypt` is
  a *hybrid* envelope: a random seed is RSA-encapsulated and expands via
  a SHA-256 counter-mode keystream to mask the payload.  This mirrors
  what any deployment would do and keeps the Table II byte accounting
  honest.
* ``RSA_SIG`` / ``RSA_SIGVERI`` — full-domain-hash style signatures.
* raw modular ops — building blocks for the blind / partially blind
  signatures in :mod:`repro.crypto.blind` and
  :mod:`repro.crypto.partial_blind`.

Key sizes are configurable; tests use small moduli for speed, benches
use the documented defaults.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro._util import bytes_to_int, int_to_bytes
from repro.crypto.hashing import hash_to_range, sha256
from repro.crypto.ntheory import modinv, random_prime

__all__ = [
    "RSAPublicKey",
    "RSAPrivateKey",
    "generate_keypair",
    "encrypt",
    "decrypt",
    "sign",
    "verify",
    "keystream",
    "xor_mask",
]

_F4 = 65537


@dataclass(frozen=True)
class RSAPublicKey:
    """An RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def modulus_bytes(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def raw_encrypt(self, m: int) -> int:
        """Textbook RSA: ``m^e mod n`` (no padding — primitive only)."""
        if not 0 <= m < self.n:
            raise ValueError("message representative out of range")
        return pow(m, self.e, self.n)

    def raw_verify(self, s: int) -> int:
        """Textbook verification primitive: ``s^e mod n``."""
        if not 0 <= s < self.n:
            raise ValueError("signature representative out of range")
        return pow(s, self.e, self.n)

    def fingerprint(self) -> bytes:
        """Stable 16-byte identifier of the key (used as a pseudonym)."""
        return sha256(b"rsa-pk", int_to_bytes(self.n), int_to_bytes(self.e))[:16]

    def encoded_size(self) -> int:
        """Wire size of the key in bytes: modulus plus a 4-byte exponent."""
        return self.modulus_bytes + 4


@dataclass(frozen=True)
class RSAPrivateKey:
    """An RSA private key; carries its public half and the CRT parts."""

    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def public(self) -> RSAPublicKey:
        return RSAPublicKey(self.n, self.e)

    def raw_decrypt(self, c: int) -> int:
        """Textbook RSA decryption with CRT speedup."""
        if not 0 <= c < self.n:
            raise ValueError("ciphertext representative out of range")
        mp = pow(c % self.p, self.d % (self.p - 1), self.p)
        mq = pow(c % self.q, self.d % (self.q - 1), self.q)
        h = (modinv(self.q, self.p) * (mp - mq)) % self.p
        return mq + h * self.q

    def raw_sign(self, m: int) -> int:
        """Textbook signing primitive (same math as decryption)."""
        return self.raw_decrypt(m)


def generate_keypair(bits: int, rng: random.Random, *, e: int = _F4) -> RSAPrivateKey:
    """Generate an RSA keypair with a *bits*-bit modulus.

    Primes are rejected until ``gcd(e, (p-1)(q-1)) == 1`` and the
    modulus has exactly the requested bit length.
    """
    if bits < 16:
        raise ValueError("modulus too small to be meaningful")
    half = bits // 2
    while True:
        p = random_prime(half, rng)
        q = random_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        try:
            d = modinv(e, phi)
        except ValueError:
            continue
        return RSAPrivateKey(n=n, e=e, d=d, p=p, q=q)


# ---------------------------------------------------------------------------
# hybrid encryption
# ---------------------------------------------------------------------------

def keystream(seed: bytes, length: int) -> bytes:
    """SHA-256 counter-mode keystream of *length* bytes from *seed*."""
    out = bytearray()
    counter = 0
    while len(out) < length:
        out += sha256(b"rsa-hybrid-stream", seed, counter.to_bytes(8, "big"))
        counter += 1
    return bytes(out[:length])


def xor_mask(data: bytes, seed: bytes) -> bytes:
    """XOR *data* with the keystream derived from *seed*."""
    stream = keystream(seed, len(data))
    return bytes(a ^ b for a, b in zip(data, stream))


def encrypt(pk: RSAPublicKey, plaintext: bytes, rng: random.Random) -> bytes:
    """Hybrid RSA encryption of arbitrary-length *plaintext*.

    Wire format: ``[k-byte RSA block || masked payload || 32-byte tag]``
    where *k* is the modulus size.  The tag is a hash MAC binding the
    seed and payload, giving integrity against in-transit corruption
    (the MA forwards these blobs verbatim).
    """
    k = pk.modulus_bytes
    if k < 40:
        raise ValueError("modulus too small for hybrid encryption (need >= 320 bits)")
    # random seed encoded as an integer strictly below n
    seed = bytes(rng.getrandbits(8) for _ in range(k - 8))
    m = bytes_to_int(seed) % pk.n
    block = int_to_bytes(pk.raw_encrypt(m), k)
    seed_bytes = int_to_bytes(m)
    masked = xor_mask(plaintext, seed_bytes)
    tag = sha256(b"rsa-hybrid-tag", seed_bytes, plaintext)
    return block + masked + tag


def decrypt(sk: RSAPrivateKey, ciphertext: bytes) -> bytes:
    """Invert :func:`encrypt`; raises :class:`ValueError` on a bad tag."""
    k = sk.public.modulus_bytes
    if len(ciphertext) < k + 32:
        raise ValueError("ciphertext too short")
    block, masked, tag = ciphertext[:k], ciphertext[k:-32], ciphertext[-32:]
    m = sk.raw_decrypt(bytes_to_int(block))
    seed_bytes = int_to_bytes(m)
    plaintext = xor_mask(masked, seed_bytes)
    if sha256(b"rsa-hybrid-tag", seed_bytes, plaintext) != tag:
        raise ValueError("hybrid decryption failed: integrity tag mismatch")
    return plaintext


# ---------------------------------------------------------------------------
# signatures (full-domain-hash style)
# ---------------------------------------------------------------------------

def _fdh(message: bytes, n: int) -> int:
    """Full-domain hash of *message* into ``Z_n`` (never 0 or 1)."""
    return 2 + hash_to_range(n - 2, b"rsa-fdh", message)


def sign(sk: RSAPrivateKey, message: bytes) -> int:
    """FDH-RSA signature on *message*."""
    return sk.raw_sign(_fdh(message, sk.n))


def verify(pk: RSAPublicKey, message: bytes, signature: int) -> bool:
    """Verify an FDH-RSA signature."""
    if not 0 <= signature < pk.n:
        return False
    return pk.raw_verify(signature) == _fdh(message, pk.n)

"""Cyclic-group abstractions and the Divisible-E-cash group tower.

Two constructions live here:

* :class:`SchnorrGroup` — the prime-order subgroup of ``Z_p^*`` with
  ``p = k*q + 1``; the workhorse for commitments and ZK proofs.
* :class:`GroupTower` — the tower ``G, G_1, ..., G_{L+1}`` required by
  the binary-tree Divisible E-cash scheme (paper Section III-C1):
  ``G_1 = <g_1>`` is a subgroup of ``Z*_{o_G}``, and each ``G_i`` is a
  subgroup of ``Z*_{o_{i+1}}`` where the orders satisfy
  ``o_{i+1} = 2 o_i + 1`` — i.e. the orders form a first-kind
  Cunningham chain.  Because the order of ``Z*_{o_{i+1}}`` is
  ``o_{i+1} - 1 = 2 o_i``, it contains a subgroup of prime order
  ``o_i``, which is exactly ``G_i``.

Generators "whose discrete logarithms to their bases are unknown" are
derived by hashing a public label into the group (nothing-up-my-sleeve
construction), matching the MA's obligation in the paper's setup.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro._util import rand_range
from repro.crypto import fastexp
from repro.crypto.cunningham import CunninghamChain, find_chain, known_chain
from repro.crypto.hashing import hash_to_int
from repro.crypto.ntheory import is_probable_prime, random_safe_prime

__all__ = [
    "SchnorrGroup",
    "GroupTower",
    "build_tower",
]


@dataclass(frozen=True)
class SchnorrGroup:
    """The order-*q* subgroup of ``Z_p^*`` where ``q | p - 1``.

    Elements are plain ints in ``[1, p)``; exponents live in ``Z_q``.
    """

    p: int
    q: int
    g: int

    def __post_init__(self) -> None:
        if (self.p - 1) % self.q != 0:
            raise ValueError("q must divide p - 1")
        if not (1 < self.g < self.p):
            raise ValueError("generator out of range")
        if pow(self.g, self.q, self.p) != 1:
            raise ValueError("g does not have order dividing q")
        if self.g == 1:
            raise ValueError("g is the identity")

    # -- group operations -------------------------------------------------
    def exp(self, base: int, exponent: int) -> int:
        """``base ** exponent`` in the group (exponent reduced mod q)."""
        return pow(base, exponent % self.q, self.p)

    def power(self, exponent: int) -> int:
        """``g ** exponent`` for the canonical generator."""
        return self.exp(self.g, exponent)

    def exp_fixed(self, base: int, exponent: int) -> int:
        """:meth:`exp` through the fixed-base comb cache.

        Bit-identical to :meth:`exp`; markedly faster once *base* has
        been promoted (market generators, long-lived public keys).  Use
        it for bases that recur across calls, plain :meth:`exp` for
        per-proof values.
        """
        return fastexp.exp_fixed(base, self.p, exponent, order=self.q)

    def power_fixed(self, exponent: int) -> int:
        """:meth:`power` through the fixed-base comb cache."""
        return fastexp.exp_fixed(self.g, self.p, exponent, order=self.q)

    def multi_exp(self, bases, exponents) -> int:
        """``Π bases[i]^exponents[i]`` via one shared Straus chain."""
        reduced = [e % self.q for e in exponents]
        return fastexp.multi_exp(bases, reduced, self.p)

    def warm_fixed(self, *bases: int) -> None:
        """Eagerly build comb tables for known-hot *bases*."""
        for base in bases:
            fastexp.warm_fixed_base(base, self.p, order=self.q)

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.p

    def inv(self, a: int) -> int:
        return pow(a, self.p - 2, self.p)

    def contains(self, a: int) -> bool:
        """Membership test: a nonzero element of order dividing *q*."""
        return 0 < a < self.p and pow(a, self.q, self.p) == 1

    # -- sampling ----------------------------------------------------------
    def random_exponent(self, rng: random.Random) -> int:
        """Uniform exponent in ``[1, q)``."""
        return rand_range(rng, 1, self.q)

    def random_element(self, rng: random.Random) -> int:
        """Uniform non-identity element of the subgroup."""
        return self.power(self.random_exponent(rng))

    def derive_generator(self, label: bytes) -> int:
        """Hash *label* to an independent generator (unknown DL to ``g``).

        The cofactor exponentiation maps an arbitrary ``Z_p^*`` element
        into the order-*q* subgroup; a counter is appended until the
        result is not the identity.
        """
        cofactor = (self.p - 1) // self.q
        counter = 0
        while True:
            seed = hash_to_int(b"repro.groups.generator", label, counter.to_bytes(4, "big"))
            candidate = pow(2 + seed % (self.p - 3), cofactor, self.p)
            if candidate != 1:
                return candidate
            counter += 1

    @classmethod
    def generate(cls, bits: int, rng: random.Random) -> "SchnorrGroup":
        """Fresh safe-prime group: ``p = 2q + 1``, generator of order *q*."""
        p = random_safe_prime(bits, rng)
        q = (p - 1) // 2
        while True:
            h = rand_range(rng, 2, p - 1)
            g = pow(h, 2, p)  # cofactor 2
            if g != 1:
                return cls(p=p, q=q, g=g)

    @classmethod
    def from_order(cls, q: int, rng: random.Random, *, max_k: int = 1 << 20) -> "SchnorrGroup":
        """Group of the given prime order *q*: find ``p = k*q + 1`` prime.

        This is how each storey of the DEC tower is realized — the
        *order* is dictated by the Cunningham chain, and we search for a
        modulus that exposes a subgroup of exactly that order.
        """
        if not is_probable_prime(q):
            raise ValueError("order must be prime")
        k = 2
        while k < max_k:
            p = k * q + 1
            if is_probable_prime(p):
                cofactor = k
                while True:
                    h = rand_range(rng, 2, p - 1)
                    g = pow(h, cofactor, p)
                    if g != 1 and pow(g, q, p) == 1:
                        return cls(p=p, q=q, g=g)
            k += 2 if q % 2 == 1 else 1
        raise RuntimeError(f"no modulus found for order {q}")


@dataclass(frozen=True)
class GroupTower:
    """The DEC group tower ``G, G_1, ..., G_{L+1}``.

    ``levels[i]`` is the group ``G_{i+1}`` (0-indexed).  Orders satisfy
    ``order(levels[i+1]) = 2 * order(levels[i]) + 1``; consequently each
    group's order is an element of a Cunningham chain and the classic
    "double discrete logarithm" relation holds between adjacent storeys:
    an exponent in ``G_{i+1}`` can itself be a group element of ``G_i``.

    Attributes
    ----------
    chain:
        The first-kind Cunningham chain supplying the orders.
    levels:
        ``L + 1`` Schnorr groups, smallest order first.
    extra_generators:
        Per-level independent generators (``h`` bases) with unknown
        mutual discrete logarithms, required by the coin commitments.
    """

    chain: CunninghamChain
    levels: tuple[SchnorrGroup, ...]
    extra_generators: tuple[tuple[int, ...], ...] = field(default=())

    @property
    def depth(self) -> int:
        """Tree level L supported by this tower (``len(levels) - 1``)."""
        return len(self.levels) - 1

    def group(self, i: int) -> SchnorrGroup:
        """The group ``G_{i+1}`` (0-indexed storey *i*)."""
        return self.levels[i]

    def verify(self) -> bool:
        """Check the chain relation between consecutive storey orders."""
        orders = [grp.q for grp in self.levels]
        return all(orders[i + 1] == 2 * orders[i] + 1 for i in range(len(orders) - 1))


def build_tower(
    level: int,
    rng: random.Random,
    *,
    chain: CunninghamChain | None = None,
    chain_bits: int = 16,
    generators_per_level: int = 4,
    use_known_chain: bool = True,
) -> GroupTower:
    """Run ``Setup(DEC)``: construct the group tower for tree level *level*.

    A coin of denomination ``2^level`` needs a tree of ``level + 1``
    node layers, hence a chain of ``level + 1`` primes.  When
    *use_known_chain* is set (the default, mirroring the paper's offline
    setup) the precomputed chain table is consulted first; otherwise —
    or when the table has no entry — the randomized search runs, which
    is the expensive path Fig. 2 measures.
    """
    if level < 0:
        raise ValueError("level must be >= 0")
    length = level + 1
    if chain is None:
        if use_known_chain:
            try:
                chain = known_chain(length)
            except KeyError:
                chain = find_chain(length, chain_bits, rng)
        else:
            chain = find_chain(length, chain_bits, rng)
    if chain.length < length:
        raise ValueError(f"chain of length {chain.length} too short for level {level}")

    orders = chain.primes()[: length + 1]  # may include one extra for the top modulus
    levels = []
    extra: list[tuple[int, ...]] = []
    for idx in range(length):
        order = orders[idx]
        if idx + 1 < len(orders):
            # chain link: modulus is the NEXT chain prime, so this
            # storey's elements are exponents of the next storey —
            # the double-discrete-log relation the spend proofs need.
            p = orders[idx + 1]
            while True:
                h = rand_range(rng, 2, p - 1)
                g = pow(h, 2, p)  # cofactor 2 (p = 2*order + 1)
                if g != 1:
                    break
            grp = SchnorrGroup(p=p, q=order, g=g)
        else:
            # topmost storey hosts no further exponents; any modulus
            # exposing an order-`order` subgroup will do.
            grp = SchnorrGroup.from_order(order, rng)
        levels.append(grp)
        extra.append(
            tuple(
                grp.derive_generator(b"tower-level-%d-gen-%d" % (idx, j))
                for j in range(generators_per_level)
            )
        )
    return GroupTower(chain=chain, levels=tuple(levels), extra_generators=tuple(extra))

"""Hashing utilities and the Fiat–Shamir transcript.

All proofs in the library are made non-interactive with the Fiat–Shamir
heuristic (paper ref [39]).  :class:`Transcript` provides a misuse-
resistant way to derive challenges: every absorbed item is length-
prefixed and domain-tagged so distinct transcripts can never collide by
concatenation ambiguity.

SHA-256 from :mod:`hashlib` is the only off-the-shelf primitive used in
the entire library.
"""

from __future__ import annotations

import hashlib

from repro._util import int_to_bytes

__all__ = [
    "sha256",
    "hash_to_int",
    "hash_to_range",
    "Transcript",
]


def sha256(*parts: bytes) -> bytes:
    """SHA-256 of the length-prefixed concatenation of *parts*."""
    h = hashlib.sha256()
    for part in parts:
        h.update(len(part).to_bytes(8, "big"))
        h.update(part)
    return h.digest()


def hash_to_int(*parts: bytes) -> int:
    """Hash *parts* to a 256-bit integer."""
    return int.from_bytes(sha256(*parts), "big")


def hash_to_range(upper: int, *parts: bytes) -> int:
    """Hash *parts* to an integer in ``[0, upper)``.

    Uses counter-mode extension so the output has negligible modulo
    bias even for ``upper`` much larger than 256 bits.
    """
    if upper <= 0:
        raise ValueError("upper bound must be positive")
    need_bits = upper.bit_length() + 128  # 128 extra bits kill the bias
    acc = 0
    counter = 0
    while acc.bit_length() < need_bits:
        acc = (acc << 256) | hash_to_int(*parts, counter.to_bytes(4, "big"))
        counter += 1
    return acc % upper


class Transcript:
    """A Fiat–Shamir transcript.

    Typical prover flow::

        t = Transcript(b"schnorr-pok")
        t.absorb_int(group.p); t.absorb_int(statement)
        t.absorb_int(commitment)
        e = t.challenge(group.q)

    The verifier rebuilds the same transcript and must obtain the same
    challenge.  Challenges are stateful: each call folds a counter into
    the hash so multiple challenges from one transcript are independent.
    """

    def __init__(self, domain: bytes) -> None:
        self._parts: list[bytes] = [b"repro.transcript", domain]
        self._challenges = 0

    def absorb(self, data: bytes) -> None:
        """Append raw bytes to the transcript."""
        self._parts.append(data)

    def absorb_int(self, value: int) -> None:
        """Append an integer (canonical big-endian encoding)."""
        self._parts.append(int_to_bytes(value))

    def absorb_ints(self, *values: int) -> None:
        for v in values:
            self.absorb_int(v)

    def challenge(self, upper: int) -> int:
        """Derive the next challenge in ``[0, upper)`` from the state."""
        self._challenges += 1
        return hash_to_range(upper, *self._parts, b"challenge", self._challenges.to_bytes(4, "big"))

    def challenge_bytes(self, length: int) -> bytes:
        """Derive *length* challenge bytes from the state."""
        self._challenges += 1
        out = b""
        counter = 0
        while len(out) < length:
            out += sha256(
                *self._parts,
                b"challenge-bytes",
                self._challenges.to_bytes(4, "big"),
                counter.to_bytes(4, "big"),
            )
            counter += 1
        return out[:length]

    def fork(self, domain: bytes) -> "Transcript":
        """Clone the transcript under a sub-domain (for parallel proofs)."""
        child = Transcript(domain)
        child._parts = list(self._parts) + [b"fork", domain]
        return child

"""Camenisch–Lysyanskaya signatures from bilinear maps (paper ref [27]).

Implements CL *Scheme A* over any backend satisfying the bilinear-group
interface of :mod:`repro.crypto.pairing`:

* ``KeyGen``: sk = (x, y);  pk = (X = g^x, Y = g^y).
* ``Sign(m)``: pick random a ∈ G; output (a, b = a^y, c = a^{x + x·y·m}).
* ``Verify``: check  e(a, Y) = e(g, b)  and  e(X, a) · e(X, b)^m = e(g, c).

On top of the plain scheme we provide the *blind issuance* protocol from
the same paper: the requester submits a Pedersen-style commitment
``M = g^m`` (with a Schnorr proof of knowledge of *m*); the signer picks
``α`` and returns ``(a = g^α, b = a^y, c = a^x · M^{α·x·y})`` — a valid
signature on *m* that the signer never saw.  PPMSdec withdraws divisible
e-cash this way: the coin secret stays with the JO, the bank's CL
signature certifies it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.crypto.hashing import Transcript
from repro.crypto.zkp.schnorr import SchnorrProof, prove_dlog_generic, verify_dlog_generic

__all__ = [
    "CLKeyPair",
    "CLPublicKey",
    "CLSignature",
    "cl_keygen",
    "cl_sign",
    "cl_verify",
    "BlindIssuanceRequest",
    "cl_blind_request",
    "cl_blind_issue",
    "cl_blind_unwrap",
]


@dataclass(frozen=True)
class CLPublicKey:
    """CL public key ``(X, Y)`` over a shared bilinear backend."""

    X: Any
    Y: Any


@dataclass(frozen=True)
class CLKeyPair:
    """CL key pair; ``public`` carries the published half."""

    x: int
    y: int
    public: CLPublicKey


@dataclass(frozen=True)
class CLSignature:
    """A CL Scheme-A signature ``(a, b, c)`` on a scalar message."""

    a: Any
    b: Any
    c: Any


def _exp_fixed(backend, base, scalar: int):
    """Exponentiate a long-lived base, via the backend's table cache if any."""
    return getattr(backend, "exp_fixed", backend.exp)(base, scalar)


def cl_keygen(backend, rng: random.Random) -> CLKeyPair:
    """Generate a CL key pair on *backend*."""
    x = backend.random_scalar(rng)
    y = backend.random_scalar(rng)
    public = CLPublicKey(X=_exp_fixed(backend, backend.g, x), Y=_exp_fixed(backend, backend.g, y))
    return CLKeyPair(x=x, y=y, public=public)


def cl_sign(backend, keypair: CLKeyPair, message: int, rng: random.Random) -> CLSignature:
    """Sign scalar *message* (reduced mod group order)."""
    m = message % backend.order
    alpha = backend.random_scalar(rng)
    a = _exp_fixed(backend, backend.g, alpha)
    b = backend.exp(a, keypair.y)
    c = backend.exp(a, (keypair.x + keypair.x * keypair.y * m) % backend.order)
    return CLSignature(a=a, b=b, c=c)


def cl_verify(backend, pk: CLPublicKey, message: int, sig: CLSignature) -> bool:
    """Verify via the two pairing equations of Scheme A."""
    m = message % backend.order
    # e(a, Y) == e(g, b)
    if not backend.gt_eq(backend.pair(sig.a, pk.Y), backend.pair(backend.g, sig.b)):
        return False
    # e(X, a) * e(X, b)^m == e(g, c)
    lhs = backend.gt_mul(
        backend.pair(pk.X, sig.a),
        backend.gt_exp(backend.pair(pk.X, sig.b), m),
    )
    return backend.gt_eq(lhs, backend.pair(backend.g, sig.c))


# ---------------------------------------------------------------------------
# blind issuance on a committed message
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BlindIssuanceRequest:
    """Commitment ``M = g^m`` plus a PoK of the committed exponent."""

    commitment: Any
    proof: SchnorrProof


def cl_blind_request(backend, message: int, rng: random.Random) -> tuple[BlindIssuanceRequest, int]:
    """Requester side, move 1: commit to *message* and prove knowledge.

    Returns the request to send and the reduced message the requester
    must remember for unwrap-time verification.
    """
    m = message % backend.order
    commitment = _exp_fixed(backend, backend.g, m)
    transcript = Transcript(b"cl-blind-issuance")
    transcript.absorb_ints(*_encode(backend, backend.g))
    transcript.absorb_ints(*_encode(backend, commitment))
    proof = prove_dlog_generic(backend, backend.g, commitment, m, rng, transcript)
    return BlindIssuanceRequest(commitment=commitment, proof=proof), m


def cl_blind_issue(
    backend, keypair: CLKeyPair, request: BlindIssuanceRequest, rng: random.Random
) -> CLSignature:
    """Signer side: issue a signature on the *committed* message.

    Verifies the PoK first (a malformed commitment would let a cheating
    requester extract a signature on a message it cannot open), then
    computes ``(a, b, c)`` without ever learning *m*.
    """
    transcript = Transcript(b"cl-blind-issuance")
    transcript.absorb_ints(*_encode(backend, backend.g))
    transcript.absorb_ints(*_encode(backend, request.commitment))
    if not verify_dlog_generic(backend, backend.g, request.commitment, request.proof, transcript):
        raise ValueError("blind issuance request proof failed")
    alpha = backend.random_scalar(rng)
    a = _exp_fixed(backend, backend.g, alpha)
    b = backend.exp(a, keypair.y)
    # c = a^x * M^(α x y)  =  a^(x + x y m)
    c = backend.mul(
        backend.exp(a, keypair.x),
        backend.exp(request.commitment, (alpha * keypair.x * keypair.y) % backend.order),
    )
    return CLSignature(a=a, b=b, c=c)


def cl_blind_unwrap(backend, pk: CLPublicKey, message: int, sig: CLSignature) -> CLSignature:
    """Requester side, move 2: validate the blindly issued signature.

    Raises :class:`ValueError` when the signer misbehaved; otherwise the
    signature is exactly a Scheme-A signature on *message*.
    """
    if not cl_verify(backend, pk, message, sig):
        raise ValueError("blindly issued CL signature failed verification")
    return sig


def _encode(backend, element) -> tuple[int, ...]:
    """Flatten a backend group element into ints for transcript absorption."""
    enc = backend.element_encode(element)
    return tuple(int(v) for v in enc)

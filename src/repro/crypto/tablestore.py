"""Shared-memory transport for precomputed verification tables.

A pooled verifier spawns workers with the ``spawn`` start method, so
nothing is inherited: by default every worker re-derives every
fixed-base comb and Miller-loop table from scratch — the dominant cost
of a cold spawn.  This module moves the tables instead of the work:
the parent serializes its warm tables once
(:func:`repro.ecash.spend.export_verification_tables`), publishes the
blob through a :class:`TableStore`, and ships only the small picklable
*reference* to each worker, which attaches and installs.

Transport is ``multiprocessing.shared_memory`` when available, with a
plain-file fallback (the blob is written under the system temp dir and
read back by path) for platforms or configurations where POSIX shared
memory is unusable.  Either way the payload crosses the boundary under
a versioned header carrying a SHA-256 digest — a torn write, a stale
segment from a previous incarnation, or a size mismatch fails
:func:`unpack` loudly, and the worker falls back to a local build
rather than installing corrupt tables.  The digest proves integrity,
not origin, and the payload is ultimately unpickled — so the file
fallback is created ``0600`` with ``O_EXCL`` and re-verified on read
(regular file, owned by this uid) before any byte is trusted.

Crash discipline: the window between *creating* a segment and
*publishing* its reference is exactly where an operator-visible crash
leaks resources, so :func:`set_crash_hook` exposes that window to the
fault harness.  ``publish`` guarantees the segment is closed and
unlinked when anything — including the hook — raises inside it.

This module is deliberately service-agnostic: stdlib only, no imports
from elsewhere in the package (pinned by ``tools/lint_imports.py``).
"""

from __future__ import annotations

import hashlib
import os
import secrets
import stat
import tempfile
from typing import Callable

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None  # type: ignore[assignment]
    resource_tracker = None  # type: ignore[assignment]

__all__ = [
    "TableStoreError",
    "TableStore",
    "pack",
    "unpack",
    "load",
    "set_crash_hook",
]

_MAGIC = b"RPTB"
_VERSION = 1
_DIGEST = hashlib.sha256
_HEADER_LEN = len(_MAGIC) + 2 + 8 + _DIGEST(b"").digest_size

#: Picklable reference to a published blob: ``("shm", name, total_size)``
#: or ``("file", path, total_size)``.
TableRef = tuple

_CRASH_HOOK: Callable[[], None] | None = None

#: Segment names created by *this* process.  ``load`` must only scrub
#: the resource tracker when attaching to a foreign segment — in the
#: owner process the registrations collapse into one tracker entry, and
#: unregistering it would make the eventual unlink double-unregister.
_OWNED: set[str] = set()


class TableStoreError(ValueError):
    """A published blob failed validation (magic/version/digest/size)."""


def set_crash_hook(hook: Callable[[], None] | None) -> None:
    """Install a hook fired between segment creation and publication.

    Test-only: the fault harness raises
    :class:`~repro.testing.faults.CrashPoint` from the hook to simulate
    the publisher dying mid-publish.  ``None`` clears it.
    """
    global _CRASH_HOOK
    _CRASH_HOOK = hook


def pack(blob: bytes) -> bytes:
    """Frame *blob* with the versioned, digest-carrying header."""
    digest = _DIGEST(blob).digest()
    return (
        _MAGIC
        + _VERSION.to_bytes(2, "big")
        + len(blob).to_bytes(8, "big")
        + digest
        + blob
    )


def unpack(data: bytes) -> bytes:
    """Validate a framed payload and return the inner blob.

    Raises :class:`TableStoreError` on any mismatch — truncated reads,
    foreign segments, version skew, or payload corruption.
    """
    if len(data) < _HEADER_LEN:
        raise TableStoreError("table payload shorter than its header")
    if data[: len(_MAGIC)] != _MAGIC:
        raise TableStoreError("bad table payload magic")
    offset = len(_MAGIC)
    version = int.from_bytes(data[offset : offset + 2], "big")
    if version != _VERSION:
        raise TableStoreError(f"unsupported table payload version {version}")
    offset += 2
    length = int.from_bytes(data[offset : offset + 8], "big")
    offset += 8
    digest = data[offset : offset + _DIGEST(b"").digest_size]
    offset += _DIGEST(b"").digest_size
    blob = bytes(data[offset : offset + length])
    if len(blob) != length:
        raise TableStoreError("table payload truncated")
    if _DIGEST(blob).digest() != digest:
        raise TableStoreError("table payload digest mismatch")
    return blob


class TableStore:
    """Owner-side handle for one published table blob.

    The owner (the pool parent) calls :meth:`publish` once, hands the
    returned reference to every worker, and calls :meth:`close` when
    the pool shuts down.  Workers use the module-level :func:`load` —
    it is picklable by qualified name and leaves ownership with the
    parent.
    """

    def __init__(self) -> None:
        self._segment = None
        self._path: str | None = None
        self.ref: TableRef | None = None

    def publish(self, blob: bytes, *, prefer_shared_memory: bool = True) -> TableRef:
        """Publish *blob*; returns the picklable reference workers load.

        Tries POSIX shared memory first, falling back to a temp file.
        Any failure after segment creation — including a crash-hook
        firing — releases the segment before the exception propagates,
        so a dying publisher never strands an unnamed segment.
        """
        if self.ref is not None:
            raise RuntimeError("TableStore already published")
        framed = pack(blob)
        if prefer_shared_memory and shared_memory is not None:
            try:
                segment = shared_memory.SharedMemory(create=True, size=len(framed))
            except OSError:
                segment = None
            if segment is not None:
                try:
                    segment.buf[: len(framed)] = framed
                    if _CRASH_HOOK is not None:
                        _CRASH_HOOK()
                except BaseException:
                    segment.close()
                    segment.unlink()
                    raise
                self._segment = segment
                _OWNED.add(segment.name)
                self.ref = ("shm", segment.name, len(framed))
                return self.ref
        path = os.path.join(
            tempfile.gettempdir(), f"repro-tables-{secrets.token_hex(8)}.bin"
        )
        # O_EXCL: never adopt a pre-existing path (the temp dir is
        # shared, and the blob is unpickled on the reading side); 0600:
        # only this uid may replace the contents afterwards.
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o600)
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(framed)
            if _CRASH_HOOK is not None:
                _CRASH_HOOK()
        except BaseException:
            try:
                os.unlink(path)
            except OSError:
                pass
            raise
        self._path = path
        self.ref = ("file", path, len(framed))
        return self.ref

    def close(self, *, unlink: bool = True) -> None:
        """Release the published segment (idempotent)."""
        segment, self._segment = self._segment, None
        if segment is not None:
            _OWNED.discard(segment.name)
            segment.close()
            if unlink:
                try:
                    segment.unlink()
                except FileNotFoundError:
                    pass
        path, self._path = self._path, None
        if path is not None and unlink:
            try:
                os.unlink(path)
            except OSError:
                pass
        self.ref = None


def load(ref: TableRef) -> bytes:
    """Attach to a published reference and return the validated blob.

    Read-only from the attaching side: shared-memory segments are
    closed (never unlinked) after copying, and the attachment is
    scrubbed from this process's resource tracker so a worker exiting
    does not tear the parent's segment down underneath its siblings
    (Python < 3.13 tracks attachments as if they were owned).
    """
    kind, name, size = ref
    if kind == "shm":
        if shared_memory is None:
            raise TableStoreError("shared memory unavailable")
        segment = shared_memory.SharedMemory(name=name)
        try:
            if resource_tracker is not None and name not in _OWNED:
                try:
                    resource_tracker.unregister(segment._name, "shared_memory")
                except Exception:
                    pass
            data = bytes(segment.buf[:size])
        finally:
            segment.close()
        return unpack(data)
    if kind == "file":
        # the digest in the frame proves integrity, not origin: the blob
        # is unpickled after validation, so a file an attacker could
        # plant or rewrite under the shared temp dir would be code
        # execution.  publish() creates it 0600/O_EXCL; refuse anything
        # that is not a regular file owned by this uid (symlink swaps
        # are cut off by O_NOFOLLOW where the platform has it).
        fd = os.open(name, os.O_RDONLY | getattr(os, "O_NOFOLLOW", 0))
        try:
            info = os.fstat(fd)
            if not stat.S_ISREG(info.st_mode):
                raise TableStoreError("table file is not a regular file")
            getuid = getattr(os, "getuid", None)
            if getuid is not None and info.st_uid != getuid():
                raise TableStoreError("table file owned by another user")
            chunks = []
            remaining = size
            while remaining > 0:
                chunk = os.read(fd, remaining)
                if not chunk:
                    break
                chunks.append(chunk)
                remaining -= len(chunk)
            data = b"".join(chunks)
        finally:
            os.close(fd)
        return unpack(data)
    raise TableStoreError(f"unknown table reference kind {kind!r}")

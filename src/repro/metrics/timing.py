"""Wall-clock timing harness (Section VI methodology).

The paper runs every experiment 100 times and reports the average,
discarding JVM warm-up effects.  :func:`time_operation` mirrors that:
optional warm-up runs, then *repeats* timed runs, returning mean and
spread.  The benches use fewer repetitions at expensive parameter
points (as any practical reproduction must) and record the counts.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["TimingResult", "time_operation", "Stopwatch"]


@dataclass(frozen=True)
class TimingResult:
    """Aggregate of repeated timed runs (durations in seconds)."""

    mean: float
    std: float
    minimum: float
    maximum: float
    repeats: int

    @property
    def mean_ms(self) -> float:
        return self.mean * 1e3

    def __str__(self) -> str:
        return f"{self.mean_ms:.3f} ms ± {self.std * 1e3:.3f} ms (n={self.repeats})"


def time_operation(
    fn: Callable[[], object],
    *,
    repeats: int = 100,
    warmup: int = 1,
) -> TimingResult:
    """Time *fn* over *repeats* runs after *warmup* discarded runs."""
    if repeats < 1:
        raise ValueError("need at least one timed run")
    for _ in range(warmup):
        fn()
    durations = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        durations.append(time.perf_counter() - start)
    mean = sum(durations) / repeats
    var = sum((d - mean) ** 2 for d in durations) / repeats
    return TimingResult(
        mean=mean,
        std=math.sqrt(var),
        minimum=min(durations),
        maximum=max(durations),
        repeats=repeats,
    )


class Stopwatch:
    """Accumulating stopwatch for phase breakdowns inside protocols."""

    def __init__(self) -> None:
        self.phases: dict[str, float] = {}
        self._start: float | None = None
        self._phase: str | None = None

    def start(self, phase: str) -> None:
        self.stop()
        self._phase = phase
        self._start = time.perf_counter()

    def stop(self) -> None:
        if self._phase is not None and self._start is not None:
            self.phases[self._phase] = self.phases.get(self._phase, 0.0) + (
                time.perf_counter() - self._start
            )
        self._phase = None
        self._start = None

    def total(self) -> float:
        return sum(self.phases.values())

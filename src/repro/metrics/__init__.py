"""Instrumentation: operation counters, traffic meters, timing harness.

Three modules back the paper's evaluation artifacts: Table I
(:mod:`~repro.metrics.opcount`), Table II (:mod:`~repro.metrics.traffic`)
and the timing methodology of Figs. 2–5 (:mod:`~repro.metrics.timing`).
:mod:`~repro.metrics.latency` serves the layer the paper doesn't have:
per-request latency quantiles and SLO checks for :mod:`repro.service`.
"""

from repro.metrics.latency import (
    LatencyRecorder,
    LatencyReport,
    SLOTarget,
    format_latency_report,
)
from repro.metrics.opcount import OPS, OpCounter, format_table
from repro.metrics.parallel import SweepPoint, default_processes, sweep
from repro.metrics.series import FigureData, Series, render_ascii_plot, render_table
from repro.metrics.timing import Stopwatch, TimingResult, time_operation
from repro.metrics.traffic import TrafficMeter, format_traffic_table

__all__ = [
    "LatencyRecorder",
    "LatencyReport",
    "SLOTarget",
    "format_latency_report",
    "OpCounter",
    "OPS",
    "format_table",
    "TrafficMeter",
    "format_traffic_table",
    "TimingResult",
    "time_operation",
    "Stopwatch",
    "sweep",
    "SweepPoint",
    "default_processes",
    "Series",
    "FigureData",
    "render_table",
    "render_ascii_plot",
]

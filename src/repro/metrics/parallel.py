"""Parallel parameter sweeps for benchmarks and experiments.

The evaluation grids (levels × node levels × strategies × trials) are
embarrassingly parallel, and the heavy work is arbitrary-precision
arithmetic that releases nothing to threads — so the right tool is a
*process* pool.  :func:`sweep` maps a top-level worker function over a
grid with ``concurrent.futures.ProcessPoolExecutor``, preserving input
order and propagating worker exceptions.

Two ergonomic guarantees keep results reproducible and picklable:

* every grid point carries its own integer seed (derived from the
  sweep seed and the point index), so results are independent of
  worker scheduling;
* ``processes=1`` bypasses multiprocessing entirely (exact same code
  path in-process), which is what the test suite uses and what callers
  should use under profilers.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Sequence

__all__ = [
    "SweepPoint",
    "sweep",
    "sweep_points",
    "default_processes",
    "env_processes",
]


@dataclass(frozen=True)
class SweepPoint:
    """One grid point handed to the worker: parameters plus a seed."""

    index: int
    seed: int
    params: Any


def env_processes(default: int | None = None) -> int | None:
    """The ``REPRO_PROCESSES`` override, or *default* when unset/invalid.

    This is the one place the environment variable is parsed — the
    sweep heuristic, the verification worker pool and the service test
    fixtures all resolve their worker counts through it, so one env
    knob pins every pool in the process.  Non-positive or non-numeric
    values are ignored.
    """
    override = os.environ.get("REPRO_PROCESSES", "").strip()
    if override:
        try:
            n = int(override)
        except ValueError:
            n = 0
        if n >= 1:
            return n
    return default


def default_processes() -> int:
    """A sensible worker count: physical-ish cores, at least 1.

    A ``REPRO_PROCESSES`` environment variable overrides the heuristic —
    the 1-core bench VM and CI use it to force serial (or deliberately
    oversubscribed) runs without code edits.
    """
    override = env_processes()
    if override is not None:
        return override
    return max(1, (os.cpu_count() or 2) - 1)


def sweep_points(grid: Sequence[Any], seed: int = 0) -> list[SweepPoint]:
    """The grid as seeded :class:`SweepPoint`\\ s (deterministic per point).

    Factored out so every dispatch backend — the in-process loop here,
    and the persistent :mod:`repro.service.workers` pool — derives
    bit-identical per-point seeds from the same ``(seed, index)`` pair;
    results then never depend on *which* executor ran the grid.
    """
    return [
        SweepPoint(index=i, seed=(seed * 1_000_003 + i * 7919) & 0x7FFFFFFF, params=p)
        for i, p in enumerate(grid)
    ]


def sweep(
    worker: Callable[[SweepPoint], Any],
    grid: Sequence[Any],
    *,
    seed: int = 0,
    processes: int | None = None,
) -> list[Any]:
    """Evaluate ``worker`` at every point of *grid*, possibly in parallel.

    *worker* must be a module-level function (picklability); it receives
    a :class:`SweepPoint` whose ``params`` is the grid entry and whose
    ``seed`` is unique and deterministic per point.  Results come back
    in grid order.  Exceptions in workers propagate to the caller.
    """
    points = sweep_points(grid, seed)
    n_proc = processes if processes is not None else default_processes()
    if n_proc <= 1 or len(points) <= 1:
        return [worker(point) for point in points]
    with ProcessPoolExecutor(max_workers=min(n_proc, len(points))) as pool:
        return list(pool.map(worker, points))

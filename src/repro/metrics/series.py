"""Series capture and terminal rendering for the paper's figures.

The benches regenerate the paper's figures as *series* — (x, y) points
per labelled curve.  This module gives them a tiny, dependency-free way
to accumulate those series and render them the way a paper reader would
want to eyeball them in a terminal: an aligned table plus an ASCII
scatter (log-scale aware for Fig. 2's explosive curve).

Nothing here knows about pytest or benchmarks; examples and the CLI use
it too.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["Series", "FigureData", "render_table", "render_ascii_plot"]


@dataclass
class Series:
    """One labelled curve."""

    label: str
    points: list[tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.points.append((float(x), float(y)))

    def xs(self) -> list[float]:
        return [p[0] for p in self.points]

    def ys(self) -> list[float]:
        return [p[1] for p in self.points]


@dataclass
class FigureData:
    """A figure: title, axis names, several series."""

    title: str
    xlabel: str
    ylabel: str
    series: list[Series] = field(default_factory=list)

    def new_series(self, label: str) -> Series:
        s = Series(label)
        self.series.append(s)
        return s

    def all_points(self) -> list[tuple[float, float]]:
        return [p for s in self.series for p in s.points]


def render_table(figure: FigureData, *, precision: int = 3) -> str:
    """Aligned x/series table — the 'rows the paper reports'."""
    xs = sorted({x for s in figure.series for x, _ in s.points})
    header = [figure.xlabel] + [s.label for s in figure.series]
    widths = [max(10, len(h) + 2) for h in header]
    lines = [figure.title]
    lines.append("".join(h.rjust(w) for h, w in zip(header, widths)))
    lines.append("-" * sum(widths))
    for x in xs:
        row = [f"{x:g}".rjust(widths[0])]
        for s, w in zip(figure.series, widths[1:]):
            match = [y for (px, y) in s.points if px == x]
            row.append((f"{match[0]:.{precision}f}" if match else "-").rjust(w))
        lines.append("".join(row))
    return "\n".join(lines)


def render_ascii_plot(
    figure: FigureData,
    *,
    width: int = 64,
    height: int = 16,
    logy: bool = False,
) -> str:
    """Terminal scatter plot; one marker letter per series."""
    points = figure.all_points()
    if not points:
        return f"{figure.title}\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    if logy:
        floor = min(y for y in ys if y > 0) if any(y > 0 for y in ys) else 1e-9
        transform = lambda y: math.log10(max(y, floor))
    else:
        transform = lambda y: y
    ty = [transform(y) for y in ys]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ty), max(ty)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = "abcdefghij"
    for si, s in enumerate(figure.series):
        mark = markers[si % len(markers)]
        for x, y in s.points:
            col = round((x - x_lo) / x_span * (width - 1))
            row = round((transform(y) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row][col] = mark

    lines = [f"{figure.title}   (y: {figure.ylabel}{', log10' if logy else ''})"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" x: {figure.xlabel}  [{x_lo:g} .. {x_hi:g}]")
    legend = "  ".join(
        f"{markers[i % len(markers)]}={s.label}" for i, s in enumerate(figure.series)
    )
    lines.append(" " + legend)
    return "\n".join(lines)
